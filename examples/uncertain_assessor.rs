//! An assessor who is honest about not knowing the process parameters.
//!
//! §6.3 notes assessors infer the `(pᵢ, qᵢ)` from experience of "similar"
//! projects — so the parameters are themselves uncertain. This example
//! carries that uncertainty through the whole pipeline: an ensemble of
//! candidate models, predictive moments with the epistemic component
//! separated, worst-case §5.1 bounds, and the final accept/reject decision
//! at explicit stakes.
//!
//! Run with: `cargo run -p divrel --release --example uncertain_assessor`

use divrel::bayes::decision::{decide, DecisionStakes};
use divrel::bayes::prior::PfdPrior;
use divrel::bayes::update::observe;
use divrel::model::bounds::pair_bound_from_single_bound;
use divrel::model::ensemble::ModelEnsemble;
use divrel::model::FaultModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three defensible readings of the developer's track record.
    let candidates = vec![
        (0.2, FaultModel::uniform(40, 0.03, 5e-4)?), // optimistic reading
        (0.5, FaultModel::uniform(40, 0.08, 5e-4)?), // central reading
        (0.3, FaultModel::uniform(40, 0.15, 5e-4)?), // pessimistic reading
    ];
    let ensemble = ModelEnsemble::new(candidates.clone())?;
    println!("{ensemble}");

    println!("\nPredictive single-version PFD:");
    println!("  mean               : {:.3e}", ensemble.mean_pfd(1));
    println!("  total σ            : {:.3e}", ensemble.var_pfd(1).sqrt());
    println!(
        "  …of which epistemic: {:.3e}  (what a single-model analysis drops)",
        ensemble.epistemic_var_pfd(1).sqrt()
    );

    println!("\n1-out-of-2 predictions:");
    println!("  predictive mean PFD : {:.3e}", ensemble.mean_pfd(2));
    println!(
        "  predictive risk ratio (eq 10, correctly mixed): {:.4}",
        ensemble.risk_ratio()?
    );
    let naive: f64 = candidates
        .iter()
        .map(|(w, m)| {
            w * m.risk_ratio().expect("valid") / candidates.iter().map(|(w, _)| w).sum::<f64>()
        })
        .sum();
    println!("  (naively averaging members' ratios would give {naive:.4} — wrong)");

    // §5.1 with the worst-case p_max across the ensemble.
    let pmax = ensemble.p_max_worst_case();
    let single_bound = 0.02; // a demonstrated 99% bound for one version
    let pair_bound = pair_bound_from_single_bound(single_bound, pmax)?;
    println!("\n§5.1 with worst-case p_max = {pmax}:");
    println!("  single 99% bound {single_bound} → pair bound {pair_bound:.4}");

    // Decision under mixture prior + operational evidence.
    let total_weight: f64 = candidates.iter().map(|(w, _)| w).sum();
    let mut atoms = Vec::new();
    for (w, m) in &candidates {
        if let PfdPrior::Discrete(member_atoms) = PfdPrior::exact_pair(m)? {
            for a in member_atoms {
                atoms.push(divrel::numerics::weighted_sum::Atom {
                    value: a.value,
                    mass: a.mass * w / total_weight,
                });
            }
        }
    }
    atoms.sort_by(|a, b| a.value.total_cmp(&b.value));
    // Merge equal values so the prior validates.
    let mut merged: Vec<divrel::numerics::weighted_sum::Atom> = Vec::new();
    for a in atoms {
        match merged.last_mut() {
            Some(last) if (last.value - a.value).abs() < 1e-15 => last.mass += a.mass,
            _ => merged.push(a),
        }
    }
    let prior = PfdPrior::from_atoms(merged)?;
    println!(
        "\nMixture prior over the pair PFD: P(perfect) = {:.4}",
        prior.prob_perfect()
    );
    let stakes = DecisionStakes {
        cost_per_failure: 5e6,
        demands: 20_000,
        rejection_cost: 2e5,
    };
    for t in [0u64, 2_000, 50_000] {
        let post = observe(&prior, 0, t)?;
        let d = decide(&post, stakes)?;
        println!(
            "  after {t:>6} failure-free demands: E[loss|accept] = {:.3e} vs reject {:.1e} → {}",
            d.accept_loss,
            d.reject_loss,
            if d.accept { "ACCEPT" } else { "REJECT" }
        );
    }
    println!(
        "\nThe epistemic spread, not the within-model noise, is what keeps the\n\
         system rejected until operation rules the pessimistic reading out."
    );
    Ok(())
}
