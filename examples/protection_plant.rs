//! Fig 1, live: a stochastic plant protected by a dual-channel 1-out-of-2
//! system whose channel software comes from the fault-creation process.
//!
//! The example samples two program versions from an explicit fault→region
//! model, assembles the Fig 1 architecture, runs an operational campaign,
//! and compares three numbers the paper distinguishes carefully:
//!
//! * the **observed** system PFD (what operation shows),
//! * the **true** PFD of this particular pair (intersection geometry),
//! * the **expected** PFD over the population of pairs (eq 1 — what an
//!   assessor can predict before the versions exist).
//!
//! Run with: `cargo run --release --example protection_plant`

use divrel::demand::{
    mapping::FaultRegionMap, profile::Profile, region::Region, space::GridSpace2D,
    version::ProgramVersion,
};
use divrel::devsim::{factory::VersionFactory, process::FaultIntroduction};
use divrel::protection::{
    adjudicator::Adjudicator, channel::Channel, plant::Plant, simulation, system::ProtectionSystem,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Demand space and failure-region geometry.
    let space = GridSpace2D::new(80, 80)?;
    let profile = Profile::uniform(&space);
    let map = FaultRegionMap::new(
        space,
        vec![
            Region::rect(0, 0, 15, 7),         // q = 0.02
            Region::rect(30, 10, 39, 17),      // q = 0.0125
            Region::lattice(0, 40, 4, 0, 16),  // dashed line, q = 0.0025
            Region::rect(60, 60, 69, 69),      // q = 0.015625
            Region::lattice(20, 20, 3, 3, 10), // diagonal, q ≈ 0.0016
        ],
    )?;
    let ps = [0.30, 0.20, 0.15, 0.10, 0.25];
    let model = map.to_fault_model(&ps, &profile)?;
    println!("Fault model from geometry: {model}");

    // Two separately developed channel versions (the paper's §2.2 dice).
    let mut rng = StdRng::seed_from_u64(42);
    let factory = VersionFactory::new(model.clone(), FaultIntroduction::Independent)?;
    let a = ProgramVersion::from_fault_set(factory.sample_version(&mut rng).faults);
    let b = ProgramVersion::from_fault_set(factory.sample_version(&mut rng).faults);
    println!("Channel A faults: {:?}", a.fault_indices());
    println!("Channel B faults: {:?}", b.fault_indices());
    println!("Common faults:    {:?}", a.common_faults(&b));

    let system = ProtectionSystem::new(
        vec![Channel::new("A", a.clone()), Channel::new("B", b.clone())],
        Adjudicator::OneOutOfN,
        map.clone(),
    )?;

    // Operational campaign.
    let plant = Plant::with_demand_rate(profile.clone(), 0.25)?;
    let steps = 4_000_000;
    let log = simulation::run(&plant, &system, steps, &mut rng)?;
    println!("\nOperational campaign: {log}");
    println!(
        "  channel A observed PFD: {:.4e} (true {:.4e})",
        log.channel_pfd_estimate(0)?,
        a.true_pfd(&map, &profile)?
    );
    println!(
        "  channel B observed PFD: {:.4e} (true {:.4e})",
        log.channel_pfd_estimate(1)?,
        b.true_pfd(&map, &profile)?
    );
    let observed = log.pfd_estimate()?;
    let truth = system.true_pfd(&profile)?;
    println!("\n  1oo2 observed PFD: {observed:.4e}");
    println!("  1oo2 true PFD (this pair's geometry): {truth:.4e}");
    println!(
        "  1oo2 expected PFD over the version population (eq 1): {:.4e}",
        model.mean_pfd_pair()
    );
    println!(
        "\nThe observed and true values agree within sampling noise; the \
         population\nexpectation differs because THIS pair is one draw from \
         the version\ndistribution — exactly the distinction (§3) between Θ₂ \
         as a random\nvariable and one realisation of it."
    );
    Ok(())
}
