//! A safety case for a 1-out-of-2 protection system — the paper's §5.1
//! assessor workflow plus the Bayesian follow-up its conclusions call for.
//!
//! Scenario: a regulator must decide whether a dual-channel protection
//! system reaches SIL 3 (PFD < 10⁻³). Evidence: the developer's process
//! history supports µ₁ = 0.01, σ₁ = 0.001 for single versions, and the
//! assessor is prepared to believe `p_max ≤ 0.1` (no single mistake
//! survives the process with more than 10% probability).
//!
//! Run with: `cargo run --example safety_case`

use divrel::bayes::assessment::{compare_diversity, demands_for_claim};
use divrel::bayes::prior::PfdPrior;
use divrel::model::assessor::{assess_pair, Sil, SingleVersionEvidence};
use divrel::model::FaultModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Step 1: the paper's §5.1 move ----------------------------------
    let confidence = 0.99;
    let claim = assess_pair(
        SingleVersionEvidence::Moments {
            mu: 0.01,
            sigma: 0.001,
        },
        0.1,
        confidence,
    )?;
    println!(
        "§5.1 claim derivation at {:.0}% confidence:",
        confidence * 100.0
    );
    println!(
        "  single version: PFD ≤ {:.4}   → {}",
        claim.single_bound,
        claim
            .single_sil
            .map(|s| s.to_string())
            .unwrap_or_else(|| "no SIL".into())
    );
    println!(
        "  1oo2 system:    PFD ≤ {:.4}   → {}   ({:.1}× better)",
        claim.pair_bound,
        claim
            .pair_sil
            .map(|s| s.to_string())
            .unwrap_or_else(|| "no SIL".into()),
        claim.improvement_factor
    );
    println!(
        "  (Diversity bought {} with NO new evidence — only the p_max belief.)",
        claim.pair_sil.map(|s| s.to_string()).unwrap_or_default()
    );

    // --- Step 2: how much operation until SIL 3? -------------------------
    // Model the process explicitly: many small faults consistent with the
    // moment evidence above.
    let model = FaultModel::uniform(100, 0.1, 1e-3)?;
    println!("\nExplicit process model: n = 100 potential faults, p = 0.1, q = 1e-3");
    println!(
        "  (µ1 = {:.3}, σ1 = {:.4} — consistent with the claimed evidence)",
        model.mean_pfd_single(),
        model.std_pfd_single()
    );
    let sil3 = Sil::Sil3.band().1; // PFD < 1e-3
    for (label, prior) in [
        ("single version", PfdPrior::exact_single(&model)?),
        ("1oo2 system", PfdPrior::exact_pair(&model)?),
    ] {
        match demands_for_claim(&prior, sil3, confidence, 200_000_000) {
            Ok(plan) => println!(
                "  {label}: needs {} failure-free demands for SIL 3 \
                 (posterior bound {:.2e})",
                plan.demands, plan.achieved_bound
            ),
            Err(e) => println!("  {label}: SIL 3 unreachable ({e})"),
        }
    }

    // --- Step 3: the gain after shared operational exposure --------------
    println!("\nPosterior bounds after equal failure-free exposure:");
    for t in [0u64, 1_000, 10_000, 100_000] {
        let c = compare_diversity(&model, t, confidence)?;
        println!(
            "  t = {t:>7}: single ≤ {:.2e}, 1oo2 ≤ {:.2e}  (gain {:.1}×)",
            c.single_bound, c.pair_bound, c.gain
        );
    }
    println!(
        "\nNote how the diversity gain is largest exactly when evidence is \
         scarce — the situation safety assessment is stuck with."
    );
    Ok(())
}
