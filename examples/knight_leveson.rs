//! A synthetic Knight–Leveson experiment — §7's empirical check, replayed.
//!
//! Develops 27 versions of the same specification under the fault-creation
//! model, forms all 351 1-out-of-2 pairs, and reports the statistics §7
//! extracted from the original experiment: diversity reduced the sample
//! mean of the PFD *and (greatly) its standard deviation*, while the
//! version PFDs do not fit a normal distribution.
//!
//! Run with: `cargo run --example knight_leveson`

use divrel::devsim::kl::KnightLevesonExperiment;
use divrel::model::FaultModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A student-experiment-flavoured fault model: a handful of plausible
    // specification misreadings with assorted failure-region sizes.
    let model = FaultModel::from_params(
        &[0.35, 0.25, 0.18, 0.12, 0.08, 0.05, 0.03],
        &[0.0008, 0.0025, 0.0005, 0.0060, 0.0012, 0.0150, 0.0040],
    )?;
    println!("Fault model: {model}");
    println!(
        "population-level predictions: µ1 = {:.3e}, µ2 = {:.3e}\n",
        model.mean_pfd_single(),
        model.mean_pfd_pair()
    );

    for seed in [1u64, 2, 3] {
        let result = KnightLevesonExperiment::new(model.clone())
            .seed(seed)
            .run()?;
        println!(
            "replication {seed} — 27 versions, {} pairs:",
            result.pair_pfds.len()
        );
        println!(
            "  versions: mean PFD {:.3e}, σ {:.3e}",
            result.single_mean, result.single_std
        );
        println!(
            "  pairs:    mean PFD {:.3e}, σ {:.3e}",
            result.pair_mean, result.pair_std
        );
        match (result.mean_reduction(), result.std_reduction()) {
            (Some(m), Some(s)) => println!(
                "  diversity reduced the mean {m:.1}× and the std dev {s:.1}× \
                 — the §7 pattern"
            ),
            _ => println!("  pairs were entirely failure-free in this replication"),
        }
        if let Some(ks) = result.normality {
            println!(
                "  KS test of version PFDs vs fitted normal: D = {:.3}, p = {:.4} {}",
                ks.statistic,
                ks.p_value,
                if ks.p_value < 0.05 {
                    "→ normality rejected (as §7 observed for the real data)"
                } else {
                    "→ not rejected in this replication"
                }
            );
        }
        println!();
    }
    println!(
        "§7: \"diversity reduced not only the sample mean of the PFD of the \
         27 program\nversions produced, but also – greatly – its standard \
         deviation\" — reproduced."
    );
    Ok(())
}
