//! Quickstart: the fault-creation model in five minutes.
//!
//! Builds a small fault model, then walks through each section of the
//! paper: moments (§3), assessor bounds (§3.1/§5.1), fault-free
//! probabilities and the risk ratio (§4), and the exact PFD distribution
//! with its normal-approximation certificate (§5).
//!
//! Run with: `cargo run --example quickstart`

use divrel::model::distribution::PfdDistribution;
use divrel::model::{DiverseSystem, FaultModel, PotentialFault};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The universe of potential faults for our application: each fault is
    // (p = chance the development process leaves it in a delivered
    // version, q = chance an operational demand hits its failure region).
    let model = FaultModel::new(vec![
        PotentialFault::new(0.10, 2e-3)?, // a likely fault, small region
        PotentialFault::new(0.05, 1e-2)?, // less likely, bigger region
        PotentialFault::new(0.02, 5e-3)?,
        PotentialFault::new(0.01, 3e-2)?, // rare but nasty
    ])?;
    println!("Model: {model}");

    // --- §3: moments of the PFD ---------------------------------------
    let single = DiverseSystem::single_version(model.clone());
    let pair = DiverseSystem::one_out_of_two(model.clone());
    println!("\n§3 moments (eq 1-3):");
    println!("  E[PFD] single   = {:.3e}", single.mean_pfd());
    println!("  E[PFD] 1oo2     = {:.3e}", pair.mean_pfd());
    println!("  σ(PFD) single   = {:.3e}", single.std_pfd());
    println!("  σ(PFD) 1oo2     = {:.3e}", pair.std_pfd());
    println!("  mean gain       = {:.1}×", pair.mean_gain()?);

    // --- §3.1: what an assessor can guarantee from p_max alone ---------
    println!(
        "\n§3.1 assessor-grade bounds (p_max = {:.2}):",
        model.p_max()
    );
    println!(
        "  lemma (4):  µ2 ≤ p_max·µ1 = {:.3e}   (actual µ2 = {:.3e})",
        model.mean_pair_upper_bound(),
        pair.mean_pfd()
    );
    println!(
        "  lemma (9):  σ2 ≤ β·σ1    = {:.3e}   (actual σ2 = {:.3e})",
        model.std_pair_upper_bound(),
        pair.std_pfd()
    );

    // --- §4: the fault-free regime --------------------------------------
    println!("\n§4 fault-free probabilities:");
    println!(
        "  P(version has no fault)      = {:.4}",
        single.prob_fault_free()
    );
    println!(
        "  P(pair has no common fault)  = {:.4}",
        pair.prob_fault_free()
    );
    println!(
        "  risk ratio P(N2>0)/P(N1>0)   = {:.4}  (eq 10; small = diversity wins)",
        pair.risk_ratio()?
    );

    // --- §5: distributions and confidence bounds ------------------------
    let d1 = PfdDistribution::single(&model)?;
    let d2 = PfdDistribution::pair(&model)?;
    println!("\n§5 99% confidence bounds on the PFD:");
    println!("  exact, single:  {:.3e}", d1.exact_bound(0.99)?);
    println!("  exact, 1oo2:    {:.3e}", d2.exact_bound(0.99)?);
    println!(
        "  normal approx would claim {:.3e} for the single version,",
        d1.normal_bound(0.99)?
    );
    println!(
        "  but its Berry–Esseen certificate is {:.2} — far too coarse for \
         n = 4 faults,",
        d1.berry_esseen_bound().unwrap_or(f64::NAN)
    );
    println!("  so a careful assessor uses the exact bound here (§5 is for many-fault software).");
    Ok(())
}
