//! Process improvement vs the gain from diversity — §4.2 and the
//! appendices, interactively.
//!
//! The paper's most counterintuitive message: *improving* your development
//! process can *shrink* the relative benefit of diversity, depending on
//! which faults the improvement touches. This example shows both faces:
//!
//! * proportional improvement (all `pᵢ` scaled down together) — the gain
//!   from diversity always grows (Appendix B);
//! * targeted improvement (one `pᵢ` reduced) — the gain grows only until
//!   the stationary point, then reverses (Appendix A).
//!
//! Run with: `cargo run --example process_improvement`

use divrel::model::improvement::{
    sweep_single_fault, two_fault_ratio, two_fault_stationary_point, ProportionalFamily,
};
use divrel::model::FaultModel;

fn bar(value: f64, max: f64) -> String {
    let width = (value / max * 48.0).round() as usize;
    "█".repeat(width.min(60))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Appendix B: proportional improvement ---------------------------
    println!("Appendix B — proportional improvement (pᵢ = k·bᵢ):");
    println!("smaller k = better process; smaller ratio = bigger diversity gain\n");
    let fam = ProportionalFamily::new(
        vec![0.40, 0.25, 0.10, 0.05, 0.30],
        vec![0.01, 0.02, 0.05, 0.10, 0.005],
    )?;
    println!("    k    P(N2>0)/P(N1>0)");
    for i in (1..=10).rev() {
        let k = i as f64 / 10.0 * 2.0;
        let r = fam.risk_ratio_at(k)?;
        println!("  {k:4.1}   {r:.4}  {}", bar(r, 0.5));
    }
    println!(
        "\n  Improving the process (k ↓) monotonically improves the relative \
         gain\n  from diversity. This is the only improvement pattern with a \
         guarantee.\n"
    );

    // --- Appendix A: targeted improvement -------------------------------
    println!("Appendix A — targeted improvement of ONE fault (two-fault model, p₂ = 0.5):");
    let p2 = 0.5;
    let p1z = two_fault_stationary_point(p2)?;
    println!("  stationary point p1z = {p1z:.4}\n");
    println!("    p1    ratio");
    for i in (0..=12).rev() {
        let p1 = 0.02 + (0.5 - 0.02) * i as f64 / 12.0;
        let r = two_fault_ratio(p1, p2)?;
        let marker = if (p1 - p1z).abs() < 0.02 {
            "  ← minimum"
        } else {
            ""
        };
        println!("  {p1:5.3}  {r:.4}  {}{marker}", bar(r, 0.6));
    }
    println!(
        "\n  Driving p1 below {p1z:.3} RAISES the ratio again: further \
         improvement of\n  this one fault makes diversity relatively less \
         useful (§4.2.1).\n"
    );

    // --- The same reversal on a realistic model -------------------------
    println!("The reversal on a 5-fault model (improving only the rarest fault):");
    let base =
        FaultModel::from_params(&[0.4, 0.3, 0.2, 0.1, 0.04], &[0.01, 0.01, 0.01, 0.01, 0.01])?;
    let grid: Vec<f64> = (1..=40).map(|i| i as f64 * 0.1 / 40.0).collect();
    let sweep = sweep_single_fault(&base, 4, &grid)?;
    if let Some((p_star, r_star)) = sweep.grid_minimum {
        let first = sweep.points.first().expect("non-empty sweep");
        println!(
            "  ratio is minimal at p5 ≈ {p_star:.3} (ratio {r_star:.4}); \
             pushing p5 down to {:.4} moves it to {:.4}.",
            first.0, first.1
        );
    }
    println!(
        "\nMoral (paper §4.2.3): \"the gain from diverse redundancy is not a \
         constant\" —\nmeasure it for YOUR process; don't extrapolate from \
         someone else's."
    );
    Ok(())
}
