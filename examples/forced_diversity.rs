//! Forced diversity: what buying two *different* development processes
//! gets you — the extension the paper's §1/§7 call for.
//!
//! Scenario: a project can either (a) develop both channels with one
//! blended methodology, or (b) force diversity: channel A with a
//! formal-methods shop that crushes logic faults but is mediocre on
//! timing, channel B with a real-time shop with the opposite profile.
//! Average quality is identical; only the *spread* differs.
//!
//! Run with: `cargo run --example forced_diversity`

use divrel::model::forced::ForcedDiversityModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four fault classes: logic, timing, numerical, interface.
    // Process A (formal methods): great on logic/numerical, weak on timing.
    let p_a = [0.02, 0.40, 0.05, 0.20];
    // Process B (real-time specialists): the mirror image.
    let p_b = [0.40, 0.02, 0.25, 0.10];
    let q = [0.01, 0.008, 0.02, 0.005];
    let forced = ForcedDiversityModel::from_params(&p_a, &p_b, &q)?;

    println!("Fault classes: logic, timing, numerical, interface");
    println!("process A survival probabilities: {p_a:?}");
    println!("process B survival probabilities: {p_b:?}\n");

    let a = forced.process_a()?;
    let b = forced.process_b()?;
    println!(
        "single-version mean PFD: process A = {:.3e}, process B = {:.3e}",
        a.mean_pfd_single(),
        b.mean_pfd_single()
    );

    // The unforced alternative: both channels from the blended process.
    let blended = forced.averaged_process()?;
    println!(
        "blended process single-version mean PFD = {:.3e} (same average quality)",
        blended.mean_pfd_single()
    );

    println!("\n1-out-of-2 pair, mean PFD:");
    println!(
        "  unforced (blended × blended): {:.3e}",
        blended.mean_pfd_pair()
    );
    println!(
        "  forced   (A × B):             {:.3e}",
        forced.mean_pfd_pair()
    );
    println!(
        "  forced advantage:             {:.1}×",
        blended.mean_pfd_pair() / forced.mean_pfd_pair()
    );

    println!("\nprobability of no common fault:");
    println!("  unforced: {:.4}", blended.prob_fault_free_pair());
    println!("  forced:   {:.4}", forced.prob_no_common_fault());

    println!(
        "\nWhy: a fault is common with probability pᴬᵢ·pᴮᵢ, and by AM–GM \
         that product\nis maximised when the processes agree — so disagreement \
         is pure profit.\nThe paper's non-forced analysis is the worst case \
         (§1), and this example\nmeasures how much better a real forced-diverse \
         arrangement can be."
    );
    Ok(())
}
