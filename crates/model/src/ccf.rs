//! The bridge to the IEC-style β-factor common-cause model.
//!
//! §5.1: "being able to trust such a reduction factor ('β-factor' value)
//! would already be a practical advantage in many safety assessments."
//! Industrial practice (IEC 61508 and its kin) models a redundant
//! channel pair by declaring a fraction `β` of each channel's failure
//! probability to be *common cause*:
//!
//! ```text
//! PFD_sys ≈ β·PFD_ch + ((1−β)·PFD_ch)²
//! ```
//!
//! with `β` picked from engineering checklists. The fault-creation model
//! *derives* the quantity those checklists guess at: the fraction of a
//! channel's mean failure probability that is shared with an
//! independently developed partner is
//!
//! ```text
//! β_implied = E[Θ₂] / E[Θ₁] = Σpᵢ²qᵢ / Σpᵢqᵢ
//! ```
//!
//! and lemma (4) turns into the assessor-grade guarantee
//! `β_implied ≤ p_max`. This module computes the implied β, evaluates
//! the IEC approximation against the model's exact pair PFD, and exposes
//! the checklist-vs-model comparison the paper invites.

use crate::error::ModelError;
use crate::fault::FaultModel;

/// The β implied by the fault-creation model: the fraction of a random
/// version's mean PFD that is common with an independently developed
/// partner, `E[Θ₂]/E[Θ₁]`.
///
/// Lemma (4) guarantees `implied_beta ≤ p_max`.
///
/// # Errors
///
/// [`ModelError::Degenerate`] when the single-version mean PFD is zero.
///
/// ```
/// use divrel_model::ccf::implied_beta;
/// use divrel_model::FaultModel;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = FaultModel::uniform(10, 0.05, 1e-3)?;
/// let beta = implied_beta(&m)?;
/// assert!((beta - 0.05).abs() < 1e-12); // homogeneous p: beta = p
/// assert!(beta <= m.p_max());
/// # Ok(())
/// # }
/// ```
pub fn implied_beta(model: &FaultModel) -> Result<f64, ModelError> {
    let mu1 = model.mean_pfd_single();
    if mu1 == 0.0 {
        return Err(ModelError::Degenerate(
            "implied beta undefined for a process that introduces no failures",
        ));
    }
    Ok(model.mean_pfd_pair() / mu1)
}

/// The IEC-style β-factor approximation of a 1-out-of-2 system's PFD:
/// `β·pfd_channel + ((1−β)·pfd_channel)²`.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless both arguments lie in
/// `[0, 1]`.
pub fn iec_system_pfd(pfd_channel: f64, beta: f64) -> Result<f64, ModelError> {
    for v in [pfd_channel, beta] {
        if !(0.0..=1.0).contains(&v) || !v.is_finite() {
            return Err(ModelError::InvalidProbability(v));
        }
    }
    Ok(beta * pfd_channel + ((1.0 - beta) * pfd_channel).powi(2))
}

/// Comparison of the checklist approach with the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaComparison {
    /// The model-implied β = µ₂/µ₁.
    pub implied_beta: f64,
    /// Lemma (4)'s guaranteed ceiling on it (`p_max`).
    pub beta_ceiling: f64,
    /// The model's exact mean pair PFD (`µ₂`).
    pub exact_pair_pfd: f64,
    /// What the IEC formula predicts when fed the implied β.
    pub iec_pair_pfd: f64,
    /// What the IEC formula predicts with a checklist β.
    pub checklist_pair_pfd: f64,
    /// The checklist β used for the last field.
    pub checklist_beta: f64,
}

/// Evaluates the IEC β-factor treatment against the fault-creation model.
///
/// `checklist_beta` is the value an engineer would pick from tables
/// (IEC 61508-6 suggests 0.01–0.1 for hardware; software diversity has no
/// agreed table — the paper's point).
///
/// # Errors
///
/// Propagates [`implied_beta`] and [`iec_system_pfd`] validation.
pub fn compare_with_checklist(
    model: &FaultModel,
    checklist_beta: f64,
) -> Result<BetaComparison, ModelError> {
    let beta = implied_beta(model)?;
    let mu1 = model.mean_pfd_single();
    Ok(BetaComparison {
        implied_beta: beta,
        beta_ceiling: model.p_max(),
        exact_pair_pfd: model.mean_pfd_pair(),
        iec_pair_pfd: iec_system_pfd(mu1, beta)?,
        checklist_pair_pfd: iec_system_pfd(mu1, checklist_beta)?,
        checklist_beta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn homogeneous_model_beta_is_p() {
        let m = FaultModel::uniform(20, 0.08, 1e-3).expect("valid");
        assert!((implied_beta(&m).expect("ok") - 0.08).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_beta_weights_by_mean_contribution() {
        // beta = Σp²q / Σpq — dominated by the faults that matter.
        let m = FaultModel::from_params(&[0.5, 0.01], &[0.001, 0.1]).expect("valid");
        let want = (0.25 * 0.001 + 1e-4 * 0.1) / (0.5 * 0.001 + 0.01 * 0.1);
        assert!((implied_beta(&m).expect("ok") - want).abs() < 1e-12);
        // Far below p_max here: the likely fault has a tiny region.
        assert!(implied_beta(&m).expect("ok") < 0.2);
    }

    #[test]
    fn degenerate_model_rejected() {
        let m = FaultModel::uniform(3, 0.0, 0.1).expect("valid");
        assert!(implied_beta(&m).is_err());
    }

    #[test]
    fn iec_formula_and_validation() {
        // β = 1 degenerates to the channel PFD; β = 0 to independence.
        assert!((iec_system_pfd(0.01, 1.0).expect("ok") - 0.01).abs() < 1e-15);
        assert!((iec_system_pfd(0.01, 0.0).expect("ok") - 1e-4).abs() < 1e-15);
        assert!(iec_system_pfd(1.5, 0.1).is_err());
        assert!(iec_system_pfd(0.1, -0.1).is_err());
    }

    #[test]
    fn iec_with_implied_beta_tracks_exact_pair_pfd() {
        let m = FaultModel::from_params(&[0.2, 0.1, 0.05, 0.15], &[0.004, 0.01, 0.02, 0.002])
            .expect("valid");
        let c = compare_with_checklist(&m, 0.05).expect("ok");
        // β·µ1 IS µ2 by construction; the quadratic term is the only gap.
        assert!((c.iec_pair_pfd - c.exact_pair_pfd).abs() < (m.mean_pfd_single()).powi(2));
        assert!(c.implied_beta <= c.beta_ceiling + 1e-15);
    }

    #[test]
    fn optimistic_checklist_underestimates() {
        // A checklist β of 1% against a process whose implied β is ~10%:
        // the checklist prediction is roughly 10× optimistic — the
        // paper's warning about intuition-driven diversity credit.
        let m = FaultModel::uniform(30, 0.1, 1e-3).expect("valid");
        let c = compare_with_checklist(&m, 0.01).expect("ok");
        assert!((c.implied_beta - 0.1).abs() < 1e-12);
        assert!(c.checklist_pair_pfd < c.exact_pair_pfd / 5.0);
    }

    proptest! {
        #[test]
        fn implied_beta_never_exceeds_pmax(
            params in proptest::collection::vec((0.001..=1.0f64, 0.001..0.1f64), 1..15)
        ) {
            let (ps, qs): (Vec<f64>, Vec<f64>) = params.iter().copied().unzip();
            let m = FaultModel::from_params(&ps, &qs).expect("valid");
            let beta = implied_beta(&m).expect("non-degenerate");
            prop_assert!(beta <= m.p_max() + 1e-12);
            prop_assert!(beta >= 0.0);
            // And the IEC formula with the implied beta is never below µ2.
            let iec = iec_system_pfd(m.mean_pfd_single().min(1.0), beta).expect("ok");
            prop_assert!(iec + 1e-15 >= m.mean_pfd_pair());
        }
    }
}
