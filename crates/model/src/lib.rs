//! # divrel-model
//!
//! The core contribution of Popov & Strigini (DSN 2001): a probabilistic
//! model of the **fault creation process** for independently developed
//! software versions, and of the reliability of 1-out-of-2 diverse systems
//! built from them.
//!
//! ## The model (paper §2)
//!
//! A fixed universe of `n` *potential faults* exists for the application.
//! The `i`-th fault:
//!
//! * is introduced into a randomly developed version with probability `pᵢ`
//!   (independently across faults — "the design team tosses dice"), and
//! * if present, contributes `qᵢ` to the version's probability of failure
//!   on demand (PFD): `qᵢ` is the operational-profile measure of the
//!   fault's failure region in the demand space.
//!
//! Separate development means a fault is common to both members of a
//! 1-out-of-2 pair with probability `pᵢ²`. Failure regions are assumed
//! non-overlapping, so PFDs add across faults.
//!
//! ## What the crate computes
//!
//! * [`moments`] — eq (1)–(3): mean/variance of the PFD of a version
//!   (`Θ₁`), a pair (`Θ₂`), and generally a `k`-version adjudicated stack.
//! * [`bounds`] — §3.1 lemmas (`µ₂ ≤ p_max µ₁`,
//!   `σ₂ ≤ sqrt(p_max(1+p_max)) σ₁`) and the §5.1 confidence-bound
//!   formulas (11)/(12) an assessor can use with *only* a bound on `p_max`.
//! * [`fault_free`] — §4: probabilities of zero faults / zero common
//!   faults, and the risk ratio `P(N₂>0)/P(N₁>0)` (eq 10).
//! * [`improvement`] — §4.2 and Appendices A & B: how process improvement
//!   (reducing the `pᵢ`) changes the gain from diversity, including the
//!   counterintuitive gain-reversal and its corrected closed form.
//! * [`distribution`] — §5: the exact PFD distribution, its normal
//!   approximation, and certificates (Berry–Esseen, KS) for the
//!   approximation quality.
//! * [`assessor`] — the §5.1 assessor workflow mapped onto IEC
//!   61508-style safety integrity levels.
//!
//! ## Example
//!
//! ```
//! use divrel_model::{FaultModel, PotentialFault};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = FaultModel::new(vec![
//!     PotentialFault::new(0.10, 1e-3)?,
//!     PotentialFault::new(0.02, 1e-2)?,
//! ])?;
//! // Eq (1): µ1 = Σ pᵢqᵢ, µ2 = Σ pᵢ²qᵢ
//! assert!((model.mean_pfd_single() - (0.10 * 1e-3 + 0.02 * 1e-2)).abs() < 1e-18);
//! assert!(model.mean_pfd_pair() <= model.p_max() * model.mean_pfd_single());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod assessor;
pub mod bounds;
pub mod ccf;
pub mod distribution;
pub mod ensemble;
pub mod error;
pub mod fault;
pub mod fault_free;
pub mod forced;
pub mod improvement;
pub mod moments;
pub mod probability;
pub mod shared;
pub mod spec;
pub mod system;

pub use error::ModelError;
pub use fault::{FaultModel, FaultModelBuilder, PotentialFault};
pub use probability::Probability;
pub use shared::SharedCauseModel;
pub use system::DiverseSystem;
