//! Shared-cause fault creation — a β-factor layer over [`FaultModel`].
//!
//! The base model assumes versions are developed *independently*: fault
//! `i` lands in all `k` versions with probability `pᵢᵏ`. Real development
//! processes share causes — a common specification mistake, a shared
//! library, the same misleading requirement — so the same fault can be
//! planted in **every** channel by one event. This module makes that
//! correlation explicit with the β-factor split used in hardware CCF
//! practice (and bridged analytically by [`crate::ccf`]):
//!
//! * with probability `γᵢ = β·pᵢ` a **shared cause** plants fault `i` in
//!   all versions at once;
//! * otherwise each version independently acquires fault `i` with the
//!   **residual** probability `ρᵢ = pᵢ(1−β)/(1−β·pᵢ)`.
//!
//! The residual is chosen so the *marginal* per-version probability is
//! still exactly `pᵢ` — a single version cannot tell the difference;
//! only coincident failures can:
//!
//! ```text
//! P(fault i in one version)  = γᵢ + (1−γᵢ)·ρᵢ              = pᵢ
//! P(fault i in all k)        = γᵢ + (1−γᵢ)·ρᵢᵏ  ≥ pᵢᵏ
//! ```
//!
//! At `β = 0` the layer vanishes (`γᵢ = 0`, `ρᵢ = pᵢ`, the common
//! probability is exactly `pᵢᵏ`); at `β = 1` every fault is fully
//! common (`γᵢ = pᵢ`, the common probability is `pᵢ` for every `k`).
//! Because faults remain independent *of each other*, the system PFD is
//! still a weighted Bernoulli sum — the exact machinery of
//! [`crate::distribution::PfdDistribution`] applies unchanged, just with
//! correlated terms.

use crate::distribution::PfdDistribution;
use crate::error::ModelError;
use crate::fault::FaultModel;

/// A fault-creation model whose versions share causes with strength `β`.
///
/// ```
/// use divrel_model::{shared::SharedCauseModel, FaultModel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let base = FaultModel::uniform(8, 0.1, 0.01)?;
/// let correlated = SharedCauseModel::new(base.clone(), 0.2)?;
/// // Marginals unchanged, coincident failures more likely:
/// assert!((correlated.mean_pfd(1) - base.mean_pfd_single()).abs() < 1e-15);
/// assert!(correlated.mean_pfd(2) > base.mean_pfd_pair());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SharedCauseModel {
    base: FaultModel,
    beta: f64,
}

impl SharedCauseModel {
    /// Wraps a base model with a shared-cause fraction `beta ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] for `beta` outside `[0, 1]`.
    pub fn new(base: FaultModel, beta: f64) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
            return Err(ModelError::InvalidProbability(beta));
        }
        Ok(SharedCauseModel { base, beta })
    }

    /// The base (marginal) fault-creation model.
    pub fn base(&self) -> &FaultModel {
        &self.base
    }

    /// The shared-cause fraction `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Probability that fault `i` (introduction probability `p`) is
    /// present in all `k` versions: `γ + (1−γ)·ρᵏ` with `γ = β·p` and
    /// the marginal-preserving residual `ρ = p(1−β)/(1−β·p)`.
    ///
    /// `β = 0` takes an exact `pᵏ` branch (no correlated float detour),
    /// and a degenerate `β·p = 1` denominator (only at `β = p = 1`)
    /// yields `ρ = 0` — the fault is then always planted by the shared
    /// cause anyway.
    pub fn p_common(&self, p: f64, k: u32) -> f64 {
        if self.beta == 0.0 {
            return p.powi(k as i32);
        }
        let gamma = self.beta * p;
        let denom = 1.0 - gamma;
        let rho = if denom > 0.0 {
            p * (1.0 - self.beta) / denom
        } else {
            0.0
        };
        gamma + (1.0 - gamma) * rho.powi(k as i32)
    }

    /// The two-layer sampling decomposition of fault `i` (introduction
    /// probability `p`): returns `(γ, ρ)` where a shared cause plants
    /// the fault in **every** channel with probability `γ = β·p`, and
    /// otherwise each channel independently acquires it with the
    /// marginal-preserving residual `ρ = p(1−β)/(1−β·p)`.
    ///
    /// This is the generative form of [`Self::p_common`] — the hook the
    /// rare-event samplers draw from directly (sample the common layer,
    /// then the per-channel residual layer), so simulation and the
    /// closed forms share one parameterisation by construction. The
    /// degenerate `β·p = 1` denominator yields `ρ = 0`, matching
    /// `p_common`.
    pub fn layers(&self, p: f64) -> (f64, f64) {
        if self.beta == 0.0 {
            return (0.0, p);
        }
        let gamma = self.beta * p;
        let denom = 1.0 - gamma;
        let rho = if denom > 0.0 {
            p * (1.0 - self.beta) / denom
        } else {
            0.0
        };
        (gamma, rho)
    }

    /// Correlated `(probability, weight)` terms for a `k`-version
    /// system: fault `i` contributes `qᵢ` to the system PFD with
    /// probability [`Self::p_common`]`(pᵢ, k)`. Drop-in replacement for
    /// [`FaultModel::terms`] wherever a weighted Bernoulli sum is built.
    pub fn terms(&self, k: u32) -> Vec<(f64, f64)> {
        self.base
            .faults()
            .iter()
            .map(|f| (self.p_common(f.p(), k), f.q()))
            .collect()
    }

    /// `E[Θₖ] = Σ p_common(pᵢ, k) · qᵢ` — eq (1) with the correlated
    /// common probability in place of `pᵢᵏ`.
    pub fn mean_pfd(&self, k: u32) -> f64 {
        self.base
            .faults()
            .iter()
            .map(|f| self.p_common(f.p(), k) * f.q())
            .sum()
    }

    /// `σ²(Θₖ) = Σ p_common(1 − p_common) qᵢ²` — eq (2) with the
    /// correlated common probability.
    pub fn var_pfd(&self, k: u32) -> f64 {
        self.base
            .faults()
            .iter()
            .map(|f| {
                let pc = self.p_common(f.p(), k);
                pc * (1.0 - pc) * f.q() * f.q()
            })
            .sum()
    }

    /// The exact PFD distribution of a `k`-version system under shared
    /// causes — the same subset-enumeration / lattice machinery as the
    /// independent model, fed the correlated terms.
    ///
    /// # Errors
    ///
    /// See [`PfdDistribution::from_terms`].
    pub fn distribution(&self, k: u32) -> Result<PfdDistribution, ModelError> {
        PfdDistribution::from_terms(k, &self.terms(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FaultModel {
        FaultModel::from_params(&[0.1, 0.4, 0.02, 0.9], &[0.02, 0.005, 0.3, 0.001]).unwrap()
    }

    #[test]
    fn beta_outside_unit_interval_is_rejected() {
        assert!(SharedCauseModel::new(base(), -0.1).is_err());
        assert!(SharedCauseModel::new(base(), 1.1).is_err());
        assert!(SharedCauseModel::new(base(), f64::NAN).is_err());
        assert!(SharedCauseModel::new(base(), 0.0).is_ok());
        assert!(SharedCauseModel::new(base(), 1.0).is_ok());
    }

    #[test]
    fn beta_zero_reduces_exactly_to_the_independent_model() {
        let m = base();
        let s = SharedCauseModel::new(m.clone(), 0.0).unwrap();
        for k in 1..=4 {
            assert_eq!(s.terms(k), m.terms(k), "k = {k}");
            assert_eq!(s.mean_pfd(k), m.mean_pfd(k));
            assert_eq!(s.var_pfd(k), m.var_pfd(k));
        }
    }

    #[test]
    fn beta_one_makes_every_fault_fully_common() {
        let m = base();
        let s = SharedCauseModel::new(m.clone(), 1.0).unwrap();
        // P(fault in all k) = p for every k: redundancy buys nothing.
        for k in 1..=4 {
            for (f, (pc, q)) in m.faults().iter().zip(s.terms(k)) {
                assert!((pc - f.p()).abs() < 1e-15, "k = {k}");
                assert_eq!(q, f.q());
            }
            assert!((s.mean_pfd(k) - m.mean_pfd_single()).abs() < 1e-15);
        }
    }

    #[test]
    fn marginals_are_preserved_for_every_beta() {
        let m = base();
        for beta in [0.0, 0.05, 0.3, 0.77, 1.0] {
            let s = SharedCauseModel::new(m.clone(), beta).unwrap();
            // k = 1: a single version cannot see the correlation.
            for (f, (pc, _)) in m.faults().iter().zip(s.terms(1)) {
                assert!((pc - f.p()).abs() < 1e-14, "beta = {beta}, p = {}", f.p());
            }
            assert!((s.mean_pfd(1) - m.mean_pfd_single()).abs() < 1e-15);
        }
    }

    #[test]
    fn shared_causes_only_hurt_coincident_failures() {
        let m = base();
        let mut prev = m.mean_pfd_pair();
        for beta in [0.1, 0.3, 0.6, 1.0] {
            let s = SharedCauseModel::new(m.clone(), beta).unwrap();
            let mu2 = s.mean_pfd(2);
            assert!(mu2 > prev - 1e-18, "pair PFD must grow with beta");
            prev = mu2;
        }
        // And the fully-common limit is the single-version PFD.
        assert!((prev - m.mean_pfd_single()).abs() < 1e-15);
    }

    #[test]
    fn p_common_matches_two_stage_enumeration() {
        // Brute force the two-stage draw: shared cause with prob γ, else
        // k independent residual draws. P(all k) = γ + (1−γ)ρᵏ must
        // match the closed form for representative (β, p, k).
        for beta in [0.0, 0.2, 0.5, 0.9, 1.0] {
            for p in [0.0, 0.01, 0.3, 0.7, 1.0] {
                let s = SharedCauseModel::new(FaultModel::from_params(&[p], &[0.1]).unwrap(), beta)
                    .unwrap();
                let gamma = beta * p;
                let rho = if 1.0 - gamma > 0.0 {
                    p * (1.0 - beta) / (1.0 - gamma)
                } else {
                    0.0
                };
                for k in 1..=5u32 {
                    let direct = gamma + (1.0 - gamma) * rho.powi(k as i32);
                    assert!(
                        (s.p_common(p, k) - direct).abs() < 1e-14,
                        "beta = {beta}, p = {p}, k = {k}"
                    );
                    // Correlation can only raise the coincidence probability.
                    assert!(s.p_common(p, k) >= p.powi(k as i32) - 1e-14);
                }
            }
        }
    }

    #[test]
    fn layers_reproduce_p_common_and_the_marginal() {
        for beta in [0.0, 0.002, 0.2, 0.9, 1.0] {
            for p in [0.0, 1e-6, 0.01, 0.3, 1.0] {
                let s = SharedCauseModel::new(FaultModel::from_params(&[p], &[0.1]).unwrap(), beta)
                    .unwrap();
                let (gamma, rho) = s.layers(p);
                // The generative layers must integrate back to the
                // closed forms: the marginal and every p_common(k).
                assert!(
                    (gamma + (1.0 - gamma) * rho - p).abs() < 1e-15,
                    "beta = {beta}, p = {p}"
                );
                for k in 1..=4u32 {
                    let via_layers = gamma + (1.0 - gamma) * rho.powi(k as i32);
                    assert!(
                        (via_layers - s.p_common(p, k)).abs() < 1e-15,
                        "beta = {beta}, p = {p}, k = {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn distribution_moments_match_the_analytic_moments() {
        let s = SharedCauseModel::new(base(), 0.25).unwrap();
        for k in [1u32, 2, 3] {
            let d = s.distribution(k).unwrap();
            assert!((d.exact().mean() - s.mean_pfd(k)).abs() < 1e-12);
            assert!((d.exact().variance() - s.var_pfd(k)).abs() < 1e-12);
            assert_eq!(d.versions(), k);
        }
    }

    #[test]
    fn pair_distribution_dominates_the_independent_pair() {
        // Exact stochastic dominance check at the distribution level:
        // the correlated pair puts no less mass above any threshold.
        let m = base();
        let s = SharedCauseModel::new(m.clone(), 0.4).unwrap();
        let ind = PfdDistribution::pair(&m).unwrap();
        let cor = s.distribution(2).unwrap();
        for t in [0.0, 1e-4, 1e-3, 1e-2, 0.1] {
            assert!(cor.exact().cdf(t) <= ind.exact().cdf(t) + 1e-12, "t = {t}");
        }
    }
}
