//! The fault-free regime — paper §4.
//!
//! For very high-quality software (e.g. nuclear protection systems) the
//! plausible events are "no fault" and "one fault"; the measure of interest
//! is the probability of having **no fault at all** (single version) or
//! **no common fault** (1-out-of-2 pair). §4.1 compares the *risks*:
//!
//! ```text
//! P(N₂ > 0)        1 − Π(1 − pᵢ²)
//! ─────────   =    ───────────────   ≤ 1            (eq 10)
//! P(N₁ > 0)        1 − Π(1 − pᵢ)
//! ```
//!
//! Smaller ratio = larger gain from diversity. Footnote 5 explains why the
//! *success* ratio `P(N₂=0)/P(N₁=0) = Π(1+pᵢ)` is the wrong measure for
//! practitioners (it hides large changes in small risks); both are provided.
//!
//! All products are computed in log-space (via `divrel-numerics`) so the
//! tiny risks typical of safety systems do not round away.

use crate::error::ModelError;
use crate::fault::FaultModel;
use divrel_numerics::special::{prob_any, prob_none};

impl FaultModel {
    /// `P(N_k = 0) = Π(1 − pᵢᵏ)` — probability that `k` independently
    /// developed versions share no common fault (`k = 1`: the version is
    /// fault-free).
    pub fn prob_fault_free(&self, k: u32) -> f64 {
        // p values are validated, so prob_none cannot fail.
        prob_none(self.faults().iter().map(|f| f.p_common(k))).expect("validated probabilities")
    }

    /// `P(N₁ = 0) = Π(1 − pᵢ)`.
    pub fn prob_fault_free_single(&self) -> f64 {
        self.prob_fault_free(1)
    }

    /// `P(N₂ = 0) = Π(1 − pᵢ²)`.
    pub fn prob_fault_free_pair(&self) -> f64 {
        self.prob_fault_free(2)
    }

    /// `P(N_k > 0) = 1 − Π(1 − pᵢᵏ)` — the *risk* of at least one
    /// (common) fault, computed stably for small risks.
    pub fn risk_any_fault(&self, k: u32) -> f64 {
        prob_any(self.faults().iter().map(|f| f.p_common(k))).expect("validated probabilities")
    }

    /// `P(N₁ > 0)`.
    pub fn risk_any_fault_single(&self) -> f64 {
        self.risk_any_fault(1)
    }

    /// `P(N₂ > 0)`.
    pub fn risk_any_fault_pair(&self) -> f64 {
        self.risk_any_fault(2)
    }

    /// Eq (10): the risk ratio `P(N₂ > 0) / P(N₁ > 0) ≤ 1`.
    ///
    /// The smaller the ratio, the greater the advantage of diversity.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] if every `pᵢ` is zero (no risk to
    /// compare).
    ///
    /// ```
    /// use divrel_model::FaultModel;
    /// let m = FaultModel::uniform(1, 0.1, 0.01)?;
    /// // Single fault: ratio = p²/p = p.
    /// assert!((m.risk_ratio()? - 0.1).abs() < 1e-12);
    /// # Ok::<(), divrel_model::ModelError>(())
    /// ```
    pub fn risk_ratio(&self) -> Result<f64, ModelError> {
        self.risk_ratio_k(2)
    }

    /// Generalised eq (10) for a 1-out-of-`k` system:
    /// `P(N_k > 0) / P(N₁ > 0)`.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] if every `pᵢ` is zero, or `k == 0`.
    pub fn risk_ratio_k(&self, k: u32) -> Result<f64, ModelError> {
        if k == 0 {
            return Err(ModelError::Degenerate("risk ratio for k = 0 versions"));
        }
        let denom = self.risk_any_fault_single();
        if denom == 0.0 {
            return Err(ModelError::Degenerate(
                "risk ratio undefined when all fault probabilities are zero",
            ));
        }
        Ok(self.risk_any_fault(k) / denom)
    }

    /// Footnote 5: the success ratio `P(N₂=0)/P(N₁=0) = Π(1 + pᵢ) ≥ 1`.
    ///
    /// The paper warns this measure *increases* when any `pᵢ` increases and
    /// hides large relative changes in the (small) risks; it is provided for
    /// completeness and for reproducing the footnote.
    pub fn success_ratio(&self) -> f64 {
        // Π(1+pᵢ) computed in log space for robustness with many faults.
        let log_sum: f64 = self.p_values().map(|p| p.ln_1p()).sum();
        log_sum.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_fault_closed_forms() {
        let m = FaultModel::uniform(1, 0.3, 0.1).unwrap();
        assert!((m.prob_fault_free_single() - 0.7).abs() < 1e-15);
        assert!((m.prob_fault_free_pair() - 0.91).abs() < 1e-15);
        assert!((m.risk_any_fault_single() - 0.3).abs() < 1e-15);
        assert!((m.risk_any_fault_pair() - 0.09).abs() < 1e-15);
        assert!((m.risk_ratio().unwrap() - 0.3).abs() < 1e-14);
        assert!((m.success_ratio() - 1.3).abs() < 1e-14);
    }

    #[test]
    fn two_fault_hand_computation() {
        let m = FaultModel::from_params(&[0.1, 0.2], &[0.01, 0.01]).unwrap();
        let p_ff1 = 0.9 * 0.8;
        let p_ff2 = (1.0 - 0.01) * (1.0 - 0.04);
        assert!((m.prob_fault_free_single() - p_ff1).abs() < 1e-15);
        assert!((m.prob_fault_free_pair() - p_ff2).abs() < 1e-15);
        let ratio = (1.0 - p_ff2) / (1.0 - p_ff1);
        assert!((m.risk_ratio().unwrap() - ratio).abs() < 1e-14);
        assert!((m.success_ratio() - 1.1 * 1.2).abs() < 1e-14);
    }

    #[test]
    fn tiny_probabilities_do_not_round_away() {
        // p = 1e-9 each across 100 faults: risk1 ≈ 1e-7, risk2 ≈ 1e-16.
        let m = FaultModel::uniform(100, 1e-9, 1e-6).unwrap();
        let r1 = m.risk_any_fault_single();
        let r2 = m.risk_any_fault_pair();
        assert!((r1 - 1e-7).abs() / 1e-7 < 1e-6);
        assert!((r2 - 1e-16).abs() / 1e-16 < 1e-6);
        let ratio = m.risk_ratio().unwrap();
        assert!((ratio - 1e-9).abs() / 1e-9 < 1e-5);
    }

    #[test]
    fn risk_ratio_degenerate_cases() {
        let m = FaultModel::uniform(3, 0.0, 0.1).unwrap();
        assert!(m.risk_ratio().is_err());
        let m = FaultModel::uniform(2, 0.5, 0.1).unwrap();
        assert!(m.risk_ratio_k(0).is_err());
    }

    #[test]
    fn risk_ratio_k_decreases_with_k() {
        let m = FaultModel::from_params(&[0.3, 0.1, 0.05], &[0.1, 0.1, 0.1]).unwrap();
        let mut prev = 1.0 + 1e-12;
        for k in 1..6 {
            let r = m.risk_ratio_k(k).unwrap();
            assert!(r <= prev, "k={k}: {r} > {prev}");
            prev = r;
        }
        // k = 1 is exactly 1 by definition.
        assert!((m.risk_ratio_k(1).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn certain_fault_dominates() {
        let m = FaultModel::from_params(&[1.0, 0.1], &[0.1, 0.1]).unwrap();
        assert_eq!(m.prob_fault_free_single(), 0.0);
        assert_eq!(m.prob_fault_free_pair(), 0.0);
        assert_eq!(m.risk_any_fault_single(), 1.0);
        assert!((m.risk_ratio().unwrap() - 1.0).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn eq10_ratio_never_exceeds_one(
            ps in proptest::collection::vec(0.0..=1.0f64, 1..30)
        ) {
            prop_assume!(ps.iter().any(|&p| p > 0.0));
            let qs = vec![0.01; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            let r = m.risk_ratio().unwrap();
            prop_assert!(r <= 1.0 + 1e-12, "ratio {r}");
            prop_assert!(r >= 0.0);
        }

        #[test]
        fn footnote5_success_ratio_at_least_one(
            ps in proptest::collection::vec(0.0..=1.0f64, 1..30)
        ) {
            let qs = vec![0.01; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            prop_assert!(m.success_ratio() >= 1.0 - 1e-12);
            // And it equals Π(1+pᵢ) (footnote 5's closed form).
            let direct: f64 = ps.iter().map(|p| 1.0 + p).product();
            prop_assert!((m.success_ratio() - direct).abs() < 1e-9 * direct);
        }

        #[test]
        fn fault_free_probs_are_consistent(
            ps in proptest::collection::vec(0.0..=1.0f64, 1..25)
        ) {
            let qs = vec![0.01; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            for k in 1..4u32 {
                let pf = m.prob_fault_free(k);
                let risk = m.risk_any_fault(k);
                prop_assert!((pf + risk - 1.0).abs() < 1e-10);
            }
        }

        #[test]
        fn pair_is_never_riskier_than_single(
            ps in proptest::collection::vec(0.0..=1.0f64, 1..25)
        ) {
            let qs = vec![0.01; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            prop_assert!(m.risk_any_fault_pair() <= m.risk_any_fault_single() + 1e-12);
        }
    }
}
