//! System-level views: a single version, the paper's 1-out-of-2 pair, and
//! the 1-out-of-`k` generalisation.
//!
//! [`DiverseSystem`] packages a [`FaultModel`] with a number of
//! independently developed channels and exposes every § of the paper's
//! analysis through one coherent interface: moments (§3), fault-free
//! probabilities (§4), and distributions/bounds (§5). A 1-out-of-`k`
//! system fails on a demand only if **all** `k` versions fail on it, which
//! in the model means a fault common to all `k` versions — probability
//! `pᵢᵏ` per fault (the paper treats `k = 2`; larger `k` is the natural
//! extension mentioned with "forced diversity" left for future work).

use crate::distribution::PfdDistribution;
use crate::error::ModelError;
use crate::fault::FaultModel;
use std::fmt;

/// A diverse system: `k` independently developed versions of the same
/// specification behind a perfect 1-out-of-`k` adjudicator.
///
/// ```
/// use divrel_model::{DiverseSystem, FaultModel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(10, 0.1, 0.005)?;
/// let single = DiverseSystem::single_version(model.clone());
/// let pair = DiverseSystem::one_out_of_two(model);
///
/// assert!(pair.mean_pfd() < single.mean_pfd());
/// assert!(pair.prob_fault_free() > single.prob_fault_free());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiverseSystem {
    model: FaultModel,
    channels: u32,
}

impl DiverseSystem {
    /// Creates a system with `channels` independently developed versions.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] for `channels == 0`.
    pub fn new(model: FaultModel, channels: u32) -> Result<Self, ModelError> {
        if channels == 0 {
            return Err(ModelError::Degenerate(
                "a system needs at least one channel",
            ));
        }
        Ok(DiverseSystem { model, channels })
    }

    /// A single (non-diverse) version.
    pub fn single_version(model: FaultModel) -> Self {
        DiverseSystem { model, channels: 1 }
    }

    /// The paper's 1-out-of-2 protection configuration (Fig 1).
    pub fn one_out_of_two(model: FaultModel) -> Self {
        DiverseSystem { model, channels: 2 }
    }

    /// The underlying fault model.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Number of independently developed channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Mean PFD `E[Θ_k] = Σ pᵢᵏqᵢ` (eq 1).
    pub fn mean_pfd(&self) -> f64 {
        self.model.mean_pfd(self.channels)
    }

    /// PFD variance (eq 2).
    pub fn var_pfd(&self) -> f64 {
        self.model.var_pfd(self.channels)
    }

    /// PFD standard deviation.
    pub fn std_pfd(&self) -> f64 {
        self.model.std_pfd(self.channels)
    }

    /// Probability that the system has no (common) fault at all (§4).
    pub fn prob_fault_free(&self) -> f64 {
        self.model.prob_fault_free(self.channels)
    }

    /// Risk of at least one (common) fault, `P(N_k > 0)` (§4).
    pub fn risk_any_fault(&self) -> f64 {
        self.model.risk_any_fault(self.channels)
    }

    /// Full PFD distribution with §5 normal approximation and certificates.
    ///
    /// # Errors
    ///
    /// Propagates [`PfdDistribution::new`].
    pub fn pfd_distribution(&self) -> Result<PfdDistribution, ModelError> {
        PfdDistribution::new(&self.model, self.channels)
    }

    /// The diversity gain over a single version in mean PFD:
    /// `E[Θ₁] / E[Θ_k]` (large is good).
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] when the system's mean PFD is zero.
    pub fn mean_gain(&self) -> Result<f64, ModelError> {
        let own = self.mean_pfd();
        if own == 0.0 {
            return Err(ModelError::Degenerate(
                "mean gain undefined: system mean PFD is zero",
            ));
        }
        Ok(self.model.mean_pfd_single() / own)
    }

    /// The §4 risk-ratio gain `P(N_k>0)/P(N₁>0)` (small is good).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModel::risk_ratio_k`].
    pub fn risk_ratio(&self) -> Result<f64, ModelError> {
        self.model.risk_ratio_k(self.channels)
    }
}

impl fmt::Display for DiverseSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DiverseSystem(channels={}, n={}, E[PFD]={:.3e})",
            self.channels,
            self.model.len(),
            self.mean_pfd()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel::from_params(&[0.2, 0.1, 0.05], &[0.01, 0.02, 0.005]).unwrap()
    }

    #[test]
    fn constructors() {
        let s = DiverseSystem::single_version(model());
        assert_eq!(s.channels(), 1);
        let p = DiverseSystem::one_out_of_two(model());
        assert_eq!(p.channels(), 2);
        let k3 = DiverseSystem::new(model(), 3).unwrap();
        assert_eq!(k3.channels(), 3);
        assert!(DiverseSystem::new(model(), 0).is_err());
    }

    #[test]
    fn delegation_matches_model() {
        let m = model();
        let s = DiverseSystem::single_version(m.clone());
        assert_eq!(s.mean_pfd(), m.mean_pfd_single());
        assert_eq!(s.var_pfd(), m.var_pfd_single());
        assert_eq!(s.prob_fault_free(), m.prob_fault_free_single());
        let p = DiverseSystem::one_out_of_two(m.clone());
        assert_eq!(p.mean_pfd(), m.mean_pfd_pair());
        assert_eq!(p.risk_any_fault(), m.risk_any_fault_pair());
    }

    #[test]
    fn gains_improve_with_channels() {
        let m = model();
        let mut prev_mean = f64::INFINITY;
        let mut prev_risk = f64::INFINITY;
        for k in 1..5 {
            let s = DiverseSystem::new(m.clone(), k).unwrap();
            assert!(s.mean_pfd() <= prev_mean);
            assert!(s.risk_any_fault() <= prev_risk);
            prev_mean = s.mean_pfd();
            prev_risk = s.risk_any_fault();
        }
    }

    #[test]
    fn mean_gain_and_risk_ratio() {
        let m = model();
        let p = DiverseSystem::one_out_of_two(m.clone());
        let g = p.mean_gain().unwrap();
        assert!((g - m.mean_pfd_single() / m.mean_pfd_pair()).abs() < 1e-12);
        assert!(g > 1.0);
        let rr = p.risk_ratio().unwrap();
        assert!((rr - m.risk_ratio().unwrap()).abs() < 1e-15);

        let zero = FaultModel::uniform(2, 0.0, 0.1).unwrap();
        assert!(DiverseSystem::one_out_of_two(zero).mean_gain().is_err());
    }

    #[test]
    fn distribution_round_trip() {
        let p = DiverseSystem::one_out_of_two(model());
        let d = p.pfd_distribution().unwrap();
        assert_eq!(d.versions(), 2);
        assert!((d.mean() - p.mean_pfd()).abs() < 1e-14);
    }

    #[test]
    fn display_mentions_channels() {
        let p = DiverseSystem::one_out_of_two(model());
        assert!(p.to_string().contains("channels=2"));
    }
}
