//! Assessor-grade bounds — paper §3.1 (lemmas on means and standard
//! deviations) and §5.1 (confidence bounds under the normal approximation).
//!
//! The practical power of the paper is that these bounds require only
//! `p_max` — an upper bound on the probability of the *most likely* fault —
//! which an assessor can credibly estimate from process evidence, rather
//! than the full, unknowable `2n` parameters.
//!
//! | Result | Formula | Paper |
//! |---|---|---|
//! | Mean bound | `µ₂ ≤ p_max · µ₁` | eq (4) |
//! | Std-dev bound | `σ₂ < sqrt(p_max(1+p_max)) · σ₁` | eq (9) |
//! | Bound from moments | `µ₂+kσ₂ ≤ p_max µ₁ + k·β·σ₁` | eq (11) |
//! | Bound from a bound | `µ₂+kσ₂ < β·(µ₁+kσ₁)` | eq (12) |
//!
//! where `β = sqrt(p_max(1+p_max))` is the guaranteed **β-factor**
//! (common-cause reduction factor) tabulated in §5.1.

use crate::error::ModelError;
use crate::fault::FaultModel;
use divrel_numerics::normal::k_factor;

/// The threshold `(√5 − 1)/2 ≈ 0.618` below which `p²(1−p²) ≤ p(1−p)`
/// holds, guaranteeing every variance summand shrinks for the pair
/// (paper §3.1.2).
pub const VARIANCE_MONOTONE_THRESHOLD: f64 = 0.618_033_988_749_894_9;

/// The guaranteed β-factor `sqrt(p_max(1 + p_max))` (paper §5.1): any
/// one-sided confidence bound on the PFD of a single version, multiplied by
/// this factor, bounds the PFD of a 1-out-of-2 pair at the same confidence.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless `0 ≤ p_max ≤ 1`.
///
/// ```
/// use divrel_model::bounds::beta_factor;
/// // The paper's table: 0.5 → 0.866, 0.1 → 0.332, 0.01 → 0.100.
/// assert!((beta_factor(0.5)? - 0.866).abs() < 5e-4);
/// assert!((beta_factor(0.1)? - 0.332).abs() < 5e-4);
/// assert!((beta_factor(0.01)? - 0.100).abs() < 5e-4);
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
pub fn beta_factor(p_max: f64) -> Result<f64, ModelError> {
    if !(0.0..=1.0).contains(&p_max) || !p_max.is_finite() {
        return Err(ModelError::InvalidProbability(p_max));
    }
    Ok((p_max * (1.0 + p_max)).sqrt())
}

/// Generalised β-factor for a 1-out-of-`k` system of `k` independent
/// versions: `sqrt(p_max^{k-1} (1 + p_max + … + p_max^{k-1}))`.
///
/// Derivation mirrors eq (9): each variance summand
/// `pᵏ(1−pᵏ)q² = p^{k−1}·(1+p+…+p^{k−1})·p(1−p)q²` is bounded by the
/// corresponding factor at `p_max`. Reduces to the paper's factor at
/// `k = 2`.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless `0 ≤ p_max ≤ 1`;
/// [`ModelError::Degenerate`] for `k == 0`.
pub fn beta_factor_k(p_max: f64, k: u32) -> Result<f64, ModelError> {
    if !(0.0..=1.0).contains(&p_max) || !p_max.is_finite() {
        return Err(ModelError::InvalidProbability(p_max));
    }
    if k == 0 {
        return Err(ModelError::Degenerate("beta factor for k = 0 versions"));
    }
    let geom: f64 = (0..k).map(|i| p_max.powi(i as i32)).sum();
    Ok((p_max.powi(k as i32 - 1) * geom).sqrt())
}

/// Rows of the paper's §5.1 table: `(p_max, beta_factor(p_max))`.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] if any entry is not a probability.
pub fn beta_factor_table(p_maxes: &[f64]) -> Result<Vec<(f64, f64)>, ModelError> {
    p_maxes.iter().map(|&p| Ok((p, beta_factor(p)?))).collect()
}

/// A one-sided confidence statement about a PFD: `P(Θ ≤ value) ≥ confidence`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceBound {
    /// The confidence level (e.g. 0.99).
    pub confidence: f64,
    /// The standard-normal multiplier `k` with `Φ(k) = confidence`.
    pub k: f64,
    /// The bound on the PFD.
    pub value: f64,
}

impl FaultModel {
    /// Lemma (4): the guaranteed upper bound `p_max · µ₁` on the mean PFD
    /// of a 1-out-of-2 pair.
    pub fn mean_pair_upper_bound(&self) -> f64 {
        self.p_max() * self.mean_pfd_single()
    }

    /// Lemma (9): the guaranteed upper bound
    /// `sqrt(p_max(1+p_max)) · σ₁` on the standard deviation of the pair's
    /// PFD.
    pub fn std_pair_upper_bound(&self) -> f64 {
        // p_max of a valid model is always within [0, 1].
        (self.p_max() * (1.0 + self.p_max())).sqrt() * self.std_pfd_single()
    }

    /// Whether every fault satisfies `pᵢ ≤ (√5−1)/2`, the condition under
    /// which §3.1.2 proves each variance summand of the pair is smaller
    /// than the single version's.
    pub fn variance_monotone_condition_holds(&self) -> bool {
        self.p_values().all(|p| p <= VARIANCE_MONOTONE_THRESHOLD)
    }

    /// The `µ + kσ` bound for a single version under the normal
    /// approximation (§5).
    pub fn normal_bound_single(&self, k: f64) -> f64 {
        self.mean_pfd_single() + k * self.std_pfd_single()
    }

    /// The *exact-moment* `µ₂ + kσ₂` bound for the pair under the normal
    /// approximation. Requires full parameter knowledge; the point of
    /// eq (11)/(12) is to avoid needing it.
    pub fn normal_bound_pair(&self, k: f64) -> f64 {
        self.mean_pfd_pair() + k * self.std_pfd_pair()
    }

    /// Eq (11): bound on `µ₂ + kσ₂` from the single-version *moments* and
    /// `p_max` only: `p_max·µ₁ + k·sqrt(p_max(1+p_max))·σ₁`.
    pub fn pair_bound_from_moments(&self, k: f64) -> f64 {
        let pm = self.p_max();
        pm * self.mean_pfd_single() + k * (pm * (1.0 + pm)).sqrt() * self.std_pfd_single()
    }

    /// Eq (12): bound on `µ₂ + kσ₂` from a single-version *bound* and
    /// `p_max` only: `sqrt(p_max(1+p_max)) · (µ₁ + kσ₁)`.
    pub fn pair_bound_from_bound(&self, k: f64) -> f64 {
        (self.p_max() * (1.0 + self.p_max())).sqrt() * self.normal_bound_single(k)
    }
}

/// Eq (12) in the form an assessor uses when the model parameters are
/// unknown: given any one-sided confidence bound `bound_single` on the PFD
/// of a single version and a credible `p_max`, returns the same-confidence
/// bound for the 1-out-of-2 pair.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless `p_max ∈ [0, 1]`;
/// [`ModelError::Degenerate`] for a negative single-version bound.
///
/// ```
/// use divrel_model::bounds::pair_bound_from_single_bound;
/// // p_max = 0.01 gives the 10-fold improvement highlighted in §5.1.
/// let b2 = pair_bound_from_single_bound(1e-3, 0.01)?;
/// assert!((b2 - 1.0049e-4).abs() < 1e-7);
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
pub fn pair_bound_from_single_bound(bound_single: f64, p_max: f64) -> Result<f64, ModelError> {
    if bound_single < 0.0 || !bound_single.is_finite() {
        return Err(ModelError::Degenerate("negative single-version bound"));
    }
    Ok(beta_factor(p_max)? * bound_single)
}

/// Eq (11) in assessor form: given estimates of the single-version moments
/// `(µ₁, σ₁)`, a `p_max`, and a confidence level, returns the pair's
/// confidence bound `p_max µ₁ + k β σ₁` with `k = Φ⁻¹(confidence)`.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless `p_max ∈ [0, 1]`;
/// [`ModelError::Degenerate`] for negative moments; numerical errors from
/// the quantile for `confidence ∉ (0, 1)`.
///
/// ```
/// use divrel_model::bounds::pair_bound_from_single_moments;
/// // Paper §5.1 worked example: µ1 = 0.01, σ1 = 0.001, 84% (k≈1), p_max = 0.1:
/// // bound ≈ 0.001 + 0.33·0.001 ≈ 0.00133 ("0.001" in the paper's rounding).
/// let b = pair_bound_from_single_moments(0.01, 0.001, 0.1, 0.8413447460685429)?;
/// assert!((b - 0.0013316).abs() < 1e-6);
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
pub fn pair_bound_from_single_moments(
    mu1: f64,
    sigma1: f64,
    p_max: f64,
    confidence: f64,
) -> Result<f64, ModelError> {
    if mu1 < 0.0 || sigma1 < 0.0 || !mu1.is_finite() || !sigma1.is_finite() {
        return Err(ModelError::Degenerate("negative single-version moments"));
    }
    let k = k_factor(confidence)?;
    Ok(p_max * mu1 + k * beta_factor(p_max)? * sigma1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example() -> FaultModel {
        FaultModel::from_params(&[0.1, 0.4, 0.02, 0.35], &[0.02, 0.005, 0.3, 0.001]).unwrap()
    }

    #[test]
    fn paper_table_section_5_1() {
        // pmax -> sqrt(pmax(1+pmax)): 0.5 -> 0.866, 0.1 -> 0.332, 0.01 -> 0.100.
        let rows = beta_factor_table(&[0.5, 0.1, 0.01]).unwrap();
        assert!((rows[0].1 - 0.866_025_4).abs() < 1e-6);
        assert!((rows[1].1 - 0.331_662_5).abs() < 1e-6);
        assert!((rows[2].1 - 0.100_498_8).abs() < 1e-6);
    }

    #[test]
    fn beta_factor_asymptote() {
        // For small p_max, beta ≈ sqrt(p_max) (paper: "clearly ≈ sqrt(pmax)").
        for pm in [1e-4, 1e-6] {
            assert!((beta_factor(pm).unwrap() / pm.sqrt() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn beta_factor_rejects_bad_input() {
        assert!(beta_factor(-0.1).is_err());
        assert!(beta_factor(1.1).is_err());
        assert!(beta_factor(f64::NAN).is_err());
    }

    #[test]
    fn beta_factor_k_reduces_to_paper_at_two() {
        for pm in [0.01, 0.1, 0.5, 0.9] {
            assert!(
                (beta_factor_k(pm, 2).unwrap() - beta_factor(pm).unwrap()).abs() < 1e-15,
                "pm={pm}"
            );
        }
        // k = 1 gives no reduction: factor 1.
        assert!((beta_factor_k(0.3, 1).unwrap() - 1.0).abs() < 1e-15);
        assert!(beta_factor_k(0.3, 0).is_err());
    }

    #[test]
    fn beta_factor_k_bounds_k_version_sigma() {
        let m = example();
        for k in 1..5u32 {
            let bound = beta_factor_k(m.p_max(), k).unwrap() * m.std_pfd_single();
            assert!(
                m.std_pfd(k) <= bound + 1e-15,
                "k={k}: sigma_k={} bound={bound}",
                m.std_pfd(k)
            );
        }
    }

    #[test]
    fn lemma4_holds_with_equality_cases() {
        let m = example();
        assert!(m.mean_pfd_pair() <= m.mean_pair_upper_bound() + 1e-18);
        // Equality when all p are identical.
        let u = FaultModel::uniform(5, 0.2, 0.01).unwrap();
        assert!((u.mean_pfd_pair() - u.mean_pair_upper_bound()).abs() < 1e-15);
    }

    #[test]
    fn lemma9_holds() {
        let m = example();
        assert!(m.std_pfd_pair() <= m.std_pair_upper_bound() + 1e-18);
    }

    #[test]
    fn variance_monotone_threshold_is_root() {
        // p²(1−p²) = p(1−p) exactly at the threshold.
        let t = VARIANCE_MONOTONE_THRESHOLD;
        assert!((t * t * (1.0 - t * t) - t * (1.0 - t)).abs() < 1e-14);
        // Below: pair variance summand smaller; above: larger.
        let below = 0.5_f64;
        assert!(below.powi(2) * (1.0 - below.powi(2)) < below * (1.0 - below));
        let above = 0.7_f64;
        assert!(above.powi(2) * (1.0 - above.powi(2)) > above * (1.0 - above));
    }

    #[test]
    fn variance_monotone_condition_detection() {
        assert!(example().variance_monotone_condition_holds());
        let hot = FaultModel::from_params(&[0.7], &[0.1]).unwrap();
        assert!(!hot.variance_monotone_condition_holds());
    }

    #[test]
    fn eq11_dominates_exact_pair_bound() {
        let m = example();
        for k in [0.0, 1.0, 2.33, 3.0] {
            assert!(
                m.normal_bound_pair(k) <= m.pair_bound_from_moments(k) + 1e-15,
                "k={k}"
            );
        }
    }

    #[test]
    fn eq12_dominates_eq11() {
        // Paper: eq (12) is "slightly looser" than eq (11).
        let m = example();
        for k in [0.5, 1.0, 2.33, 3.0] {
            assert!(
                m.pair_bound_from_moments(k) <= m.pair_bound_from_bound(k) + 1e-15,
                "k={k}"
            );
        }
    }

    #[test]
    fn paper_worked_example_section_5_1() {
        // µ1 = 0.01, σ1 = 0.001, 84% confidence (k = 1), p_max = 0.1.
        // Single bound: 0.011. Eq (11): ≈ 0.00133 (paper: "0.001").
        // Eq (12): ≈ 0.00365 (paper: "0.004").
        let k = 1.0_f64;
        let mu1 = 0.01_f64;
        let s1 = 0.001_f64;
        let pm = 0.1_f64;
        let single = mu1 + k * s1;
        assert!((single - 0.011).abs() < 1e-15);
        let eq11 = pm * mu1 + k * beta_factor(pm).unwrap() * s1;
        assert!((eq11 - 0.001_331_662_5).abs() < 1e-8);
        let eq12 = beta_factor(pm).unwrap() * single;
        assert!((eq12 - 0.003_648_287_3).abs() < 1e-8);
        // The paper reports these as 0.001 and 0.004 after rounding.
        assert_eq!(format!("{eq11:.3}"), "0.001");
        assert_eq!(format!("{eq12:.3}"), "0.004");
    }

    #[test]
    fn assessor_form_functions() {
        let b2 = pair_bound_from_single_bound(0.01, 0.01).unwrap();
        assert!((b2 - 0.001_004_987_6).abs() < 1e-9);
        assert!(pair_bound_from_single_bound(-1.0, 0.1).is_err());
        assert!(pair_bound_from_single_bound(0.1, 1.5).is_err());

        let b = pair_bound_from_single_moments(0.01, 0.001, 0.1, 0.99).unwrap();
        // k(0.99) ≈ 2.3263; bound = 0.001 + 2.3263*0.33166*0.001 ≈ 0.0017716
        assert!((b - 0.001_771_6).abs() < 1e-6);
        assert!(pair_bound_from_single_moments(-0.01, 0.001, 0.1, 0.99).is_err());
        assert!(pair_bound_from_single_moments(0.01, 0.001, 0.1, 1.5).is_err());
    }

    proptest! {
        #[test]
        fn lemma4_universal(
            params in proptest::collection::vec((0.0..=1.0f64, 0.0..0.2f64), 1..20)
        ) {
            let (ps, qs): (Vec<f64>, Vec<f64>) = params.iter().copied().unzip();
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            prop_assert!(m.mean_pfd_pair() <= m.mean_pair_upper_bound() + 1e-15);
        }

        #[test]
        fn lemma9_universal(
            params in proptest::collection::vec((0.0..=1.0f64, 0.0..0.2f64), 1..20)
        ) {
            let (ps, qs): (Vec<f64>, Vec<f64>) = params.iter().copied().unzip();
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            prop_assert!(m.std_pfd_pair() <= m.std_pair_upper_bound() + 1e-15);
        }

        #[test]
        fn bound_chain_eq11_eq12(
            params in proptest::collection::vec((0.0..=1.0f64, 0.0..0.2f64), 1..20),
            k in 0.0..4.0f64
        ) {
            let (ps, qs): (Vec<f64>, Vec<f64>) = params.iter().copied().unzip();
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            let exact = m.normal_bound_pair(k);
            let eq11 = m.pair_bound_from_moments(k);
            let eq12 = m.pair_bound_from_bound(k);
            prop_assert!(exact <= eq11 + 1e-12);
            prop_assert!(eq11 <= eq12 + 1e-12);
        }
    }
}
