//! The full PFD distribution and its normal approximation — paper §5.
//!
//! §5 approximates the distribution of `Θ` by a normal with the eq (1)–(3)
//! moments, to make confidence statements `P(Θ ≤ µ+kσ) = α`. The paper
//! concedes it "will not know in practice how good an approximation it is".
//! [`PfdDistribution`] answers that: it carries
//!
//! * the **exact** distribution (subset enumeration or rigorous lattice),
//! * the **normal approximation** with the analytic moments, and
//! * two quality certificates — the a-priori **Berry–Esseen bound** and the
//!   a-posteriori **Kolmogorov–Smirnov distance** between the two.

use crate::error::ModelError;
use crate::fault::FaultModel;
use divrel_numerics::berry_esseen::bernoulli_sum_bound;
use divrel_numerics::ks::sup_distance_to_cdf;
use divrel_numerics::normal::Normal;
use divrel_numerics::weighted_sum::WeightedBernoulliSum;

/// The distribution of the PFD of a `k`-version system under the
/// fault-creation model.
///
/// ```
/// use divrel_model::{distribution::PfdDistribution, FaultModel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(12, 0.2, 0.005)?;
/// let single = PfdDistribution::single(&model)?;
/// let pair = PfdDistribution::pair(&model)?;
///
/// // 99% confidence bounds, exact (no CLT needed):
/// let b1 = single.exact_bound(0.99)?;
/// let b2 = pair.exact_bound(0.99)?;
/// assert!(b2 <= b1);
///
/// // How trustworthy would §5's normal reasoning be here?
/// let cert = single.berry_esseen_bound().unwrap();
/// assert!(cert > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PfdDistribution {
    k: u32,
    /// Shared handle from the process-wide terms-keyed cache: sweeps that
    /// rebuild the distribution of the same model hit the cache instead
    /// of re-deriving the Poisson-binomial convolution, and clones share
    /// the memoised count PMF.
    exact: std::sync::Arc<WeightedBernoulliSum>,
    approx: Option<Normal>,
    berry_esseen: Option<f64>,
}

impl PfdDistribution {
    /// Builds the distribution for a system requiring a common fault across
    /// `k` independently developed versions (`k = 1`: single version;
    /// `k = 2`: the paper's 1-out-of-2 pair).
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] for `k == 0`; numerical construction
    /// errors otherwise.
    pub fn new(model: &FaultModel, k: u32) -> Result<Self, ModelError> {
        Self::from_terms(k, &model.terms(k))
    }

    /// Builds the distribution from explicit `(probability, weight)`
    /// terms — the entry point for *correlated* fault creation
    /// ([`crate::shared::SharedCauseModel`]), whose per-fault common
    /// probabilities are not `pᵢᵏ` but still form an independent
    /// weighted Bernoulli sum.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] for `k == 0`; numerical construction
    /// errors otherwise.
    pub fn from_terms(k: u32, terms: &[(f64, f64)]) -> Result<Self, ModelError> {
        if k == 0 {
            return Err(ModelError::Degenerate(
                "PFD distribution for k = 0 versions",
            ));
        }
        let exact = WeightedBernoulliSum::auto_cached(terms)?;
        let mu: f64 = terms.iter().map(|&(p, q)| p * q).sum();
        let var: f64 = terms.iter().map(|&(p, q)| p * (1.0 - p) * q * q).sum();
        let approx = if var > 0.0 {
            Some(Normal::new(mu, var.sqrt())?)
        } else {
            None
        };
        let berry_esseen = bernoulli_sum_bound(terms).ok();
        Ok(PfdDistribution {
            k,
            exact,
            approx,
            berry_esseen,
        })
    }

    /// Distribution of `Θ₁` (single version).
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn single(model: &FaultModel) -> Result<Self, ModelError> {
        Self::new(model, 1)
    }

    /// Distribution of `Θ₂` (1-out-of-2 pair).
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn pair(model: &FaultModel) -> Result<Self, ModelError> {
        Self::new(model, 2)
    }

    /// Number of versions `k` the distribution refers to.
    pub fn versions(&self) -> u32 {
        self.k
    }

    /// The exact distribution of the PFD.
    pub fn exact(&self) -> &WeightedBernoulliSum {
        &self.exact
    }

    /// The §5 normal approximation, if defined (`None` when the PFD has
    /// zero variance, e.g. every `pᵢ ∈ {0, 1}`).
    pub fn normal_approximation(&self) -> Option<Normal> {
        self.approx
    }

    /// A-priori Berry–Esseen certificate: an upper bound on the sup-norm
    /// distance between the standardised exact law and the standard
    /// normal. `None` when the PFD is deterministic.
    pub fn berry_esseen_bound(&self) -> Option<f64> {
        self.berry_esseen
    }

    /// A-posteriori quality: the actual sup-distance between the exact CDF
    /// and the normal approximation's CDF. `None` when there is no
    /// approximation.
    pub fn ks_distance_to_normal(&self) -> Option<f64> {
        self.approx
            .map(|n| sup_distance_to_cdf(&self.exact, |x| n.cdf(x)))
    }

    /// Exact one-sided confidence bound: the smallest PFD value `b` with
    /// `P(Θ ≤ b) ≥ confidence`. No normal approximation involved.
    ///
    /// # Errors
    ///
    /// Numerical domain errors for `confidence ∉ (0, 1]`.
    pub fn exact_bound(&self, confidence: f64) -> Result<f64, ModelError> {
        Ok(self.exact.quantile(confidence)?)
    }

    /// §5 bound under the normal approximation: `µ + kσ` with
    /// `k = Φ⁻¹(confidence)`.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] when no approximation exists; numerical
    /// errors for `confidence ∉ (0, 1)`.
    pub fn normal_bound(&self, confidence: f64) -> Result<f64, ModelError> {
        let n = self.approx.ok_or(ModelError::Degenerate(
            "normal approximation undefined for zero-variance PFD",
        ))?;
        Ok(n.quantile(confidence)?)
    }

    /// `P(Θ ≤ x)` under the exact law.
    pub fn cdf(&self, x: f64) -> f64 {
        self.exact.cdf(x)
    }

    /// `P(Θ = 0)` — the probability of a fault-free (or common-fault-free)
    /// system; connects §5 back to §4.
    pub fn prob_zero_pfd(&self) -> f64 {
        self.exact.mass_at_zero()
    }

    /// The exact distribution of the number of (common) faults `N_k`:
    /// entry `j` is `P(N = j)` — §4's counting view of the same model.
    /// Served from the memoised Poisson-binomial table of the underlying
    /// weighted sum, so repeated queries cost a slice borrow, not an
    /// `O(n²)` convolution per call.
    pub fn fault_count_pmf(&self) -> &[f64] {
        self.exact.count_pmf()
    }

    /// `P(N > 0)` — §4's risk of at least one (common) fault, from the
    /// memoised fault-count table.
    pub fn risk_any_fault(&self) -> f64 {
        self.exact.prob_any_present()
    }

    /// Mean of the exact distribution (equals eq (1) up to lattice error).
    pub fn mean(&self) -> f64 {
        self.exact.mean()
    }

    /// Standard deviation of the exact distribution (equals eq (2)–(3) up
    /// to lattice error).
    pub fn std_dev(&self) -> f64 {
        self.exact.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel::from_params(
            &[0.3, 0.2, 0.15, 0.1, 0.25, 0.05],
            &[0.004, 0.01, 0.002, 0.02, 0.006, 0.03],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = PfdDistribution::pair(&model()).unwrap();
        assert_eq!(d.versions(), 2);
        assert!(d.normal_approximation().is_some());
        assert!(d.berry_esseen_bound().is_some());
        assert!(PfdDistribution::new(&model(), 0).is_err());
    }

    #[test]
    fn exact_moments_match_analytic() {
        let m = model();
        let d1 = PfdDistribution::single(&m).unwrap();
        assert!((d1.mean() - m.mean_pfd_single()).abs() < 1e-14);
        assert!((d1.std_dev() - m.std_pfd_single()).abs() < 1e-14);
        let d2 = PfdDistribution::pair(&m).unwrap();
        assert!((d2.mean() - m.mean_pfd_pair()).abs() < 1e-14);
        assert!((d2.std_dev() - m.std_pfd_pair()).abs() < 1e-14);
    }

    #[test]
    fn prob_zero_matches_fault_free_section4() {
        let m = model();
        let d1 = PfdDistribution::single(&m).unwrap();
        assert!((d1.prob_zero_pfd() - m.prob_fault_free_single()).abs() < 1e-13);
        let d2 = PfdDistribution::pair(&m).unwrap();
        assert!((d2.prob_zero_pfd() - m.prob_fault_free_pair()).abs() < 1e-13);
    }

    #[test]
    fn fault_count_pmf_matches_section4_quantities() {
        let m = model();
        let d1 = PfdDistribution::single(&m).unwrap();
        // P(N = 0) is §4's fault-free probability; P(N > 0) its risk.
        assert!((d1.fault_count_pmf()[0] - m.prob_fault_free_single()).abs() < 1e-13);
        assert!((d1.risk_any_fault() - (1.0 - m.prob_fault_free_single())).abs() < 1e-13);
        let d2 = PfdDistribution::pair(&m).unwrap();
        assert!((d2.fault_count_pmf()[0] - m.prob_fault_free_pair()).abs() < 1e-13);
        // The table is memoised: repeated queries return the same slice.
        assert!(std::ptr::eq(d2.fault_count_pmf(), d2.fault_count_pmf()));
        assert!((d2.fault_count_pmf().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rebuilding_the_same_distribution_hits_the_cache() {
        let m = FaultModel::from_params(
            &[0.313, 0.207, 0.159, 0.101],
            &[0.0043, 0.0101, 0.0023, 0.0207],
        )
        .unwrap();
        let a = PfdDistribution::pair(&m).unwrap();
        let b = PfdDistribution::pair(&m).unwrap();
        // Same terms => same shared exact distribution, bitwise.
        assert!(std::ptr::eq(a.exact(), b.exact()));
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
    }

    #[test]
    fn exact_bounds_are_monotone_in_confidence() {
        let d = PfdDistribution::single(&model()).unwrap();
        let mut prev = 0.0;
        for c in [0.5, 0.9, 0.99, 0.999] {
            let b = d.exact_bound(c).unwrap();
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn pair_bound_not_worse_than_single() {
        let m = model();
        let d1 = PfdDistribution::single(&m).unwrap();
        let d2 = PfdDistribution::pair(&m).unwrap();
        for c in [0.9, 0.99, 0.999] {
            assert!(d2.exact_bound(c).unwrap() <= d1.exact_bound(c).unwrap());
        }
    }

    #[test]
    fn ks_distance_dominated_by_berry_esseen() {
        let d = PfdDistribution::single(&model()).unwrap();
        let ks = d.ks_distance_to_normal().unwrap();
        let be = d.berry_esseen_bound().unwrap();
        assert!(ks <= be + 1e-12, "KS {ks} exceeds BE certificate {be}");
    }

    #[test]
    fn zero_variance_model_has_no_approximation() {
        let m = FaultModel::from_params(&[1.0, 0.0], &[0.01, 0.02]).unwrap();
        let d = PfdDistribution::single(&m).unwrap();
        assert!(d.normal_approximation().is_none());
        assert!(d.berry_esseen_bound().is_none());
        assert!(d.ks_distance_to_normal().is_none());
        assert!(d.normal_bound(0.99).is_err());
        // Exact bound still works: the PFD is deterministically 0.01.
        assert!((d.exact_bound(0.99).unwrap() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn normal_bound_approaches_exact_for_many_faults() {
        // 18 identical moderate faults: CLT is decent; bounds should agree
        // within a few lattice/CLT epsilons.
        let m = FaultModel::uniform(18, 0.4, 0.01).unwrap();
        let d = PfdDistribution::single(&m).unwrap();
        let e = d.exact_bound(0.99).unwrap();
        let n = d.normal_bound(0.99).unwrap();
        assert!(
            (e - n).abs() / e < 0.15,
            "exact {e} vs normal {n}: CLT too far off"
        );
    }

    #[test]
    fn large_model_uses_lattice_and_stays_consistent() {
        let m = FaultModel::uniform(200, 0.1, 0.001).unwrap();
        let d = PfdDistribution::pair(&m).unwrap();
        // Lattice mean within rigorous error bound of analytic mean.
        let err = d.exact().value_error_bound();
        assert!((d.mean() - m.mean_pfd_pair()).abs() <= err + 1e-12);
        assert!(d.cdf(1.0) > 0.999_999);
    }
}
