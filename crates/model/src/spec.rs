//! Declarative fault-model specifications.
//!
//! Every experiment variant in this repository used to be a hand-coded
//! Rust module; the scenario layer turns the variants into **data**. This
//! module holds the model-side spec types: serialisable descriptions of
//! a fault-creation model ([`FaultModelSpec`]) and of a forced-diversity
//! ensemble ([`ForcedEnsembleSpec`]) that `build()` into the validated
//! analytic types. Specs carry *parameters*, not derived state —
//! validation happens at build time through the same constructors the
//! hand-written experiments call, so a spec-built model is exactly the
//! model the registry entry would have produced.
//!
//! ```
//! use divrel_model::spec::FaultModelSpec;
//! let spec = FaultModelSpec::Uniform { n: 5, p: 0.2, q: 0.01 };
//! let model = spec.build()?;
//! assert_eq!(model.len(), 5);
//! // The spec is a value: serialise it, ship it, rebuild it elsewhere.
//! let json = serde_json::to_string(&spec)?;
//! let back: FaultModelSpec = serde_json::from_str(&json)?;
//! assert_eq!(back, spec);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::ModelError;
use crate::fault::FaultModel;
use crate::forced::ForcedDiversityModel;
use crate::shared::SharedCauseModel;
use serde::{Deserialize, Serialize};

/// A serialisable description of a [`FaultModel`]: one variant per
/// constructor family the experiments use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultModelSpec {
    /// Explicit per-fault parameters: `ps[i]` is the introduction
    /// probability and `qs[i]` the failure-region size of fault `i`
    /// ([`FaultModel::from_params`]). This is the general form — any
    /// difficulty profile, symmetric or not, is a pair of lists.
    Params {
        /// Introduction probability per potential fault.
        ps: Vec<f64>,
        /// Failure-region size (demand-space measure) per fault.
        qs: Vec<f64>,
    },
    /// `n` identical faults ([`FaultModel::uniform`]).
    Uniform {
        /// Number of potential faults.
        n: usize,
        /// Shared introduction probability.
        p: f64,
        /// Shared failure-region size.
        q: f64,
    },
    /// Geometrically decaying parameters ([`FaultModel::geometric`]).
    Geometric {
        /// Number of potential faults.
        n: usize,
        /// First fault's introduction probability.
        p0: f64,
        /// Ratio between consecutive introduction probabilities.
        p_ratio: f64,
        /// First fault's failure-region size.
        q0: f64,
        /// Ratio between consecutive failure-region sizes.
        q_ratio: f64,
    },
    /// A shared-cause (β-factor) layer over a base model
    /// ([`SharedCauseModel`]): with probability `β·pᵢ` a common cause
    /// plants fault `i` in every version at once; the residual
    /// per-version probability is chosen so each version's *marginal*
    /// fault profile is exactly the base model's. `beta = 0` is the
    /// base model itself.
    SharedCause {
        /// Shared-cause fraction `β ∈ [0, 1]`.
        beta: f64,
        /// The base (marginal) fault-creation model. Nesting a
        /// `SharedCause` inside another is rejected at build time.
        base: Box<FaultModelSpec>,
    },
    /// Few-large / many-small bimodal structure ([`FaultModel::bimodal`]).
    Bimodal {
        /// Number of large faults.
        n_large: usize,
        /// Introduction probability of the large faults.
        p_large: f64,
        /// Failure-region size of the large faults.
        q_large: f64,
        /// Number of small faults.
        n_small: usize,
        /// Introduction probability of the small faults.
        p_small: f64,
        /// Failure-region size of the small faults.
        q_small: f64,
    },
}

impl FaultModelSpec {
    /// Builds the **marginal** model through the constructor the variant
    /// names. For [`FaultModelSpec::SharedCause`] this is the base
    /// model — the per-version fault profile, which the β layer
    /// preserves by construction. Correlation-aware consumers use
    /// [`Self::build_shared`] instead.
    ///
    /// # Errors
    ///
    /// Exactly the constructor's validation errors — a spec cannot build
    /// a model the hand-written path would have rejected. A nested
    /// `SharedCause` or `beta ∉ [0, 1]` is rejected here too, so a spec
    /// that marginal-builds also shared-builds.
    pub fn build(&self) -> Result<FaultModel, ModelError> {
        match self {
            FaultModelSpec::Params { ps, qs } => FaultModel::from_params(ps, qs),
            FaultModelSpec::Uniform { n, p, q } => FaultModel::uniform(*n, *p, *q),
            FaultModelSpec::Geometric {
                n,
                p0,
                p_ratio,
                q0,
                q_ratio,
            } => FaultModel::geometric(*n, *p0, *p_ratio, *q0, *q_ratio),
            FaultModelSpec::Bimodal {
                n_large,
                p_large,
                q_large,
                n_small,
                p_small,
                q_small,
            } => FaultModel::bimodal(*n_large, *p_large, *q_large, *n_small, *p_small, *q_small),
            FaultModelSpec::SharedCause { beta, base } => {
                if matches!(**base, FaultModelSpec::SharedCause { .. }) {
                    return Err(ModelError::Degenerate(
                        "nested SharedCause layers (compose the betas instead)",
                    ));
                }
                // Validate beta even on the marginal path, so build()
                // succeeding guarantees build_shared() succeeds.
                SharedCauseModel::new(base.build()?, *beta).map(|s| s.base().clone())
            }
        }
    }

    /// Builds the spec as a [`SharedCauseModel`]: the declared β layer
    /// for [`FaultModelSpec::SharedCause`], and a transparent `β = 0`
    /// wrapper (exactly the independent model) for every other variant —
    /// so correlation-aware consumers can treat all specs uniformly.
    ///
    /// # Errors
    ///
    /// See [`Self::build`].
    pub fn build_shared(&self) -> Result<SharedCauseModel, ModelError> {
        match self {
            FaultModelSpec::SharedCause { beta, base } => {
                if matches!(**base, FaultModelSpec::SharedCause { .. }) {
                    return Err(ModelError::Degenerate(
                        "nested SharedCause layers (compose the betas instead)",
                    ));
                }
                SharedCauseModel::new(base.build()?, *beta)
            }
            other => SharedCauseModel::new(other.build()?, 0.0),
        }
    }

    /// The shared-cause fraction the spec declares: `β` for
    /// [`FaultModelSpec::SharedCause`], `0` otherwise.
    pub fn shared_beta(&self) -> f64 {
        match self {
            FaultModelSpec::SharedCause { beta, .. } => *beta,
            _ => 0.0,
        }
    }

    /// The explicit-parameter spec of an existing model (always the
    /// `Params` form: the generating family is not recoverable from the
    /// built model, but the parameters are).
    pub fn from_model(model: &FaultModel) -> Self {
        FaultModelSpec::Params {
            ps: model.p_values().collect(),
            qs: model.q_values().collect(),
        }
    }
}

/// A serialisable description of a two-process forced-diversity ensemble
/// ([`ForcedDiversityModel::from_params`]): process A introduces fault
/// `i` with `pa[i]`, process B with `pb[i]`, over shared failure regions
/// `qs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForcedEnsembleSpec {
    /// Introduction probabilities under process A.
    pub pa: Vec<f64>,
    /// Introduction probabilities under process B.
    pub pb: Vec<f64>,
    /// Shared failure-region sizes.
    pub qs: Vec<f64>,
}

impl ForcedEnsembleSpec {
    /// Builds the forced ensemble.
    ///
    /// # Errors
    ///
    /// The [`ForcedDiversityModel::from_params`] validation errors.
    pub fn build(&self) -> Result<ForcedDiversityModel, ModelError> {
        ForcedDiversityModel::from_params(&self.pa, &self.pb, &self.qs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_builds_the_named_constructor() {
        let spec = FaultModelSpec::Params {
            ps: vec![0.3, 0.1],
            qs: vec![0.01, 0.02],
        };
        assert_eq!(
            spec.build().unwrap(),
            FaultModel::from_params(&[0.3, 0.1], &[0.01, 0.02]).unwrap()
        );
        assert_eq!(
            FaultModelSpec::Uniform {
                n: 4,
                p: 0.2,
                q: 0.05
            }
            .build()
            .unwrap(),
            FaultModel::uniform(4, 0.2, 0.05).unwrap()
        );
        assert_eq!(
            FaultModelSpec::Geometric {
                n: 6,
                p0: 0.3,
                p_ratio: 0.8,
                q0: 0.02,
                q_ratio: 0.9
            }
            .build()
            .unwrap(),
            FaultModel::geometric(6, 0.3, 0.8, 0.02, 0.9).unwrap()
        );
        assert_eq!(
            FaultModelSpec::Bimodal {
                n_large: 2,
                p_large: 0.3,
                q_large: 0.05,
                n_small: 5,
                p_small: 0.05,
                q_small: 0.001
            }
            .build()
            .unwrap(),
            FaultModel::bimodal(2, 0.3, 0.05, 5, 0.05, 0.001).unwrap()
        );
    }

    #[test]
    fn invalid_specs_fail_at_build_not_parse() {
        let spec: FaultModelSpec =
            serde_json::from_str(r#"{"Uniform": {"n": 3, "p": 1.5, "q": 0.1}}"#).unwrap();
        assert!(spec.build().is_err());
    }

    #[test]
    fn round_trips_through_json() {
        let specs = [
            FaultModelSpec::Params {
                ps: vec![0.35, 0.25],
                qs: vec![0.0008, 0.0025],
            },
            FaultModelSpec::Uniform {
                n: 3,
                p: 0.1,
                q: 0.01,
            },
            FaultModelSpec::Geometric {
                n: 18,
                p0: 0.3,
                p_ratio: 0.82,
                q0: 0.02,
                q_ratio: 0.85,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: FaultModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn shared_cause_builds_marginal_and_correlated_forms() {
        let spec = FaultModelSpec::SharedCause {
            beta: 0.3,
            base: Box::new(FaultModelSpec::Uniform {
                n: 4,
                p: 0.2,
                q: 0.05,
            }),
        };
        // Marginal build is the base model.
        let marginal = spec.build().unwrap();
        assert_eq!(marginal, FaultModel::uniform(4, 0.2, 0.05).unwrap());
        // Correlated build carries the beta.
        let shared = spec.build_shared().unwrap();
        assert_eq!(shared.beta(), 0.3);
        assert_eq!(shared.base(), &marginal);
        assert_eq!(spec.shared_beta(), 0.3);
        // Non-SharedCause specs build a transparent beta-0 wrapper.
        let plain = FaultModelSpec::Uniform {
            n: 4,
            p: 0.2,
            q: 0.05,
        };
        assert_eq!(plain.build_shared().unwrap().beta(), 0.0);
        assert_eq!(plain.shared_beta(), 0.0);
    }

    #[test]
    fn shared_cause_rejects_bad_beta_and_nesting() {
        let base = Box::new(FaultModelSpec::Uniform {
            n: 2,
            p: 0.1,
            q: 0.01,
        });
        let bad_beta = FaultModelSpec::SharedCause {
            beta: 1.5,
            base: base.clone(),
        };
        assert!(bad_beta.build().is_err());
        assert!(bad_beta.build_shared().is_err());
        let nested = FaultModelSpec::SharedCause {
            beta: 0.1,
            base: Box::new(FaultModelSpec::SharedCause { beta: 0.1, base }),
        };
        assert!(nested.build().is_err());
        assert!(nested.build_shared().is_err());
    }

    #[test]
    fn shared_cause_round_trips_through_json() {
        let spec = FaultModelSpec::SharedCause {
            beta: 0.25,
            base: Box::new(FaultModelSpec::Geometric {
                n: 6,
                p0: 0.3,
                p_ratio: 0.8,
                q0: 0.02,
                q_ratio: 0.9,
            }),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn from_model_reproduces_parameters() {
        let model = FaultModel::geometric(5, 0.3, 0.8, 0.02, 0.9).unwrap();
        let spec = FaultModelSpec::from_model(&model);
        assert_eq!(spec.build().unwrap(), model);
    }

    #[test]
    fn forced_ensemble_builds_and_round_trips() {
        let spec = ForcedEnsembleSpec {
            pa: vec![0.5, 0.3],
            pb: vec![0.3, 0.5],
            qs: vec![0.01, 0.02],
        };
        let built = spec.build().unwrap();
        assert_eq!(
            built,
            ForcedDiversityModel::from_params(&[0.5, 0.3], &[0.3, 0.5], &[0.01, 0.02]).unwrap()
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: ForcedEnsembleSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
