//! Error type for the model crate.

use divrel_numerics::NumericsError;
use std::fmt;

/// Errors produced when constructing or analysing fault models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A value that must be a probability was outside `[0, 1]`.
    InvalidProbability(f64),
    /// A fault model must contain at least one potential fault.
    EmptyModel,
    /// The sum of failure-region probabilities exceeded 1 while the builder
    /// was asked to enforce the paper's non-overlap budget (§6.2 notes
    /// `Σqᵢ ≤ 1` is implied by non-overlapping regions).
    QBudgetExceeded {
        /// The offending total `Σ qᵢ`.
        total: f64,
    },
    /// The requested quantity is undefined for this model (e.g. a risk
    /// ratio when every `pᵢ` is zero).
    Degenerate(&'static str),
    /// An underlying numerical routine failed.
    Numerics(NumericsError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProbability(p) => {
                write!(f, "probability must lie in [0, 1], got {p}")
            }
            ModelError::EmptyModel => write!(f, "fault model must contain at least one fault"),
            ModelError::QBudgetExceeded { total } => write!(
                f,
                "failure-region probabilities sum to {total} > 1, violating the non-overlap budget"
            ),
            ModelError::Degenerate(what) => write!(f, "undefined for this model: {what}"),
            ModelError::Numerics(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for ModelError {
    fn from(e: NumericsError) -> Self {
        ModelError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ModelError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
        assert!(ModelError::EmptyModel.to_string().contains("at least one"));
        assert!(ModelError::QBudgetExceeded { total: 1.2 }
            .to_string()
            .contains("1.2"));
        assert!(ModelError::Degenerate("risk ratio")
            .to_string()
            .contains("risk ratio"));
        let inner = NumericsError::EmptyData("x");
        assert!(ModelError::from(inner).to_string().contains("numerical"));
    }

    #[test]
    fn source_chains_numerics_errors() {
        use std::error::Error;
        let e = ModelError::Numerics(NumericsError::EmptyData("x"));
        assert!(e.source().is_some());
        assert!(ModelError::EmptyModel.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_bounds<E: std::error::Error + Send + Sync>() {}
        assert_bounds::<ModelError>();
    }
}
