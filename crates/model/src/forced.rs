//! Forced diversity — the paper's declared extension (§1, §7).
//!
//! The paper analyses *non-forced* diversity (both versions developed by
//! the same kind of process) "as a worst-case analysis for the many real
//! systems in which 'forced' and 'functional' diversity are used", and
//! lists "further study of the cases of 'forced' … diversity" as a
//! desirable extension. This module supplies it within the same
//! fault-creation framework:
//!
//! Two **different** development processes A and B (different methods,
//! notations, tools) give fault `i` *different* survival probabilities
//! `pᵢᴬ` and `pᵢᴮ`. Separate development still means independent
//! sampling, so fault `i` is common to the pair with probability
//! `pᵢᴬ·pᵢᴮ`, and every §3–§4 quantity generalises by substituting that
//! product for `pᵢ²`.
//!
//! The headline theorem (`forced_beats_unforced_*` tests): by AM–GM,
//! `pᵢᴬpᵢᴮ ≤ ((pᵢᴬ+pᵢᴮ)/2)²` — a forced-diverse pair is **never worse**
//! (in mean PFD and in common-fault risk) than an unforced pair built
//! from two copies of the *averaged* process, with equality only when
//! the processes do not actually differ. This makes precise the paper's
//! intuition that its results are a worst case for forced diversity.

use crate::error::ModelError;
use crate::fault::FaultModel;
use crate::probability::Probability;
use divrel_numerics::special::{prob_any, prob_none};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One potential fault under two different development processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForcedFault {
    p_a: Probability,
    p_b: Probability,
    q: Probability,
}

impl ForcedFault {
    /// Creates a fault with per-process survival probabilities and a
    /// failure-region probability.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] for out-of-range parameters.
    pub fn new(p_a: f64, p_b: f64, q: f64) -> Result<Self, ModelError> {
        Ok(ForcedFault {
            p_a: Probability::new(p_a)?,
            p_b: Probability::new(p_b)?,
            q: Probability::new(q)?,
        })
    }

    /// Survival probability under process A.
    pub fn p_a(&self) -> f64 {
        self.p_a.value()
    }

    /// Survival probability under process B.
    pub fn p_b(&self) -> f64 {
        self.p_b.value()
    }

    /// Failure-region probability.
    pub fn q(&self) -> f64 {
        self.q.value()
    }

    /// Probability the fault is common to an (A, B) pair: `pᴬ·pᴮ`.
    pub fn p_common(&self) -> f64 {
        self.p_a.value() * self.p_b.value()
    }
}

/// A fault model for a pair developed by two different processes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForcedDiversityModel {
    faults: Vec<ForcedFault>,
}

impl ForcedDiversityModel {
    /// Creates a model from a non-empty fault list.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] for empty input.
    pub fn new(faults: Vec<ForcedFault>) -> Result<Self, ModelError> {
        if faults.is_empty() {
            return Err(ModelError::EmptyModel);
        }
        Ok(ForcedDiversityModel { faults })
    }

    /// Creates a model from parallel parameter slices.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] on length mismatch;
    /// [`ModelError::InvalidProbability`] on bad values;
    /// [`ModelError::EmptyModel`] on empty input.
    pub fn from_params(pa: &[f64], pb: &[f64], qs: &[f64]) -> Result<Self, ModelError> {
        if pa.len() != pb.len() || pa.len() != qs.len() {
            return Err(ModelError::Degenerate("parameter slices differ in length"));
        }
        let faults = pa
            .iter()
            .zip(pb)
            .zip(qs)
            .map(|((&a, &b), &q)| ForcedFault::new(a, b, q))
            .collect::<Result<Vec<_>, _>>()?;
        ForcedDiversityModel::new(faults)
    }

    /// Builds the non-forced (same-process) model of the paper from a
    /// single process: `pᴬ = pᴮ = p`.
    pub fn unforced(model: &FaultModel) -> Self {
        ForcedDiversityModel {
            faults: model
                .faults()
                .iter()
                .map(|f| ForcedFault {
                    p_a: Probability::new_clamped(f.p()).expect("validated"),
                    p_b: Probability::new_clamped(f.p()).expect("validated"),
                    q: Probability::new_clamped(f.q()).expect("validated"),
                })
                .collect(),
        }
    }

    /// The faults.
    pub fn faults(&self) -> &[ForcedFault] {
        &self.faults
    }

    /// Number of potential faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the model is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Process A alone, as a standard [`FaultModel`].
    ///
    /// # Errors
    ///
    /// Cannot fail for a constructed model; signature mirrors validation.
    pub fn process_a(&self) -> Result<FaultModel, ModelError> {
        FaultModel::from_params(
            &self.faults.iter().map(ForcedFault::p_a).collect::<Vec<_>>(),
            &self.faults.iter().map(ForcedFault::q).collect::<Vec<_>>(),
        )
    }

    /// Process B alone, as a standard [`FaultModel`].
    ///
    /// # Errors
    ///
    /// Cannot fail for a constructed model; signature mirrors validation.
    pub fn process_b(&self) -> Result<FaultModel, ModelError> {
        FaultModel::from_params(
            &self.faults.iter().map(ForcedFault::p_b).collect::<Vec<_>>(),
            &self.faults.iter().map(ForcedFault::q).collect::<Vec<_>>(),
        )
    }

    /// The *averaged* unforced reference: a single process with
    /// `p = (pᴬ+pᴮ)/2` per fault — what you would get by blending the two
    /// methodologies into one shop and developing both versions with it.
    ///
    /// # Errors
    ///
    /// Cannot fail for a constructed model; signature mirrors validation.
    pub fn averaged_process(&self) -> Result<FaultModel, ModelError> {
        FaultModel::from_params(
            &self
                .faults
                .iter()
                .map(|f| (f.p_a() + f.p_b()) / 2.0)
                .collect::<Vec<_>>(),
            &self.faults.iter().map(ForcedFault::q).collect::<Vec<_>>(),
        )
    }

    /// Mean PFD of the forced-diverse pair: `Σ pᵢᴬpᵢᴮ qᵢ` (eq 1
    /// generalised).
    pub fn mean_pfd_pair(&self) -> f64 {
        self.faults.iter().map(|f| f.p_common() * f.q()).sum()
    }

    /// PFD variance of the pair: `Σ pᵢᴬpᵢᴮ(1−pᵢᴬpᵢᴮ) qᵢ²`.
    pub fn var_pfd_pair(&self) -> f64 {
        self.faults
            .iter()
            .map(|f| {
                let pc = f.p_common();
                pc * (1.0 - pc) * f.q() * f.q()
            })
            .sum()
    }

    /// Probability the pair shares no fault: `Π(1 − pᵢᴬpᵢᴮ)` (§4
    /// generalised).
    pub fn prob_no_common_fault(&self) -> f64 {
        prob_none(self.faults.iter().map(ForcedFault::p_common)).expect("validated probabilities")
    }

    /// Risk of at least one common fault.
    pub fn risk_common_fault(&self) -> f64 {
        prob_any(self.faults.iter().map(ForcedFault::p_common)).expect("validated probabilities")
    }

    /// Eq (10) generalised: `P(common fault) / P(process-A version has a
    /// fault)` — the gain over fielding a single version from the better
    /// understood process A.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] if process A is fault-free with
    /// certainty.
    pub fn risk_ratio_vs_a(&self) -> Result<f64, ModelError> {
        let denom = self.process_a()?.risk_any_fault_single();
        if denom == 0.0 {
            return Err(ModelError::Degenerate(
                "risk ratio undefined when process A cannot introduce faults",
            ));
        }
        Ok(self.risk_common_fault() / denom)
    }
}

impl fmt::Display for ForcedDiversityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ForcedDiversityModel(n={}, E[PFD pair]={:.3e})",
            self.len(),
            self.mean_pfd_pair()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example() -> ForcedDiversityModel {
        ForcedDiversityModel::from_params(
            &[0.30, 0.05, 0.20],
            &[0.10, 0.25, 0.20],
            &[0.01, 0.02, 0.005],
        )
        .expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert!(ForcedDiversityModel::new(vec![]).is_err());
        assert!(ForcedDiversityModel::from_params(&[0.1], &[0.1, 0.2], &[0.01]).is_err());
        assert!(ForcedDiversityModel::from_params(&[1.5], &[0.1], &[0.01]).is_err());
        assert_eq!(example().len(), 3);
        assert!(!example().is_empty());
    }

    #[test]
    fn generalised_moments() {
        let m = example();
        let want: f64 = 0.30 * 0.10 * 0.01 + 0.05 * 0.25 * 0.02 + 0.20 * 0.20 * 0.005;
        assert!((m.mean_pfd_pair() - want).abs() < 1e-15);
        let want_var: f64 = [0.03_f64, 0.0125, 0.04]
            .iter()
            .zip([0.01_f64, 0.02, 0.005])
            .map(|(&pc, q)| pc * (1.0 - pc) * q * q)
            .sum();
        assert!((m.var_pfd_pair() - want_var).abs() < 1e-16);
    }

    #[test]
    fn unforced_reduces_to_paper_model() {
        let base = FaultModel::from_params(&[0.2, 0.1], &[0.01, 0.02]).expect("valid");
        let forced = ForcedDiversityModel::unforced(&base);
        assert!((forced.mean_pfd_pair() - base.mean_pfd_pair()).abs() < 1e-15);
        assert!((forced.prob_no_common_fault() - base.prob_fault_free_pair()).abs() < 1e-15);
        assert!(
            (forced.risk_ratio_vs_a().expect("ok") - base.risk_ratio().expect("ok")).abs() < 1e-15
        );
    }

    #[test]
    fn process_projections() {
        let m = example();
        let a = m.process_a().expect("ok");
        let b = m.process_b().expect("ok");
        assert!((a.p_max() - 0.30).abs() < 1e-15);
        assert!((b.p_max() - 0.25).abs() < 1e-15);
        let avg = m.averaged_process().expect("ok");
        assert!((avg.faults()[0].p() - 0.20).abs() < 1e-15);
        assert!((avg.faults()[1].p() - 0.15).abs() < 1e-15);
    }

    #[test]
    fn forced_beats_unforced_mean_pfd() {
        // AM-GM per fault: pA·pB ≤ ((pA+pB)/2)².
        let m = example();
        let unforced_avg = m.averaged_process().expect("ok");
        assert!(m.mean_pfd_pair() <= unforced_avg.mean_pfd_pair() + 1e-15);
        // Strict when processes differ on some fault with q > 0.
        assert!(m.mean_pfd_pair() < unforced_avg.mean_pfd_pair());
        // Equality when they do not differ.
        let same = ForcedDiversityModel::from_params(&[0.2], &[0.2], &[0.01]).expect("ok");
        assert!(
            (same.mean_pfd_pair() - same.averaged_process().expect("ok").mean_pfd_pair()).abs()
                < 1e-15
        );
    }

    #[test]
    fn forced_beats_unforced_common_fault_risk() {
        let m = example();
        let unforced_avg = m.averaged_process().expect("ok");
        assert!(m.risk_common_fault() <= unforced_avg.risk_any_fault_pair() + 1e-15);
        assert!(m.prob_no_common_fault() + 1e-15 >= unforced_avg.prob_fault_free_pair());
    }

    #[test]
    fn degenerate_risk_ratio() {
        let m = ForcedDiversityModel::from_params(&[0.0], &[0.5], &[0.1]).expect("ok");
        assert!(m.risk_ratio_vs_a().is_err());
        assert_eq!(m.risk_common_fault(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert!(example().to_string().contains("n=3"));
    }

    proptest! {
        #[test]
        fn am_gm_theorem_universal(
            params in proptest::collection::vec(
                (0.0..=1.0f64, 0.0..=1.0f64, 0.0..0.1f64), 1..10
            )
        ) {
            let (pa, rest): (Vec<f64>, Vec<(f64, f64)>) =
                params.iter().map(|&(a, b, q)| (a, (b, q))).unzip();
            let (pb, qs): (Vec<f64>, Vec<f64>) = rest.into_iter().unzip();
            let forced = ForcedDiversityModel::from_params(&pa, &pb, &qs).expect("valid");
            let avg = forced.averaged_process().expect("valid");
            prop_assert!(forced.mean_pfd_pair() <= avg.mean_pfd_pair() + 1e-12);
            prop_assert!(forced.risk_common_fault() <= avg.risk_any_fault_pair() + 1e-12);
        }

        #[test]
        fn pair_never_riskier_than_either_process(
            params in proptest::collection::vec(
                (0.0..=1.0f64, 0.0..=1.0f64, 0.0..0.1f64), 1..10
            )
        ) {
            let (pa, rest): (Vec<f64>, Vec<(f64, f64)>) =
                params.iter().map(|&(a, b, q)| (a, (b, q))).unzip();
            let (pb, qs): (Vec<f64>, Vec<f64>) = rest.into_iter().unzip();
            let m = ForcedDiversityModel::from_params(&pa, &pb, &qs).expect("valid");
            let a = m.process_a().expect("valid");
            let b = m.process_b().expect("valid");
            prop_assert!(m.mean_pfd_pair() <= a.mean_pfd_single() + 1e-12);
            prop_assert!(m.mean_pfd_pair() <= b.mean_pfd_single() + 1e-12);
            prop_assert!(m.risk_common_fault() <= a.risk_any_fault_single() + 1e-12);
            prop_assert!(m.risk_common_fault() <= b.risk_any_fault_single() + 1e-12);
        }
    }
}
