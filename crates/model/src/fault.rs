//! Potential faults and fault models (paper §2.2).
//!
//! A [`PotentialFault`] is one of the mistakes "the whole development
//! process" may make: it carries the probability `p` of surviving into a
//! delivered version and the probability `q` that an operational demand
//! lands in its failure region. A [`FaultModel`] is the fixed universe
//! `{F₁ … Fₙ}` of such faults for one application.

use crate::error::ModelError;
use crate::probability::Probability;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One potential fault `Fᵢ`: a (mistake → failure region) pair.
///
/// * `p` — probability that the mistake is made *and* survives inspection,
///   testing and debugging into the delivered version (§2.2: a mistake "of
///   the whole development process").
/// * `q` — probability that a demand drawn from the operational profile
///   falls in the fault's failure region (its contribution to the PFD).
///
/// ```
/// use divrel_model::PotentialFault;
/// let f = PotentialFault::new(0.1, 1e-4)?;
/// assert_eq!(f.p(), 0.1);
/// assert_eq!(f.q(), 1e-4);
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PotentialFault {
    p: Probability,
    q: Probability,
}

impl PotentialFault {
    /// Creates a potential fault from raw probabilities.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if either argument lies outside
    /// `[0, 1]`.
    pub fn new(p: f64, q: f64) -> Result<Self, ModelError> {
        Ok(PotentialFault {
            p: Probability::new(p)?,
            q: Probability::new(q)?,
        })
    }

    /// Creates a potential fault from validated probabilities.
    pub fn from_probabilities(p: Probability, q: Probability) -> Self {
        PotentialFault { p, q }
    }

    /// Probability the fault is present in a randomly developed version.
    pub fn p(&self) -> f64 {
        self.p.value()
    }

    /// Probability a random demand hits the fault's failure region.
    pub fn q(&self) -> f64 {
        self.q.value()
    }

    /// Probability the fault is common to all of `k` independently
    /// developed versions: `p^k`.
    pub fn p_common(&self, k: u32) -> f64 {
        self.p.powi(k).value()
    }

    /// This fault's contribution to the mean PFD of a `k`-version system:
    /// `p^k · q` (eq 1 with `k = 1, 2`).
    pub fn mean_contribution(&self, k: u32) -> f64 {
        self.p_common(k) * self.q()
    }

    /// This fault's contribution to the PFD *variance* of a `k`-version
    /// system: `p^k (1 − p^k) q²` (eq 2).
    pub fn variance_contribution(&self, k: u32) -> f64 {
        let pk = self.p_common(k);
        pk * (1.0 - pk) * self.q() * self.q()
    }
}

impl fmt::Display for PotentialFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault(p={}, q={})", self.p, self.q)
    }
}

/// The fixed universe of potential faults `{F₁, …, Fₙ}` for an application
/// developed under a given process (paper §2.2).
///
/// Invariants enforced at construction:
/// * at least one fault,
/// * all parameters in `[0, 1]` (via [`PotentialFault`]).
///
/// The paper's non-overlapping-failure-region assumption additionally
/// implies `Σ qᵢ ≤ 1`; that check is optional (see
/// [`FaultModelBuilder::enforce_q_budget`]) because §6.2 explicitly
/// discusses operating the model outside it as a pessimistic approximation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    faults: Vec<PotentialFault>,
}

impl FaultModel {
    /// Creates a model from a non-empty list of faults.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] if `faults` is empty.
    pub fn new(faults: Vec<PotentialFault>) -> Result<Self, ModelError> {
        if faults.is_empty() {
            return Err(ModelError::EmptyModel);
        }
        Ok(FaultModel { faults })
    }

    /// Creates a model from parallel slices of `p` and `q` values.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] for empty input,
    /// [`ModelError::InvalidProbability`] for out-of-range values, and
    /// [`ModelError::Degenerate`] if the slices have different lengths.
    pub fn from_params(ps: &[f64], qs: &[f64]) -> Result<Self, ModelError> {
        if ps.len() != qs.len() {
            return Err(ModelError::Degenerate("p and q slices differ in length"));
        }
        let faults = ps
            .iter()
            .zip(qs)
            .map(|(&p, &q)| PotentialFault::new(p, q))
            .collect::<Result<Vec<_>, _>>()?;
        FaultModel::new(faults)
    }

    /// A model of `n` identical faults — the simplest parametric family,
    /// used throughout the paper's qualitative arguments.
    ///
    /// # Errors
    ///
    /// Propagates probability validation; `n == 0` yields
    /// [`ModelError::EmptyModel`].
    pub fn uniform(n: usize, p: f64, q: f64) -> Result<Self, ModelError> {
        let fault = PotentialFault::new(p, q)?;
        FaultModel::new(vec![fault; n])
    }

    /// A geometric family: fault `i` has `p = p0·rp^i`, `q = q0·rq^i`
    /// (clamped to 1). Models a process whose faults range from likely to
    /// rare and from large to small failure regions — the "very many
    /// possible faults, many with small qᵢ" regime of §5.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] for `n == 0`;
    /// [`ModelError::InvalidProbability`] if `p0`, `q0`, or the ratios are
    /// negative, or if a computed parameter exceeds 1.
    pub fn geometric(
        n: usize,
        p0: f64,
        p_ratio: f64,
        q0: f64,
        q_ratio: f64,
    ) -> Result<Self, ModelError> {
        if p_ratio < 0.0 || !p_ratio.is_finite() {
            return Err(ModelError::InvalidProbability(p_ratio));
        }
        if q_ratio < 0.0 || !q_ratio.is_finite() {
            return Err(ModelError::InvalidProbability(q_ratio));
        }
        let mut faults = Vec::with_capacity(n);
        let mut p = p0;
        let mut q = q0;
        for _ in 0..n {
            faults.push(PotentialFault::new(p, q)?);
            p *= p_ratio;
            q *= q_ratio;
        }
        FaultModel::new(faults)
    }

    /// A bimodal "few large, many small" family: `n_large` faults with
    /// `(p_large, q_large)` and `n_small` faults with `(p_small, q_small)`.
    /// This is the structure §6.1 suggests for approximating positively
    /// correlated mistakes (merge them into fewer, larger faults).
    ///
    /// # Errors
    ///
    /// Propagates probability validation; an entirely empty model yields
    /// [`ModelError::EmptyModel`].
    #[allow(clippy::too_many_arguments)]
    pub fn bimodal(
        n_large: usize,
        p_large: f64,
        q_large: f64,
        n_small: usize,
        p_small: f64,
        q_small: f64,
    ) -> Result<Self, ModelError> {
        let large = PotentialFault::new(p_large, q_large)?;
        let small = PotentialFault::new(p_small, q_small)?;
        let mut faults = vec![large; n_large];
        faults.extend(std::iter::repeat_n(small, n_small));
        FaultModel::new(faults)
    }

    /// Starts a builder for incremental construction.
    pub fn builder() -> FaultModelBuilder {
        FaultModelBuilder::new()
    }

    /// The faults in the model.
    pub fn faults(&self) -> &[PotentialFault] {
        &self.faults
    }

    /// Number of potential faults `n`.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the model is empty (never true for a constructed model).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterator over `pᵢ` values.
    pub fn p_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.faults.iter().map(|f| f.p())
    }

    /// Iterator over `qᵢ` values.
    pub fn q_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.faults.iter().map(|f| f.q())
    }

    /// `p_max = max{p₁, …, pₙ}` — the linchpin of the paper's
    /// assessor-grade bounds (§3.1.1).
    pub fn p_max(&self) -> f64 {
        self.p_values().fold(0.0, f64::max)
    }

    /// `Σ qᵢ` — under the non-overlap assumption this cannot exceed 1.
    pub fn total_q(&self) -> f64 {
        self.q_values().sum()
    }

    /// Whether the model respects the non-overlap budget `Σ qᵢ ≤ 1`.
    pub fn respects_q_budget(&self) -> bool {
        self.total_q() <= 1.0 + 1e-12
    }

    /// `(p^k, q)` pairs for a `k`-version system — the Bernoulli terms of
    /// the PFD sum handed to the numerics layer.
    pub fn terms(&self, k: u32) -> Vec<(f64, f64)> {
        self.faults.iter().map(|f| (f.p_common(k), f.q())).collect()
    }

    /// Returns a model with every `pᵢ` multiplied by `scale` — the
    /// proportional process-improvement family of §4.2.2 (`pᵢ = k·bᵢ`).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if a scaled value leaves `[0, 1]`.
    pub fn scale_p(&self, scale: f64) -> Result<FaultModel, ModelError> {
        let faults = self
            .faults
            .iter()
            .map(|f| PotentialFault::new(f.p() * scale, f.q()))
            .collect::<Result<Vec<_>, _>>()?;
        FaultModel::new(faults)
    }

    /// Returns a model with fault `index`'s `p` replaced — the single-fault
    /// process-improvement move of §4.2.1.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] for an out-of-range index;
    /// [`ModelError::InvalidProbability`] for an out-of-range value.
    pub fn with_p(&self, index: usize, new_p: f64) -> Result<FaultModel, ModelError> {
        if index >= self.faults.len() {
            return Err(ModelError::Degenerate("fault index out of range"));
        }
        let mut faults = self.faults.clone();
        faults[index] = PotentialFault::new(new_p, faults[index].q())?;
        FaultModel::new(faults)
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultModel(n={}, p_max={:.4}, Σq={:.4})",
            self.len(),
            self.p_max(),
            self.total_q()
        )
    }
}

/// Incremental builder for [`FaultModel`] (C-BUILDER).
///
/// ```
/// use divrel_model::FaultModel;
///
/// let model = FaultModel::builder()
///     .fault(0.1, 1e-3)
///     .fault(0.05, 2e-3)
///     .enforce_q_budget(true)
///     .build()?;
/// assert_eq!(model.len(), 2);
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultModelBuilder {
    faults: Vec<(f64, f64)>,
    enforce_q_budget: bool,
}

impl FaultModelBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FaultModelBuilder::default()
    }

    /// Adds a fault with introduction probability `p` and failure-region
    /// probability `q`. Validation happens at [`Self::build`].
    pub fn fault(&mut self, p: f64, q: f64) -> &mut Self {
        self.faults.push((p, q));
        self
    }

    /// Adds `count` identical faults.
    pub fn faults(&mut self, count: usize, p: f64, q: f64) -> &mut Self {
        self.faults.extend(std::iter::repeat_n((p, q), count));
        self
    }

    /// If set, `build` rejects models whose `Σ qᵢ` exceeds 1 (the paper's
    /// non-overlap budget, §6.2). Off by default, matching the paper's own
    /// willingness to use the model pessimistically outside the budget.
    pub fn enforce_q_budget(&mut self, enforce: bool) -> &mut Self {
        self.enforce_q_budget = enforce;
        self
    }

    /// Validates and constructs the model.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`], [`ModelError::InvalidProbability`], or
    /// [`ModelError::QBudgetExceeded`] when enforcement is enabled.
    pub fn build(&self) -> Result<FaultModel, ModelError> {
        let faults = self
            .faults
            .iter()
            .map(|&(p, q)| PotentialFault::new(p, q))
            .collect::<Result<Vec<_>, _>>()?;
        let model = FaultModel::new(faults)?;
        if self.enforce_q_budget && !model.respects_q_budget() {
            return Err(ModelError::QBudgetExceeded {
                total: model.total_q(),
            });
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potential_fault_contributions() {
        let f = PotentialFault::new(0.1, 0.01).unwrap();
        assert!((f.p_common(1) - 0.1).abs() < 1e-15);
        assert!((f.p_common(2) - 0.01).abs() < 1e-15);
        assert!((f.mean_contribution(1) - 0.001).abs() < 1e-15);
        assert!((f.mean_contribution(2) - 1e-4).abs() < 1e-18);
        assert!((f.variance_contribution(1) - 0.1 * 0.9 * 1e-4).abs() < 1e-18);
        assert!((f.variance_contribution(2) - 0.01 * 0.99 * 1e-4).abs() < 1e-18);
    }

    #[test]
    fn fault_rejects_invalid_probabilities() {
        assert!(PotentialFault::new(-0.1, 0.5).is_err());
        assert!(PotentialFault::new(0.5, 1.5).is_err());
        assert!(PotentialFault::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn model_requires_at_least_one_fault() {
        assert_eq!(FaultModel::new(vec![]).unwrap_err(), ModelError::EmptyModel);
        assert!(FaultModel::uniform(0, 0.1, 0.1).is_err());
    }

    #[test]
    fn from_params_checks_lengths() {
        assert!(FaultModel::from_params(&[0.1, 0.2], &[0.01]).is_err());
        let m = FaultModel::from_params(&[0.1, 0.2], &[0.01, 0.02]).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.p_max() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn uniform_family() {
        let m = FaultModel::uniform(5, 0.1, 0.02).unwrap();
        assert_eq!(m.len(), 5);
        assert!((m.total_q() - 0.1).abs() < 1e-15);
        assert!(m.respects_q_budget());
        assert!((m.p_max() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn geometric_family() {
        let m = FaultModel::geometric(4, 0.4, 0.5, 0.1, 0.1).unwrap();
        let ps: Vec<f64> = m.p_values().collect();
        assert!((ps[0] - 0.4).abs() < 1e-15);
        assert!((ps[3] - 0.05).abs() < 1e-15);
        let qs: Vec<f64> = m.q_values().collect();
        assert!((qs[3] - 1e-4).abs() < 1e-15);
        assert!(FaultModel::geometric(3, 0.4, 2.0, 0.1, 1.0).is_err()); // p grows past 1? 0.4,0.8,1.6 -> error
        assert!(FaultModel::geometric(3, 0.4, -1.0, 0.1, 1.0).is_err());
    }

    #[test]
    fn bimodal_family() {
        let m = FaultModel::bimodal(2, 0.3, 0.05, 10, 0.01, 0.001).unwrap();
        assert_eq!(m.len(), 12);
        assert!((m.p_max() - 0.3).abs() < 1e-15);
        assert!((m.total_q() - (2.0 * 0.05 + 10.0 * 0.001)).abs() < 1e-12);
    }

    #[test]
    fn builder_full_flow() {
        let m = FaultModel::builder()
            .fault(0.2, 0.3)
            .faults(3, 0.1, 0.1)
            .build()
            .unwrap();
        assert_eq!(m.len(), 4);
        assert!((m.total_q() - 0.6).abs() < 1e-12);

        // Budget enforcement rejects Σq > 1.
        let err = FaultModel::builder()
            .fault(0.2, 0.7)
            .fault(0.2, 0.7)
            .enforce_q_budget(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::QBudgetExceeded { .. }));

        // Same model passes without enforcement (paper §6.2 pessimism).
        assert!(FaultModel::builder()
            .fault(0.2, 0.7)
            .fault(0.2, 0.7)
            .build()
            .is_ok());

        assert!(FaultModelBuilder::new().build().is_err());
    }

    #[test]
    fn terms_expose_k_version_parameters() {
        let m = FaultModel::from_params(&[0.5, 0.1], &[0.01, 0.02]).unwrap();
        let t1 = m.terms(1);
        assert_eq!(t1, vec![(0.5, 0.01), (0.1, 0.02)]);
        let t2 = m.terms(2);
        assert!((t2[0].0 - 0.25).abs() < 1e-15);
        assert!((t2[1].0 - 0.01).abs() < 1e-15);
    }

    #[test]
    fn scale_p_and_with_p() {
        let m = FaultModel::from_params(&[0.4, 0.2], &[0.1, 0.1]).unwrap();
        let half = m.scale_p(0.5).unwrap();
        let ps: Vec<f64> = half.p_values().collect();
        assert!((ps[0] - 0.2).abs() < 1e-15 && (ps[1] - 0.1).abs() < 1e-15);
        assert!(m.scale_p(3.0).is_err()); // 1.2 out of range

        let edited = m.with_p(1, 0.05).unwrap();
        assert!((edited.faults()[1].p() - 0.05).abs() < 1e-15);
        assert_eq!(edited.faults()[0], m.faults()[0]);
        assert!(m.with_p(5, 0.1).is_err());
        assert!(m.with_p(0, 1.5).is_err());
    }

    #[test]
    fn display_formats() {
        let m = FaultModel::uniform(3, 0.25, 0.1).unwrap();
        let s = m.to_string();
        assert!(s.contains("n=3"));
        let f = PotentialFault::new(0.1, 0.2).unwrap();
        assert!(f.to_string().contains("p=0.1"));
    }

    #[test]
    fn serde_round_trip() {
        let m = FaultModel::from_params(&[0.1, 0.2], &[0.01, 0.02]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: FaultModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
