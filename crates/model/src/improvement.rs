//! Effects of process improvement on the gain from diversity — paper §4.2
//! and Appendices A & B.
//!
//! "Process improvement" means decreasing fault probabilities `pᵢ`. The
//! paper studies two stylised moves and reaches opposite conclusions:
//!
//! 1. **Single-fault improvement** (§4.2.1, Appendix A): decreasing *one*
//!    `pᵢ` can **reduce** the gain from diversity (increase the risk ratio
//!    of eq 10). In the two-fault case the ratio, as a function of one
//!    parameter, has a single interior minimum — the *stationary point* —
//!    below which further improvement of that fault hurts the relative
//!    gain.
//! 2. **Proportional improvement** (§4.2.2, Appendix B): writing
//!    `pᵢ = k·bᵢ` and decreasing the common factor `k` always *increases*
//!    the gain (the ratio is non-decreasing in `k`).
//!
//! ## Corrected closed form (reproduction note)
//!
//! Setting `∂/∂p₁ [(p₁²+p₂²−p₁²p₂²)/(p₁+p₂−p₁p₂)] = 0` yields the
//! quadratic `(1−p₂²)p₁² + 2p₂(1+p₂)p₁ − p₂² = 0`, whose unique positive
//! root is
//!
//! ```text
//! p1z = p₂·(sqrt(2(1+p₂)) − (1+p₂)) / (1 − p₂²)
//! ```
//!
//! This root **is** the minimiser (verified numerically in the tests below
//! and in experiment E5) and satisfies `p1z < p₂` — whereas the paper's
//! printed root (garbled in the available text) is claimed to satisfy
//! `p1z > p₂`. The qualitative theorem (a reversal exists; reducing an
//! already-small fault probability reduces the gain) is confirmed exactly.
//! Both forms are provided so the discrepancy itself is reproducible.

use crate::error::ModelError;
use crate::fault::FaultModel;

/// Analytic gradient of the eq (10) risk ratio with respect to every `pᵢ`.
///
/// With `A = Π(1−pⱼ²)`, `B = Π(1−pⱼ)`, `f = 1−A`, `g = 1−B`:
///
/// ```text
/// ∂(f/g)/∂pᵢ = (2pᵢ·Aᵢ·g − f·Bᵢ) / g²
/// ```
///
/// where `Aᵢ`, `Bᵢ` are the leave-one-out products. Computed with
/// prefix/suffix products in `O(n)` and cross-checked against central
/// differences in the tests.
///
/// A **negative** component means decreasing that `pᵢ` *increases* the
/// ratio — i.e. *reduces* the gain from diversity (the §4.2.1 reversal).
///
/// # Errors
///
/// [`ModelError::Degenerate`] if every `pᵢ` is zero (ratio undefined).
pub fn risk_ratio_gradient(model: &FaultModel) -> Result<Vec<f64>, ModelError> {
    let ps: Vec<f64> = model.p_values().collect();
    if ps.iter().all(|&p| p == 0.0) {
        return Err(ModelError::Degenerate(
            "risk ratio undefined when all fault probabilities are zero",
        ));
    }
    let n = ps.len();
    let leave_one_out = |terms: &[f64]| -> Vec<f64> {
        // prefix[i] = Π_{j<i} terms[j]; suffix[i] = Π_{j>i} terms[j].
        let mut prefix = vec![1.0; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] * terms[i];
        }
        let mut suffix = vec![1.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] * terms[i];
        }
        (0..n).map(|i| prefix[i] * suffix[i + 1]).collect()
    };
    let one_minus_p: Vec<f64> = ps.iter().map(|p| 1.0 - p).collect();
    let one_minus_p2: Vec<f64> = ps.iter().map(|p| 1.0 - p * p).collect();
    let b_i = leave_one_out(&one_minus_p);
    let a_i = leave_one_out(&one_minus_p2);
    let big_a: f64 = one_minus_p2.iter().product();
    let big_b: f64 = one_minus_p.iter().product();
    let f = 1.0 - big_a;
    let g = 1.0 - big_b;
    Ok((0..n)
        .map(|i| (2.0 * ps[i] * a_i[i] * g - f * b_i[i]) / (g * g))
        .collect())
}

/// The corrected Appendix-A stationary point for the two-fault model: the
/// value of `p₁` at which `∂/∂p₁` of the risk ratio vanishes, given the
/// other fault's probability `p₂`.
///
/// Below this value the derivative is negative — decreasing `p₁` further
/// *increases* the ratio (reduces the diversity gain).
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless `0 < p₂ < 1`.
///
/// ```
/// use divrel_model::improvement::two_fault_stationary_point;
/// let p1z = two_fault_stationary_point(0.5)?;
/// assert!((p1z - 0.15470053837925146).abs() < 1e-12);
/// // Note: p1z < p2, contradicting the paper's printed claim — see module docs.
/// assert!(p1z < 0.5);
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
pub fn two_fault_stationary_point(p2: f64) -> Result<f64, ModelError> {
    if !(p2 > 0.0 && p2 < 1.0) {
        return Err(ModelError::InvalidProbability(p2));
    }
    Ok(p2 * ((2.0 * (1.0 + p2)).sqrt() - (1.0 + p2)) / (1.0 - p2 * p2))
}

/// The stationary-point formula **as printed in the paper's Appendix A**
/// (to the extent the garbled typesetting can be read):
/// `p1z = (p₂ + p₂·sqrt((2+p₂)(1+2p₂))) / (2(1−p₂))`.
///
/// Kept verbatim so experiment E5 can demonstrate that it does *not*
/// coincide with the true minimiser computed independently — see the module
/// documentation. Do not use this for analysis.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] unless `0 < p₂ < 1`.
pub fn paper_printed_stationary_point(p2: f64) -> Result<f64, ModelError> {
    if !(p2 > 0.0 && p2 < 1.0) {
        return Err(ModelError::InvalidProbability(p2));
    }
    Ok((p2 + p2 * ((2.0 + p2) * (1.0 + 2.0 * p2)).sqrt()) / (2.0 * (1.0 - p2)))
}

/// The two-fault risk ratio `R(p₁, p₂)` of Appendix A in closed form:
/// `(p₁² + p₂² − p₁²p₂²) / (p₁ + p₂ − p₁p₂)`.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] for parameters outside `[0, 1]`;
/// [`ModelError::Degenerate`] if both are zero.
pub fn two_fault_ratio(p1: f64, p2: f64) -> Result<f64, ModelError> {
    for p in [p1, p2] {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(ModelError::InvalidProbability(p));
        }
    }
    let g = p1 + p2 - p1 * p2;
    if g == 0.0 {
        return Err(ModelError::Degenerate(
            "two-fault ratio undefined at p1 = p2 = 0",
        ));
    }
    Ok((p1 * p1 + p2 * p2 - p1 * p1 * p2 * p2) / g)
}

/// A proportional process-improvement family (paper §4.2.2, Appendix B):
/// `pᵢ(k) = k·bᵢ`, with process quality improving as `k` decreases.
///
/// ```
/// use divrel_model::improvement::ProportionalFamily;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fam = ProportionalFamily::new(vec![0.4, 0.2, 0.1], vec![0.01, 0.02, 0.05])?;
/// // Appendix B: the risk ratio is non-decreasing in k.
/// let r_lo = fam.risk_ratio_at(0.2)?;
/// let r_hi = fam.risk_ratio_at(0.9)?;
/// assert!(r_lo <= r_hi);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProportionalFamily {
    base: Vec<f64>,
    q: Vec<f64>,
}

impl ProportionalFamily {
    /// Creates the family from base probabilities `bᵢ` (the `k = 1` model)
    /// and failure-region probabilities `qᵢ`.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] for empty input;
    /// [`ModelError::InvalidProbability`] for out-of-range values;
    /// [`ModelError::Degenerate`] for mismatched lengths or all-zero `bᵢ`.
    pub fn new(base: Vec<f64>, q: Vec<f64>) -> Result<Self, ModelError> {
        if base.is_empty() {
            return Err(ModelError::EmptyModel);
        }
        if base.len() != q.len() {
            return Err(ModelError::Degenerate("base and q slices differ in length"));
        }
        for &b in &base {
            if !(0.0..=1.0).contains(&b) || !b.is_finite() {
                return Err(ModelError::InvalidProbability(b));
            }
        }
        for &qq in &q {
            if !(0.0..=1.0).contains(&qq) || !qq.is_finite() {
                return Err(ModelError::InvalidProbability(qq));
            }
        }
        if base.iter().all(|&b| b == 0.0) {
            return Err(ModelError::Degenerate("all base probabilities are zero"));
        }
        Ok(ProportionalFamily { base, q })
    }

    /// The base probabilities `bᵢ`.
    pub fn base(&self) -> &[f64] {
        &self.base
    }

    /// The largest admissible `k` (so that every `k·bᵢ ≤ 1`).
    pub fn max_scale(&self) -> f64 {
        let b_max = self.base.iter().cloned().fold(0.0, f64::max);
        1.0 / b_max
    }

    /// Instantiates the fault model at process quality `k`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if `k·bᵢ` leaves `[0, 1]` for
    /// some `i` (i.e. `k` negative or above [`Self::max_scale`]).
    pub fn model_at(&self, k: f64) -> Result<FaultModel, ModelError> {
        let ps: Vec<f64> = self.base.iter().map(|b| b * k).collect();
        FaultModel::from_params(&ps, &self.q)
    }

    /// The eq (10) risk ratio at process quality `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::model_at`]; [`ModelError::Degenerate`] at
    /// `k = 0`.
    pub fn risk_ratio_at(&self, k: f64) -> Result<f64, ModelError> {
        self.model_at(k)?.risk_ratio()
    }

    /// Analytic derivative `d/dk` of the risk ratio at `k`, via the chain
    /// rule on the leave-one-out products. Appendix B proves this is
    /// non-negative for all admissible parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::model_at`]; [`ModelError::Degenerate`] at
    /// `k = 0`.
    pub fn d_risk_ratio_dk(&self, k: f64) -> Result<f64, ModelError> {
        let model = self.model_at(k)?;
        let grad = risk_ratio_gradient(&model)?;
        // dR/dk = Σᵢ (∂R/∂pᵢ)·bᵢ.
        Ok(grad.iter().zip(&self.base).map(|(g, b)| g * b).sum())
    }

    /// Sweeps the risk ratio over a `k` grid: returns `(k, ratio)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::risk_ratio_at`];
    /// [`ModelError::Degenerate`] for an empty or non-increasing grid.
    pub fn sweep(&self, ks: &[f64]) -> Result<Vec<(f64, f64)>, ModelError> {
        if ks.is_empty() {
            return Err(ModelError::Degenerate("empty k grid"));
        }
        ks.iter()
            .map(|&k| Ok((k, self.risk_ratio_at(k)?)))
            .collect()
    }

    /// Checks Appendix B empirically on a grid: returns the largest
    /// observed *decrease* of the ratio between consecutive grid points
    /// (0.0 when perfectly monotone).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::sweep`].
    pub fn max_monotonicity_violation(&self, ks: &[f64]) -> Result<f64, ModelError> {
        let pts = self.sweep(ks)?;
        let mut worst = 0.0_f64;
        for w in pts.windows(2) {
            let (k0, r0) = w[0];
            let (k1, r1) = w[1];
            if k1 > k0 && r1 < r0 {
                worst = worst.max(r0 - r1);
            }
        }
        Ok(worst)
    }
}

/// The Appendix-A stationary point for fault `index` of an arbitrary
/// `n`-fault model: the value of `pᵢ` at which `∂(risk ratio)/∂pᵢ`
/// vanishes, holding every other parameter fixed.
///
/// Below the returned value the derivative is negative — further
/// improvement of that one fault *erodes* the relative gain from
/// diversity. Returns `None` when the derivative does not change sign on
/// `(0, 1)` (no interior reversal for this fault: e.g. it is the only
/// fault, where the ratio is simply `pᵢ`).
///
/// Solved by bisection on the analytic gradient
/// ([`risk_ratio_gradient`]); for the two-fault case this agrees with the
/// closed form [`two_fault_stationary_point`] (see tests).
///
/// # Errors
///
/// [`ModelError::Degenerate`] for an out-of-range index or a model where
/// the ratio is undefined with `pᵢ` perturbed (all other `p` zero).
pub fn stationary_point_for_fault(
    model: &FaultModel,
    index: usize,
) -> Result<Option<f64>, ModelError> {
    if index >= model.len() {
        return Err(ModelError::Degenerate("fault index out of range"));
    }
    let others_alive = model
        .faults()
        .iter()
        .enumerate()
        .any(|(j, f)| j != index && f.p() > 0.0);
    if !others_alive {
        // Single effective fault: ratio = pᵢ, strictly increasing, no
        // interior stationary point.
        return Ok(None);
    }
    let grad_i = |p: f64| -> f64 {
        let m = model
            .with_p(index, p)
            .expect("probability within (0, 1) by construction");
        risk_ratio_gradient(&m).expect("other faults keep the ratio defined")[index]
    };
    const LO: f64 = 1e-9;
    const HI: f64 = 1.0 - 1e-9;
    let g_lo = grad_i(LO);
    let g_hi = grad_i(HI);
    if g_lo.signum() == g_hi.signum() {
        return Ok(None);
    }
    let root = divrel_numerics::roots::bisect(grad_i, LO, HI, 1e-12, 200)?;
    Ok(Some(root))
}

/// Result of sweeping a single fault's probability (the §4.2.1 move) while
/// holding the rest of the model fixed.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleFaultSweep {
    /// The index of the varied fault.
    pub index: usize,
    /// `(pᵢ, risk ratio)` pairs along the sweep.
    pub points: Vec<(f64, f64)>,
    /// Location of the minimal ratio found on the grid, if interior.
    pub grid_minimum: Option<(f64, f64)>,
}

/// Sweeps fault `index`'s probability over `values`, recording the eq (10)
/// risk ratio. Used by experiment E5 to exhibit the gain reversal.
///
/// # Errors
///
/// [`ModelError::Degenerate`] for a bad index or empty grid;
/// [`ModelError::InvalidProbability`] for out-of-range sweep values;
/// propagated ratio errors otherwise.
pub fn sweep_single_fault(
    model: &FaultModel,
    index: usize,
    values: &[f64],
) -> Result<SingleFaultSweep, ModelError> {
    if values.is_empty() {
        return Err(ModelError::Degenerate("empty sweep grid"));
    }
    let mut points = Vec::with_capacity(values.len());
    for &v in values {
        let m = model.with_p(index, v)?;
        points.push((v, m.risk_ratio()?));
    }
    let mut grid_minimum = None;
    if points.len() >= 3 {
        let (mut best_i, mut best) = (0usize, f64::INFINITY);
        for (i, &(_, r)) in points.iter().enumerate() {
            if r < best {
                best = r;
                best_i = i;
            }
        }
        if best_i > 0 && best_i + 1 < points.len() {
            grid_minimum = Some(points[best_i]);
        }
    }
    Ok(SingleFaultSweep {
        index,
        points,
        grid_minimum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_numerics::roots::{central_derivative, golden_min};

    #[test]
    fn gradient_matches_central_differences() {
        let m = FaultModel::from_params(&[0.3, 0.1, 0.05], &[0.1, 0.1, 0.1]).unwrap();
        let grad = risk_ratio_gradient(&m).unwrap();
        for (i, &g) in grad.iter().enumerate() {
            let num = central_derivative(
                |p| m.with_p(i, p).unwrap().risk_ratio().unwrap(),
                m.faults()[i].p(),
                1e-6,
            );
            assert!(
                (g - num).abs() < 1e-6,
                "i={i}: analytic {g} vs numeric {num}"
            );
        }
    }

    #[test]
    fn gradient_rejects_all_zero_model() {
        let m = FaultModel::uniform(3, 0.0, 0.1).unwrap();
        assert!(risk_ratio_gradient(&m).is_err());
    }

    #[test]
    fn two_fault_ratio_closed_form_matches_model() {
        for (p1, p2) in [(0.1, 0.5), (0.3, 0.3), (0.9, 0.05)] {
            let direct = two_fault_ratio(p1, p2).unwrap();
            let m = FaultModel::from_params(&[p1, p2], &[0.1, 0.1]).unwrap();
            assert!((direct - m.risk_ratio().unwrap()).abs() < 1e-13);
        }
        assert!(two_fault_ratio(0.0, 0.0).is_err());
        assert!(two_fault_ratio(1.5, 0.1).is_err());
    }

    #[test]
    fn stationary_point_is_the_minimiser() {
        // For several p2, the closed form must agree with a golden-section
        // minimisation of the exact ratio.
        for p2 in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9] {
            let closed = two_fault_stationary_point(p2).unwrap();
            let (numeric, _) =
                golden_min(|p1| two_fault_ratio(p1, p2).unwrap(), 1e-9, 1.0, 1e-13, 300).unwrap();
            assert!(
                (closed - numeric).abs() < 1e-6,
                "p2={p2}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn stationary_point_satisfies_quadratic() {
        // (1−p2²)p1² + 2p2(1+p2)p1 − p2² = 0 at the root.
        for p2 in [0.1, 0.25, 0.5, 0.8] {
            let p1 = two_fault_stationary_point(p2).unwrap();
            let resid = (1.0 - p2 * p2) * p1 * p1 + 2.0 * p2 * (1.0 + p2) * p1 - p2 * p2;
            assert!(resid.abs() < 1e-14, "p2={p2}: residual {resid}");
        }
    }

    #[test]
    fn corrected_root_is_below_p2_paper_printed_root_is_not_the_minimiser() {
        // Documents the reproduction finding: our root is the minimiser and
        // lies below p2; the paper's printed expression exceeds p2 (and can
        // even exceed 1) and does not zero the derivative.
        for p2 in [0.1, 0.3, 0.5] {
            let ours = two_fault_stationary_point(p2).unwrap();
            let papers = paper_printed_stationary_point(p2).unwrap();
            assert!(ours < p2, "p2={p2}: corrected root {ours} should be < p2");
            assert!(papers > p2, "p2={p2}: printed root {papers} should be > p2");
            // Derivative at the printed root is NOT zero (when in range).
            if papers < 1.0 {
                let m = FaultModel::from_params(&[papers, p2], &[0.1, 0.1]).unwrap();
                let grad = risk_ratio_gradient(&m).unwrap();
                assert!(grad[0].abs() > 1e-3, "p2={p2}");
            }
        }
    }

    #[test]
    fn reversal_exists_reducing_small_p_hurts_gain() {
        // §4.2.1's counterintuitive conclusion, concretely: with p1 = 0.5
        // fixed, reducing p2 below the stationary point increases the
        // ratio, i.e. erodes the gain from diversity.
        let p1 = 0.5;
        let p2z = two_fault_stationary_point(p1).unwrap(); // symmetry: vary 2nd
        let at_star = two_fault_ratio(p1, p2z).unwrap();
        let below = two_fault_ratio(p1, p2z / 4.0).unwrap();
        let above = two_fault_ratio(p1, (p2z * 2.0).min(0.99)).unwrap();
        assert!(
            below > at_star,
            "reducing p2 below p2z must raise the ratio"
        );
        assert!(above > at_star, "p2z must be a minimum");
        // And the limit p2 -> 0 recovers the single-fault ratio p1.
        let limit = two_fault_ratio(p1, 1e-12).unwrap();
        assert!((limit - p1).abs() < 1e-9);
    }

    #[test]
    fn stationary_point_rejects_bad_input() {
        assert!(two_fault_stationary_point(0.0).is_err());
        assert!(two_fault_stationary_point(1.0).is_err());
        assert!(paper_printed_stationary_point(-0.5).is_err());
    }

    #[test]
    fn proportional_family_construction_errors() {
        assert!(ProportionalFamily::new(vec![], vec![]).is_err());
        assert!(ProportionalFamily::new(vec![0.1], vec![0.1, 0.2]).is_err());
        assert!(ProportionalFamily::new(vec![1.5], vec![0.1]).is_err());
        assert!(ProportionalFamily::new(vec![0.1], vec![-0.1]).is_err());
        assert!(ProportionalFamily::new(vec![0.0, 0.0], vec![0.1, 0.1]).is_err());
    }

    #[test]
    fn appendix_b_monotone_in_k() {
        let fam = ProportionalFamily::new(
            vec![0.4, 0.25, 0.1, 0.05, 0.3],
            vec![0.01, 0.02, 0.05, 0.1, 0.005],
        )
        .unwrap();
        let ks: Vec<f64> = (1..=100)
            .map(|i| i as f64 / 100.0 * fam.max_scale().min(2.4))
            .collect();
        let violation = fam.max_monotonicity_violation(&ks).unwrap();
        assert_eq!(violation, 0.0, "Appendix B violated by {violation}");
    }

    #[test]
    fn appendix_b_derivative_non_negative() {
        let fam = ProportionalFamily::new(vec![0.5, 0.2, 0.05], vec![0.1, 0.1, 0.1]).unwrap();
        for i in 1..=19 {
            let k = i as f64 / 10.0; // up to max_scale = 2.0
            let d = fam.d_risk_ratio_dk(k).unwrap();
            assert!(d >= -1e-12, "k={k}: dR/dk = {d} < 0");
            // Cross-check against central differences.
            let num = central_derivative(|kk| fam.risk_ratio_at(kk).unwrap(), k, 1e-6);
            assert!((d - num).abs() < 1e-5, "k={k}: {d} vs {num}");
        }
    }

    #[test]
    fn proportional_family_model_at_limits() {
        let fam = ProportionalFamily::new(vec![0.5, 0.25], vec![0.1, 0.1]).unwrap();
        assert!((fam.max_scale() - 2.0).abs() < 1e-15);
        assert!(fam.model_at(2.0).is_ok());
        assert!(fam.model_at(2.1).is_err());
        assert!(fam.model_at(-0.1).is_err());
        assert!(fam.risk_ratio_at(0.0).is_err()); // all p zero
        assert!(fam.sweep(&[]).is_err());
    }

    #[test]
    fn general_stationary_point_matches_two_fault_closed_form() {
        for p2 in [0.1, 0.3, 0.5, 0.8] {
            let m = FaultModel::from_params(&[0.5, p2], &[0.01, 0.01]).unwrap();
            let closed = two_fault_stationary_point(p2).unwrap();
            let general = stationary_point_for_fault(&m, 0)
                .unwrap()
                .expect("interior root expected");
            assert!(
                (general - closed).abs() < 1e-8,
                "p2={p2}: general {general} vs closed {closed}"
            );
        }
    }

    #[test]
    fn general_stationary_point_on_five_fault_model() {
        let m =
            FaultModel::from_params(&[0.4, 0.3, 0.2, 0.1, 0.04], &[0.01, 0.01, 0.01, 0.01, 0.01])
                .unwrap();
        let p5z = stationary_point_for_fault(&m, 4)
            .unwrap()
            .expect("interior root expected");
        // Must agree with the grid minimum located by the sweep (~0.08).
        assert!((p5z - 0.08).abs() < 0.01, "p5z = {p5z}");
        // And the gradient changes sign across it.
        let g = |p: f64| risk_ratio_gradient(&m.with_p(4, p).unwrap()).unwrap()[4];
        assert!(g(p5z * 0.5) < 0.0);
        assert!(g((p5z * 1.5).min(0.99)) > 0.0);
    }

    #[test]
    fn stationary_point_edge_cases() {
        // Lone fault: ratio = p, no interior stationary point.
        let lone = FaultModel::from_params(&[0.3], &[0.1]).unwrap();
        assert_eq!(stationary_point_for_fault(&lone, 0).unwrap(), None);
        // Other faults all zero: same situation.
        let dead = FaultModel::from_params(&[0.3, 0.0], &[0.1, 0.1]).unwrap();
        assert_eq!(stationary_point_for_fault(&dead, 0).unwrap(), None);
        // Bad index.
        assert!(stationary_point_for_fault(&lone, 3).is_err());
    }

    #[test]
    fn single_fault_sweep_locates_reversal() {
        // Base model: one big fault (p=0.5), sweep the second fault.
        let m = FaultModel::from_params(&[0.5, 0.3], &[0.05, 0.05]).unwrap();
        let grid: Vec<f64> = (1..=200).map(|i| i as f64 / 200.0).collect();
        let sweep = sweep_single_fault(&m, 1, &grid).unwrap();
        assert_eq!(sweep.points.len(), 200);
        let (p_star, _) = sweep.grid_minimum.expect("interior minimum expected");
        let closed = two_fault_stationary_point(0.5).unwrap();
        assert!(
            (p_star - closed).abs() < 0.01,
            "grid minimum {p_star} vs closed form {closed}"
        );
        assert!(sweep_single_fault(&m, 5, &grid).is_err());
        assert!(sweep_single_fault(&m, 0, &[]).is_err());
    }
}
