//! The assessor's workflow — paper §5.1 applied to safety-integrity-level
//! claims.
//!
//! §5 motivates its confidence-bound machinery with the practice of
//! standards that "map reliability requirements for software into 'Safety
//! Integrity Levels' (SILs), and SILs into recommended development and V&V
//! practices". This module implements that mapping (IEC 61508 low-demand
//! PFD bands) and the paper's assessor question: *given evidence about a
//! single version produced by this process, what should I believe about a
//! 1-out-of-2 system produced by the same process?*

use crate::bounds::{beta_factor, pair_bound_from_single_bound};
use crate::error::ModelError;
use std::fmt;

/// IEC 61508-style safety integrity levels for low-demand operation,
/// defined by bands of average probability of failure on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sil {
    /// PFD in `[10⁻², 10⁻¹)`.
    Sil1,
    /// PFD in `[10⁻³, 10⁻²)`.
    Sil2,
    /// PFD in `[10⁻⁴, 10⁻³)`.
    Sil3,
    /// PFD in `[10⁻⁵, 10⁻⁴)`.
    Sil4,
}

impl Sil {
    /// The half-open PFD band `[lo, hi)` defining this SIL.
    pub fn band(&self) -> (f64, f64) {
        match self {
            Sil::Sil1 => (1e-2, 1e-1),
            Sil::Sil2 => (1e-3, 1e-2),
            Sil::Sil3 => (1e-4, 1e-3),
            Sil::Sil4 => (1e-5, 1e-4),
        }
    }

    /// The strongest SIL claimable for a demonstrated PFD *upper bound*:
    /// the level whose band contains the bound (or better).
    ///
    /// Returns `None` if the bound is ≥ 10⁻¹ (no SIL claimable) — bounds
    /// below 10⁻⁵ still claim SIL 4, the strongest level defined.
    ///
    /// ```
    /// use divrel_model::assessor::Sil;
    /// assert_eq!(Sil::from_pfd_bound(5e-3), Some(Sil::Sil2));
    /// assert_eq!(Sil::from_pfd_bound(1e-6), Some(Sil::Sil4));
    /// assert_eq!(Sil::from_pfd_bound(0.5), None);
    /// ```
    pub fn from_pfd_bound(bound: f64) -> Option<Sil> {
        if !bound.is_finite() || bound < 0.0 {
            return None;
        }
        if bound < 1e-4 {
            Some(Sil::Sil4)
        } else if bound < 1e-3 {
            Some(Sil::Sil3)
        } else if bound < 1e-2 {
            Some(Sil::Sil2)
        } else if bound < 1e-1 {
            Some(Sil::Sil1)
        } else {
            None
        }
    }

    /// Numeric level (1–4).
    pub fn level(&self) -> u8 {
        match self {
            Sil::Sil1 => 1,
            Sil::Sil2 => 2,
            Sil::Sil3 => 3,
            Sil::Sil4 => 4,
        }
    }
}

impl fmt::Display for Sil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIL {}", self.level())
    }
}

/// Evidence an assessor holds about a *single version* produced by the
/// development process under assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SingleVersionEvidence {
    /// A one-sided confidence bound: `P(Θ₁ ≤ bound) ≥ confidence`.
    Bound {
        /// The PFD bound.
        bound: f64,
        /// The confidence attached to it.
        confidence: f64,
    },
    /// Estimates of the process's mean and standard deviation of PFD.
    Moments {
        /// Estimated `µ₁`.
        mu: f64,
        /// Estimated `σ₁`.
        sigma: f64,
    },
}

/// The assessor's derived claim about a 1-out-of-2 system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairClaim {
    /// Confidence level of the claim.
    pub confidence: f64,
    /// The PFD bound for a single version at that confidence.
    pub single_bound: f64,
    /// The PFD bound for the pair at the same confidence (eq 11 when
    /// moments are available, eq 12 otherwise).
    pub pair_bound: f64,
    /// The guaranteed improvement factor actually used
    /// (`single_bound / pair_bound`).
    pub improvement_factor: f64,
    /// SIL claimable for the single version, if any.
    pub single_sil: Option<Sil>,
    /// SIL claimable for the pair, if any.
    pub pair_sil: Option<Sil>,
}

/// Derives the 1-out-of-2 claim from single-version evidence plus a
/// credible bound on `p_max` — the paper's §5.1 assessor move.
///
/// With [`SingleVersionEvidence::Moments`], eq (11) is used (tighter);
/// with [`SingleVersionEvidence::Bound`], eq (12). In both cases the claim
/// holds at the evidence's confidence level.
///
/// # Errors
///
/// [`ModelError::InvalidProbability`] for `p_max ∉ [0, 1]` or a confidence
/// outside `(0, 1)`; [`ModelError::Degenerate`] for negative evidence
/// values.
///
/// ```
/// use divrel_model::assessor::{assess_pair, SingleVersionEvidence, Sil};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's §5.1 example: µ1 = 0.01, σ1 = 0.001, 84% confidence,
/// // p_max = 0.1 — the pair gains an order of magnitude.
/// let claim = assess_pair(
///     SingleVersionEvidence::Moments { mu: 0.01, sigma: 0.001 },
///     0.1,
///     0.8413447460685429,
/// )?;
/// assert_eq!(claim.single_sil, Some(Sil::Sil1));
/// assert_eq!(claim.pair_sil, Some(Sil::Sil2));
/// # Ok(())
/// # }
/// ```
pub fn assess_pair(
    evidence: SingleVersionEvidence,
    p_max: f64,
    confidence: f64,
) -> Result<PairClaim, ModelError> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(ModelError::InvalidProbability(confidence));
    }
    let (single_bound, pair_bound) = match evidence {
        SingleVersionEvidence::Bound {
            bound,
            confidence: c,
        } => {
            if (c - confidence).abs() > 1e-12 {
                return Err(ModelError::Degenerate(
                    "evidence confidence must match the requested claim confidence",
                ));
            }
            (bound, pair_bound_from_single_bound(bound, p_max)?)
        }
        SingleVersionEvidence::Moments { mu, sigma } => {
            if mu < 0.0 || sigma < 0.0 || !mu.is_finite() || !sigma.is_finite() {
                return Err(ModelError::Degenerate("negative single-version moments"));
            }
            let k = divrel_numerics::normal::k_factor(confidence)?;
            let single = mu + k * sigma;
            let pair = p_max * mu + k * beta_factor(p_max)? * sigma;
            (single, pair)
        }
    };
    let improvement_factor = if pair_bound > 0.0 {
        single_bound / pair_bound
    } else {
        f64::INFINITY
    };
    Ok(PairClaim {
        confidence,
        single_bound,
        pair_bound,
        improvement_factor,
        single_sil: Sil::from_pfd_bound(single_bound),
        pair_sil: Sil::from_pfd_bound(pair_bound),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sil_band_edges() {
        assert_eq!(Sil::from_pfd_bound(9.99e-2), Some(Sil::Sil1));
        assert_eq!(Sil::from_pfd_bound(1e-2), Some(Sil::Sil1));
        assert_eq!(Sil::from_pfd_bound(9.9e-3), Some(Sil::Sil2));
        assert_eq!(Sil::from_pfd_bound(1e-4), Some(Sil::Sil3));
        assert_eq!(Sil::from_pfd_bound(9.9e-5), Some(Sil::Sil4));
        assert_eq!(Sil::from_pfd_bound(0.0), Some(Sil::Sil4));
        assert_eq!(Sil::from_pfd_bound(0.1), None);
        assert_eq!(Sil::from_pfd_bound(f64::NAN), None);
        assert_eq!(Sil::from_pfd_bound(-1.0), None);
    }

    #[test]
    fn sil_bands_are_contiguous() {
        let sils = [Sil::Sil1, Sil::Sil2, Sil::Sil3, Sil::Sil4];
        for w in sils.windows(2) {
            let (lo_hi, _) = (w[0].band(), w[1].band());
            assert!((w[1].band().1 - lo_hi.0).abs() < 1e-18);
        }
        assert_eq!(Sil::Sil3.level(), 3);
        assert_eq!(Sil::Sil4.to_string(), "SIL 4");
    }

    #[test]
    fn sil_ordering() {
        assert!(Sil::Sil4 > Sil::Sil1);
        assert!(Sil::Sil2 < Sil::Sil3);
    }

    #[test]
    fn paper_example_moments_claim() {
        let claim = assess_pair(
            SingleVersionEvidence::Moments {
                mu: 0.01,
                sigma: 0.001,
            },
            0.1,
            0.841_344_746_068_542_9, // k = 1
        )
        .unwrap();
        assert!((claim.single_bound - 0.011).abs() < 1e-9);
        assert!((claim.pair_bound - 0.001_331_66).abs() < 1e-6);
        assert!(claim.improvement_factor > 8.0);
        assert_eq!(claim.single_sil, Some(Sil::Sil1));
        assert_eq!(claim.pair_sil, Some(Sil::Sil2));
    }

    #[test]
    fn bound_evidence_uses_eq12() {
        let claim = assess_pair(
            SingleVersionEvidence::Bound {
                bound: 0.011,
                confidence: 0.99,
            },
            0.1,
            0.99,
        )
        .unwrap();
        // eq (12): beta * bound = 0.33166 * 0.011 ≈ 0.003648
        assert!((claim.pair_bound - 0.003_648_3).abs() < 1e-6);
        assert_eq!(claim.pair_sil, Some(Sil::Sil2));
        // Mismatched confidence is rejected.
        assert!(assess_pair(
            SingleVersionEvidence::Bound {
                bound: 0.011,
                confidence: 0.95,
            },
            0.1,
            0.99,
        )
        .is_err());
    }

    #[test]
    fn ten_fold_gain_at_pmax_one_percent() {
        // §5.1: p_max = 0.01 gives a 10-fold improvement in any bound.
        let claim = assess_pair(
            SingleVersionEvidence::Bound {
                bound: 1e-3,
                confidence: 0.99,
            },
            0.01,
            0.99,
        )
        .unwrap();
        assert!((claim.improvement_factor - 9.950_371_9).abs() < 1e-4);
        // A bound of exactly 1e-3 is the *edge* of the SIL3 band, so only
        // SIL2 is claimable; the pair lands just above 1e-4, hence SIL3.
        assert_eq!(claim.single_sil, Some(Sil::Sil2));
        assert_eq!(claim.pair_sil, Some(Sil::Sil3));
        // A strictly better single-version bound upgrades both claims.
        let better = assess_pair(
            SingleVersionEvidence::Bound {
                bound: 9e-4,
                confidence: 0.99,
            },
            0.01,
            0.99,
        )
        .unwrap();
        assert_eq!(better.single_sil, Some(Sil::Sil3));
        assert_eq!(better.pair_sil, Some(Sil::Sil4));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(assess_pair(
            SingleVersionEvidence::Moments {
                mu: -1.0,
                sigma: 0.1
            },
            0.1,
            0.99
        )
        .is_err());
        assert!(assess_pair(
            SingleVersionEvidence::Moments {
                mu: 0.01,
                sigma: 0.001
            },
            1.5,
            0.99
        )
        .is_err());
        assert!(assess_pair(
            SingleVersionEvidence::Moments {
                mu: 0.01,
                sigma: 0.001
            },
            0.1,
            1.0
        )
        .is_err());
    }

    #[test]
    fn zero_pair_bound_gives_infinite_factor() {
        let claim = assess_pair(
            SingleVersionEvidence::Bound {
                bound: 0.0,
                confidence: 0.99,
            },
            0.1,
            0.99,
        )
        .unwrap();
        assert!(claim.improvement_factor.is_infinite());
        assert_eq!(claim.pair_sil, Some(Sil::Sil4));
    }
}
