//! Epistemic uncertainty over the model parameters themselves.
//!
//! §6.3: "assessors will derive beliefs about these parameters from their
//! own experience of faults found, or mistakes detected, in circumstances
//! considered similar" — i.e. the `(pᵢ, qᵢ)` vector is itself uncertain.
//! A [`ModelEnsemble`] represents that belief as a weighted mixture of
//! candidate fault models and propagates it correctly:
//!
//! * predictive mean PFD is the weighted mean of the members' means;
//! * predictive *variance* adds the between-model spread to the
//!   within-model variance (law of total variance) — the part a naive
//!   single-model analysis silently drops;
//! * fault-free probabilities and risk ratios mix linearly in probability
//!   (not in ratio!), which is why the ensemble's risk ratio is *not* the
//!   weighted mean of the members' ratios.

use crate::error::ModelError;
use crate::fault::FaultModel;
use std::fmt;

/// A weighted mixture of candidate fault models representing assessor
/// uncertainty about the development process.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEnsemble {
    members: Vec<(f64, FaultModel)>,
}

impl ModelEnsemble {
    /// Creates an ensemble from `(weight, model)` pairs; weights are
    /// normalised internally.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] for an empty ensemble;
    /// [`ModelError::InvalidProbability`] for negative/non-finite weights
    /// or an all-zero weight vector.
    pub fn new(members: Vec<(f64, FaultModel)>) -> Result<Self, ModelError> {
        if members.is_empty() {
            return Err(ModelError::EmptyModel);
        }
        let mut total = 0.0;
        for (w, _) in &members {
            if !w.is_finite() || *w < 0.0 {
                return Err(ModelError::InvalidProbability(*w));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ModelError::InvalidProbability(0.0));
        }
        Ok(ModelEnsemble {
            members: members.into_iter().map(|(w, m)| (w / total, m)).collect(),
        })
    }

    /// Equal-weight ensemble.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyModel`] for empty input.
    pub fn uniform(models: Vec<FaultModel>) -> Result<Self, ModelError> {
        let n = models.len();
        ModelEnsemble::new(models.into_iter().map(|m| (1.0 / n as f64, m)).collect())
    }

    /// The normalised `(weight, model)` members.
    pub fn members(&self) -> &[(f64, FaultModel)] {
        &self.members
    }

    /// Number of candidate models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Predictive mean PFD of a `k`-version system:
    /// `Σ wⱼ E[Θₖ | modelⱼ]`.
    pub fn mean_pfd(&self, k: u32) -> f64 {
        self.members.iter().map(|(w, m)| w * m.mean_pfd(k)).sum()
    }

    /// Predictive variance by the law of total variance:
    /// `E[Var(Θₖ|M)] + Var(E[Θₖ|M])`.
    pub fn var_pfd(&self, k: u32) -> f64 {
        let mixture_mean = self.mean_pfd(k);
        let within: f64 = self.members.iter().map(|(w, m)| w * m.var_pfd(k)).sum();
        let between: f64 = self
            .members
            .iter()
            .map(|(w, m)| {
                let d = m.mean_pfd(k) - mixture_mean;
                w * d * d
            })
            .sum();
        within + between
    }

    /// The between-model component of [`Self::var_pfd`] — the epistemic
    /// part a single-model analysis drops.
    pub fn epistemic_var_pfd(&self, k: u32) -> f64 {
        let mixture_mean = self.mean_pfd(k);
        self.members
            .iter()
            .map(|(w, m)| {
                let d = m.mean_pfd(k) - mixture_mean;
                w * d * d
            })
            .sum()
    }

    /// Predictive probability that a `k`-version system has no (common)
    /// fault: mixes linearly in probability.
    pub fn prob_fault_free(&self, k: u32) -> f64 {
        self.members
            .iter()
            .map(|(w, m)| w * m.prob_fault_free(k))
            .sum()
    }

    /// Predictive eq (10) risk ratio: the ratio of the *mixed* risks
    /// `P(N₂>0)/P(N₁>0)` — **not** the weighted mean of the members'
    /// ratios, which would be wrong (ratios do not mix linearly).
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] if no member can introduce a fault.
    pub fn risk_ratio(&self) -> Result<f64, ModelError> {
        let risk1: f64 = self
            .members
            .iter()
            .map(|(w, m)| w * m.risk_any_fault_single())
            .sum();
        if risk1 == 0.0 {
            return Err(ModelError::Degenerate(
                "risk ratio undefined when no member introduces faults",
            ));
        }
        let risk2: f64 = self
            .members
            .iter()
            .map(|(w, m)| w * m.risk_any_fault_pair())
            .sum();
        Ok(risk2 / risk1)
    }

    /// The worst (largest) `p_max` across members — the conservative value
    /// an assessor should feed into the §5.1 bounds when unsure which
    /// member describes reality.
    pub fn p_max_worst_case(&self) -> f64 {
        self.members
            .iter()
            .map(|(_, m)| m.p_max())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ModelEnsemble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ModelEnsemble({} members, E[PFD1]={:.3e})",
            self.len(),
            self.mean_pfd(1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimist() -> FaultModel {
        FaultModel::uniform(10, 0.02, 1e-3).expect("valid")
    }

    fn pessimist() -> FaultModel {
        FaultModel::uniform(10, 0.2, 1e-3).expect("valid")
    }

    #[test]
    fn construction_and_normalisation() {
        let e = ModelEnsemble::new(vec![(2.0, optimist()), (6.0, pessimist())]).unwrap();
        assert_eq!(e.len(), 2);
        assert!((e.members()[0].0 - 0.25).abs() < 1e-15);
        assert!((e.members()[1].0 - 0.75).abs() < 1e-15);
        assert!(ModelEnsemble::new(vec![]).is_err());
        assert!(ModelEnsemble::new(vec![(-1.0, optimist())]).is_err());
        assert!(ModelEnsemble::new(vec![(0.0, optimist())]).is_err());
        assert!(!e.is_empty());
    }

    #[test]
    fn degenerate_single_member_matches_model() {
        let m = pessimist();
        let e = ModelEnsemble::uniform(vec![m.clone()]).unwrap();
        for k in 1..=3u32 {
            assert!((e.mean_pfd(k) - m.mean_pfd(k)).abs() < 1e-15);
            assert!((e.var_pfd(k) - m.var_pfd(k)).abs() < 1e-15);
            assert!((e.prob_fault_free(k) - m.prob_fault_free(k)).abs() < 1e-15);
        }
        assert_eq!(e.epistemic_var_pfd(1), 0.0);
        assert!((e.risk_ratio().unwrap() - m.risk_ratio().unwrap()).abs() < 1e-15);
    }

    #[test]
    fn predictive_mean_interpolates() {
        let e = ModelEnsemble::uniform(vec![optimist(), pessimist()]).unwrap();
        let mean = e.mean_pfd(1);
        assert!(mean > optimist().mean_pfd_single());
        assert!(mean < pessimist().mean_pfd_single());
        assert!(
            (mean - 0.5 * (optimist().mean_pfd_single() + pessimist().mean_pfd_single())).abs()
                < 1e-15
        );
    }

    #[test]
    fn total_variance_exceeds_average_within_variance() {
        let e = ModelEnsemble::uniform(vec![optimist(), pessimist()]).unwrap();
        let within = 0.5 * (optimist().var_pfd_single() + pessimist().var_pfd_single());
        assert!(e.var_pfd(1) > within);
        assert!((e.var_pfd(1) - within - e.epistemic_var_pfd(1)).abs() < 1e-18);
        assert!(e.epistemic_var_pfd(1) > 0.0);
    }

    #[test]
    fn risk_ratio_is_not_the_mean_of_ratios() {
        let e = ModelEnsemble::uniform(vec![optimist(), pessimist()]).unwrap();
        let mixed = e.risk_ratio().unwrap();
        let mean_of_ratios =
            0.5 * (optimist().risk_ratio().unwrap() + pessimist().risk_ratio().unwrap());
        assert!(
            (mixed - mean_of_ratios).abs() > 1e-3,
            "mixing in ratio space would have been wrong: {mixed} vs {mean_of_ratios}"
        );
        // The mixed ratio is dominated by the pessimist (who contributes
        // almost all the fault risk).
        assert!(mixed > mean_of_ratios);
        assert!(mixed <= 1.0);
    }

    #[test]
    fn worst_case_pmax() {
        let e = ModelEnsemble::uniform(vec![optimist(), pessimist()]).unwrap();
        assert!((e.p_max_worst_case() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn risk_ratio_degenerate() {
        let zero = FaultModel::uniform(2, 0.0, 0.1).expect("valid");
        let e = ModelEnsemble::uniform(vec![zero]).unwrap();
        assert!(e.risk_ratio().is_err());
    }

    #[test]
    fn display_summarises() {
        let e = ModelEnsemble::uniform(vec![optimist()]).unwrap();
        assert!(e.to_string().contains("1 members"));
    }
}
