//! Moments of the PFD distribution — paper §3, equations (1)–(3).
//!
//! In the model, the PFD of a system is a sum of independent contributions,
//! one per potential fault: fault `i` contributes `qᵢ` with probability
//! `pᵢᵏ` (present in all `k` independently developed versions) and `0`
//! otherwise. Means and variances therefore add:
//!
//! * `E[Θₖ]  = Σ pᵢᵏ qᵢ`
//! * `σ²(Θₖ) = Σ pᵢᵏ (1 − pᵢᵏ) qᵢ²`
//!
//! with `k = 1` (single version) and `k = 2` (1-out-of-2 pair) the cases
//! the paper studies.

use crate::fault::FaultModel;

impl FaultModel {
    /// `E[Θₖ] = Σ pᵢᵏ qᵢ` — mean PFD of a system whose failures require
    /// the same fault in `k` independent versions (eq 1 generalised).
    pub fn mean_pfd(&self, k: u32) -> f64 {
        self.faults().iter().map(|f| f.mean_contribution(k)).sum()
    }

    /// `µ₁ = E[Θ₁] = Σ pᵢ qᵢ` (eq 1, single version).
    pub fn mean_pfd_single(&self) -> f64 {
        self.mean_pfd(1)
    }

    /// `µ₂ = E[Θ₂] = Σ pᵢ² qᵢ` (eq 1, 1-out-of-2 pair).
    pub fn mean_pfd_pair(&self) -> f64 {
        self.mean_pfd(2)
    }

    /// `σ²(Θₖ) = Σ pᵢᵏ(1−pᵢᵏ) qᵢ²` (eq 2 generalised).
    pub fn var_pfd(&self, k: u32) -> f64 {
        self.faults()
            .iter()
            .map(|f| f.variance_contribution(k))
            .sum()
    }

    /// `σ²(Θ₁) = Σ pᵢ(1−pᵢ) qᵢ²` (eq 2/5).
    pub fn var_pfd_single(&self) -> f64 {
        self.var_pfd(1)
    }

    /// `σ²(Θ₂) = Σ pᵢ²(1−pᵢ²) qᵢ²` (eq 2/6).
    pub fn var_pfd_pair(&self) -> f64 {
        self.var_pfd(2)
    }

    /// `σ(Θₖ)` — standard deviation of the PFD.
    pub fn std_pfd(&self, k: u32) -> f64 {
        self.var_pfd(k).sqrt()
    }

    /// `σ₁ = σ(Θ₁)`.
    pub fn std_pfd_single(&self) -> f64 {
        self.std_pfd(1)
    }

    /// `σ₂ = σ(Θ₂)`.
    pub fn std_pfd_pair(&self) -> f64 {
        self.std_pfd(2)
    }

    /// Expected number of faults in a single version, `E[N₁] = Σ pᵢ`.
    pub fn mean_fault_count(&self, k: u32) -> f64 {
        self.faults().iter().map(|f| f.p_common(k)).sum()
    }

    /// Third absolute central moment sum `Σ E|Xᵢ−E Xᵢ|³` of the PFD terms
    /// of a `k`-version system — the numerator of the Berry–Esseen
    /// certificate used by [`crate::distribution`].
    pub fn third_abs_moment_sum(&self, k: u32) -> f64 {
        self.faults()
            .iter()
            .map(|f| divrel_numerics::berry_esseen::third_abs_central_moment(f.p_common(k), f.q()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::FaultModel;
    use proptest::prelude::*;

    fn example() -> FaultModel {
        FaultModel::from_params(&[0.1, 0.4, 0.02, 0.9], &[0.02, 0.005, 0.3, 0.001]).unwrap()
    }

    #[test]
    fn eq1_means() {
        let m = example();
        let mu1: f64 = [0.1 * 0.02, 0.4 * 0.005, 0.02 * 0.3, 0.9 * 0.001]
            .iter()
            .sum();
        let mu2: f64 = [0.01 * 0.02, 0.16 * 0.005, 0.0004 * 0.3, 0.81 * 0.001]
            .iter()
            .sum();
        assert!((m.mean_pfd_single() - mu1).abs() < 1e-15);
        assert!((m.mean_pfd_pair() - mu2).abs() < 1e-15);
    }

    #[test]
    fn eq2_variances() {
        let m = example();
        let v1: f64 = [
            0.1 * 0.9 * 0.02 * 0.02,
            0.4 * 0.6 * 0.005 * 0.005,
            0.02 * 0.98 * 0.3 * 0.3,
            0.9 * 0.1 * 0.001 * 0.001,
        ]
        .iter()
        .sum();
        assert!((m.var_pfd_single() - v1).abs() < 1e-16);
        assert!((m.std_pfd_single() - v1.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn pair_mean_is_smaller() {
        let m = example();
        assert!(m.mean_pfd_pair() < m.mean_pfd_single());
    }

    #[test]
    fn k_version_mean_decreases_with_k() {
        let m = example();
        let mut prev = m.mean_pfd(1);
        for k in 2..6 {
            let cur = m.mean_pfd(k);
            assert!(cur <= prev + 1e-18, "k={k}");
            prev = cur;
        }
    }

    #[test]
    fn fault_count_mean() {
        let m = example();
        assert!((m.mean_fault_count(1) - (0.1 + 0.4 + 0.02 + 0.9)).abs() < 1e-15);
        assert!((m.mean_fault_count(2) - (0.01 + 0.16 + 0.0004 + 0.81)).abs() < 1e-15);
    }

    #[test]
    fn third_moment_sum_positive_for_mixed_models() {
        let m = example();
        assert!(m.third_abs_moment_sum(1) > 0.0);
        assert!(m.third_abs_moment_sum(2) > 0.0);
    }

    #[test]
    fn extreme_p_values_have_zero_variance_contribution() {
        let m = FaultModel::from_params(&[0.0, 1.0], &[0.5, 0.5]).unwrap();
        assert_eq!(m.var_pfd_single(), 0.0);
        assert!((m.mean_pfd_single() - 0.5).abs() < 1e-15);
        assert!((m.mean_pfd_pair() - 0.5).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn moments_match_enumeration(
            params in proptest::collection::vec((0.0..=1.0f64, 0.0..0.1f64), 1..10)
        ) {
            let (ps, qs): (Vec<f64>, Vec<f64>) = params.iter().copied().unzip();
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            // Enumerate the full distribution and compare moments.
            let d = divrel_numerics::WeightedBernoulliSum::enumerate(&m.terms(1)).unwrap();
            prop_assert!((d.mean() - m.mean_pfd_single()).abs() < 1e-10);
            prop_assert!((d.variance() - m.var_pfd_single()).abs() < 1e-10);
            let d2 = divrel_numerics::WeightedBernoulliSum::enumerate(&m.terms(2)).unwrap();
            prop_assert!((d2.mean() - m.mean_pfd_pair()).abs() < 1e-10);
            prop_assert!((d2.variance() - m.var_pfd_pair()).abs() < 1e-10);
        }

        #[test]
        fn el_lm_inequality_mean_pair_at_least_product(
            params in proptest::collection::vec((0.0..=1.0f64, 0.0..0.05f64), 1..12)
        ) {
            // The EL/LM conclusion the paper re-derives (§2.2): the average
            // PFD of a pair is at least the product of the averages —
            // independence of *versions* would give µ1², reality gives
            // µ2 = Σ pᵢ²qᵢ ≥ ... (Cauchy-Schwarz-type bound with Σqᵢ ≤ 1).
            let (ps, qs): (Vec<f64>, Vec<f64>) = params.iter().copied().unzip();
            let total_q: f64 = qs.iter().sum();
            prop_assume!(total_q <= 1.0 && total_q > 0.0);
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            // With Σq ≤ 1, E[Θ²-version] ≥ (E[Θ single])² by Jensen on the
            // measure weighted by qᵢ.
            prop_assert!(m.mean_pfd_pair() + 1e-12 >= m.mean_pfd_single().powi(2));
        }
    }
}
