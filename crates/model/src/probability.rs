//! A validated probability newtype.
//!
//! Every parameter of the fault-creation model is a probability (`pᵢ`, the
//! chance a fault is introduced; `qᵢ`, the chance a random demand hits its
//! failure region). Wrapping `f64` in [`Probability`] pushes validation to
//! the construction boundary so that the analysis code can assume `[0, 1]`
//! throughout (C-NEWTYPE / C-VALIDATE).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A probability: an `f64` guaranteed to be finite and within `[0, 1]`.
///
/// ```
/// use divrel_model::Probability;
///
/// let p = Probability::new(0.25)?;
/// assert_eq!(p.value(), 0.25);
/// assert_eq!(p.complement().value(), 0.75);
/// assert!(Probability::new(1.5).is_err());
/// # Ok::<(), divrel_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Probability(f64);

impl Probability {
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);

    /// Validates and wraps a raw value.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] if `value` is NaN, infinite, or
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(ModelError::InvalidProbability(value))
        }
    }

    /// The raw value in `[0, 1]`.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// `1 − p`, the probability of the complementary event.
    pub fn complement(&self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// `p²` — the probability that an independent pair of developments both
    /// make the same mistake (the paper's central quantity for 1oo2).
    pub fn squared(&self) -> Probability {
        Probability(self.0 * self.0)
    }

    /// `p^k` — common-mistake probability across `k` independent
    /// developments.
    pub fn powi(&self, k: u32) -> Probability {
        Probability(self.0.powi(k as i32))
    }

    /// Product of two probabilities (probability of two independent events
    /// both occurring).
    pub fn and(&self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// Probability of at least one of two independent events:
    /// `1 − (1−a)(1−b)`.
    pub fn or_independent(&self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Whether this probability is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0.0
    }

    /// Whether this probability is exactly one.
    pub fn is_one(&self) -> bool {
        self.0 == 1.0
    }

    /// Clamped constructor: saturates out-of-range finite values to the
    /// nearest bound instead of failing. Useful when a downstream
    /// computation produces `1 + 1e-17`-style round-off.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidProbability`] only for NaN/infinite input.
    pub fn new_clamped(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() {
            Ok(Probability(value.clamp(0.0, 1.0)))
        } else {
            Err(ModelError::InvalidProbability(value))
        }
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl TryFrom<f64> for Probability {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

impl Default for Probability {
    fn default() -> Self {
        Probability::ZERO
    }
}

// Probabilities are totally ordered because NaN is excluded at construction.
impl Eq for Probability {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Probability {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(-0.001).is_err());
        assert!(Probability::new(1.001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_construction() {
        assert_eq!(
            Probability::new_clamped(1.0 + 1e-17).unwrap(),
            Probability::ONE
        );
        assert_eq!(Probability::new_clamped(-1e-17).unwrap(), Probability::ZERO);
        assert!(Probability::new_clamped(f64::NAN).is_err());
    }

    #[test]
    fn algebra() {
        let p = Probability::new(0.2).unwrap();
        let q = Probability::new(0.5).unwrap();
        assert!((p.complement().value() - 0.8).abs() < 1e-15);
        assert!((p.squared().value() - 0.04).abs() < 1e-15);
        assert!((p.powi(3).value() - 0.008).abs() < 1e-15);
        assert!((p.and(q).value() - 0.1).abs() < 1e-15);
        assert!((p.or_independent(q).value() - 0.6).abs() < 1e-15);
        assert!(Probability::ZERO.is_zero());
        assert!(Probability::ONE.is_one());
    }

    #[test]
    fn conversions() {
        let p: Probability = 0.3_f64.try_into().unwrap();
        let raw: f64 = p.into();
        assert_eq!(raw, 0.3);
        let bad: Result<Probability, _> = 2.0_f64.try_into();
        assert!(bad.is_err());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Probability::new(0.9).unwrap(),
            Probability::new(0.1).unwrap(),
            Probability::new(0.5).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].value(), 0.1);
        assert_eq!(v[2].value(), 0.9);
        assert_eq!(v.iter().max().unwrap().value(), 0.9);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Probability::new(0.25).unwrap().to_string(), "0.25");
    }

    #[test]
    fn serde_round_trip() {
        let p = Probability::new(0.125).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "0.125");
        let back: Probability = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // Invalid values are rejected at deserialisation time.
        let bad: Result<Probability, _> = serde_json::from_str("1.5");
        assert!(bad.is_err());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Probability::default(), Probability::ZERO);
    }
}
