//! The demand compiler: analytic quiet-gap sampling for Markov plants.
//!
//! PR 1 gave memoryless (rate) plants a geometric demand-gap fast path;
//! state-dependent plants still paid one RNG draw per tick. This module
//! extends the "exploit the stochastic structure instead of simulating
//! it" idea to any plant that can state its exact one-step law
//! ([`crate::plant::Plant::transition_row`]):
//!
//! 1. **Compile.** For every plant state `s`, split the transition row
//!    into the *demand* mass (successors inside the trip set), the quiet
//!    *self-loop* mass `R(s, s)`, and the quiet *move* mass. Build one
//!    Walker–Vose alias table per state over each of the two non-self
//!    successor classes.
//! 2. **Sample.** The number of consecutive ticks the chain holds in `s`
//!    before an exit (demand or move) is geometric with parameter
//!    `p_exit(s) = 1 − R(s, s)` (self-loops inside the trip set count as
//!    demands, not holds), so the whole dwell is one `ln` draw. The exit
//!    tick is a demand with probability `p_demand(s) / p_exit(s)`, and
//!    the successor is one alias lookup.
//!
//! The compiled process is **exactly** the chain the tick loop simulates
//! — the decomposition is algebra, not approximation — so compiled and
//! stepwise runs are statistically indistinguishable (the repository's
//! chi-squared equivalence suite holds this to account). The win is the
//! work per *event* instead of per tick: a plant that dwells `1/p`
//! ticks per operating point does `~p · steps` iterations instead of
//! `steps`.
//!
//! Plants whose law cannot be enumerated (the rate plant, or spaces
//! beyond [`MAX_COMPILED_CELLS`]) are simply not compilable —
//! [`CompiledPlant::compile`] returns `None` and the simulation driver
//! degrades gracefully to the tick loop.

use crate::error::ProtectionError;
use crate::plant::Plant;
use divrel_demand::space::{Demand, GridSpace2D};
use rand::Rng;

/// Largest demand-space cell count the compiler will enumerate. Each
/// cell stores a handful of floats plus its alias rows, so this bounds
/// compile time and memory for pathological spaces; larger plants fall
/// back to tick-by-tick simulation.
pub const MAX_COMPILED_CELLS: usize = 1 << 22;

/// What the compiled sampler produced for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledEvent {
    /// A demand occurred after `quiet_gap` quiet ticks (the demand tick
    /// itself is not counted in the gap). Total ticks consumed:
    /// `quiet_gap + 1`.
    Demand {
        /// Quiet ticks that preceded the demand.
        quiet_gap: u64,
        /// The demand raised (also the plant's new state).
        demand: Demand,
    },
    /// The tick budget ran out with no demand; all `ticks` were quiet.
    Quiet {
        /// Quiet ticks consumed (the whole requested budget).
        ticks: u64,
    },
}

/// A plant compiled to per-state analytic demand-gap samplers.
///
/// ```
/// use divrel_demand::region::Region;
/// use divrel_demand::space::GridSpace2D;
/// use divrel_protection::compiler::{CompiledEvent, CompiledPlant};
/// use divrel_protection::plant::Plant;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = GridSpace2D::new(40, 40)?;
/// let plant = Plant::markov_walk(space, Region::rect(0, 0, 2, 2), 2, 0.05)?;
/// let compiled = CompiledPlant::compile(&plant)?.expect("markov plants compile");
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut state = compiled.initial_state();
/// match compiled.next_demand(&mut state, 1_000_000, &mut rng) {
///     CompiledEvent::Demand { demand, .. } => assert!(demand.var1 <= 2),
///     CompiledEvent::Quiet { ticks } => assert_eq!(ticks, 1_000_000),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPlant {
    space: GridSpace2D,
    start: u32,
    /// `1 − R(s, s)` with self-loops inside the trip set counted as
    /// exits (they are demands).
    exit_prob: Vec<f64>,
    /// `1 / ln(R(s, s))` — the geometric dwell sampler's constant; `0.0`
    /// encodes "exit every tick" (no quiet self-loop mass).
    inv_log_hold: Vec<f64>,
    /// `p_demand(s) / p_exit(s)`; meaningless (0) where `p_exit = 0`.
    demand_given_exit: Vec<f64>,
    quiet_moves: AliasForest,
    demands: AliasForest,
}

impl CompiledPlant {
    /// Compiles `plant`, or returns `None` when the plant does not expose
    /// an enumerable transition law (rate plants) or its space exceeds
    /// [`MAX_COMPILED_CELLS`].
    ///
    /// Compilation costs `O(cells × successors)`; one compiled plant can
    /// drive any number of runs (it is immutable and `Sync`, so sharded
    /// campaigns share a single instance across threads).
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] if a transition row is not a
    /// probability distribution (a plant-implementation bug, not a
    /// caller error).
    pub fn compile(plant: &Plant) -> Result<Option<Self>, ProtectionError> {
        let space = *plant.space();
        let cells = space.cell_count();
        if cells > MAX_COMPILED_CELLS || plant.transition_row(plant.initial_state()).is_none() {
            return Ok(None);
        }
        let trip_set = plant
            .trip_set()
            .expect("plants with transition rows have trip sets");
        // Bit per cell: is this cell a demand when entered?
        let mut trip_bits = vec![0u64; cells.div_ceil(64)];
        for cell in trip_set.cell_indices(&space) {
            trip_bits[cell / 64] |= 1u64 << (cell % 64);
        }
        let in_trip = |cell: usize| trip_bits[cell / 64] >> (cell % 64) & 1 == 1;

        let mut exit_prob = Vec::with_capacity(cells);
        let mut inv_log_hold = Vec::with_capacity(cells);
        let mut demand_given_exit = Vec::with_capacity(cells);
        let mut quiet_builder = AliasForestBuilder::new(cells);
        let mut demand_builder = AliasForestBuilder::new(cells);
        let mut quiet_row: Vec<(u32, f64)> = Vec::new();
        let mut demand_row: Vec<(u32, f64)> = Vec::new();
        for cell in 0..cells {
            let state = space.demand_at(cell).expect("cell index in range");
            let row = plant
                .transition_row(state)
                .expect("compilable plant has rows for every state");
            let mut hold = 0.0;
            let mut p_demand = 0.0;
            let mut p_move = 0.0;
            let mut total = 0.0;
            quiet_row.clear();
            demand_row.clear();
            for (succ, p) in row {
                let t = space.index_of(succ).map_err(|e| {
                    ProtectionError::InvalidConfig(format!(
                        "transition row of {state} leaves the space: {e}"
                    ))
                })?;
                total += p;
                if in_trip(t) {
                    p_demand += p;
                    demand_row.push((t as u32, p));
                } else if t == cell {
                    hold += p;
                } else {
                    p_move += p;
                    quiet_row.push((t as u32, p));
                }
            }
            if (total - 1.0).abs() > 1e-9 || total.is_nan() {
                return Err(ProtectionError::InvalidConfig(format!(
                    "transition row of {state} has mass {total}, expected 1"
                )));
            }
            let p_exit = p_demand + p_move;
            exit_prob.push(p_exit);
            inv_log_hold.push(if hold > 0.0 { hold.ln().recip() } else { 0.0 });
            demand_given_exit.push(if p_exit > 0.0 { p_demand / p_exit } else { 0.0 });
            quiet_builder.push_state(&quiet_row);
            demand_builder.push_state(&demand_row);
        }
        let start = space
            .index_of(plant.initial_state())
            .expect("initial state in space") as u32;
        Ok(Some(CompiledPlant {
            space,
            start,
            exit_prob,
            inv_log_hold,
            demand_given_exit,
            quiet_moves: quiet_builder.finish(),
            demands: demand_builder.finish(),
        }))
    }

    /// Whether compiling `plant` is likely to beat the tick loop for a
    /// one-shot run: true when the plant is *sticky* (the quiet
    /// self-loop mass at its initial state is at least 1/2, i.e. the
    /// chain dwells ≥ 2 ticks per state on average). Fast-mixing plants
    /// (e.g. plain trajectories, whose hold mass is `1/(2·step+1)²`)
    /// spend more on per-event sampling plus compilation than the tick
    /// loop costs, so the driver leaves them on the exact stepwise path.
    ///
    /// This is a cheap probe — one transition row at the initial state —
    /// not a compilation. Callers that reuse one [`CompiledPlant`]
    /// across many runs (sharded campaigns, repeated experiments) can
    /// ignore it and compile unconditionally: the compiled sampler is
    /// never *wrong*, only unprofitable for thin workloads.
    pub fn is_profitable(plant: &Plant) -> bool {
        let state = plant.initial_state();
        match plant.transition_row(state) {
            None => false,
            Some(row) => {
                let hold: f64 = row
                    .iter()
                    .filter(|(d, _)| *d == state)
                    .map(|&(_, p)| p)
                    .sum();
                // Holding inside the trip set is a demand, not a dwell.
                let quiet_hold = match plant.trip_set() {
                    Some(trip) if trip.contains(state) => 0.0,
                    _ => hold,
                };
                quiet_hold >= 0.5
            }
        }
    }

    /// The demand space of the compiled plant.
    pub fn space(&self) -> &GridSpace2D {
        &self.space
    }

    /// Number of compiled states (demand-space cells).
    pub fn states(&self) -> usize {
        self.exit_prob.len()
    }

    /// The plant's initial state as a cell index.
    pub fn initial_state(&self) -> u32 {
        self.start
    }

    /// Per-state demand probability `P(next tick is a demand | state)` —
    /// exposed for diagnostics and tests.
    pub fn demand_prob(&self, cell: usize) -> f64 {
        self.exit_prob[cell] * self.demand_given_exit[cell]
    }

    /// Advances the chain until the next demand or until `budget` ticks
    /// are consumed, whichever comes first, updating `state` in place.
    ///
    /// Equivalent in distribution to calling [`Plant::step`] `budget`
    /// times and stopping at the first demand — but the cost is one
    /// geometric draw plus one **fused** exit draw per *state change*,
    /// not per tick. The exit tick used to spend up to three uniforms
    /// (demand-vs-move coin, alias bucket, alias coin); one uniform now
    /// covers all three where the chain's branch masses allow it (see
    /// [`branch_uniform`]), halving the RNG work per state change.
    pub fn next_demand<R: Rng + ?Sized>(
        &self,
        state: &mut u32,
        budget: u64,
        rng: &mut R,
    ) -> CompiledEvent {
        let mut quiet = 0u64;
        while quiet < budget {
            let s = *state as usize;
            let p_exit = self.exit_prob[s];
            if p_exit <= 0.0 {
                // Absorbing quiet state: every remaining tick is quiet.
                return CompiledEvent::Quiet { ticks: budget };
            }
            let left = budget - quiet;
            let dwell = crate::simulation::geometric_gap(self.inv_log_hold[s], left, rng);
            if dwell >= left {
                return CompiledEvent::Quiet { ticks: budget };
            }
            quiet += dwell;
            // The exit tick itself: demand or quiet move, plus the
            // successor alias lookup, all from one uniform.
            let u: f64 = rng.gen();
            let dge = self.demand_given_exit[s];
            if u < dge {
                let v = branch_uniform(u, 0.0, dge, rng);
                let cell = self.demands.sample_with(s, v);
                *state = cell;
                return CompiledEvent::Demand {
                    quiet_gap: quiet,
                    demand: self
                        .space
                        .demand_at(cell as usize)
                        .expect("compiled successor in range"),
                };
            }
            quiet += 1;
            *state = self
                .quiet_moves
                .sample_with(s, branch_uniform(u, dge, 1.0 - dge, rng));
        }
        CompiledEvent::Quiet { ticks: budget }
    }
}

/// Smallest branch mass whose conditional uniform is recycled. Below
/// this, `(u − lo) / width` would stretch a `2⁻⁵³`-granular uniform past
/// ~33 bits of resolution, so the sampler pays one fresh draw instead
/// of biasing the alias lookup. Branches this improbable are taken
/// ~once per million state changes, so the fallback costs nothing
/// measurable.
const FUSE_MIN_BRANCH: f64 = 1.0 / (1u64 << 20) as f64;

/// Largest `f64` below 1.0 — keeps a recycled uniform inside `[0, 1)`.
const ONE_BELOW: f64 = 1.0 - f64::EPSILON / 2.0;

/// The conditional uniform of a branch decision: given `u` uniform on
/// `[0, 1)` and the taken branch covering `[lo, lo + width)`,
/// `(u − lo) / width` is again uniform on `[0, 1)` — algebra, not
/// approximation — so the draw that picked the branch is **reused** for
/// the successor alias lookup. Branches too thin to rescale without
/// losing resolution ([`FUSE_MIN_BRANCH`]) draw fresh.
#[inline]
fn branch_uniform<R: Rng + ?Sized>(u: f64, lo: f64, width: f64, rng: &mut R) -> f64 {
    if width >= FUSE_MIN_BRANCH {
        ((u - lo) / width).clamp(0.0, ONE_BELOW)
    } else {
        rng.gen()
    }
}

/// Per-state Walker–Vose alias tables over variable-length successor
/// lists, stored flat: state `s` owns entries `offsets[s]..offsets[s+1]`.
#[derive(Debug, Clone)]
struct AliasForest {
    offsets: Vec<u32>,
    cells: Vec<u32>,
    accept: Vec<f64>,
    /// Alias index *within the state's segment*.
    alias: Vec<u32>,
}

impl AliasForest {
    /// Draws one successor cell for `state`. Must not be called for a
    /// state with an empty segment (the caller's branch probabilities
    /// guarantee this).
    #[inline]
    #[cfg(test)]
    fn sample<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> u32 {
        self.sample_with(state, rng.gen())
    }

    /// Draws one successor cell for `state` from a **single** uniform
    /// `v ∈ [0, 1)`: `⌊v·n⌋` picks the bucket and the fractional part
    /// `v·n − ⌊v·n⌋` — independent of the bucket and itself uniform —
    /// plays the accept/alias coin. One draw where Walker–Vose is
    /// usually written with two.
    #[inline]
    fn sample_with(&self, state: usize, v: f64) -> u32 {
        let lo = self.offsets[state] as usize;
        let n = self.offsets[state + 1] as usize - lo;
        debug_assert!(n > 0, "alias sample from empty successor set");
        debug_assert!((0.0..1.0).contains(&v), "alias uniform out of range: {v}");
        if n == 1 {
            return self.cells[lo];
        }
        let scaled = v * n as f64;
        let i = (scaled as usize).min(n - 1);
        let coin = scaled - i as f64;
        let k = if coin < self.accept[lo + i] {
            i
        } else {
            self.alias[lo + i] as usize
        };
        self.cells[lo + k]
    }
}

struct AliasForestBuilder {
    offsets: Vec<u32>,
    cells: Vec<u32>,
    accept: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasForestBuilder {
    fn new(states: usize) -> Self {
        let mut offsets = Vec::with_capacity(states + 1);
        offsets.push(0);
        AliasForestBuilder {
            offsets,
            cells: Vec::new(),
            accept: Vec::new(),
            alias: Vec::new(),
        }
    }

    /// Appends one state's successor distribution (`(cell, weight)`
    /// pairs, weights positive but not necessarily normalised).
    fn push_state(&mut self, row: &[(u32, f64)]) {
        let n = row.len();
        if n > 0 {
            let total: f64 = row.iter().map(|&(_, w)| w).sum();
            // Walker–Vose: split entries into under/over-full relative to
            // the uniform share, pairing each under-full entry with an
            // over-full alias.
            let mut scaled: Vec<f64> = row.iter().map(|&(_, w)| w * n as f64 / total).collect();
            let mut alias = vec![0u32; n];
            let mut accept = vec![1.0f64; n];
            let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
            let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();
            while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
                small.pop();
                accept[s] = scaled[s];
                alias[s] = l as u32;
                scaled[l] -= 1.0 - scaled[s];
                if scaled[l] < 1.0 {
                    large.pop();
                    small.push(l);
                }
            }
            // Leftovers (numerical residue) accept unconditionally.
            for &i in small.iter().chain(large.iter()) {
                accept[i] = 1.0;
            }
            self.cells.extend(row.iter().map(|&(c, _)| c));
            self.accept.extend_from_slice(&accept);
            self.alias.extend_from_slice(&alias);
        }
        self.offsets.push(self.cells.len() as u32);
    }

    fn finish(self) -> AliasForest {
        AliasForest {
            offsets: self.offsets,
            cells: self.cells,
            accept: self.accept,
            alias: self.alias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::PlantEvent;
    use divrel_demand::profile::Profile;
    use divrel_demand::region::Region;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn markov_plant() -> Plant {
        let space = GridSpace2D::new(30, 30).unwrap();
        Plant::markov_walk(space, Region::rect(0, 0, 3, 3), 2, 0.2).unwrap()
    }

    #[test]
    fn profitability_probe_prefers_sticky_plants() {
        let s = GridSpace2D::new(20, 20).unwrap();
        let trip = Region::rect(0, 0, 2, 2);
        // Fast-mixing trajectory: hold mass 1/25 — not worth compiling.
        let traj = Plant::trajectory(s, trip.clone(), 2).unwrap();
        assert!(!CompiledPlant::is_profitable(&traj));
        // Sticky Markov walk: hold mass ~0.9 — compiled wins.
        let sticky = Plant::markov_walk(s, trip.clone(), 2, 0.1).unwrap();
        assert!(CompiledPlant::is_profitable(&sticky));
        // Barely-moving walk right at move_prob 1: same as trajectory.
        let jumpy = Plant::markov_walk(s, trip, 2, 1.0).unwrap();
        assert!(!CompiledPlant::is_profitable(&jumpy));
        // Rate plants have no rows at all.
        let rate = Plant::with_demand_rate(Profile::uniform(&s), 0.1).unwrap();
        assert!(!CompiledPlant::is_profitable(&rate));
    }

    #[test]
    fn rate_plants_do_not_compile() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let plant = Plant::with_demand_rate(Profile::uniform(&s), 0.1).unwrap();
        assert!(CompiledPlant::compile(&plant).unwrap().is_none());
    }

    #[test]
    fn trajectory_and_markov_plants_compile() {
        let s = GridSpace2D::new(20, 20).unwrap();
        let t = Plant::trajectory(s, Region::rect(0, 0, 2, 2), 1).unwrap();
        let c = CompiledPlant::compile(&t).unwrap().unwrap();
        assert_eq!(c.states(), 400);
        assert_eq!(c.initial_state(), 10 * 20 + 10);
        let m = markov_plant();
        assert!(CompiledPlant::compile(&m).unwrap().is_some());
    }

    #[test]
    fn demand_prob_matches_row_mass_into_trip_set() {
        let plant = markov_plant();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let space = *plant.space();
        let trip = plant.trip_set().unwrap().clone();
        for cell in [0usize, 5, 62, 200, 465, 899] {
            let state = space.demand_at(cell).unwrap();
            let want: f64 = plant
                .transition_row(state)
                .unwrap()
                .iter()
                .filter(|(d, _)| trip.contains(*d))
                .map(|&(_, p)| p)
                .sum();
            assert!(
                (c.demand_prob(cell) - want).abs() < 1e-12,
                "cell {cell}: {} vs {want}",
                c.demand_prob(cell)
            );
        }
    }

    #[test]
    fn next_demand_respects_budget_and_lands_in_trip_set() {
        let plant = markov_plant();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let trip = plant.trip_set().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = c.initial_state();
        let mut budget_hits = 0;
        let mut demands = 0;
        for _ in 0..200 {
            match c.next_demand(&mut state, 3_000, &mut rng) {
                CompiledEvent::Demand { quiet_gap, demand } => {
                    assert!(quiet_gap < 3_000);
                    assert!(trip.contains(demand));
                    assert_eq!(
                        state as usize,
                        c.space().index_of(demand).unwrap(),
                        "state must follow the demand"
                    );
                    demands += 1;
                }
                CompiledEvent::Quiet { ticks } => {
                    assert_eq!(ticks, 3_000);
                    budget_hits += 1;
                }
            }
        }
        assert!(demands > 0, "compiled sampler never produced a demand");
        // With a 16-cell trip set on 900 cells and slow mixing, some
        // 3000-tick windows should be demand-free too.
        assert!(budget_hits > 0, "budget cap never exercised");
        // Zero budget is all-quiet.
        assert_eq!(
            c.next_demand(&mut state, 0, &mut rng),
            CompiledEvent::Quiet { ticks: 0 }
        );
    }

    #[test]
    fn degenerate_single_cell_space_demands_every_tick() {
        // A 1×1 space with the trip set on its only cell: every tick
        // re-enters the trip set, so the compiled demand gap is always 0.
        let s = GridSpace2D::new(1, 1).unwrap();
        let plant = Plant::markov_walk(s, Region::rect(0, 0, 0, 0), 1, 1.0).unwrap();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = c.initial_state();
        match c.next_demand(&mut state, 10, &mut rng) {
            CompiledEvent::Demand { quiet_gap, .. } => assert_eq!(quiet_gap, 0),
            other => panic!("expected an immediate demand, got {other:?}"),
        }
    }

    #[test]
    fn interval_distribution_matches_stepwise_simulation() {
        // The compiled sampler and the tick loop are the same process:
        // compare mean demand interval over many demands.
        let plant = markov_plant();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let demands_wanted = 4_000;

        let mut rng = StdRng::seed_from_u64(10);
        let mut state = c.initial_state();
        let mut compiled_gaps = Vec::with_capacity(demands_wanted);
        while compiled_gaps.len() < demands_wanted {
            if let CompiledEvent::Demand { quiet_gap, .. } =
                c.next_demand(&mut state, u64::MAX, &mut rng)
            {
                compiled_gaps.push(quiet_gap as f64);
            }
        }

        let mut rng = StdRng::seed_from_u64(11);
        let mut s = plant.initial_state();
        let mut stepwise_gaps = Vec::with_capacity(demands_wanted);
        let mut gap = 0u64;
        while stepwise_gaps.len() < demands_wanted {
            let (next, ev) = plant.step(s, &mut rng);
            s = next;
            match ev {
                PlantEvent::Quiet => gap += 1,
                PlantEvent::Demand(_) => {
                    stepwise_gaps.push(gap as f64);
                    gap = 0;
                }
            }
        }

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mc, ms) = (mean(&compiled_gaps), mean(&stepwise_gaps));
        // Heavy-tailed-ish intervals: compare means within 10%.
        assert!(
            (mc - ms).abs() / ms < 0.1,
            "compiled mean gap {mc} vs stepwise {ms}"
        );
    }

    #[test]
    fn alias_forest_reproduces_weights() {
        let mut b = AliasForestBuilder::new(2);
        b.push_state(&[(0, 0.1), (1, 0.3), (2, 0.6)]);
        b.push_state(&[]);
        let f = b.finish();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[f.sample(0, &mut rng) as usize] += 1;
        }
        for (i, want) in [0.1, 0.3, 0.6].iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - want).abs() < 0.01, "cell {i}: {freq} vs {want}");
        }
    }

    #[test]
    fn single_uniform_alias_reproduces_weights_exactly_on_a_grid() {
        // Sweep a dense uniform grid through sample_with: the measure of
        // v-values landing on each cell must equal the cell's weight to
        // grid resolution — the single-draw lookup is exact, not
        // approximate.
        let weights = [0.15, 0.05, 0.5, 0.3];
        let mut b = AliasForestBuilder::new(1);
        b.push_state(&[
            (0, weights[0]),
            (1, weights[1]),
            (2, weights[2]),
            (3, weights[3]),
        ]);
        let f = b.finish();
        let grid = 400_000usize;
        let mut counts = [0u64; 4];
        for k in 0..grid {
            let v = (k as f64 + 0.5) / grid as f64;
            counts[f.sample_with(0, v) as usize] += 1;
        }
        for (i, want) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / grid as f64;
            assert!(
                (freq - want).abs() < 2e-5,
                "cell {i}: measure {freq} vs weight {want}"
            );
        }
        // The extreme uniforms stay in range.
        let _ = f.sample_with(0, 0.0);
        let _ = f.sample_with(0, ONE_BELOW);
    }

    #[test]
    fn branch_uniform_rescales_wide_branches_and_redraws_thin_ones() {
        let mut rng = StdRng::seed_from_u64(9);
        // Wide branch: pure algebra, no draw, linear map onto [0, 1).
        let v = branch_uniform(0.25, 0.2, 0.4, &mut rng);
        assert!((v - 0.125).abs() < 1e-15);
        let v = branch_uniform(0.599_999, 0.2, 0.4, &mut rng);
        assert!(v < 1.0);
        assert!((0.0..1.0).contains(&branch_uniform(0.2, 0.2, 0.4, &mut rng)));
        // Rounding at the top edge clamps inside [0, 1).
        assert!(branch_uniform(0.6, 0.2, 0.4, &mut rng) < 1.0);
        // Thin branch: the recycled uniform would have too little
        // resolution, so a fresh draw is taken instead (the two calls
        // advance the stream — their outputs differ).
        let thin = FUSE_MIN_BRANCH / 4.0;
        let a = branch_uniform(thin / 2.0, 0.0, thin, &mut rng);
        let b = branch_uniform(thin / 2.0, 0.0, thin, &mut rng);
        assert_ne!(a.to_bits(), b.to_bits(), "thin branch must redraw");
        assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
    }
}
