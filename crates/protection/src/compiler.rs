//! The demand compiler: analytic quiet-gap sampling for Markov plants.
//!
//! PR 1 gave memoryless (rate) plants a geometric demand-gap fast path;
//! state-dependent plants still paid one RNG draw per tick. This module
//! extends the "exploit the stochastic structure instead of simulating
//! it" idea to any plant that can state its exact one-step law
//! ([`crate::plant::Plant::transition_row`]):
//!
//! 1. **Compile.** For every plant state `s`, split the transition row
//!    into the *demand* mass (successors inside the trip set), the quiet
//!    *self-loop* mass `R(s, s)`, and the quiet *move* mass. Build one
//!    Walker–Vose alias table per state over each of the two non-self
//!    successor classes.
//! 2. **Sample.** The number of consecutive ticks the chain holds in `s`
//!    before an exit (demand or move) is geometric with parameter
//!    `p_exit(s) = 1 − R(s, s)` (self-loops inside the trip set count as
//!    demands, not holds), so the whole dwell is one `ln` draw. The exit
//!    tick is a demand with probability `p_demand(s) / p_exit(s)`, and
//!    the successor is one alias lookup.
//!
//! The compiled process is **exactly** the chain the tick loop simulates
//! — the decomposition is algebra, not approximation — so compiled and
//! stepwise runs are statistically indistinguishable (the repository's
//! chi-squared equivalence suite holds this to account). The win is the
//! work per *event* instead of per tick: a plant that dwells `1/p`
//! ticks per operating point does `~p · steps` iterations instead of
//! `steps`.
//!
//! Two backends share the per-state algebra:
//!
//! * **Eager** (spaces up to [`MAX_COMPILED_CELLS`]): every state is
//!   compiled up front into flat arrays — the densest, fastest layout
//!   when the whole space fits.
//! * **Sparse** (spaces up to [`MAX_SPARSE_CELLS`]): states are compiled
//!   **on first visit** into a hash-indexed table behind a mutex, with
//!   one reusable [`RowScratch`](crate::plant::RowScratch) so the lazy
//!   builds allocate nothing per probed row. A slow-mixing chain visits
//!   a vanishing fraction of a 16M-cell space, so huge plants now ride
//!   the analytic fast path instead of falling back to the tick loop.
//!   [`CompiledPlant::occupancy`] reports the visited fraction.
//!
//! Both backends build their tables with the same functions from the
//! same exact rows and consume identically many RNG draws, so for any
//! plant the eager compiler accepts, sparse and eager runs are
//! **bit-identical** (held to account by this module's tests and the
//! `markov_sparse` bench row's pre-measure assertion).
//!
//! Plants whose law cannot be enumerated (the rate plant, or spaces
//! beyond [`MAX_SPARSE_CELLS`]) are simply not compilable —
//! [`CompiledPlant::compile`] returns `None` and the simulation driver
//! degrades gracefully to the tick loop.

use crate::error::ProtectionError;
use crate::plant::{Plant, RowScratch};
use divrel_demand::space::{Demand, GridSpace2D};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Largest demand-space cell count the compiler will enumerate
/// **eagerly**. Each cell stores a handful of floats plus its alias
/// rows, so this bounds up-front compile time and memory; larger plants
/// switch to the sparse on-demand backend instead of falling back to
/// tick-by-tick simulation.
pub const MAX_COMPILED_CELLS: usize = 1 << 22;

/// Largest demand-space cell count the **sparse** backend accepts. The
/// per-state tables are built lazily, so this bounds only the trip-set
/// bitmap (one bit per cell) and the cell-index width, not compile
/// time; beyond it plants are not compilable at all.
pub const MAX_SPARSE_CELLS: usize = 1 << 28;

/// What the compiled sampler produced for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledEvent {
    /// A demand occurred after `quiet_gap` quiet ticks (the demand tick
    /// itself is not counted in the gap). Total ticks consumed:
    /// `quiet_gap + 1`.
    Demand {
        /// Quiet ticks that preceded the demand.
        quiet_gap: u64,
        /// The demand raised (also the plant's new state).
        demand: Demand,
    },
    /// The tick budget ran out with no demand; all `ticks` were quiet.
    Quiet {
        /// Quiet ticks consumed (the whole requested budget).
        ticks: u64,
    },
}

/// A plant compiled to per-state analytic demand-gap samplers.
///
/// ```
/// use divrel_demand::region::Region;
/// use divrel_demand::space::GridSpace2D;
/// use divrel_protection::compiler::{CompiledEvent, CompiledPlant};
/// use divrel_protection::plant::Plant;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = GridSpace2D::new(40, 40)?;
/// let plant = Plant::markov_walk(space, Region::rect(0, 0, 2, 2), 2, 0.05)?;
/// let compiled = CompiledPlant::compile(&plant)?.expect("markov plants compile");
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut state = compiled.initial_state();
/// match compiled.next_demand(&mut state, 1_000_000, &mut rng) {
///     CompiledEvent::Demand { demand, .. } => assert!(demand.var1 <= 2),
///     CompiledEvent::Quiet { ticks } => assert_eq!(ticks, 1_000_000),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPlant {
    space: GridSpace2D,
    start: u32,
    backend: Backend,
}

#[derive(Debug, Clone)]
enum Backend {
    Eager(EagerTables),
    Sparse(SparseTables),
}

/// The dwell/branch parameters of one compiled state.
#[derive(Debug, Clone, Copy)]
struct StateParams {
    /// `1 − R(s, s)` with self-loops inside the trip set counted as
    /// exits (they are demands).
    exit_prob: f64,
    /// `1 / ln(R(s, s))` — the geometric dwell sampler's constant; `0.0`
    /// encodes "exit every tick" (no quiet self-loop mass).
    inv_log_hold: f64,
    /// `p_demand(s) / p_exit(s)`; meaningless (0) where `p_exit = 0`.
    demand_given_exit: f64,
}

/// The eager backend: every state compiled up front into flat arrays.
#[derive(Debug, Clone)]
struct EagerTables {
    exit_prob: Vec<f64>,
    inv_log_hold: Vec<f64>,
    demand_given_exit: Vec<f64>,
    quiet_moves: AliasForest,
    demands: AliasForest,
}

/// The sparse backend: states compiled on first visit into a
/// hash-indexed table. The mutex is taken once per **state change**
/// (lookups amortise over the geometric dwell, not per tick), and the
/// scratch buffers live inside it so concurrent shards share one set.
struct SparseTables {
    plant: Plant,
    /// Bit per cell: is this cell a demand when entered? Same bitmap
    /// the eager compiler builds, so trip classification is identical.
    trip_bits: Vec<u64>,
    inner: Mutex<SparseInner>,
}

struct SparseInner {
    states: HashMap<u32, Arc<StateRow>>,
    scratch: CompileScratch,
}

/// One lazily-compiled state: parameters plus its two alias rows.
#[derive(Debug)]
struct StateRow {
    params: StateParams,
    demand_cells: Box<[u32]>,
    demand_accept: Box<[f64]>,
    demand_alias: Box<[u32]>,
    quiet_cells: Box<[u32]>,
    quiet_accept: Box<[f64]>,
    quiet_alias: Box<[u32]>,
}

impl std::fmt::Debug for SparseTables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let compiled = self
            .inner
            .lock()
            .expect("sparse compiler lock")
            .states
            .len();
        f.debug_struct("SparseTables")
            .field("compiled_states", &compiled)
            .finish_non_exhaustive()
    }
}

impl Clone for SparseTables {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().expect("sparse compiler lock");
        SparseTables {
            plant: self.plant.clone(),
            trip_bits: self.trip_bits.clone(),
            inner: Mutex::new(SparseInner {
                states: inner.states.clone(),
                scratch: CompileScratch::default(),
            }),
        }
    }
}

impl CompiledPlant {
    /// Compiles `plant`, or returns `None` when the plant does not expose
    /// an enumerable transition law (rate plants) or its space exceeds
    /// [`MAX_SPARSE_CELLS`].
    ///
    /// Spaces up to [`MAX_COMPILED_CELLS`] compile eagerly
    /// (`O(cells × successors)` once, the densest hot-path layout);
    /// larger spaces compile **sparsely** — `O(1)` up front, each state
    /// built on first visit — so a 4096×4096 plant pays only for the
    /// states its chain actually reaches. One compiled plant can drive
    /// any number of runs (it is `Sync`, so sharded campaigns share a
    /// single instance across threads), and for any plant both backends
    /// accept, their event streams are bit-identical.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] if a transition row is not a
    /// probability distribution (a plant-implementation bug, not a
    /// caller error). The sparse backend checks the initial state here
    /// and asserts the rest at first visit.
    pub fn compile(plant: &Plant) -> Result<Option<Self>, ProtectionError> {
        let cells = plant.space().cell_count();
        if cells <= MAX_COMPILED_CELLS {
            Self::compile_eager(plant)
        } else {
            Self::compile_sparse(plant)
        }
    }

    /// Compiles `plant` eagerly (every state up front), or `None` for
    /// rate plants and spaces beyond [`MAX_COMPILED_CELLS`]. Exposed so
    /// tests and benchmarks can pin the backend; [`CompiledPlant::compile`]
    /// picks it automatically for spaces that fit.
    ///
    /// # Errors
    ///
    /// As [`CompiledPlant::compile`].
    pub fn compile_eager(plant: &Plant) -> Result<Option<Self>, ProtectionError> {
        let space = *plant.space();
        let cells = space.cell_count();
        if cells > MAX_COMPILED_CELLS || plant.transition_row(plant.initial_state()).is_none() {
            return Ok(None);
        }
        let trip_bits = trip_bitmap(plant, &space);
        let mut exit_prob = Vec::with_capacity(cells);
        let mut inv_log_hold = Vec::with_capacity(cells);
        let mut demand_given_exit = Vec::with_capacity(cells);
        let mut quiet_builder = AliasForestBuilder::new(cells);
        let mut demand_builder = AliasForestBuilder::new(cells);
        let mut scratch = CompileScratch::default();
        for cell in 0..cells {
            let params = compile_state(plant, &space, &trip_bits, cell, &mut scratch)?;
            exit_prob.push(params.exit_prob);
            inv_log_hold.push(params.inv_log_hold);
            demand_given_exit.push(params.demand_given_exit);
            quiet_builder.push_state(&scratch.quiet_row, &mut scratch.work);
            demand_builder.push_state(&scratch.demand_row, &mut scratch.work);
        }
        let start = space
            .index_of(plant.initial_state())
            .expect("initial state in space") as u32;
        Ok(Some(CompiledPlant {
            space,
            start,
            backend: Backend::Eager(EagerTables {
                exit_prob,
                inv_log_hold,
                demand_given_exit,
                quiet_moves: quiet_builder.finish(),
                demands: demand_builder.finish(),
            }),
        }))
    }

    /// Compiles `plant` with the sparse on-demand backend regardless of
    /// its size (up to [`MAX_SPARSE_CELLS`]), or `None` for rate plants
    /// and spaces beyond that ceiling. Exposed so the bit-identity
    /// suite can force the lazy backend onto spaces the eager compiler
    /// also accepts.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] if the initial state's
    /// transition row is not a probability distribution.
    pub fn compile_sparse(plant: &Plant) -> Result<Option<Self>, ProtectionError> {
        let space = *plant.space();
        let cells = space.cell_count();
        if cells > MAX_SPARSE_CELLS || plant.transition_row(plant.initial_state()).is_none() {
            return Ok(None);
        }
        let trip_bits = trip_bitmap(plant, &space);
        let start = space
            .index_of(plant.initial_state())
            .expect("initial state in space") as u32;
        let mut inner = SparseInner {
            states: HashMap::new(),
            scratch: CompileScratch::default(),
        };
        // Compile the initial state now: its row mass check surfaces a
        // plant-implementation bug as a typed error here rather than a
        // panic mid-run, and every run starts there anyway.
        let first = build_state_row(
            plant,
            &space,
            &trip_bits,
            start as usize,
            &mut inner.scratch,
        )?;
        inner.states.insert(start, Arc::new(first));
        Ok(Some(CompiledPlant {
            space,
            start,
            backend: Backend::Sparse(SparseTables {
                plant: plant.clone(),
                trip_bits,
                inner: Mutex::new(inner),
            }),
        }))
    }

    /// Whether compiling `plant` is likely to beat the tick loop for a
    /// one-shot run: true when the plant is *sticky* (the quiet
    /// self-loop mass at its initial state is at least 1/2, i.e. the
    /// chain dwells ≥ 2 ticks per state on average). Fast-mixing plants
    /// (e.g. plain trajectories, whose hold mass is `1/(2·step+1)²`)
    /// spend more on per-event sampling plus compilation than the tick
    /// loop costs, so the driver leaves them on the exact stepwise path.
    ///
    /// This is a cheap probe — one transition row at the initial state —
    /// not a compilation. Callers that reuse one [`CompiledPlant`]
    /// across many runs (sharded campaigns, repeated experiments) can
    /// ignore it and compile unconditionally: the compiled sampler is
    /// never *wrong*, only unprofitable for thin workloads.
    pub fn is_profitable(plant: &Plant) -> bool {
        let state = plant.initial_state();
        match plant.transition_row(state) {
            None => false,
            Some(row) => {
                let hold: f64 = row
                    .iter()
                    .filter(|(d, _)| *d == state)
                    .map(|&(_, p)| p)
                    .sum();
                // Holding inside the trip set is a demand, not a dwell.
                let quiet_hold = match plant.trip_set() {
                    Some(trip) if trip.contains(state) => 0.0,
                    _ => hold,
                };
                quiet_hold >= 0.5
            }
        }
    }

    /// The demand space of the compiled plant.
    pub fn space(&self) -> &GridSpace2D {
        &self.space
    }

    /// Number of compiled states (demand-space cells).
    pub fn states(&self) -> usize {
        self.space.cell_count()
    }

    /// Number of states whose tables have actually been built: every
    /// state for the eager backend, the visited set for the sparse one.
    pub fn compiled_states(&self) -> usize {
        match &self.backend {
            Backend::Eager(t) => t.exit_prob.len(),
            Backend::Sparse(t) => t.inner.lock().expect("sparse compiler lock").states.len(),
        }
    }

    /// Fraction of the state space with built tables
    /// (`compiled_states / states`): 1.0 for the eager backend, the
    /// visited fraction for the sparse one — the occupancy figure the
    /// `markov_sparse` bench row records.
    pub fn occupancy(&self) -> f64 {
        self.compiled_states() as f64 / self.states() as f64
    }

    /// Whether this instance uses the sparse on-demand backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse(_))
    }

    /// The plant's initial state as a cell index.
    pub fn initial_state(&self) -> u32 {
        self.start
    }

    /// Per-state demand probability `P(next tick is a demand | state)` —
    /// exposed for diagnostics and tests. On the sparse backend this
    /// compiles `cell` if it has not been visited yet.
    pub fn demand_prob(&self, cell: usize) -> f64 {
        match &self.backend {
            Backend::Eager(t) => t.exit_prob[cell] * t.demand_given_exit[cell],
            Backend::Sparse(t) => {
                let row = t.state_row(&self.space, cell as u32);
                row.params.exit_prob * row.params.demand_given_exit
            }
        }
    }

    /// Advances the chain until the next demand or until `budget` ticks
    /// are consumed, whichever comes first, updating `state` in place.
    ///
    /// Equivalent in distribution to calling [`Plant::step`] `budget`
    /// times and stopping at the first demand — but the cost is one
    /// geometric draw plus one **fused** exit draw per *state change*,
    /// not per tick. The exit tick used to spend up to three uniforms
    /// (demand-vs-move coin, alias bucket, alias coin); one uniform now
    /// covers all three where the chain's branch masses allow it (see
    /// [`branch_uniform`]), halving the RNG work per state change. Both
    /// backends consume the stream identically, so swapping eager for
    /// sparse never perturbs an event sequence.
    pub fn next_demand<R: Rng + ?Sized>(
        &self,
        state: &mut u32,
        budget: u64,
        rng: &mut R,
    ) -> CompiledEvent {
        match &self.backend {
            Backend::Eager(t) => t.next_demand(&self.space, state, budget, rng),
            Backend::Sparse(t) => t.next_demand(&self.space, state, budget, rng),
        }
    }
}

impl EagerTables {
    fn next_demand<R: Rng + ?Sized>(
        &self,
        space: &GridSpace2D,
        state: &mut u32,
        budget: u64,
        rng: &mut R,
    ) -> CompiledEvent {
        let mut quiet = 0u64;
        while quiet < budget {
            let s = *state as usize;
            let p_exit = self.exit_prob[s];
            if p_exit <= 0.0 {
                // Absorbing quiet state: every remaining tick is quiet.
                return CompiledEvent::Quiet { ticks: budget };
            }
            let left = budget - quiet;
            let dwell = crate::simulation::geometric_gap(self.inv_log_hold[s], left, rng);
            if dwell >= left {
                return CompiledEvent::Quiet { ticks: budget };
            }
            quiet += dwell;
            // The exit tick itself: demand or quiet move, plus the
            // successor alias lookup, all from one uniform.
            let u: f64 = rng.gen();
            let dge = self.demand_given_exit[s];
            if u < dge {
                let v = branch_uniform(u, 0.0, dge, rng);
                let cell = self.demands.sample_with(s, v);
                *state = cell;
                return CompiledEvent::Demand {
                    quiet_gap: quiet,
                    demand: space
                        .demand_at(cell as usize)
                        .expect("compiled successor in range"),
                };
            }
            quiet += 1;
            *state = self
                .quiet_moves
                .sample_with(s, branch_uniform(u, dge, 1.0 - dge, rng));
        }
        CompiledEvent::Quiet { ticks: budget }
    }
}

impl SparseTables {
    /// The compiled tables of `cell`, building them on first visit. The
    /// lock is held for the lookup/build only, never across sampling.
    fn state_row(&self, space: &GridSpace2D, cell: u32) -> Arc<StateRow> {
        let mut inner = self.inner.lock().expect("sparse compiler lock");
        if let Some(row) = inner.states.get(&cell) {
            return Arc::clone(row);
        }
        let built = build_state_row(
            &self.plant,
            space,
            &self.trip_bits,
            cell as usize,
            &mut inner.scratch,
        )
        .unwrap_or_else(|e| panic!("sparse lazy compile of cell {cell}: {e}"));
        let row = Arc::new(built);
        inner.states.insert(cell, Arc::clone(&row));
        row
    }

    /// Mirrors [`EagerTables::next_demand`] draw for draw: the lazy
    /// builds consume no RNG, so the two backends' event streams are
    /// bit-identical.
    fn next_demand<R: Rng + ?Sized>(
        &self,
        space: &GridSpace2D,
        state: &mut u32,
        budget: u64,
        rng: &mut R,
    ) -> CompiledEvent {
        let mut quiet = 0u64;
        let mut row = self.state_row(space, *state);
        while quiet < budget {
            if row.params.exit_prob <= 0.0 {
                return CompiledEvent::Quiet { ticks: budget };
            }
            let left = budget - quiet;
            let dwell = crate::simulation::geometric_gap(row.params.inv_log_hold, left, rng);
            if dwell >= left {
                return CompiledEvent::Quiet { ticks: budget };
            }
            quiet += dwell;
            let u: f64 = rng.gen();
            let dge = row.params.demand_given_exit;
            if u < dge {
                let v = branch_uniform(u, 0.0, dge, rng);
                let cell = alias_pick(&row.demand_cells, &row.demand_accept, &row.demand_alias, v);
                *state = cell;
                return CompiledEvent::Demand {
                    quiet_gap: quiet,
                    demand: space
                        .demand_at(cell as usize)
                        .expect("compiled successor in range"),
                };
            }
            quiet += 1;
            let v = branch_uniform(u, dge, 1.0 - dge, rng);
            *state = alias_pick(&row.quiet_cells, &row.quiet_accept, &row.quiet_alias, v);
            row = self.state_row(space, *state);
        }
        CompiledEvent::Quiet { ticks: budget }
    }
}

/// The trip-set bitmap both backends classify successors with (bit per
/// cell: is this cell a demand when entered?).
fn trip_bitmap(plant: &Plant, space: &GridSpace2D) -> Vec<u64> {
    let trip_set = plant
        .trip_set()
        .expect("plants with transition rows have trip sets");
    let mut trip_bits = vec![0u64; space.cell_count().div_ceil(64)];
    for cell in trip_set.cell_indices(space) {
        trip_bits[cell / 64] |= 1u64 << (cell % 64);
    }
    trip_bits
}

/// Scratch buffers shared by every per-state compilation: the plant's
/// row buffer, the demand/quiet split, and the Walker–Vose work areas.
/// One instance serves a whole eager sweep or a sparse backend's
/// lifetime of lazy builds — no per-state `Vec` churn.
#[derive(Debug, Default)]
struct CompileScratch {
    rows: RowScratch,
    quiet_row: Vec<(u32, f64)>,
    demand_row: Vec<(u32, f64)>,
    work: AliasWork,
}

/// Splits one state's exact transition row into dwell parameters plus
/// the demand/quiet successor rows (left in `scratch.demand_row` /
/// `scratch.quiet_row`). This is the single per-state analysis both
/// backends run, so their tables are bit-identical by construction.
fn compile_state(
    plant: &Plant,
    space: &GridSpace2D,
    trip_bits: &[u64],
    cell: usize,
    scratch: &mut CompileScratch,
) -> Result<StateParams, ProtectionError> {
    let state = space.demand_at(cell).expect("cell index in range");
    assert!(
        plant.transition_row_into(state, &mut scratch.rows),
        "compilable plant has rows for every state"
    );
    let in_trip = |cell: usize| trip_bits[cell / 64] >> (cell % 64) & 1 == 1;
    let mut hold = 0.0;
    let mut p_demand = 0.0;
    let mut p_move = 0.0;
    let mut total = 0.0;
    scratch.quiet_row.clear();
    scratch.demand_row.clear();
    for &(succ, p) in scratch.rows.row() {
        let t = space.index_of(succ).map_err(|e| {
            ProtectionError::InvalidConfig(format!(
                "transition row of {state} leaves the space: {e}"
            ))
        })?;
        total += p;
        if in_trip(t) {
            p_demand += p;
            scratch.demand_row.push((t as u32, p));
        } else if t == cell {
            hold += p;
        } else {
            p_move += p;
            scratch.quiet_row.push((t as u32, p));
        }
    }
    if (total - 1.0).abs() > 1e-9 || total.is_nan() {
        return Err(ProtectionError::InvalidConfig(format!(
            "transition row of {state} has mass {total}, expected 1"
        )));
    }
    let p_exit = p_demand + p_move;
    Ok(StateParams {
        exit_prob: p_exit,
        inv_log_hold: if hold > 0.0 { hold.ln().recip() } else { 0.0 },
        demand_given_exit: if p_exit > 0.0 { p_demand / p_exit } else { 0.0 },
    })
}

/// Compiles one state end to end for the sparse backend: analysis plus
/// both alias rows, boxed to their exact lengths.
fn build_state_row(
    plant: &Plant,
    space: &GridSpace2D,
    trip_bits: &[u64],
    cell: usize,
    scratch: &mut CompileScratch,
) -> Result<StateRow, ProtectionError> {
    let params = compile_state(plant, space, trip_bits, cell, scratch)?;
    build_alias_tables(&scratch.demand_row, &mut scratch.work);
    let demand_cells: Box<[u32]> = scratch.demand_row.iter().map(|&(c, _)| c).collect();
    let demand_accept: Box<[f64]> = scratch.work.accept.as_slice().into();
    let demand_alias: Box<[u32]> = scratch.work.alias.as_slice().into();
    build_alias_tables(&scratch.quiet_row, &mut scratch.work);
    Ok(StateRow {
        params,
        demand_cells,
        demand_accept,
        demand_alias,
        quiet_cells: scratch.quiet_row.iter().map(|&(c, _)| c).collect(),
        quiet_accept: scratch.work.accept.as_slice().into(),
        quiet_alias: scratch.work.alias.as_slice().into(),
    })
}

/// Smallest branch mass whose conditional uniform is recycled. Below
/// this, `(u − lo) / width` would stretch a `2⁻⁵³`-granular uniform past
/// ~33 bits of resolution, so the sampler pays one fresh draw instead
/// of biasing the alias lookup. Branches this improbable are taken
/// ~once per million state changes, so the fallback costs nothing
/// measurable.
const FUSE_MIN_BRANCH: f64 = 1.0 / (1u64 << 20) as f64;

/// Largest `f64` below 1.0 — keeps a recycled uniform inside `[0, 1)`.
const ONE_BELOW: f64 = 1.0 - f64::EPSILON / 2.0;

/// The conditional uniform of a branch decision: given `u` uniform on
/// `[0, 1)` and the taken branch covering `[lo, lo + width)`,
/// `(u − lo) / width` is again uniform on `[0, 1)` — algebra, not
/// approximation — so the draw that picked the branch is **reused** for
/// the successor alias lookup. Branches too thin to rescale without
/// losing resolution ([`FUSE_MIN_BRANCH`]) draw fresh.
#[inline]
fn branch_uniform<R: Rng + ?Sized>(u: f64, lo: f64, width: f64, rng: &mut R) -> f64 {
    if width >= FUSE_MIN_BRANCH {
        ((u - lo) / width).clamp(0.0, ONE_BELOW)
    } else {
        rng.gen()
    }
}

/// Draws one successor from an alias row using a **single** uniform
/// `v ∈ [0, 1)`: `⌊v·n⌋` picks the bucket and the fractional part
/// `v·n − ⌊v·n⌋` — independent of the bucket and itself uniform — plays
/// the accept/alias coin. One draw where Walker–Vose is usually written
/// with two. Shared by both backends so the lookup arithmetic cannot
/// drift between them.
#[inline]
fn alias_pick(cells: &[u32], accept: &[f64], alias: &[u32], v: f64) -> u32 {
    let n = cells.len();
    debug_assert!(n > 0, "alias sample from empty successor set");
    debug_assert!((0.0..1.0).contains(&v), "alias uniform out of range: {v}");
    if n == 1 {
        return cells[0];
    }
    let scaled = v * n as f64;
    let i = (scaled as usize).min(n - 1);
    let coin = scaled - i as f64;
    let k = if coin < accept[i] {
        i
    } else {
        alias[i] as usize
    };
    cells[k]
}

/// Per-state Walker–Vose alias tables over variable-length successor
/// lists, stored flat: state `s` owns entries `offsets[s]..offsets[s+1]`.
#[derive(Debug, Clone)]
struct AliasForest {
    offsets: Vec<u32>,
    cells: Vec<u32>,
    accept: Vec<f64>,
    /// Alias index *within the state's segment*.
    alias: Vec<u32>,
}

impl AliasForest {
    /// Draws one successor cell for `state`. Must not be called for a
    /// state with an empty segment (the caller's branch probabilities
    /// guarantee this).
    #[inline]
    #[cfg(test)]
    fn sample<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> u32 {
        self.sample_with(state, rng.gen())
    }

    /// Draws one successor cell for `state` from a single uniform
    /// `v ∈ [0, 1)` (see [`alias_pick`]).
    #[inline]
    fn sample_with(&self, state: usize, v: f64) -> u32 {
        let lo = self.offsets[state] as usize;
        let hi = self.offsets[state + 1] as usize;
        alias_pick(
            &self.cells[lo..hi],
            &self.accept[lo..hi],
            &self.alias[lo..hi],
            v,
        )
    }
}

/// Walker–Vose work areas plus the built `accept`/`alias` tables of the
/// most recent [`build_alias_tables`] call.
#[derive(Debug, Default)]
struct AliasWork {
    accept: Vec<f64>,
    alias: Vec<u32>,
    scaled: Vec<f64>,
    small: Vec<usize>,
    large: Vec<usize>,
}

/// Builds one state's Walker–Vose acceptance/alias tables over `row`
/// (`(cell, weight)` pairs, weights positive but not necessarily
/// normalised) into `work.accept` / `work.alias`. Split entries into
/// under/over-full relative to the uniform share, pairing each
/// under-full entry with an over-full alias. One function serves both
/// backends, so their tables are bit-identical for identical rows.
fn build_alias_tables(row: &[(u32, f64)], work: &mut AliasWork) {
    let n = row.len();
    work.accept.clear();
    work.alias.clear();
    work.scaled.clear();
    work.small.clear();
    work.large.clear();
    if n == 0 {
        return;
    }
    let total: f64 = row.iter().map(|&(_, w)| w).sum();
    work.scaled
        .extend(row.iter().map(|&(_, w)| w * n as f64 / total));
    work.alias.resize(n, 0);
    work.accept.resize(n, 1.0);
    work.small.extend((0..n).filter(|&i| work.scaled[i] < 1.0));
    work.large.extend((0..n).filter(|&i| work.scaled[i] >= 1.0));
    while let (Some(&s), Some(&l)) = (work.small.last(), work.large.last()) {
        work.small.pop();
        work.accept[s] = work.scaled[s];
        work.alias[s] = l as u32;
        work.scaled[l] -= 1.0 - work.scaled[s];
        if work.scaled[l] < 1.0 {
            work.large.pop();
            work.small.push(l);
        }
    }
    // Leftovers (numerical residue) accept unconditionally.
    for &i in work.small.iter().chain(work.large.iter()) {
        work.accept[i] = 1.0;
    }
}

struct AliasForestBuilder {
    offsets: Vec<u32>,
    cells: Vec<u32>,
    accept: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasForestBuilder {
    fn new(states: usize) -> Self {
        let mut offsets = Vec::with_capacity(states + 1);
        offsets.push(0);
        AliasForestBuilder {
            offsets,
            cells: Vec::new(),
            accept: Vec::new(),
            alias: Vec::new(),
        }
    }

    /// Appends one state's successor distribution.
    fn push_state(&mut self, row: &[(u32, f64)], work: &mut AliasWork) {
        if !row.is_empty() {
            build_alias_tables(row, work);
            self.cells.extend(row.iter().map(|&(c, _)| c));
            self.accept.extend_from_slice(&work.accept);
            self.alias.extend_from_slice(&work.alias);
        }
        self.offsets.push(self.cells.len() as u32);
    }

    fn finish(self) -> AliasForest {
        AliasForest {
            offsets: self.offsets,
            cells: self.cells,
            accept: self.accept,
            alias: self.alias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::PlantEvent;
    use divrel_demand::profile::Profile;
    use divrel_demand::region::Region;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn markov_plant() -> Plant {
        let space = GridSpace2D::new(30, 30).unwrap();
        Plant::markov_walk(space, Region::rect(0, 0, 3, 3), 2, 0.2).unwrap()
    }

    #[test]
    fn profitability_probe_prefers_sticky_plants() {
        let s = GridSpace2D::new(20, 20).unwrap();
        let trip = Region::rect(0, 0, 2, 2);
        // Fast-mixing trajectory: hold mass 1/25 — not worth compiling.
        let traj = Plant::trajectory(s, trip.clone(), 2).unwrap();
        assert!(!CompiledPlant::is_profitable(&traj));
        // Sticky Markov walk: hold mass ~0.9 — compiled wins.
        let sticky = Plant::markov_walk(s, trip.clone(), 2, 0.1).unwrap();
        assert!(CompiledPlant::is_profitable(&sticky));
        // Barely-moving walk right at move_prob 1: same as trajectory.
        let jumpy = Plant::markov_walk(s, trip, 2, 1.0).unwrap();
        assert!(!CompiledPlant::is_profitable(&jumpy));
        // Rate plants have no rows at all.
        let rate = Plant::with_demand_rate(Profile::uniform(&s), 0.1).unwrap();
        assert!(!CompiledPlant::is_profitable(&rate));
    }

    #[test]
    fn rate_plants_do_not_compile() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let plant = Plant::with_demand_rate(Profile::uniform(&s), 0.1).unwrap();
        assert!(CompiledPlant::compile(&plant).unwrap().is_none());
        assert!(CompiledPlant::compile_sparse(&plant).unwrap().is_none());
    }

    #[test]
    fn trajectory_and_markov_plants_compile() {
        let s = GridSpace2D::new(20, 20).unwrap();
        let t = Plant::trajectory(s, Region::rect(0, 0, 2, 2), 1).unwrap();
        let c = CompiledPlant::compile(&t).unwrap().unwrap();
        assert_eq!(c.states(), 400);
        assert_eq!(c.initial_state(), 10 * 20 + 10);
        assert!(!c.is_sparse());
        assert_eq!(c.compiled_states(), 400);
        assert!((c.occupancy() - 1.0).abs() < 1e-15);
        let m = markov_plant();
        assert!(CompiledPlant::compile(&m).unwrap().is_some());
    }

    #[test]
    fn demand_prob_matches_row_mass_into_trip_set() {
        let plant = markov_plant();
        for c in [
            CompiledPlant::compile(&plant).unwrap().unwrap(),
            CompiledPlant::compile_sparse(&plant).unwrap().unwrap(),
        ] {
            let space = *plant.space();
            let trip = plant.trip_set().unwrap().clone();
            for cell in [0usize, 5, 62, 200, 465, 899] {
                let state = space.demand_at(cell).unwrap();
                let want: f64 = plant
                    .transition_row(state)
                    .unwrap()
                    .iter()
                    .filter(|(d, _)| trip.contains(*d))
                    .map(|&(_, p)| p)
                    .sum();
                assert!(
                    (c.demand_prob(cell) - want).abs() < 1e-12,
                    "cell {cell}: {} vs {want}",
                    c.demand_prob(cell)
                );
            }
        }
    }

    #[test]
    fn next_demand_respects_budget_and_lands_in_trip_set() {
        let plant = markov_plant();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let trip = plant.trip_set().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = c.initial_state();
        let mut budget_hits = 0;
        let mut demands = 0;
        for _ in 0..200 {
            match c.next_demand(&mut state, 3_000, &mut rng) {
                CompiledEvent::Demand { quiet_gap, demand } => {
                    assert!(quiet_gap < 3_000);
                    assert!(trip.contains(demand));
                    assert_eq!(
                        state as usize,
                        c.space().index_of(demand).unwrap(),
                        "state must follow the demand"
                    );
                    demands += 1;
                }
                CompiledEvent::Quiet { ticks } => {
                    assert_eq!(ticks, 3_000);
                    budget_hits += 1;
                }
            }
        }
        assert!(demands > 0, "compiled sampler never produced a demand");
        // With a 16-cell trip set on 900 cells and slow mixing, some
        // 3000-tick windows should be demand-free too.
        assert!(budget_hits > 0, "budget cap never exercised");
        // Zero budget is all-quiet.
        assert_eq!(
            c.next_demand(&mut state, 0, &mut rng),
            CompiledEvent::Quiet { ticks: 0 }
        );
    }

    #[test]
    fn sparse_and_eager_event_streams_are_bit_identical() {
        // The tentpole contract: on any plant both backends accept, the
        // same seed must produce the exact same event sequence — lazy
        // builds consume no RNG and the table algebra is shared.
        let plants = [
            markov_plant(),
            Plant::markov_walk(
                GridSpace2D::new(57, 23).unwrap(),
                Region::rect(0, 0, 4, 4),
                3,
                0.03,
            )
            .unwrap(),
            Plant::trajectory(
                GridSpace2D::new(25, 25).unwrap(),
                Region::rect(0, 0, 2, 2),
                2,
            )
            .unwrap(),
        ];
        for (pi, plant) in plants.iter().enumerate() {
            let eager = CompiledPlant::compile_eager(plant).unwrap().unwrap();
            let sparse = CompiledPlant::compile_sparse(plant).unwrap().unwrap();
            assert!(sparse.is_sparse() && !eager.is_sparse());
            assert_eq!(eager.initial_state(), sparse.initial_state());
            for seed in [1u64, 7, 1234] {
                let mut rng_e = StdRng::seed_from_u64(seed);
                let mut rng_s = StdRng::seed_from_u64(seed);
                let mut st_e = eager.initial_state();
                let mut st_s = sparse.initial_state();
                for step in 0..400 {
                    let ev_e = eager.next_demand(&mut st_e, 2_000, &mut rng_e);
                    let ev_s = sparse.next_demand(&mut st_s, 2_000, &mut rng_s);
                    assert_eq!(
                        ev_e, ev_s,
                        "plant {pi} seed {seed} event {step}: backends diverged"
                    );
                    assert_eq!(st_e, st_s, "plant {pi} seed {seed} event {step}: state");
                }
            }
            // The sparse side visited a strict subset of the space but
            // produced the full stream.
            assert!(sparse.compiled_states() <= sparse.states());
            assert!(sparse.occupancy() > 0.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn sparse_matches_eager_on_arbitrary_plants(
            nx in 2u32..34,
            ny in 2u32..34,
            step in 1u32..4,
            move_prob in 0.01..=1.0f64,
            trip in (0u32..6, 0u32..6),
            seed in 0u64..u64::MAX,
        ) {
            let space = GridSpace2D::new(nx, ny).unwrap();
            let region = Region::rect(0, 0, trip.0.min(nx - 1), trip.1.min(ny - 1));
            let plant = Plant::markov_walk(space, region, step, move_prob).unwrap();
            let eager = CompiledPlant::compile_eager(&plant).unwrap().unwrap();
            let sparse = CompiledPlant::compile_sparse(&plant).unwrap().unwrap();
            let mut rng_e = StdRng::seed_from_u64(seed);
            let mut rng_s = StdRng::seed_from_u64(seed);
            let mut st_e = eager.initial_state();
            let mut st_s = sparse.initial_state();
            for _ in 0..60 {
                let ev_e = eager.next_demand(&mut st_e, 700, &mut rng_e);
                let ev_s = sparse.next_demand(&mut st_s, 700, &mut rng_s);
                prop_assert_eq!(ev_e, ev_s);
                prop_assert_eq!(st_e, st_s);
            }
        }
    }

    #[test]
    fn sparse_clone_preserves_tables_and_stream() {
        let plant = markov_plant();
        let sparse = CompiledPlant::compile_sparse(&plant).unwrap().unwrap();
        // Warm a few states, then clone: the clone must continue the
        // exact same stream from the same tables.
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = sparse.initial_state();
        for _ in 0..20 {
            sparse.next_demand(&mut state, 1_000, &mut rng);
        }
        let cloned = sparse.clone();
        assert_eq!(cloned.compiled_states(), sparse.compiled_states());
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut sa = sparse.initial_state();
        let mut sb = cloned.initial_state();
        for _ in 0..100 {
            assert_eq!(
                sparse.next_demand(&mut sa, 500, &mut rng_a),
                cloned.next_demand(&mut sb, 500, &mut rng_b)
            );
        }
    }

    #[test]
    fn huge_spaces_compile_sparsely_and_sample() {
        // 2080 × 2080 = 4,326,400 cells: just past MAX_COMPILED_CELLS
        // (4,194,304), so `compile` must pick the sparse backend — and a
        // slow-mixing walk must ride it without enumerating the space.
        let space = GridSpace2D::new(2080, 2080).unwrap();
        assert!(space.cell_count() > MAX_COMPILED_CELLS);
        let plant = Plant::markov_walk(space, Region::rect(0, 0, 40, 40), 2, 0.02).unwrap();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        assert!(c.is_sparse());
        assert_eq!(c.states(), 4_326_400);
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = c.initial_state();
        let mut quiet_total = 0u64;
        for _ in 0..50 {
            match c.next_demand(&mut state, 100_000, &mut rng) {
                CompiledEvent::Quiet { ticks } => quiet_total += ticks,
                CompiledEvent::Demand { quiet_gap, .. } => quiet_total += quiet_gap,
            }
        }
        assert!(quiet_total > 0);
        // The chain visited a vanishing fraction of the space.
        assert!(
            c.compiled_states() < 100_000,
            "sparse backend compiled {} states",
            c.compiled_states()
        );
        assert!(c.occupancy() < 0.05);
    }

    #[test]
    fn degenerate_single_cell_space_demands_every_tick() {
        // A 1×1 space with the trip set on its only cell: every tick
        // re-enters the trip set, so the compiled demand gap is always 0.
        let s = GridSpace2D::new(1, 1).unwrap();
        let plant = Plant::markov_walk(s, Region::rect(0, 0, 0, 0), 1, 1.0).unwrap();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = c.initial_state();
        match c.next_demand(&mut state, 10, &mut rng) {
            CompiledEvent::Demand { quiet_gap, .. } => assert_eq!(quiet_gap, 0),
            other => panic!("expected an immediate demand, got {other:?}"),
        }
    }

    #[test]
    fn interval_distribution_matches_stepwise_simulation() {
        // The compiled sampler and the tick loop are the same process:
        // compare mean demand interval over many demands.
        let plant = markov_plant();
        let c = CompiledPlant::compile(&plant).unwrap().unwrap();
        let demands_wanted = 4_000;

        let mut rng = StdRng::seed_from_u64(10);
        let mut state = c.initial_state();
        let mut compiled_gaps = Vec::with_capacity(demands_wanted);
        while compiled_gaps.len() < demands_wanted {
            if let CompiledEvent::Demand { quiet_gap, .. } =
                c.next_demand(&mut state, u64::MAX, &mut rng)
            {
                compiled_gaps.push(quiet_gap as f64);
            }
        }

        let mut rng = StdRng::seed_from_u64(11);
        let mut s = plant.initial_state();
        let mut stepwise_gaps = Vec::with_capacity(demands_wanted);
        let mut gap = 0u64;
        while stepwise_gaps.len() < demands_wanted {
            let (next, ev) = plant.step(s, &mut rng);
            s = next;
            match ev {
                PlantEvent::Quiet => gap += 1,
                PlantEvent::Demand(_) => {
                    stepwise_gaps.push(gap as f64);
                    gap = 0;
                }
            }
        }

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mc, ms) = (mean(&compiled_gaps), mean(&stepwise_gaps));
        // Heavy-tailed-ish intervals: compare means within 10%.
        assert!(
            (mc - ms).abs() / ms < 0.1,
            "compiled mean gap {mc} vs stepwise {ms}"
        );
    }

    #[test]
    fn alias_forest_reproduces_weights() {
        let mut work = AliasWork::default();
        let mut b = AliasForestBuilder::new(2);
        b.push_state(&[(0, 0.1), (1, 0.3), (2, 0.6)], &mut work);
        b.push_state(&[], &mut work);
        let f = b.finish();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[f.sample(0, &mut rng) as usize] += 1;
        }
        for (i, want) in [0.1, 0.3, 0.6].iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - want).abs() < 0.01, "cell {i}: {freq} vs {want}");
        }
    }

    #[test]
    fn single_uniform_alias_reproduces_weights_exactly_on_a_grid() {
        // Sweep a dense uniform grid through sample_with: the measure of
        // v-values landing on each cell must equal the cell's weight to
        // grid resolution — the single-draw lookup is exact, not
        // approximate.
        let weights = [0.15, 0.05, 0.5, 0.3];
        let mut work = AliasWork::default();
        let mut b = AliasForestBuilder::new(1);
        b.push_state(
            &[
                (0, weights[0]),
                (1, weights[1]),
                (2, weights[2]),
                (3, weights[3]),
            ],
            &mut work,
        );
        let f = b.finish();
        let grid = 400_000usize;
        let mut counts = [0u64; 4];
        for k in 0..grid {
            let v = (k as f64 + 0.5) / grid as f64;
            counts[f.sample_with(0, v) as usize] += 1;
        }
        for (i, want) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / grid as f64;
            assert!(
                (freq - want).abs() < 2e-5,
                "cell {i}: measure {freq} vs weight {want}"
            );
        }
        // The extreme uniforms stay in range.
        let _ = f.sample_with(0, 0.0);
        let _ = f.sample_with(0, ONE_BELOW);
    }

    #[test]
    fn branch_uniform_rescales_wide_branches_and_redraws_thin_ones() {
        let mut rng = StdRng::seed_from_u64(9);
        // Wide branch: pure algebra, no draw, linear map onto [0, 1).
        let v = branch_uniform(0.25, 0.2, 0.4, &mut rng);
        assert!((v - 0.125).abs() < 1e-15);
        let v = branch_uniform(0.599_999, 0.2, 0.4, &mut rng);
        assert!(v < 1.0);
        assert!((0.0..1.0).contains(&branch_uniform(0.2, 0.2, 0.4, &mut rng)));
        // Rounding at the top edge clamps inside [0, 1).
        assert!(branch_uniform(0.6, 0.2, 0.4, &mut rng) < 1.0);
        // Thin branch: the recycled uniform would have too little
        // resolution, so a fresh draw is taken instead (the two calls
        // advance the stream — their outputs differ).
        let thin = FUSE_MIN_BRANCH / 4.0;
        let a = branch_uniform(thin / 2.0, 0.0, thin, &mut rng);
        let b = branch_uniform(thin / 2.0, 0.0, thin, &mut rng);
        assert_ne!(a.to_bits(), b.to_bits(), "thin branch must redraw");
        assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
    }
}
