//! The assembled protection system: channels behind an adjudicator or
//! a compiled fault tree.

use crate::adjudicator::Adjudicator;
use crate::channel::Channel;
use crate::error::ProtectionError;
use crate::tree::FaultTree;
use divrel_demand::fault_set::{words_for, WORD_BITS};
use divrel_demand::mapping::FaultRegionMap;
use divrel_demand::profile::Profile;
use divrel_demand::space::Demand;
use std::fmt;

/// The system's response to one demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemResponse {
    /// Per-channel trip decisions, in channel order.
    pub channel_trips: Vec<bool>,
    /// The adjudicated system decision.
    pub tripped: bool,
}

/// The adjudication logic of a system: a flat vote over all channels or
/// a compiled [`FaultTree`] gate topology.
#[derive(Debug, Clone, PartialEq)]
pub enum Voter {
    /// A flat vote (`1ooN` / `NooN` / majority / `kooN`) over every
    /// channel.
    Flat(Adjudicator),
    /// A recursive gate structure over channel subsets.
    Tree(FaultTree),
}

impl Voter {
    /// Validates against a channel count (every construction path goes
    /// through here — see [`Adjudicator::validate`]).
    fn validate(&self, channels: usize) -> Result<(), ProtectionError> {
        if channels == 0 {
            return Err(ProtectionError::NoChannels);
        }
        match self {
            Voter::Flat(a) => a.validate(channels),
            Voter::Tree(t) => t.validate(channels),
        }
    }

    /// The system decision over a packed failure mask (bit `ch` set =
    /// channel `ch` failed to trip) for an `n`-channel system.
    #[inline]
    fn decide_fail_mask(&self, fail_mask: u64, n: usize) -> bool {
        match self {
            Voter::Flat(a) => a.decide_counts(n - fail_mask.count_ones() as usize, n),
            Voter::Tree(t) => t.decide_fail_mask(fail_mask),
        }
    }

    /// The system decision over per-channel trip flags.
    fn decide(&self, trips: &[bool]) -> bool {
        match self {
            Voter::Flat(a) => a.decide(trips),
            Voter::Tree(t) => t.decide(trips),
        }
    }
}

impl fmt::Display for Voter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Voter::Flat(a) => write!(f, "{a}"),
            Voter::Tree(t) => write!(f, "fault tree {t}"),
        }
    }
}

/// A plant protection system (Fig 1): `k` channels whose trip outputs are
/// combined by an adjudicator or a fault tree.
///
/// At construction the system precomputes one **trip table** per
/// channel — a bit per demand-space cell saying whether that channel
/// fails there (its sensor view applied, its version AND-ed against the
/// map's per-cell failure mask) — plus one **system table** holding the
/// adjudicated outcome per cell. Flat votes and fault trees alike are
/// thereby compiled down to the same fast path: [`Self::respond`] and
/// [`Self::true_pfd`] are table lookups per demand, with no per-fault
/// geometry tests and no per-demand tree walks. The direct tree walk
/// ([`FaultTree::decide`]) remains the reference semantics and the
/// fallback for demands outside the compiled space.
#[derive(Debug, Clone)]
pub struct ProtectionSystem {
    channels: Vec<Channel>,
    voter: Voter,
    map: FaultRegionMap,
    /// Per-channel failure bitmaps over demand cells, flattened
    /// channel-major: channel `ch` owns words
    /// `[ch * words_per_table .. (ch + 1) * words_per_table]`.
    fail_tables: Vec<u64>,
    /// The compiled adjudication: one bit per demand cell, set when the
    /// **system** output fails there under this voter.
    system_table: Vec<u64>,
    words_per_table: usize,
}

/// Equality is defined by the configuration (channels, voter, map); the
/// trip tables are derived data.
impl PartialEq for ProtectionSystem {
    fn eq(&self, other: &Self) -> bool {
        self.channels == other.channels && self.voter == other.voter && self.map == other.map
    }
}

impl ProtectionSystem {
    /// Assembles a flat-vote system and precomputes the trip tables.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::NoChannels`] / [`ProtectionError::BadChannelCount`]
    /// from adjudicator validation; [`ProtectionError::Demand`] if any
    /// channel's version length disagrees with the map.
    pub fn new(
        channels: Vec<Channel>,
        adjudicator: Adjudicator,
        map: FaultRegionMap,
    ) -> Result<Self, ProtectionError> {
        Self::assemble(channels, Voter::Flat(adjudicator), map)
    }

    /// Assembles a fault-tree system: the tree is validated against the
    /// channel count and compiled into the same per-cell tables the
    /// flat adjudicators use.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::NoChannels`] for an empty channel list;
    /// [`ProtectionError::InvalidConfig`] from tree validation;
    /// otherwise as [`Self::new`].
    pub fn with_tree(
        channels: Vec<Channel>,
        tree: FaultTree,
        map: FaultRegionMap,
    ) -> Result<Self, ProtectionError> {
        Self::assemble(channels, Voter::Tree(tree), map)
    }

    fn assemble(
        channels: Vec<Channel>,
        voter: Voter,
        map: FaultRegionMap,
    ) -> Result<Self, ProtectionError> {
        voter.validate(channels.len())?;
        // The trip-table fast path packs per-channel failure flags into a
        // single u64 mask (`respond_bits`); beyond 64 channels the shift
        // would wrap and silently misattribute failures.
        if channels.len() > WORD_BITS {
            return Err(ProtectionError::BadChannelCount {
                got: channels.len(),
                need: "<= 64",
            });
        }
        for c in &channels {
            c.view().validate(map.space())?;
            if c.version().len() != map.len() {
                return Err(ProtectionError::Demand(
                    divrel_demand::DemandError::Mismatch(format!(
                        "channel {} has {} fault flags, map has {} regions",
                        c.name(),
                        c.version().len(),
                        map.len()
                    )),
                ));
            }
        }
        let space = *map.space();
        let cells = space.cell_count();
        let words_per_table = words_for(cells);
        let mut fail_tables = vec![0u64; channels.len() * words_per_table];
        for (ch, c) in channels.iter().enumerate() {
            let table = &mut fail_tables[ch * words_per_table..(ch + 1) * words_per_table];
            for cell in 0..cells {
                let plant_state = space.demand_at(cell).expect("cell index in range");
                let seen = c.view().apply(plant_state, &space);
                if map.set_fails_on(c.version().fault_set(), seen) {
                    table[cell / WORD_BITS] |= 1u64 << (cell % WORD_BITS);
                }
            }
        }
        // Compile the adjudication itself: walk the voter once per cell
        // now so the per-demand hot paths only test one bit. This is
        // where a fault tree of any shape collapses onto the flat-vote
        // fast path.
        let n = channels.len();
        let mut system_table = vec![0u64; words_per_table];
        for cell in 0..cells {
            let mut fail_mask = 0u64;
            for ch in 0..n {
                let w = fail_tables[ch * words_per_table + cell / WORD_BITS];
                fail_mask |= (w >> (cell % WORD_BITS) & 1) << ch;
            }
            if !voter.decide_fail_mask(fail_mask, n) {
                system_table[cell / WORD_BITS] |= 1u64 << (cell % WORD_BITS);
            }
        }
        Ok(ProtectionSystem {
            channels,
            voter,
            map,
            fail_tables,
            system_table,
            words_per_table,
        })
    }

    /// Whether channel `ch` fails on demand-space cell `cell` (one trip
    /// table bit).
    #[inline]
    pub fn channel_fails_cell(&self, ch: usize, cell: usize) -> bool {
        let w = self.fail_tables[ch * self.words_per_table + cell / WORD_BITS];
        w >> (cell % WORD_BITS) & 1 == 1
    }

    /// Whether the adjudicated **system** output fails on demand-space
    /// cell `cell` (one compiled system-table bit).
    #[inline]
    pub fn system_fails_cell(&self, cell: usize) -> bool {
        let w = self.system_table[cell / WORD_BITS];
        w >> (cell % WORD_BITS) & 1 == 1
    }

    /// The channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The flat adjudicator, for flat-vote systems (`None` for
    /// fault-tree systems — see [`Self::tree`]).
    pub fn adjudicator(&self) -> Option<Adjudicator> {
        match &self.voter {
            Voter::Flat(a) => Some(*a),
            Voter::Tree(_) => None,
        }
    }

    /// The fault tree, for tree systems (`None` for flat votes).
    pub fn tree(&self) -> Option<&FaultTree> {
        match &self.voter {
            Voter::Flat(_) => None,
            Voter::Tree(t) => Some(t),
        }
    }

    /// The adjudication logic (flat vote or fault tree).
    pub fn voter(&self) -> &Voter {
        &self.voter
    }

    /// The fault → region map the channels are evaluated against.
    pub fn map(&self) -> &FaultRegionMap {
        &self.map
    }

    /// Responds to a demand.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::Demand`] on version/map inconsistencies (cannot
    /// occur for a validated system).
    pub fn respond(&self, demand: Demand) -> Result<SystemResponse, ProtectionError> {
        let mut channel_trips = Vec::with_capacity(self.channels.len());
        let tripped = match self.map.space().index_of(demand) {
            Ok(cell) => {
                for ch in 0..self.channels.len() {
                    channel_trips.push(!self.channel_fails_cell(ch, cell));
                }
                !self.system_fails_cell(cell)
            }
            Err(_) => {
                // Demands outside the space cannot be table-indexed;
                // fall back to the geometric evaluation (sensor views
                // may still clamp them into range) and the direct
                // voter walk.
                for c in &self.channels {
                    channel_trips.push(c.trips_on(&self.map, demand)?);
                }
                self.voter.decide(&channel_trips)
            }
        };
        Ok(SystemResponse {
            channel_trips,
            tripped,
        })
    }

    /// Allocation-free form of [`Self::respond`] for the simulation hot
    /// loop: returns the adjudicated decision plus a bitmask of failed
    /// channels (bit `ch` set = channel `ch` failed to trip).
    ///
    /// The 64-channel ceiling of the `u64` mask is enforced at
    /// construction, so every constructed system fits; a malformed
    /// runtime object (impossible through the public constructors) is
    /// reported as an error rather than aborting the process — a worker
    /// must never die on a bad system object, it must refuse it.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::BadChannelCount`] if the system somehow holds
    /// more than 64 channels; otherwise propagates channel evaluation
    /// errors for demands outside the space (cannot occur for demands
    /// produced by a plant over the same space).
    pub fn respond_bits(&self, demand: Demand) -> Result<(bool, u64), ProtectionError> {
        if self.channels.len() > WORD_BITS {
            return Err(ProtectionError::BadChannelCount {
                got: self.channels.len(),
                need: "<= 64",
            });
        }
        let mut fail_mask = 0u64;
        let tripped = match self.map.space().index_of(demand) {
            Ok(cell) => {
                for ch in 0..self.channels.len() {
                    if self.channel_fails_cell(ch, cell) {
                        fail_mask |= 1u64 << ch;
                    }
                }
                !self.system_fails_cell(cell)
            }
            Err(_) => {
                for (ch, c) in self.channels.iter().enumerate() {
                    if !c.trips_on(&self.map, demand)? {
                        fail_mask |= 1u64 << ch;
                    }
                }
                self.voter.decide_fail_mask(fail_mask, self.channels.len())
            }
        };
        Ok((tripped, fail_mask))
    }

    /// The system's **true** PFD under `profile`: the profile mass of the
    /// demand set on which the adjudicated output fails. For the OR
    /// adjudicator this is the measure of the intersection of the
    /// channels' failure sets — the geometric counterpart of the paper's
    /// common-fault PFD.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::respond`].
    pub fn true_pfd(&self, profile: &Profile) -> Result<f64, ProtectionError> {
        let cells = self.map.space().cell_count();
        let probs = profile.probs();
        let same_space = profile.space() == self.map.space() && probs.len() == cells;
        let mut pfd = 0.0;
        #[allow(clippy::needless_range_loop)] // cell indexes tables and probs alike
        for cell in 0..cells {
            if self.system_fails_cell(cell) {
                pfd += if same_space {
                    probs[cell]
                } else {
                    let d = self.map.space().demand_at(cell).expect("cell in range");
                    profile.prob(d)
                };
            }
        }
        Ok(pfd)
    }

    /// Multi-threaded [`Self::true_pfd`] for very large demand grids:
    /// cells are split into contiguous ranges scanned on
    /// `std::thread::scope` threads, and the per-range masses are summed
    /// in range order (deterministic for a fixed thread count, equal to
    /// the serial result up to floating-point re-association).
    ///
    /// Grids too small to amortise thread spawns, `threads <= 1`, and
    /// profiles over a different space all take the serial path.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::true_pfd`] errors from the serial fallback
    /// (none on the parallel path for a validated system).
    pub fn true_pfd_parallel(
        &self,
        profile: &Profile,
        threads: usize,
    ) -> Result<f64, ProtectionError> {
        let cells = self.map.space().cell_count();
        let probs = profile.probs();
        if !divrel_demand::parallel::worth_parallelising(cells, threads)
            || profile.space() != self.map.space()
            || probs.len() != cells
        {
            return self.true_pfd(profile);
        }
        Ok(divrel_demand::parallel::chunked_sum(
            cells,
            threads,
            |range| {
                let mut pfd = 0.0;
                for cell in range {
                    if self.system_fails_cell(cell) {
                        pfd += probs[cell];
                    }
                }
                pfd
            },
        ))
    }
}

impl fmt::Display for ProtectionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProtectionSystem({} channels, {})",
            self.channels.len(),
            self.voter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_demand::region::Region;
    use divrel_demand::space::GridSpace2D;
    use divrel_demand::version::ProgramVersion;

    fn map() -> FaultRegionMap {
        let space = GridSpace2D::new(10, 10).unwrap();
        FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 1, 1), Region::rect(1, 1, 2, 2)],
        )
        .unwrap()
    }

    fn two_channel_system() -> ProtectionSystem {
        ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ProtectionSystem::new(vec![], Adjudicator::OneOutOfN, map()).is_err());
        let short = Channel::new("X", ProgramVersion::new(vec![true]));
        assert!(ProtectionSystem::new(vec![short], Adjudicator::OneOutOfN, map()).is_err());
        assert!(ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::fault_free(2)),
                Channel::new("B", ProgramVersion::fault_free(2)),
            ],
            Adjudicator::Majority,
            map()
        )
        .is_err());
    }

    #[test]
    fn construction_rejects_more_than_64_channels() {
        // The u64 fail mask of `respond_bits` cannot attribute failures
        // past channel 63; such systems must be unconstructible.
        let channels: Vec<Channel> = (0..65)
            .map(|i| Channel::new(format!("C{i}"), ProgramVersion::fault_free(2)))
            .collect();
        let err = ProtectionSystem::new(channels, Adjudicator::OneOutOfN, map()).unwrap_err();
        match err {
            ProtectionError::BadChannelCount { got, .. } => assert_eq!(got, 65),
            other => panic!("expected BadChannelCount, got {other:?}"),
        }
    }

    #[test]
    fn or_adjudication_masks_single_channel_faults() {
        let sys = two_channel_system();
        // (0,0): only A fails -> B trips -> system trips.
        let r = sys.respond(Demand::new(0, 0)).unwrap();
        assert_eq!(r.channel_trips, vec![false, true]);
        assert!(r.tripped);
        // (1,1): A fails (region 0) and B fails (region 1) -> system fails.
        let r = sys.respond(Demand::new(1, 1)).unwrap();
        assert_eq!(r.channel_trips, vec![false, false]);
        assert!(!r.tripped);
        // (5,5): nobody fails.
        let r = sys.respond(Demand::new(5, 5)).unwrap();
        assert!(r.tripped);
    }

    #[test]
    fn true_pfd_is_intersection_measure() {
        let sys = two_channel_system();
        let profile = Profile::uniform(sys.map().space());
        // Regions intersect only at (1,1): 1 cell of 100.
        let pfd = sys.true_pfd(&profile).unwrap();
        assert!((pfd - 0.01).abs() < 1e-12);
    }

    #[test]
    fn and_adjudicator_fails_if_any_channel_fails() {
        let sys = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::AllOutOfN,
            map(),
        )
        .unwrap();
        let profile = Profile::uniform(sys.map().space());
        // Union of the regions: 4 + 4 - 1 = 7 cells.
        let pfd = sys.true_pfd(&profile).unwrap();
        assert!((pfd - 0.07).abs() < 1e-12);
    }

    #[test]
    fn identical_channels_gain_nothing() {
        // Two copies of the same faulty version: OR adjudication does not
        // help — the system PFD equals the version PFD. (The degenerate
        // case diversity exists to avoid.)
        let v = ProgramVersion::new(vec![true, true]);
        let sys = ProtectionSystem::new(
            vec![Channel::new("A", v.clone()), Channel::new("B", v)],
            Adjudicator::OneOutOfN,
            map(),
        )
        .unwrap();
        let profile = Profile::uniform(sys.map().space());
        let pfd = sys.true_pfd(&profile).unwrap();
        assert!((pfd - 0.07).abs() < 1e-12); // union of both regions
    }

    #[test]
    fn display_and_accessors() {
        let sys = two_channel_system();
        assert_eq!(sys.channels().len(), 2);
        assert_eq!(sys.adjudicator(), Some(Adjudicator::OneOutOfN));
        assert!(sys.tree().is_none());
        assert!(sys.to_string().contains("2 channels"));
    }

    #[test]
    fn tree_system_compiles_to_the_flat_fast_path() {
        use crate::tree::FaultTree;
        // OR over both channels == the flat 1ooN vote: identical
        // responses and identical true PFD on every cell.
        let flat = two_channel_system();
        let tree = ProtectionSystem::with_tree(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            FaultTree::AnyOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]),
            map(),
        )
        .unwrap();
        let profile = Profile::uniform(tree.map().space());
        assert_eq!(
            flat.true_pfd(&profile).unwrap(),
            tree.true_pfd(&profile).unwrap()
        );
        for y in 0..10u32 {
            for x in 0..10u32 {
                let d = Demand::new(x, y);
                assert_eq!(flat.respond(d).unwrap(), tree.respond(d).unwrap());
                assert_eq!(flat.respond_bits(d).unwrap(), tree.respond_bits(d).unwrap());
            }
        }
        assert!(tree.adjudicator().is_none());
        assert!(tree.tree().is_some());
        assert!(tree.to_string().contains("fault tree"));
    }

    #[test]
    fn tree_construction_validates() {
        use crate::tree::FaultTree;
        // Leaf out of range for the channel list.
        let err = ProtectionSystem::with_tree(
            vec![Channel::new("A", ProgramVersion::new(vec![true, false]))],
            FaultTree::Channel(1),
            map(),
        )
        .unwrap_err();
        assert!(matches!(err, ProtectionError::InvalidConfig(_)));
        // No channels at all.
        let err = ProtectionSystem::with_tree(vec![], FaultTree::Channel(0), map()).unwrap_err();
        assert!(matches!(err, ProtectionError::NoChannels));
    }

    #[test]
    fn true_pfd_parallel_matches_serial() {
        // 150×150 = 22 500 cells crosses the parallel threshold.
        let space = GridSpace2D::new(150, 150).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![
                Region::rect(0, 0, 29, 29),
                Region::rect(20, 20, 49, 49),
                Region::rect(100, 100, 139, 139),
            ],
        )
        .unwrap();
        let sys = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let serial = sys.true_pfd(&profile).unwrap();
        assert!(serial > 0.0);
        for threads in [1, 2, 4, 5] {
            let par = sys.true_pfd_parallel(&profile, threads).unwrap();
            assert!(
                (par - serial).abs() < 1e-12,
                "{threads} threads: {par} vs {serial}"
            );
        }
        // Small grids silently take the serial path.
        let small = two_channel_system();
        let small_profile = Profile::uniform(small.map().space());
        assert_eq!(
            small.true_pfd_parallel(&small_profile, 8).unwrap(),
            small.true_pfd(&small_profile).unwrap()
        );
    }

    mod properties {
        use super::*;
        use divrel_demand::space::Demand;
        use proptest::prelude::*;

        /// Random region within a 12×12 space.
        fn arb_region() -> impl Strategy<Value = Region> {
            (0u32..10, 0u32..10, 1u32..4, 1u32..4)
                .prop_map(|(x, y, w, h)| Region::rect(x, y, (x + w).min(11), (y + h).min(11)))
        }

        fn arb_versions() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
            (
                proptest::collection::vec(proptest::bool::ANY, 3),
                proptest::collection::vec(proptest::bool::ANY, 3),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn or_pfd_never_exceeds_any_channel(
                regions in proptest::collection::vec(arb_region(), 3),
                (pa, pb) in arb_versions()
            ) {
                let space = GridSpace2D::new(12, 12).expect("valid");
                let profile = Profile::uniform(&space);
                let map = FaultRegionMap::new(space, regions).expect("valid");
                let va = ProgramVersion::new(pa);
                let vb = ProgramVersion::new(pb);
                let sys = ProtectionSystem::new(
                    vec![
                        Channel::new("A", va.clone()),
                        Channel::new("B", vb.clone()),
                    ],
                    Adjudicator::OneOutOfN,
                    map.clone(),
                )
                .expect("valid");
                let pfd = sys.true_pfd(&profile).expect("ok");
                prop_assert!(pfd <= va.true_pfd(&map, &profile).expect("ok") + 1e-12);
                prop_assert!(pfd <= vb.true_pfd(&map, &profile).expect("ok") + 1e-12);
            }

            #[test]
            fn adjudicator_ordering_or_below_majority_below_and(
                regions in proptest::collection::vec(arb_region(), 3),
                (pa, pb) in arb_versions(),
                pc in proptest::collection::vec(proptest::bool::ANY, 3)
            ) {
                let space = GridSpace2D::new(12, 12).expect("valid");
                let profile = Profile::uniform(&space);
                let map = FaultRegionMap::new(space, regions).expect("valid");
                let mk = |adj: Adjudicator| {
                    ProtectionSystem::new(
                        vec![
                            Channel::new("A", ProgramVersion::new(pa.clone())),
                            Channel::new("B", ProgramVersion::new(pb.clone())),
                            Channel::new("C", ProgramVersion::new(pc.clone())),
                        ],
                        adj,
                        map.clone(),
                    )
                    .expect("valid")
                    .true_pfd(&profile)
                    .expect("ok")
                };
                let or = mk(Adjudicator::OneOutOfN);
                let maj = mk(Adjudicator::Majority);
                let and = mk(Adjudicator::AllOutOfN);
                prop_assert!(or <= maj + 1e-12, "or {or} > majority {maj}");
                prop_assert!(maj <= and + 1e-12, "majority {maj} > and {and}");
            }

            #[test]
            fn response_is_consistent_with_true_pfd_support(
                regions in proptest::collection::vec(arb_region(), 2),
                (pa, pb) in (
                    proptest::collection::vec(proptest::bool::ANY, 2),
                    proptest::collection::vec(proptest::bool::ANY, 2),
                )
            ) {
                let space = GridSpace2D::new(12, 12).expect("valid");
                let profile = Profile::uniform(&space);
                let map = FaultRegionMap::new(space, regions).expect("valid");
                let sys = ProtectionSystem::new(
                    vec![
                        Channel::new("A", ProgramVersion::new(pa)),
                        Channel::new("B", ProgramVersion::new(pb)),
                    ],
                    Adjudicator::OneOutOfN,
                    map,
                )
                .expect("valid");
                // true_pfd equals the measure of the demands where respond()
                // says "no trip" — recomputed by brute force.
                let mut brute = 0.0;
                for y in 0..12u32 {
                    for x in 0..12u32 {
                        let d = Demand::new(x, y);
                        if !sys.respond(d).expect("ok").tripped {
                            brute += profile.prob(d);
                        }
                    }
                }
                prop_assert!((sys.true_pfd(&profile).expect("ok") - brute).abs() < 1e-12);
            }

            /// At the u64 fail-mask ceiling (and at its edges: 1, 63 and
            /// 64 channels), `respond_bits` must round-trip exactly with
            /// the allocating `respond`: bit `ch` of the mask set iff
            /// channel `ch`'s trip flag is false, with identical
            /// adjudicated decisions — including bit 63, where a shift
            /// bug would wrap.
            #[test]
            fn respond_bits_round_trips_at_the_channel_cap(
                which in 0usize..3,
                seed_flags in proptest::collection::vec(proptest::bool::ANY, 64 * 3),
                x in 0u32..12,
                y in 0u32..12
            ) {
                let n = [1usize, 63, 64][which];
                let space = GridSpace2D::new(12, 12).expect("valid");
                let map = FaultRegionMap::new(
                    space,
                    vec![
                        Region::rect(0, 0, 5, 5),
                        Region::rect(3, 3, 9, 9),
                        Region::rect(8, 0, 11, 4),
                    ],
                )
                .expect("valid");
                let channels: Vec<Channel> = (0..n)
                    .map(|ch| {
                        let flags: Vec<bool> =
                            (0..3).map(|r| seed_flags[ch * 3 + r]).collect();
                        Channel::new(format!("C{ch}"), ProgramVersion::new(flags))
                    })
                    .collect();
                let sys = ProtectionSystem::new(channels, Adjudicator::OneOutOfN, map)
                    .expect("<= 64 channels is constructible");
                let d = Demand::new(x, y);
                let full = sys.respond(d).expect("ok");
                let (tripped, fail_mask) = sys.respond_bits(d).expect("ok");
                prop_assert_eq!(tripped, full.tripped);
                for (ch, &trip) in full.channel_trips.iter().enumerate() {
                    prop_assert_eq!(
                        fail_mask >> ch & 1 == 1,
                        !trip,
                        "channel {} of {}: mask bit disagrees with respond()",
                        ch,
                        n
                    );
                }
                // No stray bits above the channel count.
                if n < 64 {
                    prop_assert_eq!(fail_mask >> n, 0);
                }
                // The mask's popcount reproduces the adjudicated tally.
                let trips = n - fail_mask.count_ones() as usize;
                let adj = sys.adjudicator().expect("flat system");
                prop_assert_eq!(adj.decide_counts(trips, n), tripped);
            }

            /// The compiled system table must agree with the direct
            /// tree walk on every demand cell, at the channel-cap edge
            /// cases 1, 63 and 64 — the "compiles to the trip-table
            /// fast path bit-identically" guarantee.
            #[test]
            fn tree_compiled_table_matches_direct_walk_at_cap_sizes(
                which in 0usize..3,
                seed_flags in proptest::collection::vec(proptest::bool::ANY, 64 * 3),
                k in 1usize..=64
            ) {
                use crate::tree::FaultTree;
                let n = [1usize, 63, 64][which];
                let space = GridSpace2D::new(8, 8).expect("valid");
                let map = FaultRegionMap::new(
                    space,
                    vec![
                        Region::rect(0, 0, 3, 3),
                        Region::rect(2, 2, 6, 6),
                        Region::rect(5, 0, 7, 3),
                    ],
                )
                .expect("valid");
                let channels: Vec<Channel> = (0..n)
                    .map(|ch| {
                        let flags: Vec<bool> =
                            (0..3).map(|r| seed_flags[ch * 3 + r]).collect();
                        Channel::new(format!("C{ch}"), ProgramVersion::new(flags))
                    })
                    .collect();
                // A nested topology exercising every gate kind: the
                // threshold vote over all channels OR-ed with the AND
                // of the first and last.
                let tree = FaultTree::AnyOf(vec![
                    FaultTree::k_of_first_n(k.min(n), n),
                    FaultTree::AllOf(vec![
                        FaultTree::Channel(0),
                        FaultTree::Channel(n - 1),
                    ]),
                ]);
                let sys = ProtectionSystem::with_tree(channels, tree.clone(), map)
                    .expect("valid tree system");
                for cell in 0..space.cell_count() {
                    let trips: Vec<bool> = (0..n)
                        .map(|ch| !sys.channel_fails_cell(ch, cell))
                        .collect();
                    prop_assert_eq!(
                        !sys.system_fails_cell(cell),
                        tree.decide(&trips),
                        "cell {} over {} channels",
                        cell,
                        n
                    );
                    let d = space.demand_at(cell).expect("cell in range");
                    let (tripped, fail_mask) = sys.respond_bits(d).expect("ok");
                    prop_assert_eq!(tripped, tree.decide(&trips));
                    prop_assert_eq!(tripped, tree.decide_fail_mask(fail_mask));
                }
            }
        }
    }
}
