//! The assembled protection system: channels behind an adjudicator.

use crate::adjudicator::Adjudicator;
use crate::channel::Channel;
use crate::error::ProtectionError;
use divrel_demand::mapping::FaultRegionMap;
use divrel_demand::profile::Profile;
use divrel_demand::space::Demand;
use std::fmt;

/// The system's response to one demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemResponse {
    /// Per-channel trip decisions, in channel order.
    pub channel_trips: Vec<bool>,
    /// The adjudicated system decision.
    pub tripped: bool,
}

/// A plant protection system (Fig 1): `k` channels whose trip outputs are
/// combined by an adjudicator.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionSystem {
    channels: Vec<Channel>,
    adjudicator: Adjudicator,
    map: FaultRegionMap,
}

impl ProtectionSystem {
    /// Assembles a system.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::NoChannels`] / [`ProtectionError::BadChannelCount`]
    /// from adjudicator validation; [`ProtectionError::Demand`] if any
    /// channel's version length disagrees with the map.
    pub fn new(
        channels: Vec<Channel>,
        adjudicator: Adjudicator,
        map: FaultRegionMap,
    ) -> Result<Self, ProtectionError> {
        adjudicator.validate(channels.len())?;
        for c in &channels {
            c.view().validate(map.space())?;
            if c.version().present().len() != map.len() {
                return Err(ProtectionError::Demand(
                    divrel_demand::DemandError::Mismatch(format!(
                        "channel {} has {} fault flags, map has {} regions",
                        c.name(),
                        c.version().present().len(),
                        map.len()
                    )),
                ));
            }
        }
        Ok(ProtectionSystem {
            channels,
            adjudicator,
            map,
        })
    }

    /// The channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The adjudicator.
    pub fn adjudicator(&self) -> Adjudicator {
        self.adjudicator
    }

    /// The fault → region map the channels are evaluated against.
    pub fn map(&self) -> &FaultRegionMap {
        &self.map
    }

    /// Responds to a demand.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::Demand`] on version/map inconsistencies (cannot
    /// occur for a validated system).
    pub fn respond(&self, demand: Demand) -> Result<SystemResponse, ProtectionError> {
        let mut channel_trips = Vec::with_capacity(self.channels.len());
        for c in &self.channels {
            channel_trips.push(c.trips_on(&self.map, demand)?);
        }
        let tripped = self.adjudicator.decide(&channel_trips);
        Ok(SystemResponse {
            channel_trips,
            tripped,
        })
    }

    /// The system's **true** PFD under `profile`: the profile mass of the
    /// demand set on which the adjudicated output fails. For the OR
    /// adjudicator this is the measure of the intersection of the
    /// channels' failure sets — the geometric counterpart of the paper's
    /// common-fault PFD.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::respond`].
    pub fn true_pfd(&self, profile: &Profile) -> Result<f64, ProtectionError> {
        let mut pfd = 0.0;
        for d in self.map.space().demands() {
            if !self.respond(d)?.tripped {
                pfd += profile.prob(d);
            }
        }
        Ok(pfd)
    }
}

impl fmt::Display for ProtectionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProtectionSystem({} channels, {})",
            self.channels.len(),
            self.adjudicator
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_demand::region::Region;
    use divrel_demand::space::GridSpace2D;
    use divrel_demand::version::ProgramVersion;

    fn map() -> FaultRegionMap {
        let space = GridSpace2D::new(10, 10).unwrap();
        FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 1, 1), Region::rect(1, 1, 2, 2)],
        )
        .unwrap()
    }

    fn two_channel_system() -> ProtectionSystem {
        ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ProtectionSystem::new(vec![], Adjudicator::OneOutOfN, map()).is_err());
        let short = Channel::new("X", ProgramVersion::new(vec![true]));
        assert!(ProtectionSystem::new(vec![short], Adjudicator::OneOutOfN, map()).is_err());
        assert!(ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::fault_free(2)),
                Channel::new("B", ProgramVersion::fault_free(2)),
            ],
            Adjudicator::Majority,
            map()
        )
        .is_err());
    }

    #[test]
    fn or_adjudication_masks_single_channel_faults() {
        let sys = two_channel_system();
        // (0,0): only A fails -> B trips -> system trips.
        let r = sys.respond(Demand::new(0, 0)).unwrap();
        assert_eq!(r.channel_trips, vec![false, true]);
        assert!(r.tripped);
        // (1,1): A fails (region 0) and B fails (region 1) -> system fails.
        let r = sys.respond(Demand::new(1, 1)).unwrap();
        assert_eq!(r.channel_trips, vec![false, false]);
        assert!(!r.tripped);
        // (5,5): nobody fails.
        let r = sys.respond(Demand::new(5, 5)).unwrap();
        assert!(r.tripped);
    }

    #[test]
    fn true_pfd_is_intersection_measure() {
        let sys = two_channel_system();
        let profile = Profile::uniform(sys.map().space());
        // Regions intersect only at (1,1): 1 cell of 100.
        let pfd = sys.true_pfd(&profile).unwrap();
        assert!((pfd - 0.01).abs() < 1e-12);
    }

    #[test]
    fn and_adjudicator_fails_if_any_channel_fails() {
        let sys = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::AllOutOfN,
            map(),
        )
        .unwrap();
        let profile = Profile::uniform(sys.map().space());
        // Union of the regions: 4 + 4 - 1 = 7 cells.
        let pfd = sys.true_pfd(&profile).unwrap();
        assert!((pfd - 0.07).abs() < 1e-12);
    }

    #[test]
    fn identical_channels_gain_nothing() {
        // Two copies of the same faulty version: OR adjudication does not
        // help — the system PFD equals the version PFD. (The degenerate
        // case diversity exists to avoid.)
        let v = ProgramVersion::new(vec![true, true]);
        let sys = ProtectionSystem::new(
            vec![Channel::new("A", v.clone()), Channel::new("B", v)],
            Adjudicator::OneOutOfN,
            map(),
        )
        .unwrap();
        let profile = Profile::uniform(sys.map().space());
        let pfd = sys.true_pfd(&profile).unwrap();
        assert!((pfd - 0.07).abs() < 1e-12); // union of both regions
    }

    #[test]
    fn display_and_accessors() {
        let sys = two_channel_system();
        assert_eq!(sys.channels().len(), 2);
        assert_eq!(sys.adjudicator(), Adjudicator::OneOutOfN);
        assert!(sys.to_string().contains("2 channels"));
    }

    mod properties {
        use super::*;
        use divrel_demand::space::Demand;
        use proptest::prelude::*;

        /// Random region within a 12×12 space.
        fn arb_region() -> impl Strategy<Value = Region> {
            (0u32..10, 0u32..10, 1u32..4, 1u32..4).prop_map(|(x, y, w, h)| {
                Region::rect(x, y, (x + w).min(11), (y + h).min(11))
            })
        }

        fn arb_versions() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
            (
                proptest::collection::vec(proptest::bool::ANY, 3),
                proptest::collection::vec(proptest::bool::ANY, 3),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn or_pfd_never_exceeds_any_channel(
                regions in proptest::collection::vec(arb_region(), 3),
                (pa, pb) in arb_versions()
            ) {
                let space = GridSpace2D::new(12, 12).expect("valid");
                let profile = Profile::uniform(&space);
                let map = FaultRegionMap::new(space, regions).expect("valid");
                let va = ProgramVersion::new(pa);
                let vb = ProgramVersion::new(pb);
                let sys = ProtectionSystem::new(
                    vec![
                        Channel::new("A", va.clone()),
                        Channel::new("B", vb.clone()),
                    ],
                    Adjudicator::OneOutOfN,
                    map.clone(),
                )
                .expect("valid");
                let pfd = sys.true_pfd(&profile).expect("ok");
                prop_assert!(pfd <= va.true_pfd(&map, &profile).expect("ok") + 1e-12);
                prop_assert!(pfd <= vb.true_pfd(&map, &profile).expect("ok") + 1e-12);
            }

            #[test]
            fn adjudicator_ordering_or_below_majority_below_and(
                regions in proptest::collection::vec(arb_region(), 3),
                (pa, pb) in arb_versions(),
                pc in proptest::collection::vec(proptest::bool::ANY, 3)
            ) {
                let space = GridSpace2D::new(12, 12).expect("valid");
                let profile = Profile::uniform(&space);
                let map = FaultRegionMap::new(space, regions).expect("valid");
                let mk = |adj: Adjudicator| {
                    ProtectionSystem::new(
                        vec![
                            Channel::new("A", ProgramVersion::new(pa.clone())),
                            Channel::new("B", ProgramVersion::new(pb.clone())),
                            Channel::new("C", ProgramVersion::new(pc.clone())),
                        ],
                        adj,
                        map.clone(),
                    )
                    .expect("valid")
                    .true_pfd(&profile)
                    .expect("ok")
                };
                let or = mk(Adjudicator::OneOutOfN);
                let maj = mk(Adjudicator::Majority);
                let and = mk(Adjudicator::AllOutOfN);
                prop_assert!(or <= maj + 1e-12, "or {or} > majority {maj}");
                prop_assert!(maj <= and + 1e-12, "majority {maj} > and {and}");
            }

            #[test]
            fn response_is_consistent_with_true_pfd_support(
                regions in proptest::collection::vec(arb_region(), 2),
                (pa, pb) in (
                    proptest::collection::vec(proptest::bool::ANY, 2),
                    proptest::collection::vec(proptest::bool::ANY, 2),
                )
            ) {
                let space = GridSpace2D::new(12, 12).expect("valid");
                let profile = Profile::uniform(&space);
                let map = FaultRegionMap::new(space, regions).expect("valid");
                let sys = ProtectionSystem::new(
                    vec![
                        Channel::new("A", ProgramVersion::new(pa)),
                        Channel::new("B", ProgramVersion::new(pb)),
                    ],
                    Adjudicator::OneOutOfN,
                    map,
                )
                .expect("valid");
                // true_pfd equals the measure of the demands where respond()
                // says "no trip" — recomputed by brute force.
                let mut brute = 0.0;
                for y in 0..12u32 {
                    for x in 0..12u32 {
                        let d = Demand::new(x, y);
                        if !sys.respond(d).expect("ok").tripped {
                            brute += profile.prob(d);
                        }
                    }
                }
                prop_assert!((sys.true_pfd(&profile).expect("ok") - brute).abs() < 1e-12);
            }
        }
    }
}
