//! Protection channels.
//!
//! A channel is one computation lane of Fig 1: it senses the plant state
//! (a demand) and decides whether to command a shut-down. The channel runs
//! a [`ProgramVersion`]; it fails to trip exactly when the demand lies in a
//! failure region of a fault that version contains.

use crate::error::ProtectionError;
use crate::sensing::SensorView;
use divrel_demand::mapping::FaultRegionMap;
use divrel_demand::space::Demand;
use divrel_demand::version::ProgramVersion;
use std::fmt;

/// One protection channel running one program version behind its sensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    name: String,
    version: ProgramVersion,
    view: SensorView,
}

impl Channel {
    /// Creates a channel that senses the plant state directly (the
    /// paper's worst case of no functional diversity).
    pub fn new(name: impl Into<String>, version: ProgramVersion) -> Self {
        Channel {
            name: name.into(),
            version,
            view: SensorView::Identity,
        }
    }

    /// Creates a functionally diverse channel: its software receives the
    /// plant state through `view` (different sensed variables,
    /// calibration, or instrumentation resolution).
    pub fn with_view(name: impl Into<String>, version: ProgramVersion, view: SensorView) -> Self {
        Channel {
            name: name.into(),
            version,
            view,
        }
    }

    /// The channel's name (for logs and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program version the channel runs.
    pub fn version(&self) -> &ProgramVersion {
        &self.version
    }

    /// The channel's sensor view.
    pub fn view(&self) -> SensorView {
        self.view
    }

    /// Responds to a demand: `true` = trip (correct), `false` = failure to
    /// trip. The plant state is first mapped through the channel's sensor
    /// view.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::Demand`] if the version and map disagree on the
    /// fault count.
    pub fn trips_on(&self, map: &FaultRegionMap, demand: Demand) -> Result<bool, ProtectionError> {
        let seen = self.view.apply(demand, map.space());
        Ok(!self.version.fails_on(map, seen)?)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Channel({}, {}, view={})",
            self.name, self.version, self.view
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_demand::region::Region;
    use divrel_demand::space::GridSpace2D;

    fn map() -> FaultRegionMap {
        let space = GridSpace2D::new(10, 10).unwrap();
        FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 2)]).unwrap()
    }

    #[test]
    fn faulty_channel_fails_in_region() {
        let m = map();
        let c = Channel::new("A", ProgramVersion::new(vec![true]));
        assert!(!c.trips_on(&m, Demand::new(1, 1)).unwrap());
        assert!(c.trips_on(&m, Demand::new(5, 5)).unwrap());
    }

    #[test]
    fn perfect_channel_always_trips() {
        let m = map();
        let c = Channel::new("B", ProgramVersion::new(vec![false]));
        for d in [Demand::new(0, 0), Demand::new(1, 1), Demand::new(9, 9)] {
            assert!(c.trips_on(&m, d).unwrap());
        }
    }

    #[test]
    fn mismatched_version_is_an_error() {
        let m = map();
        let c = Channel::new("C", ProgramVersion::new(vec![true, false]));
        assert!(c.trips_on(&m, Demand::new(0, 0)).is_err());
    }

    #[test]
    fn accessors_and_display() {
        let c = Channel::new("alpha", ProgramVersion::fault_free(3));
        assert_eq!(c.name(), "alpha");
        assert_eq!(c.version().fault_count(), 0);
        assert_eq!(c.view(), SensorView::Identity);
        assert!(c.to_string().contains("alpha"));
    }

    #[test]
    fn functional_diversity_changes_where_a_channel_fails() {
        // Region covers the lower-left corner; the swapped-axes channel
        // fails on the *mirrored* demands instead.
        let space = GridSpace2D::new(10, 10).unwrap();
        let m = FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 0)]).unwrap();
        let direct = Channel::new("A", ProgramVersion::new(vec![true]));
        let swapped =
            Channel::with_view("B", ProgramVersion::new(vec![true]), SensorView::SwapAxes);
        // (2, 0) lies in the region: direct fails, swapped sees (0, 2)
        // which is outside, so it trips.
        assert!(!direct.trips_on(&m, Demand::new(2, 0)).unwrap());
        assert!(swapped.trips_on(&m, Demand::new(2, 0)).unwrap());
        // (0, 2) is outside: direct trips, swapped sees (2, 0) and fails.
        assert!(direct.trips_on(&m, Demand::new(0, 2)).unwrap());
        assert!(!swapped.trips_on(&m, Demand::new(0, 2)).unwrap());
        // (0, 0) is fixed under the swap: both fail together.
        assert!(!direct.trips_on(&m, Demand::new(0, 0)).unwrap());
        assert!(!swapped.trips_on(&m, Demand::new(0, 0)).unwrap());
    }
}
