//! Fault-tree adjudication: arbitrary gate topologies over channels.
//!
//! A [`FaultTree`] generalises the flat [`crate::Adjudicator`] votes to
//! recursive AND/OR/k-of-n gate structures over channel **trip**
//! signals: a leaf is a channel index, a gate combines sub-trees. The
//! tree decides whether the *system* trips on a demand, so in
//! reliability-block terms the gates are the duals of the usual
//! failure-space reading:
//!
//! * [`FaultTree::AnyOf`] (OR over trips) is **parallel redundancy** —
//!   the system fails only when *every* branch fails (the paper's
//!   1-out-of-2 is `AnyOf([Channel(0), Channel(1)])`);
//! * [`FaultTree::AllOf`] (AND over trips) is a **series** structure —
//!   the system fails as soon as *any* branch fails;
//! * [`FaultTree::KOfN`] is the threshold gate (2oo3 voting and
//!   friends), with the same no-tie semantics as
//!   [`crate::Adjudicator::KOutOfN`]: exactly `k` tripping branches
//!   trip the gate, exactly `k - 1` do not.
//!
//! Trees are plain data (serde + the TOML subset) so scenario files can
//! declare topologies; [`crate::system::ProtectionSystem::with_tree`]
//! compiles a tree over ≤ 64 channels down to the same per-demand-cell
//! trip tables the flat adjudicators use, with [`FaultTree::decide`] as
//! the direct-walk reference and fallback.

use crate::error::ProtectionError;
use std::fmt;

/// A recursive gate structure over channel trip signals.
///
/// Serialisable as externally tagged variants, e.g. in TOML:
///
/// ```toml
/// [experiment.Protection.systems.tree.KOfN]
/// k = 2
/// of = [{ Channel = 0 }, { Channel = 1 }, { Channel = 2 }]
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultTree {
    /// A leaf: the trip signal of channel `i` (0-based index into the
    /// system's channel list).
    Channel(usize),
    /// OR gate: trips if **any** sub-tree trips. Parallel redundancy in
    /// failure space — fails only when every branch fails.
    AnyOf(Vec<FaultTree>),
    /// AND gate: trips only if **every** sub-tree trips. A series
    /// structure in failure space — fails when any branch fails.
    AllOf(Vec<FaultTree>),
    /// Threshold gate: trips iff at least `k` of the sub-trees trip.
    /// No ties by construction (`k` trips is a trip, `k - 1` is not);
    /// requires `1 <= k <= of.len()`.
    KOfN {
        /// Minimum number of tripping sub-trees for the gate to trip.
        k: usize,
        /// The sub-trees under the gate.
        of: Vec<FaultTree>,
    },
}

impl FaultTree {
    /// Convenience: a flat threshold vote over the first `n` channels —
    /// the tree form of [`crate::Adjudicator::KOutOfN`].
    pub fn k_of_first_n(k: usize, n: usize) -> FaultTree {
        FaultTree::KOfN {
            k,
            of: (0..n).map(FaultTree::Channel).collect(),
        }
    }

    /// Validates the tree against a channel count: every leaf index in
    /// range, every gate non-empty, every threshold in `1..=arity`.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] naming the offending node.
    pub fn validate(&self, channels: usize) -> Result<(), ProtectionError> {
        match self {
            FaultTree::Channel(i) => {
                if *i >= channels {
                    return Err(ProtectionError::InvalidConfig(format!(
                        "fault tree references channel {i}, but the system has \
                         {channels} channels"
                    )));
                }
            }
            FaultTree::AnyOf(of) | FaultTree::AllOf(of) => {
                if of.is_empty() {
                    return Err(ProtectionError::InvalidConfig(
                        "fault tree gate has no sub-trees".into(),
                    ));
                }
                for sub in of {
                    sub.validate(channels)?;
                }
            }
            FaultTree::KOfN { k, of } => {
                if of.is_empty() {
                    return Err(ProtectionError::InvalidConfig(
                        "fault tree k-of-n gate has no sub-trees".into(),
                    ));
                }
                if *k == 0 || *k > of.len() {
                    return Err(ProtectionError::InvalidConfig(format!(
                        "fault tree k-of-n gate needs 1 <= k <= {}, got k = {k}",
                        of.len()
                    )));
                }
                for sub in of {
                    sub.validate(channels)?;
                }
            }
        }
        Ok(())
    }

    /// Evaluates the tree over per-channel trip decisions (the direct
    /// tree walk — the reference semantics the compiled trip tables
    /// must reproduce bit for bit).
    ///
    /// Total over any slice: an out-of-range leaf reads as "did not
    /// trip" (validated trees never contain one).
    pub fn decide(&self, trips: &[bool]) -> bool {
        match self {
            FaultTree::Channel(i) => trips.get(*i).copied().unwrap_or(false),
            FaultTree::AnyOf(of) => of.iter().any(|t| t.decide(trips)),
            FaultTree::AllOf(of) => of.iter().all(|t| t.decide(trips)),
            FaultTree::KOfN { k, of } => {
                *k >= 1 && of.iter().filter(|t| t.decide(trips)).count() >= *k
            }
        }
    }

    /// Evaluates the tree over a packed failure mask (bit `i` set means
    /// channel `i` **failed** to trip) — the form the bit-table hot
    /// path produces. Equivalent to [`Self::decide`] with
    /// `trips[i] = !fail(i)`.
    pub fn decide_fail_mask(&self, fail_mask: u64) -> bool {
        match self {
            FaultTree::Channel(i) => *i < 64 && (fail_mask >> *i) & 1 == 0,
            FaultTree::AnyOf(of) => of.iter().any(|t| t.decide_fail_mask(fail_mask)),
            FaultTree::AllOf(of) => of.iter().all(|t| t.decide_fail_mask(fail_mask)),
            FaultTree::KOfN { k, of } => {
                *k >= 1 && of.iter().filter(|t| t.decide_fail_mask(fail_mask)).count() >= *k
            }
        }
    }

    /// The number of channel leaves (with multiplicity).
    pub fn leaf_count(&self) -> usize {
        match self {
            FaultTree::Channel(_) => 1,
            FaultTree::AnyOf(of) | FaultTree::AllOf(of) | FaultTree::KOfN { of, .. } => {
                of.iter().map(FaultTree::leaf_count).sum()
            }
        }
    }

    /// The highest channel index referenced, if any leaf exists.
    pub fn max_channel(&self) -> Option<usize> {
        match self {
            FaultTree::Channel(i) => Some(*i),
            FaultTree::AnyOf(of) | FaultTree::AllOf(of) | FaultTree::KOfN { of, .. } => {
                of.iter().filter_map(FaultTree::max_channel).max()
            }
        }
    }
}

impl fmt::Display for FaultTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, of: &[FaultTree]) -> fmt::Result {
            for (i, sub) in of.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{sub}")?;
            }
            Ok(())
        }
        match self {
            FaultTree::Channel(i) => write!(f, "C{i}"),
            FaultTree::AnyOf(of) => {
                f.write_str("OR(")?;
                list(f, of)?;
                f.write_str(")")
            }
            FaultTree::AllOf(of) => {
                f.write_str("AND(")?;
                list(f, of)?;
                f.write_str(")")
            }
            FaultTree::KOfN { k, of } => {
                write!(f, "{}oo{}(", k, of.len())?;
                list(f, of)?;
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_oo_three() -> FaultTree {
        FaultTree::k_of_first_n(2, 3)
    }

    #[test]
    fn gates_evaluate_truth_tables() {
        let or = FaultTree::AnyOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]);
        assert!(or.decide(&[true, false]));
        assert!(or.decide(&[false, true]));
        assert!(!or.decide(&[false, false]));

        let and = FaultTree::AllOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]);
        assert!(and.decide(&[true, true]));
        assert!(!and.decide(&[true, false]));

        let v = two_oo_three();
        assert!(!v.decide(&[true, false, false]));
        assert!(v.decide(&[true, true, false]));
        assert!(v.decide(&[true, true, true]));
    }

    #[test]
    fn nested_gates_compose() {
        // OR(AND(0, 1), 2): the diverse pair must agree, or the hot
        // standby trips alone.
        let t = FaultTree::AnyOf(vec![
            FaultTree::AllOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]),
            FaultTree::Channel(2),
        ]);
        assert!(t.decide(&[true, true, false]));
        assert!(t.decide(&[false, false, true]));
        assert!(!t.decide(&[true, false, false]));
    }

    #[test]
    fn fail_mask_walk_matches_trip_walk() {
        let t = FaultTree::AnyOf(vec![
            FaultTree::AllOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]),
            FaultTree::KOfN {
                k: 2,
                of: vec![
                    FaultTree::Channel(1),
                    FaultTree::Channel(2),
                    FaultTree::Channel(3),
                ],
            },
        ]);
        for mask in 0u64..16 {
            let trips: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 == 0).collect();
            assert_eq!(
                t.decide_fail_mask(mask),
                t.decide(&trips),
                "mask {mask:04b}"
            );
        }
    }

    #[test]
    fn validation_rejects_malformed_trees() {
        assert!(two_oo_three().validate(3).is_ok());
        // Leaf out of range.
        assert!(FaultTree::Channel(3).validate(3).is_err());
        // Empty gates.
        assert!(FaultTree::AnyOf(vec![]).validate(3).is_err());
        assert!(FaultTree::AllOf(vec![]).validate(3).is_err());
        assert!(FaultTree::KOfN { k: 1, of: vec![] }.validate(3).is_err());
        // Threshold out of range.
        assert!(FaultTree::k_of_first_n(0, 3).validate(3).is_err());
        assert!(FaultTree::k_of_first_n(4, 3).validate(3).is_err());
        // Errors propagate out of nested gates.
        let nested = FaultTree::AnyOf(vec![FaultTree::AllOf(vec![FaultTree::Channel(9)])]);
        assert!(nested.validate(3).is_err());
    }

    #[test]
    fn accounting_and_display() {
        let t = FaultTree::AnyOf(vec![
            FaultTree::AllOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]),
            FaultTree::Channel(2),
        ]);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.max_channel(), Some(2));
        assert_eq!(t.to_string(), "OR(AND(C0, C1), C2)");
        assert_eq!(two_oo_three().to_string(), "2oo3(C0, C1, C2)");
    }

    #[test]
    fn serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let t = FaultTree::AnyOf(vec![
            FaultTree::AllOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]),
            FaultTree::KOfN {
                k: 2,
                of: vec![
                    FaultTree::Channel(1),
                    FaultTree::Channel(2),
                    FaultTree::Channel(3),
                ],
            },
        ]);
        assert_eq!(FaultTree::from_value(&t.to_value()).unwrap(), t);
    }
}
