//! Driving a protection system against a plant.
//!
//! [`run`] executes the Fig 1 loop: the plant evolves; when it raises a
//! demand, the channels respond, the adjudicator combines, and the log
//! records. This is the operational-testing path used by experiment F1 to
//! compare observed PFDs against the model's analytic predictions, and by
//! the Bayesian layer to generate the evidence it updates on.
//!
//! For **memoryless** (rate) plants the driver skips quiet ticks
//! analytically: the gap until the next demand is geometric with the
//! plant's demand rate, so it is sampled in one draw and the whole run
//! collapses to ~one iteration per *demand* instead of one per tick (a
//! 400 000-step run at rate `r` does ~`400 000 · r` iterations). Each
//! demand is then answered from the system's precomputed trip tables
//! via [`ProtectionSystem::respond_bits`], allocation-free.
//!
//! **State-dependent** (trajectory / Markov-walk) plants go through the
//! demand compiler ([`crate::compiler::CompiledPlant`]): their one-step
//! law is compiled to per-state geometric dwell samplers plus alias
//! tables over the embedded quiet-transition chain, so the run advances
//! in `record_quiet_n(gap)` jumps between state changes instead of one
//! RNG draw per tick. Plants the compiler cannot enumerate degrade
//! gracefully to the exact tick-by-tick loop ([`run_stepwise`], also
//! kept public as the reference path for before/after benchmarks and
//! the statistical-equivalence test suite).
//!
//! Long campaigns shard across threads with [`run_sharded`]:
//! deterministic per-shard seeds, one [`OperationLog`] merge at the end,
//! results reproducible for a fixed seed and shard layout.

use crate::compiler::{CompiledEvent, CompiledPlant};
use crate::error::ProtectionError;
use crate::history::OperationLog;
use crate::plant::{Plant, PlantEvent};
use crate::system::ProtectionSystem;
use divrel_demand::profile::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the plant/system loop for `steps` ticks, returning the operation
/// log. Memoryless plants take the geometric demand-gap fast path;
/// sticky stateful plants (see [`CompiledPlant::is_profitable`]) take
/// the compiled demand-gap path; everything else runs tick by tick.
///
/// # Errors
///
/// Propagates [`ProtectionSystem::respond`] errors (impossible for a
/// validated system).
pub fn run<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    if let Some((profile, rate)) = plant.rate_parts() {
        return run_rate_gaps(profile, rate, system, steps, rng);
    }
    if compile_worthwhile(plant, steps) {
        if let Some(compiled) = CompiledPlant::compile(plant)? {
            return run_compiled(&compiled, system, steps, rng);
        }
    }
    run_stepwise(plant, system, steps, rng)
}

/// Whether a one-shot run of `steps` ticks should pay for compilation:
/// the plant must be sticky ([`CompiledPlant::is_profitable`]), and —
/// for spaces the **eager** compiler enumerates — the run must be long
/// enough to amortise the `O(cells × successors)` compile; a short run
/// over a huge state space is faster ticked than compiled. Spaces past
/// [`MAX_COMPILED_CELLS`](crate::compiler::MAX_COMPILED_CELLS) compile
/// **sparsely** (per-state cost on first visit, nothing up front), so
/// they need no amortisation test at all — any sticky plant up to
/// [`MAX_SPARSE_CELLS`](crate::compiler::MAX_SPARSE_CELLS) rides the
/// analytic path.
fn compile_worthwhile(plant: &Plant, steps: u64) -> bool {
    let cells = plant.space().cell_count();
    CompiledPlant::is_profitable(plant)
        && if cells > crate::compiler::MAX_COMPILED_CELLS {
            cells <= crate::compiler::MAX_SPARSE_CELLS
        } else {
            steps >= 4 * cells as u64
        }
}

/// Runs a pre-compiled plant for `steps` ticks via analytic demand-gap
/// jumps. Compile once with [`CompiledPlant::compile`] and reuse across
/// runs (and across threads — see [`run_sharded`]).
///
/// # Errors
///
/// Propagates [`ProtectionSystem::respond`] errors (impossible for a
/// validated system over the same space).
pub fn run_compiled<R: Rng + ?Sized>(
    compiled: &CompiledPlant,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let mut state = compiled.initial_state();
    let mut remaining = steps;
    while remaining > 0 {
        match compiled.next_demand(&mut state, remaining, rng) {
            CompiledEvent::Quiet { ticks } => {
                log.record_quiet_n(ticks);
                break;
            }
            CompiledEvent::Demand { quiet_gap, demand } => {
                log.record_quiet_n(quiet_gap);
                let (tripped, fail_mask) = system.respond_bits(demand)?;
                log.record_demand_bits(tripped, fail_mask);
                remaining -= quiet_gap + 1;
            }
        }
    }
    Ok(log)
}

/// Splitting constant for per-shard RNG streams (golden-ratio increment,
/// the same scheme as `divrel_devsim`'s Monte-Carlo sharding).
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The seed of shard `index` of a campaign seeded with `seed`.
pub fn shard_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_add(SHARD_SEED_STRIDE.wrapping_mul(index as u64 + 1))
}

/// Runs a long operational campaign sharded across `threads` OS threads
/// with `std::thread::scope`, merging the per-shard [`OperationLog`]s in
/// shard order.
///
/// Each shard runs an independent replica of the plant (its own RNG
/// stream via [`shard_seed`], its own initial state), so the merged log
/// is a campaign over `threads` statistically identical plants rather
/// than one serialised history — the demand/failure statistics the
/// assessor consumes are unchanged, which is exactly the property the
/// determinism test suite checks across shard layouts. Results are
/// bit-reproducible for a fixed `(seed, threads)` pair.
///
/// Compilable plants are compiled **once** and shared by every shard;
/// rate plants take the geometric path per shard; everything else falls
/// back to the tick loop per shard.
///
/// # Errors
///
/// [`ProtectionError::InvalidConfig`] for `threads == 0`; otherwise
/// propagated response errors from any shard.
pub fn run_sharded(
    plant: &Plant,
    system: &ProtectionSystem,
    steps: u64,
    threads: usize,
    seed: u64,
) -> Result<OperationLog, ProtectionError> {
    if threads == 0 {
        return Err(ProtectionError::InvalidConfig(
            "sharded campaign needs >= 1 thread".into(),
        ));
    }
    // One compilation is amortised across every shard, but fast-mixing
    // plants still simulate faster tick by tick, so the same
    // worthwhileness probe as `run` applies (against the whole campaign
    // length — the compile happens once, not per shard).
    let compiled = campaign_compile(plant, steps)?;
    let shards = shard_layout(steps, threads);
    let mut results: Vec<Result<OperationLog, ProtectionError>> = Vec::with_capacity(shards.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards.len());
        for (i, &count) in shards.iter().enumerate() {
            let compiled = compiled.as_ref();
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(shard_seed(seed, i));
                match compiled {
                    Some(c) => run_compiled(c, system, count, &mut rng),
                    None => run(plant, system, count, &mut rng),
                }
            }));
        }
        for h in handles {
            results.push(h.join().expect("campaign shard panicked"));
        }
    });
    let mut merged = OperationLog::new(system.channels().len());
    for r in results {
        merged.merge(&r?);
    }
    Ok(merged)
}

/// The compile-or-tick decision of a whole campaign, reified: returns
/// the compiled plant exactly when [`run_sharded`] over `campaign_steps`
/// would compile (sticky plant, long enough run to amortise), else
/// `None`. Distributed executors call this once per campaign and pass
/// the result to every [`run_campaign_shard`], matching the in-process
/// decision bit for bit.
///
/// # Errors
///
/// Compiler errors for a plant with an inconsistent transition law.
pub fn campaign_compile(
    plant: &Plant,
    campaign_steps: u64,
) -> Result<Option<CompiledPlant>, ProtectionError> {
    if compile_worthwhile(plant, campaign_steps) {
        CompiledPlant::compile(plant)
    } else {
        Ok(None)
    }
}

/// The deterministic shard layout of [`run_sharded`]: `steps` split
/// into at most `shards` near-equal counts (empty shards dropped). A
/// pure function of its arguments, exposed so distributed executors can
/// evaluate individual shards remotely and still land on the exact
/// in-process layout.
pub fn shard_layout(steps: u64, shards: usize) -> Vec<u64> {
    let t = (shards as u64).min(steps).max(1);
    let base = steps / t;
    let extra = steps % t;
    (0..t)
        .map(|i| base + u64::from(i < extra))
        .filter(|&c| c > 0)
        .collect()
}

/// Runs **one** shard of a [`run_sharded`] campaign, bit-identically to
/// the shard a sharded run would execute: `count` must be the shard's
/// entry in [`shard_layout`]`(campaign_steps, shards)` and `seed` the
/// value of [`shard_seed`]`(campaign_seed, index)`. `campaign_steps`
/// (the **whole** campaign length) drives the compile-or-tick decision,
/// which [`run_sharded`] takes once per campaign — a remote worker must
/// make the same call or its shard would follow a different RNG stream.
///
/// `compiled` optionally supplies a pre-compiled plant so callers
/// evaluating many shards amortise compilation; pass `None` to let the
/// function decide (and compile) by itself.
///
/// # Errors
///
/// Propagated response errors, as in [`run_sharded`].
pub fn run_campaign_shard(
    plant: &Plant,
    compiled: Option<&CompiledPlant>,
    system: &ProtectionSystem,
    campaign_steps: u64,
    count: u64,
    seed: u64,
) -> Result<OperationLog, ProtectionError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let owned;
    let compiled = if compile_worthwhile(plant, campaign_steps) {
        match compiled {
            Some(c) => Some(c),
            None => {
                owned = CompiledPlant::compile(plant)?;
                owned.as_ref()
            }
        }
    } else {
        None
    };
    match compiled {
        Some(c) => run_compiled(c, system, count, &mut rng),
        None => run(plant, system, count, &mut rng),
    }
}

/// The reference tick-by-tick loop (every plant step draws the RNG).
/// [`run`] uses it for trajectory plants; benchmarks use it as the
/// "before" of the demand-gap fast path.
///
/// # Errors
///
/// Propagates [`ProtectionSystem::respond`] errors.
pub fn run_stepwise<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let mut state = plant.initial_state();
    for _ in 0..steps {
        let (next, event) = plant.step(state, rng);
        state = next;
        match event {
            PlantEvent::Quiet => log.record_quiet(),
            PlantEvent::Demand(d) => {
                let (tripped, fail_mask) = system.respond_bits(d)?;
                log.record_demand_bits(tripped, fail_mask);
            }
        }
    }
    Ok(log)
}

/// Capped geometric sampler shared by the rate-plant gap path and the
/// compiled per-state dwell path: the number of consecutive "survive"
/// ticks before the first "exit" tick, `P(gap = k) = s^k · (1 − s)`
/// with survive probability `s`, truncated at `remaining`.
/// `inv_log_survive = 1 / ln(s)`, with `0.0` encoding `s = 0` (exit
/// every tick).
pub(crate) fn geometric_gap<R: Rng + ?Sized>(
    inv_log_survive: f64,
    remaining: u64,
    rng: &mut R,
) -> u64 {
    if inv_log_survive == 0.0 {
        return 0; // rate = 1: every step is a demand
    }
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let gap = u.ln() * inv_log_survive; // >= 0
    if gap >= remaining as f64 {
        remaining
    } else {
        gap as u64
    }
}

/// `1 / ln(1 − rate)` precomputed once per run (0 encodes `rate = 1`).
fn inv_log_survive(rate: f64) -> f64 {
    if rate >= 1.0 {
        0.0
    } else {
        (1.0 - rate).ln().recip()
    }
}

fn run_rate_gaps<R: Rng + ?Sized>(
    profile: &Profile,
    rate: f64,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let ils = inv_log_survive(rate);
    let mut remaining = steps;
    while remaining > 0 {
        let gap = geometric_gap(ils, remaining, rng);
        if gap >= remaining {
            log.record_quiet_n(remaining);
            break;
        }
        log.record_quiet_n(gap);
        remaining -= gap + 1;
        let d = profile.sample(rng);
        let (tripped, fail_mask) = system.respond_bits(d)?;
        log.record_demand_bits(tripped, fail_mask);
    }
    Ok(log)
}

/// Runs until `demands` demands have been observed (with a step safety
/// cap), for experiments that need a fixed evidence size. Memoryless
/// plants take the demand-gap fast path.
///
/// # Errors
///
/// [`ProtectionError::DemandShortfall`] — carrying the observed count,
/// the configured target and the exhausted step cap — if the cap is hit
/// before enough demands occurred; propagated response errors otherwise.
pub fn run_until_demands<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    demands: u64,
    max_steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    if let Some((profile, rate)) = plant.rate_parts() {
        let mut log = OperationLog::new(system.channels().len());
        let ils = inv_log_survive(rate);
        let mut steps_left = max_steps;
        while log.demands() < demands {
            let gap = geometric_gap(ils, steps_left, rng);
            if gap >= steps_left {
                return Err(ProtectionError::DemandShortfall {
                    observed: log.demands(),
                    target: demands,
                    max_steps,
                });
            }
            log.record_quiet_n(gap);
            steps_left -= gap + 1;
            let d = profile.sample(rng);
            let (tripped, fail_mask) = system.respond_bits(d)?;
            log.record_demand_bits(tripped, fail_mask);
        }
        return Ok(log);
    }
    if let Some(compiled) = compile_worthwhile(plant, max_steps)
        .then(|| CompiledPlant::compile(plant))
        .transpose()?
        .flatten()
    {
        let mut log = OperationLog::new(system.channels().len());
        let mut state = compiled.initial_state();
        let mut steps_left = max_steps;
        while log.demands() < demands {
            match compiled.next_demand(&mut state, steps_left, rng) {
                CompiledEvent::Quiet { .. } => {
                    return Err(ProtectionError::DemandShortfall {
                        observed: log.demands(),
                        target: demands,
                        max_steps,
                    });
                }
                CompiledEvent::Demand { quiet_gap, demand } => {
                    log.record_quiet_n(quiet_gap);
                    steps_left -= quiet_gap + 1;
                    let (tripped, fail_mask) = system.respond_bits(demand)?;
                    log.record_demand_bits(tripped, fail_mask);
                }
            }
        }
        return Ok(log);
    }
    let mut log = OperationLog::new(system.channels().len());
    let mut state = plant.initial_state();
    let mut steps = 0u64;
    while log.demands() < demands {
        if steps >= max_steps {
            return Err(ProtectionError::DemandShortfall {
                observed: log.demands(),
                target: demands,
                max_steps,
            });
        }
        let (next, event) = plant.step(state, rng);
        state = next;
        steps += 1;
        match event {
            PlantEvent::Quiet => log.record_quiet(),
            PlantEvent::Demand(d) => {
                let (tripped, fail_mask) = system.respond_bits(d)?;
                log.record_demand_bits(tripped, fail_mask);
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::Adjudicator;
    use crate::channel::Channel;
    use divrel_demand::mapping::FaultRegionMap;
    use divrel_demand::profile::Profile;
    use divrel_demand::region::Region;
    use divrel_demand::space::GridSpace2D;
    use divrel_demand::version::ProgramVersion;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Plant, ProtectionSystem, Profile) {
        let space = GridSpace2D::new(20, 20).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(2, 2, 5, 5)],
        )
        .unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::with_demand_rate(profile.clone(), 0.3).unwrap();
        (plant, system, profile)
    }

    #[test]
    fn observed_pfd_converges_to_true_pfd() {
        let (plant, system, profile) = setup();
        let truth = system.true_pfd(&profile).unwrap();
        // Overlap of the two 16-cell regions is 2x2 = 4 cells of 400.
        assert!((truth - 0.01).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(1);
        let log = run(&plant, &system, 400_000, &mut rng).unwrap();
        let observed = log.pfd_estimate().unwrap();
        // ~120k demands; binomial std err ~ sqrt(0.01*0.99/120000) ≈ 2.9e-4.
        assert!(
            (observed - truth).abs() < 6.0 * (truth * (1.0 - truth) / 120_000.0).sqrt(),
            "observed {observed} vs truth {truth}"
        );
    }

    #[test]
    fn channel_pfds_match_their_regions() {
        let (plant, system, profile) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let log = run(&plant, &system, 200_000, &mut rng).unwrap();
        // Each channel's failure region is 16 cells of 400 = 0.04.
        for ch in 0..2 {
            let est = log.channel_pfd_estimate(ch).unwrap();
            assert!((est - 0.04).abs() < 0.005, "channel {ch}: {est}");
        }
        let _ = profile;
    }

    #[test]
    fn run_until_demands_reaches_target() {
        let (plant, system, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let log = run_until_demands(&plant, &system, 500, 1_000_000, &mut rng).unwrap();
        assert_eq!(log.demands(), 500);
        // Cap enforcement.
        let mut rng = StdRng::seed_from_u64(4);
        assert!(run_until_demands(&plant, &system, 500, 10, &mut rng).is_err());
    }

    #[test]
    fn cap_hit_reports_target_context() {
        // Regression: the error must name what was observed, what was
        // configured, and the exhausted cap — for both plant kinds.
        let (plant, system, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let err = run_until_demands(&plant, &system, 500, 10, &mut rng).unwrap_err();
        match err {
            ProtectionError::DemandShortfall {
                observed,
                target,
                max_steps,
            } => {
                assert!(observed < 500);
                assert_eq!(target, 500);
                assert_eq!(max_steps, 10);
            }
            other => panic!("expected DemandShortfall, got {other:?}"),
        }
        assert!(err.to_string().contains("of 500 demands"));
        assert!(err.to_string().contains("10 steps"));

        // Trajectory plant (stepwise path): same typed error.
        let space = GridSpace2D::new(30, 30).unwrap();
        let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 2)]).unwrap();
        let sys = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true])),
                Channel::new("B", ProgramVersion::new(vec![false])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::trajectory(space, Region::rect(0, 0, 2, 2), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let err = run_until_demands(&plant, &sys, 10_000, 5, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtectionError::DemandShortfall {
                target: 10_000,
                max_steps: 5,
                ..
            }
        ));
    }

    #[test]
    fn gap_sampler_matches_stepwise_statistics() {
        // The demand-gap fast path and the tick-by-tick reference are
        // the same stochastic process: compare demand counts and PFD
        // estimates over a long run.
        let (plant, system, _) = setup();
        let steps = 200_000u64;
        let mut rng = StdRng::seed_from_u64(11);
        let fast = run(&plant, &system, steps, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let slow = run_stepwise(&plant, &system, steps, &mut rng).unwrap();
        assert_eq!(fast.steps(), steps);
        assert_eq!(slow.steps(), steps);
        // Demand rate 0.3: std dev of count ≈ sqrt(0.3·0.7·200k) ≈ 205.
        let expect = 0.3 * steps as f64;
        assert!((fast.demands() as f64 - expect).abs() < 6.0 * 205.0);
        assert!((slow.demands() as f64 - expect).abs() < 6.0 * 205.0);
        // Both PFD estimates near the true 0.01.
        assert!((fast.pfd_estimate().unwrap() - 0.01).abs() < 0.003);
        assert!((slow.pfd_estimate().unwrap() - 0.01).abs() < 0.003);
        // Channel failure estimates agree too.
        for ch in 0..2 {
            let a = fast.channel_pfd_estimate(ch).unwrap();
            let b = slow.channel_pfd_estimate(ch).unwrap();
            assert!((a - b).abs() < 0.01, "channel {ch}: {a} vs {b}");
        }
    }

    #[test]
    fn stuck_sensor_failure_injection() {
        // 1oo2 where channel B carries a fault and channel A's sensor is
        // stuck INSIDE A's failure region: A fails every demand
        // (fail-danger), so protection degrades to channel B alone and
        // the system fails exactly on B's region.
        let space = GridSpace2D::new(20, 20).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(10, 10, 13, 13)],
        )
        .unwrap();
        let sys = ProtectionSystem::new(
            vec![
                Channel::with_view(
                    "A",
                    ProgramVersion::new(vec![true, false]),
                    crate::sensing::SensorView::Stuck {
                        at_var1: 1,
                        at_var2: 1,
                    },
                ),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        // System PFD = measure of B's region = 16/400.
        assert!((sys.true_pfd(&profile).unwrap() - 0.04).abs() < 1e-12);
        // With a healthy channel A the intersection is empty.
        let healthy = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            sys.map().clone(),
        )
        .unwrap();
        assert_eq!(healthy.true_pfd(&profile).unwrap(), 0.0);
    }

    fn markov_setup() -> (Plant, ProtectionSystem) {
        let space = GridSpace2D::new(40, 40).unwrap();
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(2, 2, 5, 5)],
        )
        .unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::markov_walk(space, Region::rect(0, 0, 7, 7), 2, 0.1).unwrap();
        (plant, system)
    }

    /// Mean and standard deviation of per-replica demand counts.
    fn replica_stats(counts: &[f64]) -> (f64, f64) {
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<f64>() / n;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1.0);
        (mean, var.sqrt())
    }

    #[test]
    fn markov_plant_takes_compiled_path_and_matches_stepwise_statistics() {
        // The demand stream of a sticky Markov plant is bursty (demands
        // cluster during rare excursions into the trip region), so a
        // single run's demand count has variance far beyond the binomial
        // band. Compare replica means instead, with a tolerance derived
        // from the observed replica spread.
        let (plant, system) = markov_setup();
        let (steps, replicas) = (100_000u64, 16);
        // Guard the premise: `run` must actually pick the compiled path
        // here, or this degenerates to stepwise-vs-stepwise.
        assert!(
            compile_worthwhile(&plant, steps),
            "markov test plant no longer takes the compiled path"
        );
        let mut fast_counts = Vec::new();
        let mut slow_counts = Vec::new();
        let mut fast_failures = 0u64;
        let mut fast_demands = 0u64;
        let mut slow_failures = 0u64;
        let mut slow_demands = 0u64;
        for r in 0..replicas {
            let mut rng = StdRng::seed_from_u64(1_000 + r);
            let fast = run(&plant, &system, steps, &mut rng).unwrap();
            assert_eq!(fast.steps(), steps);
            fast_counts.push(fast.demands() as f64);
            fast_failures += fast.system_failures();
            fast_demands += fast.demands();
            let mut rng = StdRng::seed_from_u64(2_000 + r);
            let slow = run_stepwise(&plant, &system, steps, &mut rng).unwrap();
            assert_eq!(slow.steps(), steps);
            slow_counts.push(slow.demands() as f64);
            slow_failures += slow.system_failures();
            slow_demands += slow.demands();
        }
        let (mf, sf) = replica_stats(&fast_counts);
        let (ms, ss) = replica_stats(&slow_counts);
        assert!(mf > 500.0, "compiled runs saw no traffic");
        let stderr = ((sf * sf + ss * ss) / replicas as f64).sqrt();
        assert!(
            (mf - ms).abs() < 4.0 * stderr + 1.0,
            "compiled mean demands {mf} vs stepwise {ms} (stderr {stderr})"
        );
        // System failure rates per demand agree (demand values land in
        // the same places).
        let pf = fast_failures as f64 / fast_demands as f64;
        let ps = slow_failures as f64 / slow_demands as f64;
        assert!((pf - ps).abs() < 0.01, "failure rate {pf} vs {ps}");
    }

    #[test]
    fn run_until_demands_compiled_path_reaches_target_and_reports_shortfall() {
        let (plant, system) = markov_setup();
        let mut rng = StdRng::seed_from_u64(33);
        let log = run_until_demands(&plant, &system, 200, 10_000_000, &mut rng).unwrap();
        assert_eq!(log.demands(), 200);
        let mut rng = StdRng::seed_from_u64(34);
        let err = run_until_demands(&plant, &system, 200, 50, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtectionError::DemandShortfall {
                target: 200,
                max_steps: 50,
                ..
            }
        ));
    }

    #[test]
    fn sharded_campaign_is_deterministic_per_seed_and_layout() {
        // Mirrors devsim's `deterministic_per_seed_and_thread_invariant`:
        // a fixed (seed, shard count) pair reproduces exactly; different
        // shard layouts are distinct streams but statistically consistent.
        let (plant, system) = markov_setup();
        let steps = 200_000u64;
        let a = run_sharded(&plant, &system, steps, 4, 7).unwrap();
        let b = run_sharded(&plant, &system, steps, 4, 7).unwrap();
        assert_eq!(a, b, "same seed and layout must reproduce exactly");
        assert_eq!(a.steps(), steps);
        let c = run_sharded(&plant, &system, steps, 1, 7).unwrap();
        assert_eq!(c.steps(), steps);
        // Different layouts are different RNG streams; the bursty demand
        // stream keeps single-campaign counts noisy, so only require
        // loose consistency here (the replica-based test above and the
        // chi-squared suite in tests/ carry the sharp comparison).
        let (da, dc) = (a.demands() as f64, c.demands() as f64);
        assert!(
            (da - dc).abs() / dc < 0.5,
            "4-shard demands {da} vs 1-shard {dc}"
        );
        // Rate plants shard too, with the same exact-reproduction law.
        let (rate_plant, rate_system, _) = setup();
        let r1 = run_sharded(&rate_plant, &rate_system, 100_000, 3, 11).unwrap();
        let r2 = run_sharded(&rate_plant, &rate_system, 100_000, 3, 11).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.steps(), 100_000);
        assert!(run_sharded(&rate_plant, &rate_system, 1_000, 0, 1).is_err());
    }

    #[test]
    fn shard_layout_covers_and_seeds_differ() {
        assert_eq!(shard_layout(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(shard_layout(3, 16).iter().sum::<u64>(), 3);
        assert!(shard_layout(0, 4).is_empty());
        assert_ne!(shard_seed(0, 0), shard_seed(0, 1));
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0));
    }

    #[test]
    fn campaign_shards_reassemble_run_sharded_bit_identically() {
        // Evaluate every shard individually (as a distributed worker
        // would), merge in shard order, and land on the exact bits of
        // the in-process sharded run — for both a compiled Markov plant
        // and a rate plant, with and without a pre-compiled instance.
        let (plant, system) = markov_setup();
        let (steps, shards, seed) = (120_000u64, 4usize, 13u64);
        let whole = run_sharded(&plant, &system, steps, shards, seed).unwrap();
        let compiled = CompiledPlant::compile(&plant).unwrap();
        let mut merged = OperationLog::new(system.channels().len());
        for (i, &count) in shard_layout(steps, shards).iter().enumerate() {
            let own = run_campaign_shard(&plant, None, &system, steps, count, shard_seed(seed, i))
                .unwrap();
            let shared = run_campaign_shard(
                &plant,
                compiled.as_ref(),
                &system,
                steps,
                count,
                shard_seed(seed, i),
            )
            .unwrap();
            assert_eq!(own, shared, "shard {i}: pre-compiled plant diverged");
            merged.merge(&own);
        }
        assert_eq!(merged, whole);

        let (rate_plant, rate_system, _) = setup();
        let whole = run_sharded(&rate_plant, &rate_system, 50_000, 3, 29).unwrap();
        let mut merged = OperationLog::new(rate_system.channels().len());
        for (i, &count) in shard_layout(50_000, 3).iter().enumerate() {
            merged.merge(
                &run_campaign_shard(
                    &rate_plant,
                    None,
                    &rate_system,
                    50_000,
                    count,
                    shard_seed(29, i),
                )
                .unwrap(),
            );
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn trajectory_plant_end_to_end() {
        let space = GridSpace2D::new(30, 30).unwrap();
        let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 2)]).unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true])),
                Channel::new("B", ProgramVersion::new(vec![false])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::trajectory(space, Region::rect(0, 0, 6, 6), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let log = run(&plant, &system, 50_000, &mut rng).unwrap();
        assert!(log.demands() > 0);
        // Channel B is perfect, so the 1oo2 system never fails.
        assert_eq!(log.system_failures(), 0);
        assert_eq!(log.failure_free_streak(), log.demands());
    }
}
