//! Driving a protection system against a plant.
//!
//! [`run`] executes the Fig 1 loop: the plant evolves; when it raises a
//! demand, the channels respond, the adjudicator combines, and the log
//! records. This is the operational-testing path used by experiment F1 to
//! compare observed PFDs against the model's analytic predictions, and by
//! the Bayesian layer to generate the evidence it updates on.

use crate::error::ProtectionError;
use crate::history::OperationLog;
use crate::plant::{Plant, PlantEvent};
use crate::system::ProtectionSystem;
use rand::Rng;

/// Runs the plant/system loop for `steps` ticks, returning the operation
/// log.
///
/// # Errors
///
/// Propagates [`ProtectionSystem::respond`] errors (impossible for a
/// validated system).
pub fn run<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let mut state = plant.initial_state();
    for _ in 0..steps {
        let (next, event) = plant.step(state, rng);
        state = next;
        match event {
            PlantEvent::Quiet => log.record_quiet(),
            PlantEvent::Demand(d) => {
                let resp = system.respond(d)?;
                log.record_demand(resp.tripped, &resp.channel_trips);
            }
        }
    }
    Ok(log)
}

/// Runs until `demands` demands have been observed (with a step safety
/// cap), for experiments that need a fixed evidence size.
///
/// # Errors
///
/// [`ProtectionError::InvalidConfig`] if the cap is hit before enough
/// demands occurred; propagated response errors otherwise.
pub fn run_until_demands<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    demands: u64,
    max_steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let mut state = plant.initial_state();
    let mut steps = 0u64;
    while log.demands() < demands {
        if steps >= max_steps {
            return Err(ProtectionError::InvalidConfig(format!(
                "only {} of {} demands after {max_steps} steps",
                log.demands(),
                demands
            )));
        }
        let (next, event) = plant.step(state, rng);
        state = next;
        steps += 1;
        match event {
            PlantEvent::Quiet => log.record_quiet(),
            PlantEvent::Demand(d) => {
                let resp = system.respond(d)?;
                log.record_demand(resp.tripped, &resp.channel_trips);
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::Adjudicator;
    use crate::channel::Channel;
    use divrel_demand::mapping::FaultRegionMap;
    use divrel_demand::profile::Profile;
    use divrel_demand::region::Region;
    use divrel_demand::space::GridSpace2D;
    use divrel_demand::version::ProgramVersion;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Plant, ProtectionSystem, Profile) {
        let space = GridSpace2D::new(20, 20).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(2, 2, 5, 5)],
        )
        .unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::with_demand_rate(profile.clone(), 0.3).unwrap();
        (plant, system, profile)
    }

    #[test]
    fn observed_pfd_converges_to_true_pfd() {
        let (plant, system, profile) = setup();
        let truth = system.true_pfd(&profile).unwrap();
        // Overlap of the two 16-cell regions is 2x2 = 4 cells of 400.
        assert!((truth - 0.01).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(1);
        let log = run(&plant, &system, 400_000, &mut rng).unwrap();
        let observed = log.pfd_estimate().unwrap();
        // ~120k demands; binomial std err ~ sqrt(0.01*0.99/120000) ≈ 2.9e-4.
        assert!(
            (observed - truth).abs() < 6.0 * (truth * (1.0 - truth) / 120_000.0).sqrt(),
            "observed {observed} vs truth {truth}"
        );
    }

    #[test]
    fn channel_pfds_match_their_regions() {
        let (plant, system, profile) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let log = run(&plant, &system, 200_000, &mut rng).unwrap();
        // Each channel's failure region is 16 cells of 400 = 0.04.
        for ch in 0..2 {
            let est = log.channel_pfd_estimate(ch).unwrap();
            assert!((est - 0.04).abs() < 0.005, "channel {ch}: {est}");
        }
        let _ = profile;
    }

    #[test]
    fn run_until_demands_reaches_target() {
        let (plant, system, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let log = run_until_demands(&plant, &system, 500, 1_000_000, &mut rng).unwrap();
        assert_eq!(log.demands(), 500);
        // Cap enforcement.
        let mut rng = StdRng::seed_from_u64(4);
        assert!(run_until_demands(&plant, &system, 500, 10, &mut rng).is_err());
    }

    #[test]
    fn stuck_sensor_failure_injection() {
        // 1oo2 where channel B carries a fault and channel A's sensor is
        // stuck INSIDE A's failure region: A fails every demand
        // (fail-danger), so protection degrades to channel B alone and
        // the system fails exactly on B's region.
        let space = GridSpace2D::new(20, 20).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(10, 10, 13, 13)],
        )
        .unwrap();
        let sys = ProtectionSystem::new(
            vec![
                Channel::with_view(
                    "A",
                    ProgramVersion::new(vec![true, false]),
                    crate::sensing::SensorView::Stuck { at_var1: 1, at_var2: 1 },
                ),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        // System PFD = measure of B's region = 16/400.
        assert!((sys.true_pfd(&profile).unwrap() - 0.04).abs() < 1e-12);
        // With a healthy channel A the intersection is empty.
        let healthy = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            sys.map().clone(),
        )
        .unwrap();
        assert_eq!(healthy.true_pfd(&profile).unwrap(), 0.0);
    }

    #[test]
    fn trajectory_plant_end_to_end() {
        let space = GridSpace2D::new(30, 30).unwrap();
        let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 2)]).unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true])),
                Channel::new("B", ProgramVersion::new(vec![false])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::trajectory(space, Region::rect(0, 0, 6, 6), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let log = run(&plant, &system, 50_000, &mut rng).unwrap();
        assert!(log.demands() > 0);
        // Channel B is perfect, so the 1oo2 system never fails.
        assert_eq!(log.system_failures(), 0);
        assert_eq!(log.failure_free_streak(), log.demands());
    }
}
