//! Driving a protection system against a plant.
//!
//! [`run`] executes the Fig 1 loop: the plant evolves; when it raises a
//! demand, the channels respond, the adjudicator combines, and the log
//! records. This is the operational-testing path used by experiment F1 to
//! compare observed PFDs against the model's analytic predictions, and by
//! the Bayesian layer to generate the evidence it updates on.
//!
//! For **memoryless** (rate) plants the driver skips quiet ticks
//! analytically: the gap until the next demand is geometric with the
//! plant's demand rate, so it is sampled in one draw and the whole run
//! collapses to ~one iteration per *demand* instead of one per tick (a
//! 400 000-step run at rate `r` does ~`400 000 · r` iterations). Each
//! demand is then answered from the system's precomputed trip tables
//! via [`ProtectionSystem::respond_bits`], allocation-free. Trajectory
//! plants have state, so they keep the exact tick-by-tick loop
//! ([`run_stepwise`], also kept public as the reference path for
//! before/after benchmarks).

use crate::error::ProtectionError;
use crate::history::OperationLog;
use crate::plant::{Plant, PlantEvent};
use crate::system::ProtectionSystem;
use divrel_demand::profile::Profile;
use rand::Rng;

/// Runs the plant/system loop for `steps` ticks, returning the operation
/// log. Memoryless plants take the geometric demand-gap fast path;
/// trajectory plants run tick by tick.
///
/// # Errors
///
/// Propagates [`ProtectionSystem::respond`] errors (impossible for a
/// validated system).
pub fn run<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    match plant.rate_parts() {
        Some((profile, rate)) => run_rate_gaps(profile, rate, system, steps, rng),
        None => run_stepwise(plant, system, steps, rng),
    }
}

/// The reference tick-by-tick loop (every plant step draws the RNG).
/// [`run`] uses it for trajectory plants; benchmarks use it as the
/// "before" of the demand-gap fast path.
///
/// # Errors
///
/// Propagates [`ProtectionSystem::respond`] errors.
pub fn run_stepwise<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let mut state = plant.initial_state();
    for _ in 0..steps {
        let (next, event) = plant.step(state, rng);
        state = next;
        match event {
            PlantEvent::Quiet => log.record_quiet(),
            PlantEvent::Demand(d) => {
                let (tripped, fail_mask) = system.respond_bits(d)?;
                log.record_demand_bits(tripped, fail_mask);
            }
        }
    }
    Ok(log)
}

/// Quiet-gap sampler: number of quiet steps before the next demand of a
/// memoryless plant with per-step demand probability `rate`
/// (geometric, `P(gap = k) = (1 − r)^k · r`).
fn geometric_gap<R: Rng + ?Sized>(inv_log_survive: f64, remaining: u64, rng: &mut R) -> u64 {
    if inv_log_survive == 0.0 {
        return 0; // rate = 1: every step is a demand
    }
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let gap = u.ln() * inv_log_survive; // >= 0
    if gap >= remaining as f64 {
        remaining
    } else {
        gap as u64
    }
}

/// `1 / ln(1 − rate)` precomputed once per run (0 encodes `rate = 1`).
fn inv_log_survive(rate: f64) -> f64 {
    if rate >= 1.0 {
        0.0
    } else {
        (1.0 - rate).ln().recip()
    }
}

fn run_rate_gaps<R: Rng + ?Sized>(
    profile: &Profile,
    rate: f64,
    system: &ProtectionSystem,
    steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    let mut log = OperationLog::new(system.channels().len());
    let ils = inv_log_survive(rate);
    let mut remaining = steps;
    while remaining > 0 {
        let gap = geometric_gap(ils, remaining, rng);
        if gap >= remaining {
            log.record_quiet_n(remaining);
            break;
        }
        log.record_quiet_n(gap);
        remaining -= gap + 1;
        let d = profile.sample(rng);
        let (tripped, fail_mask) = system.respond_bits(d)?;
        log.record_demand_bits(tripped, fail_mask);
    }
    Ok(log)
}

/// Runs until `demands` demands have been observed (with a step safety
/// cap), for experiments that need a fixed evidence size. Memoryless
/// plants take the demand-gap fast path.
///
/// # Errors
///
/// [`ProtectionError::DemandShortfall`] — carrying the observed count,
/// the configured target and the exhausted step cap — if the cap is hit
/// before enough demands occurred; propagated response errors otherwise.
pub fn run_until_demands<R: Rng + ?Sized>(
    plant: &Plant,
    system: &ProtectionSystem,
    demands: u64,
    max_steps: u64,
    rng: &mut R,
) -> Result<OperationLog, ProtectionError> {
    if let Some((profile, rate)) = plant.rate_parts() {
        let mut log = OperationLog::new(system.channels().len());
        let ils = inv_log_survive(rate);
        let mut steps_left = max_steps;
        while log.demands() < demands {
            let gap = geometric_gap(ils, steps_left, rng);
            if gap >= steps_left {
                return Err(ProtectionError::DemandShortfall {
                    observed: log.demands(),
                    target: demands,
                    max_steps,
                });
            }
            log.record_quiet_n(gap);
            steps_left -= gap + 1;
            let d = profile.sample(rng);
            let (tripped, fail_mask) = system.respond_bits(d)?;
            log.record_demand_bits(tripped, fail_mask);
        }
        return Ok(log);
    }
    let mut log = OperationLog::new(system.channels().len());
    let mut state = plant.initial_state();
    let mut steps = 0u64;
    while log.demands() < demands {
        if steps >= max_steps {
            return Err(ProtectionError::DemandShortfall {
                observed: log.demands(),
                target: demands,
                max_steps,
            });
        }
        let (next, event) = plant.step(state, rng);
        state = next;
        steps += 1;
        match event {
            PlantEvent::Quiet => log.record_quiet(),
            PlantEvent::Demand(d) => {
                let (tripped, fail_mask) = system.respond_bits(d)?;
                log.record_demand_bits(tripped, fail_mask);
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::Adjudicator;
    use crate::channel::Channel;
    use divrel_demand::mapping::FaultRegionMap;
    use divrel_demand::profile::Profile;
    use divrel_demand::region::Region;
    use divrel_demand::space::GridSpace2D;
    use divrel_demand::version::ProgramVersion;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Plant, ProtectionSystem, Profile) {
        let space = GridSpace2D::new(20, 20).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(2, 2, 5, 5)],
        )
        .unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::with_demand_rate(profile.clone(), 0.3).unwrap();
        (plant, system, profile)
    }

    #[test]
    fn observed_pfd_converges_to_true_pfd() {
        let (plant, system, profile) = setup();
        let truth = system.true_pfd(&profile).unwrap();
        // Overlap of the two 16-cell regions is 2x2 = 4 cells of 400.
        assert!((truth - 0.01).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(1);
        let log = run(&plant, &system, 400_000, &mut rng).unwrap();
        let observed = log.pfd_estimate().unwrap();
        // ~120k demands; binomial std err ~ sqrt(0.01*0.99/120000) ≈ 2.9e-4.
        assert!(
            (observed - truth).abs() < 6.0 * (truth * (1.0 - truth) / 120_000.0).sqrt(),
            "observed {observed} vs truth {truth}"
        );
    }

    #[test]
    fn channel_pfds_match_their_regions() {
        let (plant, system, profile) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let log = run(&plant, &system, 200_000, &mut rng).unwrap();
        // Each channel's failure region is 16 cells of 400 = 0.04.
        for ch in 0..2 {
            let est = log.channel_pfd_estimate(ch).unwrap();
            assert!((est - 0.04).abs() < 0.005, "channel {ch}: {est}");
        }
        let _ = profile;
    }

    #[test]
    fn run_until_demands_reaches_target() {
        let (plant, system, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let log = run_until_demands(&plant, &system, 500, 1_000_000, &mut rng).unwrap();
        assert_eq!(log.demands(), 500);
        // Cap enforcement.
        let mut rng = StdRng::seed_from_u64(4);
        assert!(run_until_demands(&plant, &system, 500, 10, &mut rng).is_err());
    }

    #[test]
    fn cap_hit_reports_target_context() {
        // Regression: the error must name what was observed, what was
        // configured, and the exhausted cap — for both plant kinds.
        let (plant, system, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let err = run_until_demands(&plant, &system, 500, 10, &mut rng).unwrap_err();
        match err {
            ProtectionError::DemandShortfall {
                observed,
                target,
                max_steps,
            } => {
                assert!(observed < 500);
                assert_eq!(target, 500);
                assert_eq!(max_steps, 10);
            }
            other => panic!("expected DemandShortfall, got {other:?}"),
        }
        assert!(err.to_string().contains("of 500 demands"));
        assert!(err.to_string().contains("10 steps"));

        // Trajectory plant (stepwise path): same typed error.
        let space = GridSpace2D::new(30, 30).unwrap();
        let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 2)]).unwrap();
        let sys = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true])),
                Channel::new("B", ProgramVersion::new(vec![false])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::trajectory(space, Region::rect(0, 0, 2, 2), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let err = run_until_demands(&plant, &sys, 10_000, 5, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtectionError::DemandShortfall {
                target: 10_000,
                max_steps: 5,
                ..
            }
        ));
    }

    #[test]
    fn gap_sampler_matches_stepwise_statistics() {
        // The demand-gap fast path and the tick-by-tick reference are
        // the same stochastic process: compare demand counts and PFD
        // estimates over a long run.
        let (plant, system, _) = setup();
        let steps = 200_000u64;
        let mut rng = StdRng::seed_from_u64(11);
        let fast = run(&plant, &system, steps, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let slow = run_stepwise(&plant, &system, steps, &mut rng).unwrap();
        assert_eq!(fast.steps(), steps);
        assert_eq!(slow.steps(), steps);
        // Demand rate 0.3: std dev of count ≈ sqrt(0.3·0.7·200k) ≈ 205.
        let expect = 0.3 * steps as f64;
        assert!((fast.demands() as f64 - expect).abs() < 6.0 * 205.0);
        assert!((slow.demands() as f64 - expect).abs() < 6.0 * 205.0);
        // Both PFD estimates near the true 0.01.
        assert!((fast.pfd_estimate().unwrap() - 0.01).abs() < 0.003);
        assert!((slow.pfd_estimate().unwrap() - 0.01).abs() < 0.003);
        // Channel failure estimates agree too.
        for ch in 0..2 {
            let a = fast.channel_pfd_estimate(ch).unwrap();
            let b = slow.channel_pfd_estimate(ch).unwrap();
            assert!((a - b).abs() < 0.01, "channel {ch}: {a} vs {b}");
        }
    }

    #[test]
    fn stuck_sensor_failure_injection() {
        // 1oo2 where channel B carries a fault and channel A's sensor is
        // stuck INSIDE A's failure region: A fails every demand
        // (fail-danger), so protection degrades to channel B alone and
        // the system fails exactly on B's region.
        let space = GridSpace2D::new(20, 20).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 3, 3), Region::rect(10, 10, 13, 13)],
        )
        .unwrap();
        let sys = ProtectionSystem::new(
            vec![
                Channel::with_view(
                    "A",
                    ProgramVersion::new(vec![true, false]),
                    crate::sensing::SensorView::Stuck {
                        at_var1: 1,
                        at_var2: 1,
                    },
                ),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        // System PFD = measure of B's region = 16/400.
        assert!((sys.true_pfd(&profile).unwrap() - 0.04).abs() < 1e-12);
        // With a healthy channel A the intersection is empty.
        let healthy = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true, false])),
                Channel::new("B", ProgramVersion::new(vec![false, true])),
            ],
            Adjudicator::OneOutOfN,
            sys.map().clone(),
        )
        .unwrap();
        assert_eq!(healthy.true_pfd(&profile).unwrap(), 0.0);
    }

    #[test]
    fn trajectory_plant_end_to_end() {
        let space = GridSpace2D::new(30, 30).unwrap();
        let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 2, 2)]).unwrap();
        let system = ProtectionSystem::new(
            vec![
                Channel::new("A", ProgramVersion::new(vec![true])),
                Channel::new("B", ProgramVersion::new(vec![false])),
            ],
            Adjudicator::OneOutOfN,
            map,
        )
        .unwrap();
        let plant = Plant::trajectory(space, Region::rect(0, 0, 6, 6), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let log = run(&plant, &system, 50_000, &mut rng).unwrap();
        assert!(log.demands() > 0);
        // Channel B is perfect, so the 1oo2 system never fails.
        assert_eq!(log.system_failures(), 0);
        assert_eq!(log.failure_free_streak(), log.demands());
    }
}
