//! Output adjudication.
//!
//! The paper studies "the simplest possible diverse-redundant
//! configuration: two versions, with perfect adjudication (simple 'OR'
//! combination of binary outputs, giving a '1-out-of-2' diverse system)".
//! For a protection function, OR-ing trip signals means the system trips if
//! *any* channel trips — it fails only when **all** channels fail.
//! [`Adjudicator::AllOutOfN`] (AND) and majority voting are included for
//! comparison experiments (spurious-trip analyses take the opposite view,
//! which is why real systems care about 2oo3). The general
//! [`Adjudicator::KOutOfN`] threshold voter subsumes all three; arbitrary
//! gate topologies (nested AND/OR/k-of-n over channel subsets) live in
//! [`crate::tree::FaultTree`].

use crate::error::ProtectionError;
use std::fmt;

/// How channel trip decisions are combined into a system decision.
///
/// Serialisable (flat votes as the bare variant name, e.g. `"Majority"`;
/// the threshold voter as `{ KOutOfN = { k = 2 } }`) so scenario files
/// can declare the voting logic of each system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Adjudicator {
    /// OR: trip if any channel trips (the paper's 1-out-of-2, generalised
    /// to 1-out-of-N).
    OneOutOfN,
    /// AND: trip only if every channel trips (2-out-of-2 style).
    AllOutOfN,
    /// Majority vote; requires an odd channel count, so a vote can
    /// never tie.
    Majority,
    /// Threshold vote: trip iff at least `k` of the N channels trip.
    ///
    /// Subsumes the flat variants: `k = 1` is [`Self::OneOutOfN`],
    /// `k = N` is [`Self::AllOutOfN`], and `k = N/2 + 1` over odd `N`
    /// is [`Self::Majority`]. **Tie semantics are explicit by
    /// construction**: a threshold gate has no ties — exactly `k - 1`
    /// tripping channels is a non-trip, exactly `k` is a trip. Over an
    /// even channel count, declare `k = N/2` for a trip-on-tie
    /// ("pessimistic" spurious-trip) vote or `k = N/2 + 1` for a
    /// fail-on-tie vote; [`Self::Majority`] deliberately refuses even
    /// counts rather than choosing for you.
    KOutOfN {
        /// Minimum number of tripping channels for a system trip.
        /// Must satisfy `1 <= k <= N` for an N-channel system.
        k: usize,
    },
}

impl Adjudicator {
    /// Validates the adjudicator against a channel count.
    ///
    /// Every construction path that yields a runtime object able to
    /// reach [`Self::decide_counts`] goes through this check — a
    /// majority voter over an even channel count or an out-of-range
    /// threshold is rejected at build time, never silently decided.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::NoChannels`] for zero channels;
    /// [`ProtectionError::BadChannelCount`] for majority voting over an
    /// even count or a `KOutOfN` threshold outside `1..=channels`.
    pub fn validate(&self, channels: usize) -> Result<(), ProtectionError> {
        if channels == 0 {
            return Err(ProtectionError::NoChannels);
        }
        match self {
            Adjudicator::Majority if channels.is_multiple_of(2) => {
                Err(ProtectionError::BadChannelCount {
                    got: channels,
                    need: "an odd number of",
                })
            }
            Adjudicator::KOutOfN { k } if *k == 0 => Err(ProtectionError::BadChannelCount {
                got: 0,
                need: "a k-out-of-N threshold of at least 1 in",
            }),
            Adjudicator::KOutOfN { k } if *k > channels => Err(ProtectionError::BadChannelCount {
                got: channels,
                need: "at least k",
            }),
            _ => Ok(()),
        }
    }

    /// Combines per-channel trip decisions into the system decision.
    ///
    /// An empty slice yields `false` (no channel, no trip); constructed
    /// systems never pass one.
    pub fn decide(&self, trips: &[bool]) -> bool {
        let yes = trips.iter().filter(|&&t| t).count();
        self.decide_counts(yes, trips.len())
    }

    /// Combines a tally of tripping channels into the system decision —
    /// the counting form of [`Self::decide`] used by the table-driven
    /// hot paths (no slice needed).
    ///
    /// Defined total over all `(trips, channels)` pairs so the hot
    /// paths never branch on validity: `Majority` over an even count
    /// decides strictly (`trips * 2 > channels`, i.e. a tie does not
    /// trip) and an out-of-range `KOutOfN` threshold decides
    /// `trips >= k` literally. Such adjudicators cannot reach a runtime
    /// object, though — every construction path calls
    /// [`Self::validate`] first and refuses them.
    pub fn decide_counts(&self, trips: usize, channels: usize) -> bool {
        match self {
            Adjudicator::OneOutOfN => trips >= 1,
            Adjudicator::AllOutOfN => channels > 0 && trips == channels,
            Adjudicator::Majority => trips * 2 > channels,
            Adjudicator::KOutOfN { k } => *k >= 1 && trips >= *k,
        }
    }
}

impl fmt::Display for Adjudicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Adjudicator::OneOutOfN => f.write_str("1-out-of-N (OR)"),
            Adjudicator::AllOutOfN => f.write_str("N-out-of-N (AND)"),
            Adjudicator::Majority => f.write_str("majority"),
            Adjudicator::KOutOfN { k } => write!(f, "{k}-out-of-N"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_out_of_n_is_or() {
        let a = Adjudicator::OneOutOfN;
        assert!(a.decide(&[true, false]));
        assert!(a.decide(&[false, true]));
        assert!(a.decide(&[true, true]));
        assert!(!a.decide(&[false, false]));
        assert!(!a.decide(&[]));
    }

    #[test]
    fn all_out_of_n_is_and() {
        let a = Adjudicator::AllOutOfN;
        assert!(a.decide(&[true, true]));
        assert!(!a.decide(&[true, false]));
        assert!(!a.decide(&[]));
    }

    #[test]
    fn majority_votes() {
        let a = Adjudicator::Majority;
        assert!(a.decide(&[true, true, false]));
        assert!(!a.decide(&[true, false, false]));
        assert!(a.decide(&[true, true, true]));
        assert!(!a.decide(&[false, false, false]));
    }

    #[test]
    fn k_out_of_n_is_a_threshold() {
        let a = Adjudicator::KOutOfN { k: 2 };
        assert!(!a.decide(&[true, false, false]));
        assert!(a.decide(&[true, true, false]));
        assert!(a.decide(&[true, true, true]));
        // No ties by construction: k-1 trips is a non-trip, k is a trip.
        let tie_trips = Adjudicator::KOutOfN { k: 2 };
        assert!(tie_trips.decide(&[true, true, false, false]));
        let tie_fails = Adjudicator::KOutOfN { k: 3 };
        assert!(!tie_fails.decide(&[true, true, false, false]));
    }

    #[test]
    fn k_out_of_n_subsumes_flat_votes() {
        for n in 1usize..=9 {
            for trips in 0..=n {
                assert_eq!(
                    Adjudicator::KOutOfN { k: 1 }.decide_counts(trips, n),
                    Adjudicator::OneOutOfN.decide_counts(trips, n)
                );
                assert_eq!(
                    Adjudicator::KOutOfN { k: n }.decide_counts(trips, n),
                    Adjudicator::AllOutOfN.decide_counts(trips, n)
                );
                if n % 2 == 1 {
                    assert_eq!(
                        Adjudicator::KOutOfN { k: n / 2 + 1 }.decide_counts(trips, n),
                        Adjudicator::Majority.decide_counts(trips, n)
                    );
                }
            }
        }
    }

    #[test]
    fn validation() {
        assert!(Adjudicator::OneOutOfN.validate(0).is_err());
        assert!(Adjudicator::OneOutOfN.validate(2).is_ok());
        assert!(Adjudicator::Majority.validate(2).is_err());
        assert!(Adjudicator::Majority.validate(3).is_ok());
        assert!(Adjudicator::AllOutOfN.validate(4).is_ok());
        assert!(Adjudicator::KOutOfN { k: 0 }.validate(3).is_err());
        assert!(Adjudicator::KOutOfN { k: 1 }.validate(3).is_ok());
        assert!(Adjudicator::KOutOfN { k: 3 }.validate(3).is_ok());
        assert!(Adjudicator::KOutOfN { k: 4 }.validate(3).is_err());
        assert!(Adjudicator::KOutOfN { k: 1 }.validate(0).is_err());
    }

    #[test]
    fn display_names() {
        assert!(Adjudicator::OneOutOfN.to_string().contains("OR"));
        assert!(Adjudicator::Majority.to_string().contains("majority"));
        assert_eq!(Adjudicator::KOutOfN { k: 2 }.to_string(), "2-out-of-N");
    }

    #[test]
    fn serde_keeps_bare_names_and_round_trips_k_out_of_n() {
        use serde::{Deserialize, Serialize, Value};
        // Flat variants still serialise as (and parse from) bare names.
        assert_eq!(
            Adjudicator::Majority.to_value(),
            Value::Str("Majority".into())
        );
        assert_eq!(
            Adjudicator::from_value(&Value::Str("OneOutOfN".into())).unwrap(),
            Adjudicator::OneOutOfN
        );
        // The threshold voter round-trips through its tagged form.
        let k = Adjudicator::KOutOfN { k: 2 };
        assert_eq!(Adjudicator::from_value(&k.to_value()).unwrap(), k);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `decide_counts` is the counting form of `decide` — they
            /// must agree for every adjudicator on random trip vectors,
            /// including the protection system's channel-count edge
            /// cases: 1, 63 and 64 (the u64 fail-mask ceiling).
            #[test]
            fn decide_counts_agrees_with_decide_at_cap_sizes(
                which in 0usize..3,
                k in 1usize..=64,
                bits in proptest::collection::vec(proptest::bool::ANY, 64)
            ) {
                let n = [1usize, 63, 64][which];
                let trips = &bits[..n];
                let yes = trips.iter().filter(|&&t| t).count();
                for adj in [
                    Adjudicator::OneOutOfN,
                    Adjudicator::AllOutOfN,
                    Adjudicator::Majority,
                    Adjudicator::KOutOfN { k: k.min(n) },
                ] {
                    prop_assert_eq!(
                        adj.decide(trips),
                        adj.decide_counts(yes, n),
                        "{} over {} channels with {} trips",
                        adj,
                        n,
                        yes
                    );
                }
            }
        }
    }
}
