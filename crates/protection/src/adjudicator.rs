//! Output adjudication.
//!
//! The paper studies "the simplest possible diverse-redundant
//! configuration: two versions, with perfect adjudication (simple 'OR'
//! combination of binary outputs, giving a '1-out-of-2' diverse system)".
//! For a protection function, OR-ing trip signals means the system trips if
//! *any* channel trips — it fails only when **all** channels fail.
//! [`Adjudicator::AllOutOfN`] (AND) and majority voting are included for
//! comparison experiments (spurious-trip analyses take the opposite view,
//! which is why real systems care about 2oo3).

use crate::error::ProtectionError;
use std::fmt;

/// How channel trip decisions are combined into a system decision.
///
/// Serialisable (as the bare variant name, e.g. `"Majority"`) so
/// scenario files can declare the voting logic of each system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Adjudicator {
    /// OR: trip if any channel trips (the paper's 1-out-of-2, generalised
    /// to 1-out-of-N).
    OneOutOfN,
    /// AND: trip only if every channel trips (2-out-of-2 style).
    AllOutOfN,
    /// Majority vote; requires an odd channel count.
    Majority,
}

impl Adjudicator {
    /// Validates the adjudicator against a channel count.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::NoChannels`] for zero channels;
    /// [`ProtectionError::BadChannelCount`] for majority voting over an
    /// even count.
    pub fn validate(&self, channels: usize) -> Result<(), ProtectionError> {
        if channels == 0 {
            return Err(ProtectionError::NoChannels);
        }
        if *self == Adjudicator::Majority && channels.is_multiple_of(2) {
            return Err(ProtectionError::BadChannelCount {
                got: channels,
                need: "an odd number of",
            });
        }
        Ok(())
    }

    /// Combines per-channel trip decisions into the system decision.
    ///
    /// An empty slice yields `false` (no channel, no trip); constructed
    /// systems never pass one.
    pub fn decide(&self, trips: &[bool]) -> bool {
        let yes = trips.iter().filter(|&&t| t).count();
        self.decide_counts(yes, trips.len())
    }

    /// Combines a tally of tripping channels into the system decision —
    /// the counting form of [`Self::decide`] used by the table-driven
    /// hot paths (no slice needed).
    pub fn decide_counts(&self, trips: usize, channels: usize) -> bool {
        match self {
            Adjudicator::OneOutOfN => trips >= 1,
            Adjudicator::AllOutOfN => channels > 0 && trips == channels,
            Adjudicator::Majority => trips * 2 > channels,
        }
    }
}

impl fmt::Display for Adjudicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Adjudicator::OneOutOfN => "1-out-of-N (OR)",
            Adjudicator::AllOutOfN => "N-out-of-N (AND)",
            Adjudicator::Majority => "majority",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_out_of_n_is_or() {
        let a = Adjudicator::OneOutOfN;
        assert!(a.decide(&[true, false]));
        assert!(a.decide(&[false, true]));
        assert!(a.decide(&[true, true]));
        assert!(!a.decide(&[false, false]));
        assert!(!a.decide(&[]));
    }

    #[test]
    fn all_out_of_n_is_and() {
        let a = Adjudicator::AllOutOfN;
        assert!(a.decide(&[true, true]));
        assert!(!a.decide(&[true, false]));
        assert!(!a.decide(&[]));
    }

    #[test]
    fn majority_votes() {
        let a = Adjudicator::Majority;
        assert!(a.decide(&[true, true, false]));
        assert!(!a.decide(&[true, false, false]));
        assert!(a.decide(&[true, true, true]));
        assert!(!a.decide(&[false, false, false]));
    }

    #[test]
    fn validation() {
        assert!(Adjudicator::OneOutOfN.validate(0).is_err());
        assert!(Adjudicator::OneOutOfN.validate(2).is_ok());
        assert!(Adjudicator::Majority.validate(2).is_err());
        assert!(Adjudicator::Majority.validate(3).is_ok());
        assert!(Adjudicator::AllOutOfN.validate(4).is_ok());
    }

    #[test]
    fn display_names() {
        assert!(Adjudicator::OneOutOfN.to_string().contains("OR"));
        assert!(Adjudicator::Majority.to_string().contains("majority"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `decide_counts` is the counting form of `decide` — they
            /// must agree for every adjudicator on random trip vectors,
            /// including the protection system's channel-count edge
            /// cases: 1, 63 and 64 (the u64 fail-mask ceiling).
            #[test]
            fn decide_counts_agrees_with_decide_at_cap_sizes(
                which in 0usize..3,
                bits in proptest::collection::vec(proptest::bool::ANY, 64)
            ) {
                let n = [1usize, 63, 64][which];
                let trips = &bits[..n];
                let yes = trips.iter().filter(|&&t| t).count();
                for adj in [
                    Adjudicator::OneOutOfN,
                    Adjudicator::AllOutOfN,
                    Adjudicator::Majority,
                ] {
                    prop_assert_eq!(
                        adj.decide(trips),
                        adj.decide_counts(yes, n),
                        "{} over {} channels with {} trips",
                        adj,
                        n,
                        yes
                    );
                }
            }
        }
    }
}
