//! Declarative protection-scenario specifications.
//!
//! The paper's Fig 1 campaign — and every variant of it (different
//! plants, channel layouts, voting logic, development processes) — is
//! described here as **data**: serialisable spec types that `build()`
//! into the validated runtime objects through the same constructors the
//! hand-written F1 experiment calls. The executor lives in the bench
//! crate (it needs the development-process sampler); this module owns
//! the vocabulary:
//!
//! * [`ProfileSpec`] — the operational profile demands are drawn from;
//! * [`PlantSpec`] — the demand source, including the sticky
//!   [`Plant::markov_walk`] kind the demand compiler exploits;
//! * [`SystemSpec`] — one protection system: which sampled versions sit
//!   behind which [`Adjudicator`], and the campaign's seed salt;
//! * [`CampaignSpec`] — the whole scenario: demand space, failure
//!   regions, one or more development *processes* (per-region
//!   introduction probabilities — several processes model forced
//!   diversity), the versions to sample, and the campaign dimensions.

use crate::adjudicator::Adjudicator;
use crate::channel::Channel;
use crate::error::ProtectionError;
use crate::plant::Plant;
use crate::system::ProtectionSystem;
use crate::tree::FaultTree;
use divrel_demand::mapping::FaultRegionMap;
use divrel_demand::profile::Profile;
use divrel_demand::region::Region;
use divrel_demand::space::{Demand, GridSpace2D};
use divrel_demand::DemandError;
use serde::{Deserialize, Serialize};

/// A serialisable description of an operational [`Profile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProfileSpec {
    /// Every demand-space cell equally likely ([`Profile::uniform`]).
    Uniform,
    /// Explicit per-cell weights in row-major order
    /// ([`Profile::from_weights`]).
    Weights(Vec<f64>),
    /// Mass concentrated on hotspot centres over a uniform background
    /// ([`Profile::hotspot`]).
    Hotspot {
        /// The operating points demands cluster around.
        centres: Vec<Demand>,
        /// Probability mass shared equally by the centres (`[0, 1]`).
        mass: f64,
    },
}

impl ProfileSpec {
    /// Builds the profile over `space`.
    ///
    /// # Errors
    ///
    /// The named constructor's validation errors.
    pub fn build(&self, space: &GridSpace2D) -> Result<Profile, DemandError> {
        match self {
            ProfileSpec::Uniform => Ok(Profile::uniform(space)),
            ProfileSpec::Weights(w) => Profile::from_weights(space, w.clone()),
            ProfileSpec::Hotspot { centres, mass } => Profile::hotspot(space, centres, *mass),
        }
    }
}

/// A serialisable description of a [`Plant`]. The demand space and
/// profile come from the surrounding [`CampaignSpec`], so the plant spec
/// only carries the kind-specific parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlantSpec {
    /// Memoryless plant: each step is a demand with this probability,
    /// drawn from the campaign profile ([`Plant::with_demand_rate`]).
    Rate {
        /// Per-step demand probability in `(0, 1]`.
        demand_rate: f64,
    },
    /// Random-walk plant tripping inside `trip` ([`Plant::trajectory`]).
    Trajectory {
        /// The trip set raising demands.
        trip: Region,
        /// Maximum per-tick step in each coordinate.
        step: u32,
    },
    /// Sticky random walk: moves with probability `move_prob`, holds
    /// otherwise ([`Plant::markov_walk`]) — the slow-mixing regime the
    /// compiled demand-gap sampler exploits.
    MarkovWalk {
        /// The trip set raising demands.
        trip: Region,
        /// Maximum per-tick step in each coordinate.
        step: u32,
        /// Per-tick move probability in `(0, 1]`.
        move_prob: f64,
    },
}

impl PlantSpec {
    /// Builds the plant against the campaign's profile (rate plants draw
    /// demands from it; walk plants walk its space).
    ///
    /// # Errors
    ///
    /// The named constructor's validation errors.
    pub fn build(&self, profile: &Profile) -> Result<Plant, ProtectionError> {
        match self {
            PlantSpec::Rate { demand_rate } => {
                Plant::with_demand_rate(profile.clone(), *demand_rate)
            }
            PlantSpec::Trajectory { trip, step } => {
                Plant::trajectory(*profile.space(), trip.clone(), *step)
            }
            PlantSpec::MarkovWalk {
                trip,
                step,
                move_prob,
            } => Plant::markov_walk(*profile.space(), trip.clone(), *step, *move_prob),
        }
    }
}

/// One protection system of a campaign: a channel layout over the
/// campaign's sampled versions plus the voting logic and seed salt.
///
/// Exactly one of `adjudicator` (a flat vote over all channels) and
/// `tree` (a recursive gate topology over channel indices — **local**
/// to this system's channel list, i.e. `Channel(0)` is the first entry
/// of `channels`) must be declared; [`CampaignSpec::validate`]
/// enforces this. Both are optional fields so pre-existing specs
/// declaring only `adjudicator` keep their canonical serialised form
/// (and therefore their spec hash) unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Display label (e.g. `"1oo2"`).
    pub label: String,
    /// Indices into the campaign's sampled-version list, one per channel.
    pub channels: Vec<usize>,
    /// How channel trips combine: a flat vote over every channel.
    pub adjudicator: Option<Adjudicator>,
    /// How channel trips combine: a fault-tree gate topology. Leaf
    /// `Channel(i)` refers to the `i`-th entry of `channels`.
    pub tree: Option<FaultTree>,
    /// XOR salt applied to the scenario seed for this system's campaign
    /// RNG stream (the convention the F1 experiment established:
    /// `seed ^ 0xF1`, `seed ^ 0xF2`, …).
    pub seed_xor: u64,
}

impl SystemSpec {
    /// A flat-vote system spec (the historical form).
    pub fn flat(
        label: impl Into<String>,
        channels: Vec<usize>,
        adjudicator: Adjudicator,
        seed_xor: u64,
    ) -> Self {
        SystemSpec {
            label: label.into(),
            channels,
            adjudicator: Some(adjudicator),
            tree: None,
            seed_xor,
        }
    }

    /// A fault-tree system spec.
    pub fn with_tree(
        label: impl Into<String>,
        channels: Vec<usize>,
        tree: FaultTree,
        seed_xor: u64,
    ) -> Self {
        SystemSpec {
            label: label.into(),
            channels,
            adjudicator: None,
            tree: Some(tree),
            seed_xor,
        }
    }

    /// Validates the voting declaration against this spec's channel
    /// count: exactly one of `adjudicator`/`tree`, and that one valid.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] for zero-or-both
    /// declarations; the voter's own validation errors otherwise.
    pub fn validate_voter(&self) -> Result<(), ProtectionError> {
        match (&self.adjudicator, &self.tree) {
            (Some(adj), None) => adj.validate(self.channels.len()),
            (None, Some(tree)) => {
                if self.channels.is_empty() {
                    return Err(ProtectionError::NoChannels);
                }
                tree.validate(self.channels.len())
            }
            (Some(_), Some(_)) => Err(ProtectionError::InvalidConfig(format!(
                "system {:?} declares both an adjudicator and a fault tree; \
                 pick one",
                self.label
            ))),
            (None, None) => Err(ProtectionError::InvalidConfig(format!(
                "system {:?} declares neither an adjudicator nor a fault tree",
                self.label
            ))),
        }
    }

    /// Assembles the runtime [`ProtectionSystem`] from already-built
    /// channels (one per entry of `self.channels`, in order) and the
    /// campaign map — the single construction path both flat and tree
    /// systems go through.
    ///
    /// # Errors
    ///
    /// [`Self::validate_voter`] errors plus the constructors' own.
    pub fn build(
        &self,
        channels: Vec<Channel>,
        map: FaultRegionMap,
    ) -> Result<ProtectionSystem, ProtectionError> {
        self.validate_voter()?;
        match (&self.adjudicator, &self.tree) {
            (Some(adj), None) => ProtectionSystem::new(channels, *adj, map),
            (None, Some(tree)) => ProtectionSystem::with_tree(channels, tree.clone(), map),
            _ => unreachable!("validate_voter enforces exactly one"),
        }
    }
}

/// A common-cause fault layer over the campaign's sampled versions: a
/// development-process hazard (a misleading requirement, a shared
/// specification error) that, when it strikes, plants the **same**
/// faults into several versions at once. Correlated versions then flow
/// through the exact `true_pfd` geometry unchanged — the correlation
/// lives entirely in fault creation, as the paper's model intends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommonCauseSpec {
    /// Probability in `[0, 1]` that this cause strikes the campaign
    /// (one Bernoulli draw per cause, after independent sampling).
    pub p: f64,
    /// The fault (region) indices the cause plants when it strikes.
    pub regions: Vec<usize>,
    /// The sampled versions it strikes (indices into the campaign's
    /// version list); `None` means every version — a fully common
    /// cause.
    pub versions: Option<Vec<usize>>,
}

/// A whole protection scenario as data. See the module docs for the
/// vocabulary; [`CampaignSpec::validate`] checks cross-references, and
/// the bench-crate executor samples the versions and runs the campaigns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// The demand space.
    pub space: GridSpace2D,
    /// Disjoint failure regions, one per potential fault.
    pub regions: Vec<Region>,
    /// The operational profile over the space.
    pub profile: ProfileSpec,
    /// Development processes: each entry is the per-region introduction
    /// probabilities of one process. More than one process models forced
    /// diversity (channels developed under different methodologies).
    pub processes: Vec<Vec<f64>>,
    /// Which process develops each sampled version, in sampling order.
    pub versions: Vec<usize>,
    /// The protection systems to run (each a campaign over the same
    /// sampled versions).
    pub systems: Vec<SystemSpec>,
    /// The demand source.
    pub plant: PlantSpec,
    /// Campaign length in plant steps.
    pub steps: u64,
    /// Campaign shards. Part of the RNG layout (pinned in the spec, not
    /// taken from the host), so the same spec reproduces the same bits
    /// on every machine.
    pub shards: usize,
    /// Common-cause fault layers drawn after independent version
    /// sampling (`None` — the historical form — means none, and keeps
    /// the canonical serialisation of pre-existing specs unchanged).
    pub common_causes: Option<Vec<CommonCauseSpec>>,
}

impl CampaignSpec {
    /// Checks the inconsistencies a serialised spec can carry: a
    /// degenerate demand space (serde writes `GridSpace2D`'s fields
    /// directly, bypassing its constructor), process lengths vs region
    /// count, version process indices, system channel indices, non-empty
    /// systems/channels, positive shards.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProtectionError> {
        let bad = |msg: String| Err(ProtectionError::InvalidConfig(msg));
        if self.space.cell_count() == 0 {
            return bad(format!(
                "demand space {}x{} is empty",
                self.space.nx(),
                self.space.ny()
            ));
        }
        if self.processes.is_empty() {
            return bad("campaign declares no development processes".into());
        }
        for (i, ps) in self.processes.iter().enumerate() {
            if ps.len() != self.regions.len() {
                return bad(format!(
                    "process {i} has {} probabilities for {} regions",
                    ps.len(),
                    self.regions.len()
                ));
            }
        }
        if self.versions.is_empty() {
            return bad("campaign samples no versions".into());
        }
        for (i, &pi) in self.versions.iter().enumerate() {
            if pi >= self.processes.len() {
                return bad(format!(
                    "version {i} references process {pi} of {}",
                    self.processes.len()
                ));
            }
        }
        if self.systems.is_empty() {
            return bad("campaign declares no systems".into());
        }
        for sys in &self.systems {
            if sys.channels.is_empty() {
                return bad(format!("system {:?} has no channels", sys.label));
            }
            for &vi in &sys.channels {
                if vi >= self.versions.len() {
                    return bad(format!(
                        "system {:?} references version {vi} of {}",
                        sys.label,
                        self.versions.len()
                    ));
                }
            }
            sys.validate_voter()?;
        }
        if self.shards == 0 {
            return bad("campaign needs >= 1 shard".into());
        }
        if self.steps == 0 {
            return bad("campaign needs >= 1 step".into());
        }
        if let Some(causes) = &self.common_causes {
            for (i, cause) in causes.iter().enumerate() {
                if !(0.0..=1.0).contains(&cause.p) {
                    return bad(format!(
                        "common cause {i} has probability {} outside [0, 1]",
                        cause.p
                    ));
                }
                if cause.regions.is_empty() {
                    return bad(format!("common cause {i} plants no faults"));
                }
                for &ri in &cause.regions {
                    if ri >= self.regions.len() {
                        return bad(format!(
                            "common cause {i} references region {ri} of {}",
                            self.regions.len()
                        ));
                    }
                }
                if let Some(versions) = &cause.versions {
                    if versions.is_empty() {
                        return bad(format!("common cause {i} strikes no versions"));
                    }
                    for &vi in versions {
                        if vi >= self.versions.len() {
                            return bad(format!(
                                "common cause {i} references version {vi} of {}",
                                self.versions.len()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the fault-region map (validating regions against the
    /// space).
    ///
    /// # Errors
    ///
    /// [`FaultRegionMap::new`] validation errors.
    pub fn build_map(&self) -> Result<FaultRegionMap, DemandError> {
        FaultRegionMap::new(self.space, self.regions.clone())
    }

    /// Builds the operational profile.
    ///
    /// # Errors
    ///
    /// [`ProfileSpec::build`] errors.
    pub fn build_profile(&self) -> Result<Profile, DemandError> {
        self.profile.build(&self.space)
    }

    /// Builds the plant against a profile built by
    /// [`Self::build_profile`].
    ///
    /// # Errors
    ///
    /// [`PlantSpec::build`] errors.
    pub fn build_plant(&self, profile: &Profile) -> Result<Plant, ProtectionError> {
        self.plant.build(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> CampaignSpec {
        CampaignSpec {
            space: GridSpace2D::new(20, 20).unwrap(),
            regions: vec![Region::rect(0, 0, 3, 3), Region::rect(10, 10, 12, 12)],
            profile: ProfileSpec::Uniform,
            processes: vec![vec![0.3, 0.2]],
            versions: vec![0, 0],
            systems: vec![SystemSpec::flat(
                "1oo2",
                vec![0, 1],
                Adjudicator::OneOutOfN,
                0xF1,
            )],
            plant: PlantSpec::Rate { demand_rate: 0.1 },
            steps: 1000,
            shards: 2,
            common_causes: None,
        }
    }

    #[test]
    fn valid_spec_builds_every_component() {
        let spec = demo_spec();
        spec.validate().unwrap();
        let map = spec.build_map().unwrap();
        assert_eq!(map.regions().len(), 2);
        let profile = spec.build_profile().unwrap();
        let plant = spec.build_plant(&profile).unwrap();
        assert!(plant.rate_parts().is_some());
    }

    #[test]
    fn plant_spec_builds_each_kind() {
        let space = GridSpace2D::new(16, 16).unwrap();
        let profile = Profile::uniform(&space);
        let trip = Region::rect(0, 0, 2, 2);
        let rate = PlantSpec::Rate { demand_rate: 0.5 }
            .build(&profile)
            .unwrap();
        assert!(rate.rate_parts().is_some());
        let traj = PlantSpec::Trajectory {
            trip: trip.clone(),
            step: 2,
        }
        .build(&profile)
        .unwrap();
        assert!(traj.trip_set().is_some());
        let markov = PlantSpec::MarkovWalk {
            trip,
            step: 1,
            move_prob: 0.05,
        }
        .build(&profile)
        .unwrap();
        assert!(markov.transition_row(markov.initial_state()).is_some());
        assert!(PlantSpec::Rate { demand_rate: 0.0 }
            .build(&profile)
            .is_err());
    }

    #[test]
    fn profile_spec_builds_each_kind() {
        let space = GridSpace2D::new(4, 1).unwrap();
        assert!(ProfileSpec::Uniform.build(&space).is_ok());
        let w = ProfileSpec::Weights(vec![0.7, 0.1, 0.1, 0.1])
            .build(&space)
            .unwrap();
        assert!((w.prob(Demand::new(0, 0)) - 0.7).abs() < 1e-12);
        let h = ProfileSpec::Hotspot {
            centres: vec![Demand::new(1, 0)],
            mass: 0.5,
        }
        .build(&space)
        .unwrap();
        assert!(h.prob(Demand::new(1, 0)) > 0.5);
        assert!(ProfileSpec::Weights(vec![1.0]).build(&space).is_err());
    }

    #[test]
    fn validate_catches_every_cross_reference() {
        let ok = demo_spec();
        let mutate = |f: &dyn Fn(&mut CampaignSpec)| {
            let mut s = ok.clone();
            f(&mut s);
            s
        };
        assert!(mutate(&|s| s.processes.clear()).validate().is_err());
        assert!(mutate(&|s| s.processes[0].pop().map(|_| ()).unwrap())
            .validate()
            .is_err());
        assert!(mutate(&|s| s.versions.clear()).validate().is_err());
        assert!(mutate(&|s| s.versions[0] = 5).validate().is_err());
        assert!(mutate(&|s| s.systems.clear()).validate().is_err());
        assert!(mutate(&|s| s.systems[0].channels.clear())
            .validate()
            .is_err());
        assert!(mutate(&|s| s.systems[0].channels[0] = 9)
            .validate()
            .is_err());
        assert!(mutate(&|s| s.shards = 0).validate().is_err());
        assert!(mutate(&|s| s.steps = 0).validate().is_err());
        // Majority over an even channel count is caught here too.
        assert!(
            mutate(&|s| s.systems[0].adjudicator = Some(Adjudicator::Majority))
                .validate()
                .is_err()
        );
        // A k-out-of-N threshold past the channel count likewise.
        assert!(
            mutate(&|s| s.systems[0].adjudicator = Some(Adjudicator::KOutOfN { k: 3 }))
                .validate()
                .is_err()
        );
        // Exactly one of adjudicator/tree.
        assert!(mutate(&|s| s.systems[0].adjudicator = None)
            .validate()
            .is_err());
        assert!(mutate(&|s| s.systems[0].tree = Some(FaultTree::Channel(0)))
            .validate()
            .is_err());
        // A valid tree in place of the flat vote passes.
        assert!(mutate(&|s| {
            s.systems[0].adjudicator = None;
            s.systems[0].tree = Some(FaultTree::AnyOf(vec![
                FaultTree::Channel(0),
                FaultTree::Channel(1),
            ]));
        })
        .validate()
        .is_ok());
        // Tree leaves are local to the system's channel list.
        assert!(mutate(&|s| {
            s.systems[0].adjudicator = None;
            s.systems[0].tree = Some(FaultTree::Channel(2));
        })
        .validate()
        .is_err());
    }

    #[test]
    fn validate_catches_bad_common_causes() {
        let ok = demo_spec();
        let mutate = |f: &dyn Fn(&mut CampaignSpec)| {
            let mut s = ok.clone();
            f(&mut s);
            s
        };
        let cause = |p: f64, regions: Vec<usize>, versions: Option<Vec<usize>>| CommonCauseSpec {
            p,
            regions,
            versions,
        };
        // A well-formed cause validates.
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(0.3, vec![0], None)]))
                .validate()
                .is_ok()
        );
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(1.5, vec![0], None)]))
                .validate()
                .is_err()
        );
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(-0.1, vec![0], None)]))
                .validate()
                .is_err()
        );
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(0.3, vec![], None)]))
                .validate()
                .is_err()
        );
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(0.3, vec![7], None)]))
                .validate()
                .is_err()
        );
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(0.3, vec![0], Some(vec![]))]))
                .validate()
                .is_err()
        );
        assert!(
            mutate(&|s| s.common_causes = Some(vec![cause(0.3, vec![0], Some(vec![9]))]))
                .validate()
                .is_err()
        );
    }

    #[test]
    fn system_spec_builds_flat_and_tree_systems() {
        use divrel_demand::version::ProgramVersion;
        let spec = demo_spec();
        let map = spec.build_map().unwrap();
        let channels = vec![
            Channel::new("V0", ProgramVersion::new(vec![true, false])),
            Channel::new("V1", ProgramVersion::new(vec![false, true])),
        ];
        let flat = spec.systems[0]
            .build(channels.clone(), map.clone())
            .unwrap();
        assert_eq!(flat.adjudicator(), Some(Adjudicator::OneOutOfN));
        let tree_spec = SystemSpec::with_tree(
            "or2",
            vec![0, 1],
            FaultTree::AnyOf(vec![FaultTree::Channel(0), FaultTree::Channel(1)]),
            0xF2,
        );
        let tree = tree_spec.build(channels.clone(), map.clone()).unwrap();
        assert!(tree.tree().is_some());
        // The OR tree and the flat 1oo2 decide identically.
        let profile = spec.build_profile().unwrap();
        assert_eq!(
            flat.true_pfd(&profile).unwrap(),
            tree.true_pfd(&profile).unwrap()
        );
        // An underdeclared spec refuses to build.
        let mut bad = tree_spec;
        bad.tree = None;
        assert!(bad.build(channels, map).is_err());
    }

    #[test]
    fn validate_rejects_deserialized_empty_space() {
        // GridSpace2D::new refuses zero dimensions, but serde writes the
        // fields directly — validate() must catch what the constructor
        // would have.
        let mut spec = demo_spec();
        spec.space = serde_json::from_str(r#"{"nx": 0, "ny": 5}"#).unwrap();
        spec.regions = vec![Region::points([])];
        spec.processes = vec![vec![0.3]];
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn campaign_spec_round_trips_through_json() {
        let spec = demo_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Tree + common-cause forms round-trip too.
        let mut rich = demo_spec();
        rich.systems.push(SystemSpec::with_tree(
            "2oo3-tree",
            vec![0, 1, 0],
            FaultTree::KOfN {
                k: 2,
                of: vec![
                    FaultTree::Channel(0),
                    FaultTree::Channel(1),
                    FaultTree::Channel(2),
                ],
            },
            0xF3,
        ));
        rich.common_causes = Some(vec![CommonCauseSpec {
            p: 0.25,
            regions: vec![0, 1],
            versions: Some(vec![0, 1]),
        }]);
        rich.validate().unwrap();
        let json = serde_json::to_string(&rich).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rich);
    }

    #[test]
    fn pre_tree_spec_json_still_deserializes() {
        // A system object exactly as PR 4–7 serialised it: bare variant
        // name for the adjudicator, no `tree`, no `common_causes`
        // anywhere. Back-compat requires it to parse into the widened
        // vocabulary unchanged.
        let legacy = r#"{
            "label": "1oo2",
            "channels": [0, 1],
            "adjudicator": "OneOutOfN",
            "seed_xor": 241
        }"#;
        let sys: SystemSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(sys.adjudicator, Some(Adjudicator::OneOutOfN));
        assert_eq!(sys.tree, None);
        assert_eq!(sys.seed_xor, 0xF1);
        sys.validate_voter().unwrap();
    }
}
