//! Operational history: what an assessor can actually observe.
//!
//! The paper's conclusions point to "combining this kind of models with
//! inference from observations during a specific project" — this module
//! records those observations. An [`OperationLog`] counts demands and
//! failures (system-level and per-channel) and exposes the statistics the
//! Bayesian layer consumes: total demands, failure counts, and the length
//! of the current failure-free streak.

use divrel_model::ModelError;
use std::fmt;

/// A running log of operational experience of a protection system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperationLog {
    steps: u64,
    demands: u64,
    system_failures: u64,
    channel_failures: Vec<u64>,
    failure_free_streak: u64,
}

impl OperationLog {
    /// Creates an empty log for a system with `channels` channels.
    pub fn new(channels: usize) -> Self {
        OperationLog {
            channel_failures: vec![0; channels],
            ..OperationLog::default()
        }
    }

    /// Records a quiet step (no demand).
    pub fn record_quiet(&mut self) {
        self.steps += 1;
    }

    /// Records `n` quiet steps at once (the analytic demand-gap skip).
    pub fn record_quiet_n(&mut self, n: u64) {
        self.steps += n;
    }

    /// Records a demand from the bitmask form of the system response:
    /// bit `ch` of `fail_mask` set means channel `ch` failed to trip.
    /// Equivalent to [`Self::record_demand`] without the slice.
    pub fn record_demand_bits(&mut self, tripped: bool, fail_mask: u64) {
        self.steps += 1;
        self.demands += 1;
        let mut m = fail_mask;
        while m != 0 {
            let ch = m.trailing_zeros() as usize;
            if let Some(c) = self.channel_failures.get_mut(ch) {
                *c += 1;
            }
            m &= m - 1;
        }
        if tripped {
            self.failure_free_streak += 1;
        } else {
            self.system_failures += 1;
            self.failure_free_streak = 0;
        }
    }

    /// Records a demand with the system decision and per-channel trips.
    pub fn record_demand(&mut self, tripped: bool, channel_trips: &[bool]) {
        self.steps += 1;
        self.demands += 1;
        for (i, &t) in channel_trips.iter().enumerate() {
            if !t {
                if let Some(c) = self.channel_failures.get_mut(i) {
                    *c += 1;
                }
            }
        }
        if tripped {
            self.failure_free_streak += 1;
        } else {
            self.system_failures += 1;
            self.failure_free_streak = 0;
        }
    }

    /// Total simulation steps observed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total demands observed.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Total system failures (failures to trip on a demand).
    pub fn system_failures(&self) -> u64 {
        self.system_failures
    }

    /// Failures per channel.
    pub fn channel_failures(&self) -> &[u64] {
        &self.channel_failures
    }

    /// Demands since the last system failure (the whole log if none).
    pub fn failure_free_streak(&self) -> u64 {
        self.failure_free_streak
    }

    /// Maximum-likelihood estimate of the system PFD.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] if no demand has been observed.
    pub fn pfd_estimate(&self) -> Result<f64, ModelError> {
        if self.demands == 0 {
            return Err(ModelError::Degenerate("no demands observed"));
        }
        Ok(self.system_failures as f64 / self.demands as f64)
    }

    /// Maximum-likelihood PFD estimate for one channel.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] for no demands or a bad index.
    pub fn channel_pfd_estimate(&self, channel: usize) -> Result<f64, ModelError> {
        if self.demands == 0 {
            return Err(ModelError::Degenerate("no demands observed"));
        }
        let fails = self
            .channel_failures
            .get(channel)
            .ok_or(ModelError::Degenerate("channel index out of range"))?;
        Ok(*fails as f64 / self.demands as f64)
    }

    /// Merges another log (e.g. from a parallel shard) into this one.
    /// Streak information is taken from `other` (the later shard).
    pub fn merge(&mut self, other: &OperationLog) {
        self.steps += other.steps;
        self.demands += other.demands;
        self.system_failures += other.system_failures;
        if self.channel_failures.len() < other.channel_failures.len() {
            self.channel_failures
                .resize(other.channel_failures.len(), 0);
        }
        for (i, &c) in other.channel_failures.iter().enumerate() {
            self.channel_failures[i] += c;
        }
        self.failure_free_streak = if other.system_failures > 0 {
            other.failure_free_streak
        } else {
            self.failure_free_streak + other.failure_free_streak
        };
    }
}

/// An [`OperationLog`] is a mergeable sweep accumulator: campaigns run
/// as sweep cells (one plant/seed per cell) reduce to a single log with
/// exactly the semantics of [`OperationLog::merge`], so whole experiment
/// grids can shard over the deterministic sweep engine.
impl divrel_numerics::sweep::SweepReduce for OperationLog {
    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }
}

/// The log's portable wire form: pure counters, so the round trip is
/// trivially exact — a campaign shard simulated on one host merges into
/// the coordinator's log with the same bits as an in-process shard.
impl divrel_numerics::wire::WireForm for OperationLog {
    fn to_wire(&self) -> divrel_numerics::wire::Wire {
        use divrel_numerics::wire::Wire;
        Wire::record([
            ("steps", Wire::U64(self.steps)),
            ("demands", Wire::U64(self.demands)),
            ("system_failures", Wire::U64(self.system_failures)),
            (
                "channel_failures",
                Wire::List(
                    self.channel_failures
                        .iter()
                        .map(|&c| Wire::U64(c))
                        .collect(),
                ),
            ),
            ("failure_free_streak", Wire::U64(self.failure_free_streak)),
        ])
    }

    fn from_wire(
        wire: &divrel_numerics::wire::Wire,
    ) -> Result<Self, divrel_numerics::wire::WireError> {
        Ok(OperationLog {
            steps: wire.field("steps")?.as_u64()?,
            demands: wire.field("demands")?.as_u64()?,
            system_failures: wire.field("system_failures")?.as_u64()?,
            channel_failures: wire
                .field("channel_failures")?
                .as_list()?
                .iter()
                .map(|w| w.as_u64())
                .collect::<Result<_, _>>()?,
            failure_free_streak: wire.field("failure_free_streak")?.as_u64()?,
        })
    }
}

impl fmt::Display for OperationLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OperationLog({} steps, {} demands, {} system failures)",
            self.steps, self.demands, self.system_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_estimates() {
        let mut log = OperationLog::new(2);
        log.record_quiet();
        log.record_demand(true, &[true, true]);
        log.record_demand(true, &[false, true]); // channel 0 fails, masked
        log.record_demand(false, &[false, false]); // system failure
        log.record_demand(true, &[true, true]);
        assert_eq!(log.steps(), 5);
        assert_eq!(log.demands(), 4);
        assert_eq!(log.system_failures(), 1);
        assert_eq!(log.channel_failures(), &[2, 1]);
        assert_eq!(log.failure_free_streak(), 1);
        assert!((log.pfd_estimate().unwrap() - 0.25).abs() < 1e-15);
        assert!((log.channel_pfd_estimate(0).unwrap() - 0.5).abs() < 1e-15);
        assert!((log.channel_pfd_estimate(1).unwrap() - 0.25).abs() < 1e-15);
        assert!(log.channel_pfd_estimate(5).is_err());
    }

    #[test]
    fn empty_log_has_no_estimates() {
        let log = OperationLog::new(2);
        assert!(log.pfd_estimate().is_err());
        assert!(log.channel_pfd_estimate(0).is_err());
        assert_eq!(log.failure_free_streak(), 0);
    }

    #[test]
    fn streak_resets_on_failure() {
        let mut log = OperationLog::new(1);
        log.record_demand(true, &[true]);
        log.record_demand(true, &[true]);
        assert_eq!(log.failure_free_streak(), 2);
        log.record_demand(false, &[false]);
        assert_eq!(log.failure_free_streak(), 0);
        log.record_demand(true, &[true]);
        assert_eq!(log.failure_free_streak(), 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = OperationLog::new(2);
        a.record_demand(true, &[true, true]);
        a.record_demand(false, &[false, false]);
        a.record_demand(true, &[true, true]); // streak 1
        let mut b = OperationLog::new(2);
        b.record_demand(true, &[false, true]);
        b.record_demand(true, &[true, true]); // streak 2, no failures
        a.merge(&b);
        assert_eq!(a.demands(), 5);
        assert_eq!(a.system_failures(), 1);
        // a contributed [1, 1] (the double failure), b contributed [1, 0].
        assert_eq!(a.channel_failures(), &[2, 1]);
        assert_eq!(a.failure_free_streak(), 3); // 1 + 2

        // Merge where the later shard saw a failure: streak comes from it.
        let mut c = OperationLog::new(2);
        c.record_demand(false, &[false, false]);
        c.record_demand(true, &[true, true]);
        a.merge(&c);
        assert_eq!(a.failure_free_streak(), 1);
    }

    #[test]
    fn sweep_reduce_absorb_matches_merge() {
        use divrel_numerics::sweep::SweepReduce;
        let mut a = OperationLog::new(2);
        a.record_quiet_n(10);
        a.record_demand(true, &[true, false]);
        let mut b = OperationLog::new(2);
        b.record_quiet_n(5);
        b.record_demand(false, &[false, false]);
        let mut via_merge = a.clone();
        via_merge.merge(&b);
        let mut via_absorb = a;
        via_absorb.absorb(b);
        assert_eq!(via_merge, via_absorb);
        assert_eq!(via_absorb.steps(), 17);
        assert_eq!(via_absorb.system_failures(), 1);
    }

    #[test]
    fn wire_round_trip_is_exact_and_merges_identically() {
        use divrel_numerics::wire::WireForm;
        let mut a = OperationLog::new(3);
        a.record_quiet_n(1_000_000_007);
        a.record_demand(true, &[true, false, true]);
        a.record_demand(false, &[false, false, false]);
        let shipped = OperationLog::from_wire(&a.to_wire()).unwrap();
        assert_eq!(shipped, a);
        let mut b = OperationLog::new(3);
        b.record_demand(true, &[true, true, true]);
        let mut direct = a.clone();
        direct.merge(&b);
        let mut via_wire = shipped;
        via_wire.merge(&OperationLog::from_wire(&b.to_wire()).unwrap());
        assert_eq!(via_wire, direct);
        // A malformed tree is rejected, not misread.
        assert!(OperationLog::from_wire(&divrel_numerics::wire::Wire::U64(1)).is_err());
    }

    #[test]
    fn display_summarises() {
        let mut log = OperationLog::new(1);
        log.record_demand(false, &[false]);
        assert!(log.to_string().contains("1 system failures"));
    }
}
