//! Error type for the protection-system crate.

use std::fmt;

/// Errors produced by the protection substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtectionError {
    /// A system needs at least one channel.
    NoChannels,
    /// The adjudicator cannot operate on this channel count (e.g. majority
    /// voting over an even count).
    BadChannelCount {
        /// What was configured.
        got: usize,
        /// What the adjudicator needs.
        need: &'static str,
    },
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// `run_until_demands` hit its step cap before observing the
    /// configured number of demands.
    DemandShortfall {
        /// Demands observed before the cap.
        observed: u64,
        /// Demands the caller asked for.
        target: u64,
        /// The configured step cap that was exhausted.
        max_steps: u64,
    },
    /// A propagated demand-space error.
    Demand(divrel_demand::DemandError),
}

impl fmt::Display for ProtectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionError::NoChannels => write!(f, "protection system needs >= 1 channel"),
            ProtectionError::BadChannelCount { got, need } => {
                write!(f, "adjudicator needs {need} channels, got {got}")
            }
            ProtectionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ProtectionError::DemandShortfall {
                observed,
                target,
                max_steps,
            } => write!(
                f,
                "demand target not reached: only {observed} of {target} demands \
                 after the configured cap of {max_steps} steps"
            ),
            ProtectionError::Demand(e) => write!(f, "demand-space error: {e}"),
        }
    }
}

impl std::error::Error for ProtectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtectionError::Demand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<divrel_demand::DemandError> for ProtectionError {
    fn from(e: divrel_demand::DemandError) -> Self {
        ProtectionError::Demand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(ProtectionError::NoChannels.to_string().contains("channel"));
        assert!(ProtectionError::BadChannelCount {
            got: 2,
            need: "an odd number of"
        }
        .to_string()
        .contains("odd"));
        assert!(ProtectionError::InvalidConfig("rate".into())
            .to_string()
            .contains("rate"));
        let e = ProtectionError::from(divrel_demand::DemandError::EmptySpace);
        assert!(e.source().is_some());
        assert!(ProtectionError::NoChannels.source().is_none());
    }
}
