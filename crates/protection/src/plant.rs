//! The controlled plant: the source of demands.
//!
//! §2.1: "A demand occurs when the controlled system enters a state that
//! requires the intervention of the protection system." Two plant models
//! are provided:
//!
//! * [`Plant::with_demand_rate`] — each step is a demand with a fixed
//!   probability, and the demand's detail (the sensed state variables) is
//!   drawn from an operational [`Profile`]. This realises the paper's
//!   demand-space semantics exactly.
//! * [`Plant::trajectory`] — the two sensed variables perform a bounded
//!   random walk; a demand occurs whenever the state enters a configured
//!   *trip set*, and the demand value is the state itself. This produces a
//!   physically-flavoured, autocorrelated demand stream whose *induced*
//!   profile is an emergent property, used to stress the assumption that
//!   demands are profile-i.i.d.

use crate::error::ProtectionError;
use divrel_demand::profile::Profile;
use divrel_demand::region::Region;
use divrel_demand::space::{Demand, GridSpace2D};
use rand::Rng;

/// What the plant did in one simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantEvent {
    /// Nothing requiring protection happened.
    Quiet,
    /// The plant entered a state requiring protection.
    Demand(Demand),
}

/// A stochastic plant emitting demands.
#[derive(Debug, Clone)]
pub struct Plant {
    kind: PlantKind,
}

#[derive(Debug, Clone)]
enum PlantKind {
    Rate {
        profile: Profile,
        demand_rate: f64,
    },
    Trajectory {
        space: GridSpace2D,
        trip_set: Region,
        step: u32,
    },
}

impl Plant {
    /// A memoryless plant: every step is a demand with probability
    /// `demand_rate`, its value drawn from `profile`.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] unless `0 < demand_rate <= 1`.
    pub fn with_demand_rate(profile: Profile, demand_rate: f64) -> Result<Self, ProtectionError> {
        if !(demand_rate > 0.0 && demand_rate <= 1.0) {
            return Err(ProtectionError::InvalidConfig(format!(
                "demand rate {demand_rate} not in (0, 1]"
            )));
        }
        Ok(Plant {
            kind: PlantKind::Rate {
                profile,
                demand_rate,
            },
        })
    }

    /// A random-walk plant over `space`: the state starts at the centre
    /// and moves up to `step` cells per tick in each coordinate (clamped
    /// to the space); entering `trip_set` raises a demand at the current
    /// state.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] for `step == 0`;
    /// [`ProtectionError::Demand`] if the trip set leaves the space.
    pub fn trajectory(
        space: GridSpace2D,
        trip_set: Region,
        step: u32,
    ) -> Result<Self, ProtectionError> {
        if step == 0 {
            return Err(ProtectionError::InvalidConfig(
                "trajectory step must be >= 1".into(),
            ));
        }
        trip_set.validate_within(&space)?;
        Ok(Plant {
            kind: PlantKind::Trajectory {
                space,
                trip_set,
                step,
            },
        })
    }

    /// The demand space the plant's demands live in.
    pub fn space(&self) -> &GridSpace2D {
        match &self.kind {
            PlantKind::Rate { profile, .. } => profile.space(),
            PlantKind::Trajectory { space, .. } => space,
        }
    }

    /// Runs the plant for one step from `state`, returning the new state
    /// and the event. For the rate plant the state is ignored and returned
    /// unchanged.
    pub fn step<R: Rng + ?Sized>(&self, state: Demand, rng: &mut R) -> (Demand, PlantEvent) {
        match &self.kind {
            PlantKind::Rate {
                profile,
                demand_rate,
            } => {
                if rng.gen::<f64>() < *demand_rate {
                    (state, PlantEvent::Demand(profile.sample(rng)))
                } else {
                    (state, PlantEvent::Quiet)
                }
            }
            PlantKind::Trajectory {
                space,
                trip_set,
                step,
            } => {
                let walk = |v: u32, max: u32, rng: &mut R| -> u32 {
                    let delta = rng.gen_range(-(*step as i64)..=*step as i64);
                    (v as i64 + delta).clamp(0, max as i64 - 1) as u32
                };
                let next = Demand::new(
                    walk(state.var1, space.nx(), rng),
                    walk(state.var2, space.ny(), rng),
                );
                let event = if trip_set.contains(next) {
                    PlantEvent::Demand(next)
                } else {
                    PlantEvent::Quiet
                };
                (next, event)
            }
        }
    }

    /// For memoryless (rate) plants: the demand probability per step
    /// and the profile demands are drawn from. `None` for trajectory
    /// plants, whose demand process has memory.
    ///
    /// The simulation driver uses this to skip quiet ticks analytically
    /// (geometric demand-gap sampling) — valid precisely because the
    /// rate plant's steps are i.i.d.
    pub fn rate_parts(&self) -> Option<(&Profile, f64)> {
        match &self.kind {
            PlantKind::Rate {
                profile,
                demand_rate,
            } => Some((profile, *demand_rate)),
            PlantKind::Trajectory { .. } => None,
        }
    }

    /// A sensible initial state: the centre of the space.
    pub fn initial_state(&self) -> Demand {
        let s = self.space();
        Demand::new(s.nx() / 2, s.ny() / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_plant_validation() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let p = Profile::uniform(&s);
        assert!(Plant::with_demand_rate(p.clone(), 0.0).is_err());
        assert!(Plant::with_demand_rate(p.clone(), 1.5).is_err());
        assert!(Plant::with_demand_rate(p, 1.0).is_ok());
    }

    #[test]
    fn rate_plant_demand_frequency() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let plant = Plant::with_demand_rate(Profile::uniform(&s), 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = plant.initial_state();
        let mut demands = 0;
        let n = 40_000;
        for _ in 0..n {
            let (next, ev) = plant.step(state, &mut rng);
            state = next;
            if matches!(ev, PlantEvent::Demand(_)) {
                demands += 1;
            }
        }
        let rate = demands as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn rate_plant_demands_follow_profile() {
        let s = GridSpace2D::new(2, 1).unwrap();
        let profile = Profile::from_weights(&s, vec![0.9, 0.1]).unwrap();
        let plant = Plant::with_demand_rate(profile, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut left = 0;
        let n = 20_000;
        for _ in 0..n {
            if let (_, PlantEvent::Demand(d)) = plant.step(Demand::new(0, 0), &mut rng) {
                if d.var1 == 0 {
                    left += 1;
                }
            }
        }
        assert!((left as f64 / n as f64 - 0.9).abs() < 0.01);
    }

    #[test]
    fn trajectory_plant_validation() {
        let s = GridSpace2D::new(10, 10).unwrap();
        assert!(Plant::trajectory(s, Region::rect(0, 0, 2, 2), 0).is_err());
        assert!(Plant::trajectory(s, Region::rect(0, 0, 12, 2), 1).is_err());
        assert!(Plant::trajectory(s, Region::rect(0, 0, 2, 2), 1).is_ok());
    }

    #[test]
    fn trajectory_stays_in_space_and_trips_in_trip_set() {
        let s = GridSpace2D::new(20, 20).unwrap();
        let trip = Region::rect(0, 0, 3, 3);
        let plant = Plant::trajectory(s, trip.clone(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = plant.initial_state();
        let mut demand_count = 0;
        for _ in 0..20_000 {
            let (next, ev) = plant.step(state, &mut rng);
            assert!(s.contains(next), "state {next} left the space");
            match ev {
                PlantEvent::Demand(d) => {
                    assert!(trip.contains(d), "demand {d} outside trip set");
                    assert_eq!(d, next);
                    demand_count += 1;
                }
                PlantEvent::Quiet => assert!(!trip.contains(next)),
            }
            state = next;
        }
        assert!(demand_count > 0, "random walk never hit the trip set");
    }

    #[test]
    fn initial_state_is_centre() {
        let s = GridSpace2D::new(10, 30).unwrap();
        let plant = Plant::trajectory(s, Region::rect(0, 0, 1, 1), 1).unwrap();
        assert_eq!(plant.initial_state(), Demand::new(5, 15));
    }
}
