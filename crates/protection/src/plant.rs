//! The controlled plant: the source of demands.
//!
//! §2.1: "A demand occurs when the controlled system enters a state that
//! requires the intervention of the protection system." Two plant models
//! are provided:
//!
//! * [`Plant::with_demand_rate`] — each step is a demand with a fixed
//!   probability, and the demand's detail (the sensed state variables) is
//!   drawn from an operational [`Profile`]. This realises the paper's
//!   demand-space semantics exactly.
//! * [`Plant::trajectory`] — the two sensed variables perform a bounded
//!   random walk; a demand occurs whenever the state enters a configured
//!   *trip set*, and the demand value is the state itself. This produces a
//!   physically-flavoured, autocorrelated demand stream whose *induced*
//!   profile is an emergent property, used to stress the assumption that
//!   demands are profile-i.i.d.
//! * [`Plant::markov_walk`] — a *sticky* random walk: each tick the state
//!   moves with probability `move_prob` (taking a trajectory step) and
//!   holds its operating point otherwise. Operating points that persist
//!   for many ticks are what real plants do between transients, and they
//!   are exactly the structure the demand compiler
//!   ([`crate::compiler::CompiledPlant`]) exploits: the holding time in a
//!   state is geometric, so quiet ticks can be skipped analytically.
//!
//! Trajectory and Markov-walk plants expose their exact one-step
//! transition law through [`Plant::transition_row`]; the rate plant is
//! memoryless and exposes [`Plant::rate_parts`] instead.

use crate::error::ProtectionError;
use divrel_demand::profile::Profile;
use divrel_demand::region::Region;
use divrel_demand::space::{Demand, GridSpace2D};
use rand::Rng;

/// What the plant did in one simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantEvent {
    /// Nothing requiring protection happened.
    Quiet,
    /// The plant entered a state requiring protection.
    Demand(Demand),
}

/// A stochastic plant emitting demands.
#[derive(Debug, Clone)]
pub struct Plant {
    kind: PlantKind,
}

#[derive(Debug, Clone)]
enum PlantKind {
    Rate {
        profile: Profile,
        demand_rate: f64,
    },
    Trajectory {
        space: GridSpace2D,
        trip_set: Region,
        step: u32,
    },
    Markov {
        space: GridSpace2D,
        trip_set: Region,
        step: u32,
        move_prob: f64,
    },
}

impl Plant {
    /// A memoryless plant: every step is a demand with probability
    /// `demand_rate`, its value drawn from `profile`.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] unless `0 < demand_rate <= 1`.
    pub fn with_demand_rate(profile: Profile, demand_rate: f64) -> Result<Self, ProtectionError> {
        if !(demand_rate > 0.0 && demand_rate <= 1.0) {
            return Err(ProtectionError::InvalidConfig(format!(
                "demand rate {demand_rate} not in (0, 1]"
            )));
        }
        Ok(Plant {
            kind: PlantKind::Rate {
                profile,
                demand_rate,
            },
        })
    }

    /// A random-walk plant over `space`: the state starts at the centre
    /// and moves up to `step` cells per tick in each coordinate (clamped
    /// to the space); entering `trip_set` raises a demand at the current
    /// state.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] for `step == 0`;
    /// [`ProtectionError::Demand`] if the trip set leaves the space.
    pub fn trajectory(
        space: GridSpace2D,
        trip_set: Region,
        step: u32,
    ) -> Result<Self, ProtectionError> {
        if step == 0 {
            return Err(ProtectionError::InvalidConfig(
                "trajectory step must be >= 1".into(),
            ));
        }
        trip_set.validate_within(&space)?;
        Ok(Plant {
            kind: PlantKind::Trajectory {
                space,
                trip_set,
                step,
            },
        })
    }

    /// A sticky random-walk plant over `space`: each tick the state takes
    /// a [`Plant::trajectory`]-style step with probability `move_prob`
    /// and holds its current operating point otherwise. Entering
    /// `trip_set` raises a demand at the new state (holding *inside* the
    /// trip set re-raises the demand, exactly as the trajectory plant
    /// does).
    ///
    /// Small `move_prob` models a plant that dwells at operating points
    /// for `~1/move_prob` ticks between excursions — the regime in which
    /// the compiled gap sampler pays off.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] for `step == 0` or
    /// `move_prob` outside `(0, 1]`; [`ProtectionError::Demand`] if the
    /// trip set leaves the space.
    pub fn markov_walk(
        space: GridSpace2D,
        trip_set: Region,
        step: u32,
        move_prob: f64,
    ) -> Result<Self, ProtectionError> {
        if step == 0 {
            return Err(ProtectionError::InvalidConfig(
                "markov-walk step must be >= 1".into(),
            ));
        }
        if !(move_prob > 0.0 && move_prob <= 1.0) {
            return Err(ProtectionError::InvalidConfig(format!(
                "move probability {move_prob} not in (0, 1]"
            )));
        }
        trip_set.validate_within(&space)?;
        Ok(Plant {
            kind: PlantKind::Markov {
                space,
                trip_set,
                step,
                move_prob,
            },
        })
    }

    /// The demand space the plant's demands live in.
    pub fn space(&self) -> &GridSpace2D {
        match &self.kind {
            PlantKind::Rate { profile, .. } => profile.space(),
            PlantKind::Trajectory { space, .. } | PlantKind::Markov { space, .. } => space,
        }
    }

    /// Runs the plant for one step from `state`, returning the new state
    /// and the event. For the rate plant the state is ignored and returned
    /// unchanged.
    pub fn step<R: Rng + ?Sized>(&self, state: Demand, rng: &mut R) -> (Demand, PlantEvent) {
        match &self.kind {
            PlantKind::Rate {
                profile,
                demand_rate,
            } => {
                if rng.gen::<f64>() < *demand_rate {
                    (state, PlantEvent::Demand(profile.sample(rng)))
                } else {
                    (state, PlantEvent::Quiet)
                }
            }
            PlantKind::Trajectory {
                space,
                trip_set,
                step,
            } => {
                let next = walk_step(state, *step, space, rng);
                (next, classify(next, trip_set))
            }
            PlantKind::Markov {
                space,
                trip_set,
                step,
                move_prob,
            } => {
                let next = if rng.gen::<f64>() < *move_prob {
                    walk_step(state, *step, space, rng)
                } else {
                    state
                };
                (next, classify(next, trip_set))
            }
        }
    }

    /// The exact one-step transition law from `state`, as
    /// `(successor, probability)` pairs with positive probability summing
    /// to 1 — the row of the plant's Markov transition matrix that the
    /// demand compiler consumes. `None` for the memoryless rate plant
    /// (whose structure is exposed by [`Plant::rate_parts`] instead).
    ///
    /// Rows are exact: the clamped random-walk deltas of each axis are
    /// enumerated combinatorially, so the returned distribution is the
    /// law [`Plant::step`] samples from, not an estimate of it.
    ///
    /// Allocates a fresh row per call; hot paths that probe many states
    /// (the demand compiler's eager sweep, the sparse compiler's lazy
    /// per-visit builds) use [`Plant::transition_row_into`] with a
    /// reused [`RowScratch`] instead.
    pub fn transition_row(&self, state: Demand) -> Option<Vec<(Demand, f64)>> {
        let mut buf = RowScratch::new();
        self.transition_row_into(state, &mut buf).then_some(buf.row)
    }

    /// Writes the exact one-step law from `state` into `buf` (replacing
    /// its previous contents), returning `false` for the memoryless rate
    /// plant. Identical values in identical order to
    /// [`Plant::transition_row`] — the compiler relies on this to build
    /// bit-identical tables from either entry point — but free of the
    /// per-call `Vec` allocations: after warm-up the scratch buffers are
    /// reused across every probed state.
    pub fn transition_row_into(&self, state: Demand, buf: &mut RowScratch) -> bool {
        match &self.kind {
            PlantKind::Rate { .. } => false,
            PlantKind::Trajectory { space, step, .. } => {
                walk_row_into(state, *step, space, 1.0, buf);
                true
            }
            PlantKind::Markov {
                space,
                step,
                move_prob,
                ..
            } => {
                walk_row_into(state, *step, space, *move_prob, buf);
                let hold = 1.0 - move_prob;
                if hold > 0.0 {
                    match buf.row.iter_mut().find(|(d, _)| *d == state) {
                        Some((_, p)) => *p += hold,
                        None => buf.row.push((state, hold)),
                    }
                }
                true
            }
        }
    }

    /// The trip set of a trajectory or Markov-walk plant (`None` for the
    /// rate plant, whose demands carry their own values).
    pub fn trip_set(&self) -> Option<&Region> {
        match &self.kind {
            PlantKind::Rate { .. } => None,
            PlantKind::Trajectory { trip_set, .. } | PlantKind::Markov { trip_set, .. } => {
                Some(trip_set)
            }
        }
    }

    /// For memoryless (rate) plants: the demand probability per step
    /// and the profile demands are drawn from. `None` for trajectory
    /// plants, whose demand process has memory.
    ///
    /// The simulation driver uses this to skip quiet ticks analytically
    /// (geometric demand-gap sampling) — valid precisely because the
    /// rate plant's steps are i.i.d.
    pub fn rate_parts(&self) -> Option<(&Profile, f64)> {
        match &self.kind {
            PlantKind::Rate {
                profile,
                demand_rate,
            } => Some((profile, *demand_rate)),
            PlantKind::Trajectory { .. } | PlantKind::Markov { .. } => None,
        }
    }

    /// A sensible initial state: the centre of the space.
    pub fn initial_state(&self) -> Demand {
        let s = self.space();
        Demand::new(s.nx() / 2, s.ny() / 2)
    }
}

/// One clamped random-walk step (shared by the trajectory and Markov
/// kinds).
fn walk_step<R: Rng + ?Sized>(
    state: Demand,
    step: u32,
    space: &GridSpace2D,
    rng: &mut R,
) -> Demand {
    let walk = |v: u32, max: u32, rng: &mut R| -> u32 {
        let delta = rng.gen_range(-(step as i64)..=step as i64);
        (v as i64 + delta).clamp(0, max as i64 - 1) as u32
    };
    Demand::new(
        walk(state.var1, space.nx(), rng),
        walk(state.var2, space.ny(), rng),
    )
}

fn classify(next: Demand, trip_set: &Region) -> PlantEvent {
    if trip_set.contains(next) {
        PlantEvent::Demand(next)
    } else {
        PlantEvent::Quiet
    }
}

/// Reusable scratch for [`Plant::transition_row_into`]: the row buffer
/// plus the per-axis work areas, so row probes and lazy per-state
/// compilation stop allocating once warm.
#[derive(Debug, Default, Clone)]
pub struct RowScratch {
    xs: Vec<(u32, f64)>,
    ys: Vec<(u32, f64)>,
    row: Vec<(Demand, f64)>,
}

impl RowScratch {
    /// Fresh (empty) scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently built transition row.
    pub fn row(&self) -> &[(Demand, f64)] {
        &self.row
    }
}

/// The exact distribution of one clamped-walk axis: each delta in
/// `[-step, step]` is equally likely and clamping folds out-of-range
/// deltas onto the boundary cells.
fn axis_row_into(v: u32, max: u32, step: u32, out: &mut Vec<(u32, f64)>) {
    out.clear();
    let per = 1.0 / (2 * step + 1) as f64;
    for delta in -(step as i64)..=step as i64 {
        let t = (v as i64 + delta).clamp(0, max as i64 - 1) as u32;
        match out.last_mut() {
            // Deltas are scanned in order, so clamped duplicates are
            // adjacent and fold into the previous entry.
            Some((prev, p)) if *prev == t => *p += per,
            _ => out.push((t, per)),
        }
    }
}

/// The joint clamped-walk row, scaled by `scale` (the move probability).
fn walk_row_into(state: Demand, step: u32, space: &GridSpace2D, scale: f64, buf: &mut RowScratch) {
    axis_row_into(state.var1, space.nx(), step, &mut buf.xs);
    axis_row_into(state.var2, space.ny(), step, &mut buf.ys);
    buf.row.clear();
    buf.row.reserve(buf.xs.len() * buf.ys.len());
    for &(y, py) in &buf.ys {
        for &(x, px) in &buf.xs {
            buf.row.push((Demand::new(x, y), scale * px * py));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_plant_validation() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let p = Profile::uniform(&s);
        assert!(Plant::with_demand_rate(p.clone(), 0.0).is_err());
        assert!(Plant::with_demand_rate(p.clone(), 1.5).is_err());
        assert!(Plant::with_demand_rate(p, 1.0).is_ok());
    }

    #[test]
    fn rate_plant_demand_frequency() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let plant = Plant::with_demand_rate(Profile::uniform(&s), 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = plant.initial_state();
        let mut demands = 0;
        let n = 40_000;
        for _ in 0..n {
            let (next, ev) = plant.step(state, &mut rng);
            state = next;
            if matches!(ev, PlantEvent::Demand(_)) {
                demands += 1;
            }
        }
        let rate = demands as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn rate_plant_demands_follow_profile() {
        let s = GridSpace2D::new(2, 1).unwrap();
        let profile = Profile::from_weights(&s, vec![0.9, 0.1]).unwrap();
        let plant = Plant::with_demand_rate(profile, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut left = 0;
        let n = 20_000;
        for _ in 0..n {
            if let (_, PlantEvent::Demand(d)) = plant.step(Demand::new(0, 0), &mut rng) {
                if d.var1 == 0 {
                    left += 1;
                }
            }
        }
        assert!((left as f64 / n as f64 - 0.9).abs() < 0.01);
    }

    #[test]
    fn trajectory_plant_validation() {
        let s = GridSpace2D::new(10, 10).unwrap();
        assert!(Plant::trajectory(s, Region::rect(0, 0, 2, 2), 0).is_err());
        assert!(Plant::trajectory(s, Region::rect(0, 0, 12, 2), 1).is_err());
        assert!(Plant::trajectory(s, Region::rect(0, 0, 2, 2), 1).is_ok());
    }

    #[test]
    fn trajectory_stays_in_space_and_trips_in_trip_set() {
        let s = GridSpace2D::new(20, 20).unwrap();
        let trip = Region::rect(0, 0, 3, 3);
        let plant = Plant::trajectory(s, trip.clone(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = plant.initial_state();
        let mut demand_count = 0;
        for _ in 0..20_000 {
            let (next, ev) = plant.step(state, &mut rng);
            assert!(s.contains(next), "state {next} left the space");
            match ev {
                PlantEvent::Demand(d) => {
                    assert!(trip.contains(d), "demand {d} outside trip set");
                    assert_eq!(d, next);
                    demand_count += 1;
                }
                PlantEvent::Quiet => assert!(!trip.contains(next)),
            }
            state = next;
        }
        assert!(demand_count > 0, "random walk never hit the trip set");
    }

    #[test]
    fn initial_state_is_centre() {
        let s = GridSpace2D::new(10, 30).unwrap();
        let plant = Plant::trajectory(s, Region::rect(0, 0, 1, 1), 1).unwrap();
        assert_eq!(plant.initial_state(), Demand::new(5, 15));
    }

    #[test]
    fn markov_walk_validation() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let trip = Region::rect(0, 0, 2, 2);
        assert!(Plant::markov_walk(s, trip.clone(), 0, 0.5).is_err());
        assert!(Plant::markov_walk(s, trip.clone(), 1, 0.0).is_err());
        assert!(Plant::markov_walk(s, trip.clone(), 1, 1.5).is_err());
        assert!(Plant::markov_walk(s, Region::rect(0, 0, 12, 2), 1, 0.5).is_err());
        assert!(Plant::markov_walk(s, trip, 1, 1.0).is_ok());
    }

    #[test]
    fn markov_walk_holds_its_state() {
        // move_prob 0.25: roughly three quarters of the ticks hold.
        let s = GridSpace2D::new(20, 20).unwrap();
        let plant = Plant::markov_walk(s, Region::rect(0, 0, 1, 1), 2, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut state = plant.initial_state();
        let mut held = 0;
        let n = 20_000;
        for _ in 0..n {
            let (next, _) = plant.step(state, &mut rng);
            if next == state {
                held += 1;
            }
            state = next;
        }
        // P(hold) = 0.75 + 0.25 / 25 (a move that draws delta (0, 0)).
        let want = 0.75 + 0.25 / 25.0;
        assert!((held as f64 / n as f64 - want).abs() < 0.02);
    }

    #[test]
    fn transition_row_is_a_distribution_matching_step() {
        let s = GridSpace2D::new(12, 12).unwrap();
        let trip = Region::rect(0, 0, 1, 1);
        for plant in [
            Plant::trajectory(s, trip.clone(), 2).unwrap(),
            Plant::markov_walk(s, trip.clone(), 2, 0.3).unwrap(),
        ] {
            // Interior state and a corner state (clamping folds mass).
            for state in [Demand::new(6, 6), Demand::new(0, 0)] {
                let row = plant.transition_row(state).unwrap();
                let total: f64 = row.iter().map(|&(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-12, "row mass {total}");
                assert!(row.iter().all(|&(_, p)| p > 0.0));
                // Empirical one-step frequencies match the row.
                let mut rng = StdRng::seed_from_u64(21);
                let n = 40_000;
                let mut counts = std::collections::HashMap::new();
                for _ in 0..n {
                    let (next, _) = plant.step(state, &mut rng);
                    *counts.entry(next).or_insert(0u32) += 1;
                }
                for &(d, p) in &row {
                    let freq = *counts.get(&d).unwrap_or(&0) as f64 / n as f64;
                    assert!((freq - p).abs() < 0.015, "{d}: freq {freq} vs row prob {p}");
                }
            }
        }
    }

    #[test]
    fn transition_row_into_reproduces_transition_row_bitwise() {
        let s = GridSpace2D::new(12, 12).unwrap();
        let trip = Region::rect(0, 0, 1, 1);
        let mut buf = RowScratch::new();
        for plant in [
            Plant::trajectory(s, trip.clone(), 2).unwrap(),
            Plant::markov_walk(s, trip.clone(), 3, 0.3).unwrap(),
            Plant::markov_walk(s, trip, 1, 1.0).unwrap(),
        ] {
            // One shared scratch across states and plants: stale contents
            // must never leak into the next row.
            for state in [Demand::new(6, 6), Demand::new(0, 0), Demand::new(11, 3)] {
                let owned = plant.transition_row(state).unwrap();
                assert!(plant.transition_row_into(state, &mut buf));
                assert_eq!(buf.row().len(), owned.len());
                for (&(d, p), &(od, op)) in buf.row().iter().zip(&owned) {
                    assert_eq!(d, od);
                    assert_eq!(p.to_bits(), op.to_bits(), "{state} -> {d}");
                }
            }
        }
        let rate = Plant::with_demand_rate(Profile::uniform(&GridSpace2D::new(4, 4).unwrap()), 0.5)
            .unwrap();
        assert!(!rate.transition_row_into(Demand::new(0, 0), &mut buf));
    }

    #[test]
    fn rate_plant_has_no_transition_row_or_trip_set() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let plant = Plant::with_demand_rate(Profile::uniform(&s), 0.5).unwrap();
        assert!(plant.transition_row(Demand::new(0, 0)).is_none());
        assert!(plant.trip_set().is_none());
        let t = Plant::trajectory(s, Region::rect(0, 0, 2, 2), 1).unwrap();
        assert!(t.trip_set().is_some());
    }
}
