//! Functional diversity: channels that sense different state variables.
//!
//! Fig 1's caption: "In reality, the two channels usually sense different
//! state variables and may use different actuators… We study the limiting
//! worst case in which this functional diversity does not apply," citing
//! \[8\] for why functional diversity "should be studied as part of a
//! continuum of diversity arrangement". This module supplies the
//! continuum: a [`SensorView`] maps the *plant* state to the demand each
//! channel's software actually sees. Two channels running even the *same*
//! program version stop failing together when their views map a plant
//! state into different cells — functional diversity as geometry.

use crate::error::ProtectionError;
use divrel_demand::space::{Demand, GridSpace2D};
use std::fmt;

/// How a channel's sensors transform the plant state into the channel's
/// own demand coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SensorView {
    /// The channel sees the plant state as-is (the paper's worst case).
    #[default]
    Identity,
    /// The channel samples the two variables in the opposite roles
    /// (e.g. channel A trips on pressure-vs-temperature, channel B on
    /// temperature-vs-pressure).
    SwapAxes,
    /// Coarser instrumentation: readings quantised by integer factors
    /// (values are truncated to the cell's representative).
    Coarsen {
        /// Quantisation factor for `var1` (≥ 1).
        fx: u32,
        /// Quantisation factor for `var2` (≥ 1).
        fy: u32,
    },
    /// Calibration offset: readings shifted by `(dx, dy)`, saturating at
    /// the space boundary.
    Offset {
        /// Shift applied to `var1`.
        dx: i32,
        /// Shift applied to `var2`.
        dy: i32,
    },
    /// Failed instrumentation: the channel's sensors are stuck and report
    /// the same state regardless of the plant. Failure-injection variant:
    /// the software evaluates the stuck reading, so a channel stuck
    /// *inside* one of its failure regions fails every demand
    /// (fail-danger), while one stuck in a cell its software handles
    /// correctly trips on every demand (fail-safe instrumentation —
    /// spurious trips are outside this model's scope).
    Stuck {
        /// The reading reported for `var1` forever.
        at_var1: u32,
        /// The reading reported for `var2` forever.
        at_var2: u32,
    },
}

impl SensorView {
    /// Validates the view against a demand space.
    ///
    /// # Errors
    ///
    /// [`ProtectionError::InvalidConfig`] for zero coarsening factors, or
    /// a swap view over a non-square space.
    pub fn validate(&self, space: &GridSpace2D) -> Result<(), ProtectionError> {
        match self {
            SensorView::Identity | SensorView::Offset { .. } => Ok(()),
            SensorView::Stuck { at_var1, at_var2 } => {
                if *at_var1 < space.nx() && *at_var2 < space.ny() {
                    Ok(())
                } else {
                    Err(ProtectionError::InvalidConfig(format!(
                        "stuck reading ({at_var1}, {at_var2}) outside {space}"
                    )))
                }
            }
            SensorView::SwapAxes => {
                if space.nx() == space.ny() {
                    Ok(())
                } else {
                    Err(ProtectionError::InvalidConfig(format!(
                        "swap-axes view needs a square space, got {space}"
                    )))
                }
            }
            SensorView::Coarsen { fx, fy } => {
                if *fx >= 1 && *fy >= 1 {
                    Ok(())
                } else {
                    Err(ProtectionError::InvalidConfig(
                        "coarsening factors must be >= 1".into(),
                    ))
                }
            }
        }
    }

    /// Maps a plant state to the demand the channel's software receives.
    ///
    /// The result always lies within `space` (saturating where needed),
    /// modelling sensors that clip rather than fail at range ends.
    pub fn apply(&self, plant_state: Demand, space: &GridSpace2D) -> Demand {
        let clamp = |x: i64, max: u32| -> u32 { x.clamp(0, max as i64 - 1) as u32 };
        match *self {
            SensorView::Identity => plant_state,
            SensorView::SwapAxes => Demand::new(
                clamp(plant_state.var2 as i64, space.nx()),
                clamp(plant_state.var1 as i64, space.ny()),
            ),
            SensorView::Coarsen { fx, fy } => {
                Demand::new((plant_state.var1 / fx) * fx, (plant_state.var2 / fy) * fy)
            }
            SensorView::Offset { dx, dy } => Demand::new(
                clamp(plant_state.var1 as i64 + dx as i64, space.nx()),
                clamp(plant_state.var2 as i64 + dy as i64, space.ny()),
            ),
            SensorView::Stuck { at_var1, at_var2 } => Demand::new(
                clamp(at_var1 as i64, space.nx()),
                clamp(at_var2 as i64, space.ny()),
            ),
        }
    }
}

impl fmt::Display for SensorView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorView::Identity => write!(f, "identity"),
            SensorView::SwapAxes => write!(f, "swap-axes"),
            SensorView::Coarsen { fx, fy } => write!(f, "coarsen({fx}×{fy})"),
            SensorView::Offset { dx, dy } => write!(f, "offset({dx}, {dy})"),
            SensorView::Stuck { at_var1, at_var2 } => write!(f, "stuck({at_var1}, {at_var2})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> GridSpace2D {
        GridSpace2D::new(10, 10).unwrap()
    }

    #[test]
    fn identity_is_default_and_transparent() {
        assert_eq!(SensorView::default(), SensorView::Identity);
        let d = Demand::new(3, 7);
        assert_eq!(SensorView::Identity.apply(d, &space()), d);
    }

    #[test]
    fn swap_axes() {
        let v = SensorView::SwapAxes;
        assert_eq!(v.apply(Demand::new(3, 7), &space()), Demand::new(7, 3));
        assert!(v.validate(&space()).is_ok());
        let rect = GridSpace2D::new(10, 20).unwrap();
        assert!(v.validate(&rect).is_err());
    }

    #[test]
    fn coarsen_quantises() {
        let v = SensorView::Coarsen { fx: 4, fy: 2 };
        assert_eq!(v.apply(Demand::new(5, 5), &space()), Demand::new(4, 4));
        assert_eq!(v.apply(Demand::new(3, 1), &space()), Demand::new(0, 0));
        assert!(v.validate(&space()).is_ok());
        assert!(SensorView::Coarsen { fx: 0, fy: 1 }
            .validate(&space())
            .is_err());
    }

    #[test]
    fn offset_saturates() {
        let v = SensorView::Offset { dx: 3, dy: -2 };
        assert_eq!(v.apply(Demand::new(5, 5), &space()), Demand::new(8, 3));
        assert_eq!(v.apply(Demand::new(9, 0), &space()), Demand::new(9, 0));
        let big = SensorView::Offset { dx: 100, dy: -100 };
        assert_eq!(big.apply(Demand::new(5, 5), &space()), Demand::new(9, 0));
        assert!(v.validate(&space()).is_ok());
    }

    #[test]
    fn mapped_demands_stay_in_space() {
        let s = space();
        for view in [
            SensorView::Identity,
            SensorView::SwapAxes,
            SensorView::Coarsen { fx: 3, fy: 7 },
            SensorView::Offset { dx: -4, dy: 9 },
            SensorView::Stuck {
                at_var1: 9,
                at_var2: 0,
            },
        ] {
            for d in s.demands() {
                assert!(s.contains(view.apply(d, &s)), "{view} left the space");
            }
        }
    }

    #[test]
    fn stuck_sensor_ignores_the_plant() {
        let v = SensorView::Stuck {
            at_var1: 4,
            at_var2: 6,
        };
        for d in [Demand::new(0, 0), Demand::new(9, 9), Demand::new(4, 6)] {
            assert_eq!(v.apply(d, &space()), Demand::new(4, 6));
        }
        assert!(v.validate(&space()).is_ok());
        assert!(SensorView::Stuck {
            at_var1: 10,
            at_var2: 0
        }
        .validate(&space())
        .is_err());
        assert!(SensorView::Stuck {
            at_var1: 0,
            at_var2: 3
        }
        .to_string()
        .contains("stuck(0, 3)"));
    }

    #[test]
    fn display_names() {
        assert_eq!(SensorView::Identity.to_string(), "identity");
        assert_eq!(SensorView::SwapAxes.to_string(), "swap-axes");
        assert!(SensorView::Coarsen { fx: 2, fy: 2 }
            .to_string()
            .contains("2×2"));
        assert!(SensorView::Offset { dx: 1, dy: -1 }
            .to_string()
            .contains("1, -1"));
    }
}
