//! Rendering for declarative-scenario results.
//!
//! The scenario layer reduces an experiment grid to a small set of
//! accumulators; a [`ScenarioCard`] is the presentation-side contract
//! for those reductions — a titled list of headline fields plus any
//! number of named [`Table`]s — rendered as one markdown document by the
//! `scenario_run` binary and written into the artifact tree beside the
//! hand-written experiments' tables.

use crate::table::Table;

/// A renderable scenario result: headline fields, detail tables, and a
/// provenance block recording **how** the reduction was earned (spec
/// hash, worker fleet, lease retries) separately from **what** it is —
/// so two executions of one spec render identical result sections even
/// when one ran in process and the other on a fleet that lost a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCard {
    title: String,
    fields: Vec<(String, String)>,
    tables: Vec<(String, Table)>,
    provenance: Vec<(String, String)>,
}

impl ScenarioCard {
    /// Creates an empty card with a title.
    pub fn new(title: impl Into<String>) -> Self {
        ScenarioCard {
            title: title.into(),
            fields: Vec::new(),
            tables: Vec::new(),
            provenance: Vec::new(),
        }
    }

    /// Appends a headline `name: value` field.
    pub fn field(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Appends a named detail table.
    pub fn table(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((name.into(), table));
        self
    }

    /// Appends a `name: value` provenance entry (spec hash, worker
    /// count, lease retries, …). Rendered in its own trailing section
    /// so execution history never mixes into the comparable results.
    pub fn provenance(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.provenance.push((name.into(), value.into()));
        self
    }

    /// The card title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The headline fields, in insertion order.
    pub fn fields(&self) -> &[(String, String)] {
        &self.fields
    }

    /// The named tables, in insertion order.
    pub fn tables(&self) -> &[(String, Table)] {
        &self.tables
    }

    /// The provenance entries, in insertion order.
    pub fn provenance_entries(&self) -> &[(String, String)] {
        &self.provenance
    }

    /// Renders the result sections only — title, fields, tables,
    /// **without** the provenance block. This is the part that must be
    /// byte-identical across executions of one spec, whatever fleet ran
    /// it; CI diffs it between a coordinator run and an in-process run.
    pub fn results_markdown(&self) -> String {
        let mut out = format!("## {}\n", self.title);
        for (name, value) in &self.fields {
            out.push_str(&format!("- **{name}**: {value}\n"));
        }
        for (name, table) in &self.tables {
            out.push_str(&format!("\n### {name}\n\n{}", table.to_markdown()));
        }
        out
    }

    /// Renders the whole card as a markdown document: an `##` title, a
    /// bullet per field, an `###` section per table, and — when present
    /// — a trailing `### provenance` section.
    pub fn to_markdown(&self) -> String {
        let mut out = self.results_markdown();
        if !self.provenance.is_empty() {
            out.push_str("\n### provenance\n\n");
            for (name, value) in &self.provenance {
                out.push_str(&format!("- {name}: {value}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_and_tables() {
        let mut card = ScenarioCard::new("E16 replication");
        card.field("replications", "200")
            .field("reduced both", "200/200");
        let mut t = Table::new(["statistic", "value"]);
        t.row(["median σ-reduction", "3.1×"]);
        card.table("reductions", t);
        let md = card.to_markdown();
        assert!(md.starts_with("## E16 replication\n"));
        assert!(md.contains("- **replications**: 200"));
        assert!(md.contains("### reductions"));
        assert!(md.contains("median σ-reduction"));
        assert_eq!(card.fields().len(), 2);
        assert_eq!(card.tables().len(), 1);
        assert_eq!(card.title(), "E16 replication");
    }

    #[test]
    fn empty_card_is_just_the_title() {
        let card = ScenarioCard::new("empty");
        assert_eq!(card.to_markdown(), "## empty\n");
    }

    #[test]
    fn provenance_renders_separately_from_results() {
        let mut card = ScenarioCard::new("dist run");
        card.field("samples", "1000");
        card.provenance("spec hash", "fnv1a:0123456789abcdef")
            .provenance("workers", "4")
            .provenance("lease retries", "1");
        assert_eq!(card.provenance_entries().len(), 3);
        // The comparable section is provenance-free…
        let results = card.results_markdown();
        assert!(results.contains("- **samples**: 1000"));
        assert!(!results.contains("provenance"));
        assert!(!results.contains("fnv1a"));
        // …while the full render appends the provenance block.
        let md = card.to_markdown();
        assert!(md.starts_with(&results));
        assert!(md.contains("### provenance"));
        assert!(md.contains("- workers: 4"));
        assert!(md.contains("- lease retries: 1"));
        // A provenance-free card renders without the section.
        assert!(!ScenarioCard::new("x").to_markdown().contains("provenance"));
    }
}
