//! Rendering for declarative-scenario results.
//!
//! The scenario layer reduces an experiment grid to a small set of
//! accumulators; a [`ScenarioCard`] is the presentation-side contract
//! for those reductions — a titled list of headline fields plus any
//! number of named [`Table`]s — rendered as one markdown document by the
//! `scenario_run` binary and written into the artifact tree beside the
//! hand-written experiments' tables.

use crate::table::Table;

/// A renderable scenario result: headline fields and detail tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCard {
    title: String,
    fields: Vec<(String, String)>,
    tables: Vec<(String, Table)>,
}

impl ScenarioCard {
    /// Creates an empty card with a title.
    pub fn new(title: impl Into<String>) -> Self {
        ScenarioCard {
            title: title.into(),
            fields: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Appends a headline `name: value` field.
    pub fn field(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Appends a named detail table.
    pub fn table(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((name.into(), table));
        self
    }

    /// The card title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The headline fields, in insertion order.
    pub fn fields(&self) -> &[(String, String)] {
        &self.fields
    }

    /// The named tables, in insertion order.
    pub fn tables(&self) -> &[(String, Table)] {
        &self.tables
    }

    /// Renders the whole card as a markdown document: an `##` title, a
    /// bullet per field, an `###` section per table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n", self.title);
        for (name, value) in &self.fields {
            out.push_str(&format!("- **{name}**: {value}\n"));
        }
        for (name, table) in &self.tables {
            out.push_str(&format!("\n### {name}\n\n{}", table.to_markdown()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_and_tables() {
        let mut card = ScenarioCard::new("E16 replication");
        card.field("replications", "200")
            .field("reduced both", "200/200");
        let mut t = Table::new(["statistic", "value"]);
        t.row(["median σ-reduction", "3.1×"]);
        card.table("reductions", t);
        let md = card.to_markdown();
        assert!(md.starts_with("## E16 replication\n"));
        assert!(md.contains("- **replications**: 200"));
        assert!(md.contains("### reductions"));
        assert!(md.contains("median σ-reduction"));
        assert_eq!(card.fields().len(), 2);
        assert_eq!(card.tables().len(), 1);
        assert_eq!(card.title(), "E16 replication");
    }

    #[test]
    fn empty_card_is_just_the_title() {
        let card = ScenarioCard::new("empty");
        assert_eq!(card.to_markdown(), "## empty\n");
    }
}
