//! A small typed table with markdown and CSV rendering.

use serde::Serialize;

/// A table of string cells with a fixed header.
///
/// Rows shorter than the header are padded with empty cells; longer rows
/// are truncated — the table always stays rectangular.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as an aligned GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = (0..self.header.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].chars().count())
                    .chain(std::iter::once(self.header[c].chars().count()))
                    .max()
                    .unwrap_or(1)
                    .max(1)
            })
            .collect();
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (c, w) in cells.iter().zip(&widths) {
                out.push(' ');
                out.push_str(c);
                for _ in c.chars().count()..*w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for r in &self.rows {
            emit_row(&mut out, r);
        }
        out
    }

    /// Renders as RFC-4180-style CSV (quoting cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for c in cells {
                if !first {
                    out.push(',');
                }
                first = false;
                if c.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&c.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(c);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }

    /// Serialises to pretty JSON (header + rows).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["beta-longer", "2.5"]);
        t
    }

    #[test]
    fn construction_and_shape() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.header(), &["name".to_string(), "value".to_string()]);
        assert_eq!(t.rows()[1][0], "beta-longer");
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
        t.row(["x", "y", "z-dropped"]);
        assert_eq!(t.rows()[0], vec!["only-one".to_string(), String::new()]);
        assert_eq!(t.rows()[1], vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn markdown_is_aligned() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|--"));
        // All lines have equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{md}");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["plain", "has,comma"]);
        t.row(["has\"quote", "multi\nline"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert!(csv.contains("\"multi\nline\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn json_round_trips() {
        let t = sample();
        let json = t.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["header"][0], "name");
        assert_eq!(v["rows"][1][1], "2.5");
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        let md = t.to_markdown();
        assert_eq!(md.lines().count(), 2);
        assert_eq!(t.to_csv(), "x\n");
    }
}
