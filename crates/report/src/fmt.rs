//! Numeric formatting shared by every experiment report.

/// Formats a value with `sig` significant figures, using scientific
/// notation outside `[1e-3, 1e4)`.
///
/// ```
/// use divrel_report::fmt::sig;
/// assert_eq!(sig(0.0123456, 3), "0.0123");
/// assert_eq!(sig(1234.5678, 4), "1235");
/// assert_eq!(sig(1.5e-7, 3), "1.50e-7");
/// assert_eq!(sig(0.0, 3), "0");
/// ```
pub fn sig(x: f64, sig: usize) -> String {
    if x == 0.0 {
        return "0".into();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor();
    if !(-3.0..4.0).contains(&mag) {
        let digits = sig.saturating_sub(1);
        let s = format!("{:.*e}", digits, x);
        return s;
    }
    let decimals = (sig as i64 - 1 - mag as i64).max(0) as usize;
    format!("{x:.decimals$}")
}

/// Formats a probability/ratio as a percentage with the given decimals.
///
/// ```
/// use divrel_report::fmt::percent;
/// assert_eq!(percent(0.25, 1), "25.0%");
/// ```
pub fn percent(x: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, x * 100.0)
}

/// Formats a ratio as a multiplicative factor, e.g. `9.95×`.
///
/// ```
/// use divrel_report::fmt::factor;
/// assert_eq!(factor(9.95), "9.95×");
/// assert_eq!(factor(f64::INFINITY), "∞");
/// ```
pub fn factor(x: f64) -> String {
    if x.is_infinite() {
        return "∞".into();
    }
    format!("{x:.2}×")
}

/// Relative difference `|a−b| / max(|a|, |b|)`; 0 when both are 0.
///
/// Used to report measured-vs-paper deviations in EXPERIMENTS.md.
///
/// ```
/// use divrel_report::fmt::rel_diff;
/// assert!((rel_diff(0.1, 0.11) - 0.0909).abs() < 1e-3);
/// assert_eq!(rel_diff(0.0, 0.0), 0.0);
/// ```
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_figures_mid_range() {
        assert_eq!(sig(0.866, 3), "0.866");
        assert_eq!(sig(0.33166, 3), "0.332");
        assert_eq!(sig(0.1004987, 3), "0.100");
        assert_eq!(sig(12.345, 3), "12.3");
        assert_eq!(sig(9999.0, 2), "9999"); // no negative decimals
    }

    #[test]
    fn sig_scientific_for_extremes() {
        assert_eq!(sig(1.2345e-5, 3), "1.23e-5");
        assert_eq!(sig(9.87e8, 2), "9.9e8");
        assert_eq!(sig(-4.2e-9, 2), "-4.2e-9");
    }

    #[test]
    fn sig_handles_non_finite() {
        assert_eq!(sig(f64::INFINITY, 3), "inf");
        assert_eq!(sig(f64::NAN, 3), "NaN");
    }

    #[test]
    fn percent_and_factor() {
        assert_eq!(percent(0.0123, 2), "1.23%");
        assert_eq!(factor(1.0), "1.00×");
        assert_eq!(factor(f64::INFINITY), "∞");
    }

    #[test]
    fn rel_diff_properties() {
        assert_eq!(rel_diff(5.0, 5.0), 0.0);
        assert!((rel_diff(1.0, 2.0) - 0.5).abs() < 1e-15);
        assert_eq!(rel_diff(1.0, 2.0), rel_diff(2.0, 1.0));
        assert_eq!(rel_diff(0.0, 1.0), 1.0);
    }
}
