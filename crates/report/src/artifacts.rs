//! Result-directory plumbing: `results/<experiment-id>/{name}.{md,csv,json}`.

use crate::table::Table;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes experiment artifacts under a root directory, one subdirectory
/// per experiment id.
///
/// ```no_run
/// use divrel_report::{ArtifactSink, Table};
/// # fn main() -> std::io::Result<()> {
/// let sink = ArtifactSink::new("results", "E7-beta-factor")?;
/// let mut t = Table::new(["p_max", "beta"]);
/// t.row(["0.5", "0.866"]);
/// sink.write_table("beta_factor", &t)?;
/// sink.write_text("notes", "matches the paper's table exactly\n")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactSink {
    dir: PathBuf,
}

impl ArtifactSink {
    /// Creates (or reuses) `root/experiment_id/`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(root: impl AsRef<Path>, experiment_id: &str) -> io::Result<Self> {
        let dir = root.as_ref().join(experiment_id);
        fs::create_dir_all(&dir)?;
        Ok(ArtifactSink { dir })
    }

    /// The directory artifacts are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `name.md`, `name.csv` and `name.json` renderings of a table.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn write_table(&self, name: &str, table: &Table) -> io::Result<()> {
        fs::write(self.dir.join(format!("{name}.md")), table.to_markdown())?;
        fs::write(self.dir.join(format!("{name}.csv")), table.to_csv())?;
        fs::write(self.dir.join(format!("{name}.json")), table.to_json())?;
        Ok(())
    }

    /// Writes a free-form text artifact `name.txt`.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn write_text(&self, name: &str, content: &str) -> io::Result<()> {
        fs::write(self.dir.join(format!("{name}.txt")), content)
    }

    /// Writes a JSON artifact `name.json` from any serialisable value.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and file-write failures.
    pub fn write_json<T: serde::Serialize>(&self, name: &str, value: &T) -> io::Result<()> {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(self.dir.join(format!("{name}.json")), json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "divrel-report-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_all_renderings() {
        let root = tmp_root();
        let sink = ArtifactSink::new(&root, "E7").unwrap();
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        sink.write_table("t", &t).unwrap();
        assert!(sink.dir().join("t.md").exists());
        assert!(sink.dir().join("t.csv").exists());
        assert!(sink.dir().join("t.json").exists());
        let csv = fs::read_to_string(sink.dir().join("t.csv")).unwrap();
        assert_eq!(csv, "a\n1\n");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn writes_text_and_json() {
        let root = tmp_root();
        let sink = ArtifactSink::new(&root, "E1").unwrap();
        sink.write_text("note", "hello").unwrap();
        assert_eq!(
            fs::read_to_string(sink.dir().join("note.txt")).unwrap(),
            "hello"
        );
        sink.write_json("vals", &vec![1, 2, 3]).unwrap();
        let v: Vec<i32> =
            serde_json::from_str(&fs::read_to_string(sink.dir().join("vals.json")).unwrap())
                .unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reuses_existing_directory() {
        let root = tmp_root();
        let a = ArtifactSink::new(&root, "X").unwrap();
        let b = ArtifactSink::new(&root, "X").unwrap();
        assert_eq!(a.dir(), b.dir());
        fs::remove_dir_all(&root).unwrap();
    }
}
