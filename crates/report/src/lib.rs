//! # divrel-report
//!
//! Result tables and serialisation for the `divrel` experiment harness.
//!
//! Every experiment binary in `divrel-bench` regenerates one of the
//! paper's tables or figures and must report it three ways: pretty
//! markdown on stdout (for EXPERIMENTS.md), CSV (for plotting), and JSON
//! (for machine comparison against the paper's values). This crate is that
//! plumbing:
//!
//! * [`table::Table`] — a typed column/row table with alignment-aware
//!   markdown and CSV rendering;
//! * [`fmt`] — numeric formatting helpers (significant figures,
//!   scientific notation) shared by all experiments;
//! * [`artifacts::ArtifactSink`] — the `results/` directory layout, one
//!   subdirectory per experiment id.
//!
//! ```
//! use divrel_report::table::Table;
//!
//! let mut t = Table::new(["p_max", "beta factor"]);
//! t.row(["0.5", "0.866"]);
//! t.row(["0.1", "0.332"]);
//! let md = t.to_markdown();
//! assert!(md.contains("| p_max | beta factor |"));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifacts;
pub mod fmt;
pub mod scenario;
pub mod table;

pub use artifacts::ArtifactSink;
pub use scenario::ScenarioCard;
pub use table::Table;
