//! The bitset sampling fast path: draws whole fault sets with a
//! handful of `u64` RNG draws instead of one `f64` draw per potential
//! fault.
//!
//! # Bit-sliced Bernoulli sampling
//!
//! `u < p` compares a uniform `u` against `p` one binary digit at a
//! time: at the first bit position where they differ, the comparison is
//! decided. Running that comparison for 64 faults *in parallel* takes
//! one random word per bit-plane: with `Pℓ` the word holding the ℓ-th
//! fraction bit of every fault's `p`, and `R` a fresh random word,
//!
//! * `undecided & !R & Pℓ` — uniform bit 0, p bit 1 → `u < p`: fault
//!   present, decided;
//! * `undecided & R & !Pℓ` — uniform bit 1, p bit 0 → `u > p`: fault
//!   absent, decided.
//!
//! Each plane decides every still-undecided fault with probability ½,
//! so a 64-fault word finishes after ~`log₂ 64 + 1.3 ≈ 7` draws in
//! expectation. The plane depth is capped at [`DEPTH`]; the
//! astronomically rare ties left after that are finished with exact
//! per-fault draws against the remaining fraction tail, so every
//! marginal is exactly `p` (to the same fp quantisation as the
//! reference `gen::<f64>() < p`).
//!
//! For 1-out-of-2 pair sampling with ≤ 32 faults per word, the two
//! versions' bits share each random word ([`BitSampler::sample_pair_into`]),
//! halving the draw count again.
//!
//! The §6.1 correlated mixtures of
//! [`FaultIntroduction`](crate::process::FaultIntroduction) keep their
//! exact marginal-preserving semantics:
//!
//! * **CommonCause** — the comonotone branch's fault set is a function
//!   of a single uniform `u`: `{i : p_i > u}`, always a prefix of the
//!   faults sorted by descending `p`. The prefixes are precomputed as
//!   bitmasks, so the branch costs one draw, one binary search and one
//!   word copy.
//! * **Antithetic** — pairwise antithetic uniforms, drawn exactly as
//!   the reference sampler does.
//!
//! Every path writes into a caller-supplied [`FaultSet`], so the hot
//! Monte-Carlo loops allocate nothing per sample.

use crate::error::DevSimError;
use crate::process::FaultIntroduction;
use divrel_demand::fault_set::{words_for, FaultSet, WORD_BITS};
use divrel_model::FaultModel;
use rand::Rng;

/// Bit-plane depth before the per-fault tail fallback. A tie survives
/// one plane with probability ½, so the fallback fires with probability
/// `≈ bits · 2⁻⁴⁰` per sampled word.
const DEPTH: usize = 40;

/// Bit-plane tables for one 64-bit lane of independent Bernoulli draws.
#[derive(Debug, Clone)]
struct WordPlan {
    /// Lane bits actually in use.
    mask: u64,
    /// Faults with `p = 1` (always present).
    always: u64,
    /// Faults with `p = 0` (never present; skipped entirely).
    never: u64,
    /// Bits whose comparison tail after [`DEPTH`] planes is exactly
    /// zero: a tie there resolves to "absent" with no extra draw.
    dead: u64,
    /// `planes[ℓ]` holds the ℓ-th binary fraction digit of each `p`.
    planes: Vec<u64>,
    /// Conditional tail probability per lane bit after [`DEPTH`] tied
    /// planes (exact continuation of the comparison).
    tail_p: Vec<f64>,
}

impl WordPlan {
    /// Builds the plan for the probabilities of one lane.
    fn new(ps: &[f64]) -> Self {
        assert!(ps.len() <= WORD_BITS);
        let mut mask = 0u64;
        let mut always = 0u64;
        let mut never = 0u64;
        let mut planes = vec![0u64; DEPTH];
        let mut tail_p = vec![0.0f64; ps.len()];
        for (bit, &p) in ps.iter().enumerate() {
            mask |= 1u64 << bit;
            if p >= 1.0 {
                always |= 1u64 << bit;
                continue;
            }
            if p <= 0.0 {
                never |= 1u64 << bit;
                continue;
            }
            // Exact binary expansion: doubling and subtracting are
            // exact in IEEE754 for values in [0, 1).
            let mut frac = p.max(0.0);
            for plane in planes.iter_mut() {
                frac *= 2.0;
                if frac >= 1.0 {
                    *plane |= 1u64 << bit;
                    frac -= 1.0;
                }
            }
            tail_p[bit] = frac;
        }
        // Drop all-zero trailing planes (p's with short expansions).
        while planes.last() == Some(&0) && planes.len() > 1 {
            let all_zero_tail = tail_p.iter().all(|&t| t == 0.0);
            if !all_zero_tail {
                break;
            }
            planes.pop();
        }
        let mut dead = 0u64;
        for (bit, &t) in tail_p.iter().enumerate() {
            if t == 0.0 && always >> bit & 1 == 0 {
                dead |= 1u64 << bit;
            }
        }
        WordPlan {
            mask,
            always,
            never,
            dead,
            planes,
            tail_p,
        }
    }

    /// Draws one word of Bernoulli bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut result = self.always;
        let mut undecided = self.mask & !self.always & !self.never;
        for plane in &self.planes {
            if undecided == 0 {
                return result;
            }
            let r = rng.next_u64();
            let lt = undecided & !r & plane;
            let gt = undecided & r & !plane;
            result |= lt;
            undecided &= !(lt | gt);
        }
        // A tie with a zero remainder can only resolve to u > p.
        undecided &= !self.dead;
        // Ties after DEPTH planes: finish exactly, per fault.
        while undecided != 0 {
            let b = undecided.trailing_zeros() as usize;
            if rng.gen::<f64>() < self.tail_p[b] {
                result |= 1u64 << b;
            }
            undecided &= undecided - 1;
        }
        result
    }
}

/// Precomputed tables for sampling fault sets of one model under one
/// introduction model.
#[derive(Debug, Clone)]
pub struct BitSampler {
    n: usize,
    intro: FaultIntroduction,
    /// One plan per 64-fault word of a version.
    word_plans: Vec<WordPlan>,
    /// When the final word holds ≤ 32 faults: a fused plan over both
    /// pair members' tail bits (A in the low half, B shifted up).
    fused_tail: Option<WordPlan>,
    /// Bits of the final (possibly partial) word.
    tail_bits: usize,
    /// Full probability vector (used by the antithetic branch).
    ps: Vec<f64>,
    /// CommonCause only: probabilities sorted descending…
    sorted_p: Vec<f64>,
    /// …and the matching prefix bitmasks, flattened `(n + 1) × wps`.
    prefix_masks: Vec<u64>,
    wps: usize,
}

impl BitSampler {
    /// Builds the tables for `model` under `intro`.
    pub fn new(model: &FaultModel, intro: FaultIntroduction) -> Self {
        let ps: Vec<f64> = model.p_values().collect();
        let n = ps.len();
        let wps = words_for(n);
        let mut word_plans = Vec::with_capacity(wps);
        for chunk in ps.chunks(WORD_BITS) {
            word_plans.push(WordPlan::new(chunk));
        }
        let tail_bits = if n.is_multiple_of(WORD_BITS) && n > 0 {
            WORD_BITS
        } else {
            n % WORD_BITS
        };
        let fused_tail = if tail_bits > 0 && tail_bits * 2 <= WORD_BITS {
            let tail_ps = &ps[n - tail_bits..];
            let mut both = tail_ps.to_vec();
            both.extend_from_slice(tail_ps);
            Some(WordPlan::new(&both))
        } else {
            None
        };
        let (sorted_p, prefix_masks) = if matches!(intro, FaultIntroduction::CommonCause { .. }) {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| ps[b].total_cmp(&ps[a]));
            let mut masks = vec![0u64; (n + 1) * wps];
            let mut acc = FaultSet::new(n);
            for (k, &f) in order.iter().enumerate() {
                acc.insert(f);
                masks[(k + 1) * wps..(k + 2) * wps].copy_from_slice(acc.words());
            }
            (order.into_iter().map(|f| ps[f]).collect(), masks)
        } else {
            (Vec::new(), Vec::new())
        };
        BitSampler {
            n,
            intro,
            word_plans,
            fused_tail,
            tail_bits,
            ps,
            sorted_p,
            prefix_masks,
            wps,
        }
    }

    /// The fault-universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Draws one version's fault set into `out` (which must have the
    /// model's universe size). Distribution-identical to
    /// [`FaultIntroduction::sample_version`], but consumes far fewer
    /// RNG draws (≈ `log₂ 64` per 64-fault word).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        debug_assert_eq!(out.universe(), self.n, "scratch set universe mismatch");
        match self.intro {
            FaultIntroduction::Independent => self.sample_independent(rng, out),
            FaultIntroduction::CommonCause { lambda } => {
                if rng.gen::<f64>() < lambda {
                    self.sample_comonotone(rng, out);
                } else {
                    self.sample_independent(rng, out);
                }
            }
            FaultIntroduction::Antithetic { lambda } => {
                if rng.gen::<f64>() < lambda {
                    self.sample_antithetic(rng, out);
                } else {
                    self.sample_independent(rng, out);
                }
            }
        }
    }

    /// Draws a 1-out-of-2 pair (two independent versions) into `a` and
    /// `b`. Under the independent introduction model with a ≤ 32-fault
    /// tail word, both versions' tail bits share each random word.
    pub fn sample_pair_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &mut FaultSet,
        b: &mut FaultSet,
    ) {
        if !matches!(self.intro, FaultIntroduction::Independent) {
            self.sample_into(rng, a);
            self.sample_into(rng, b);
            return;
        }
        debug_assert_eq!(a.universe(), self.n);
        debug_assert_eq!(b.universe(), self.n);
        match &self.fused_tail {
            Some(fused) => {
                let full = self.word_plans.len() - 1;
                {
                    let wa = a.words_mut();
                    for (w, plan) in self.word_plans[..full].iter().enumerate() {
                        wa[w] = plan.sample(rng);
                    }
                }
                {
                    let wb = b.words_mut();
                    for (w, plan) in self.word_plans[..full].iter().enumerate() {
                        wb[w] = plan.sample(rng);
                    }
                }
                let both = fused.sample(rng);
                let lo_mask = (1u64 << self.tail_bits) - 1;
                a.words_mut()[full] = both & lo_mask;
                b.words_mut()[full] = (both >> self.tail_bits) & lo_mask;
            }
            None => {
                self.sample_independent(rng, a);
                self.sample_independent(rng, b);
            }
        }
    }

    fn sample_independent<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        let words = out.words_mut();
        for (w, plan) in self.word_plans.iter().enumerate() {
            words[w] = plan.sample(rng);
        }
    }

    fn sample_comonotone<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        let u: f64 = rng.gen();
        // Present set = {i : p_i > u} = a prefix of the descending sort.
        let k = self.sorted_p.partition_point(|&p| p > u);
        out.words_mut()
            .copy_from_slice(&self.prefix_masks[k * self.wps..(k + 1) * self.wps]);
    }

    fn sample_antithetic<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        out.clear();
        let ps = &self.ps;
        let mut i = 0;
        while i < ps.len() {
            let u: f64 = rng.gen();
            if u < ps[i] {
                out.insert(i);
            }
            if i + 1 < ps.len() && (1.0 - u) < ps[i + 1] {
                out.insert(i + 1);
            }
            i += 2;
        }
    }
}

/// Importance sampling over one ≤ 64-bit lane of independent Bernoulli
/// draws: samples from **tilted** inclusion probabilities `p'ᵢ ≥ pᵢ`
/// through the same bit-plane machinery as [`BitSampler`], and returns
/// the **exact** log likelihood ratio of any sampled word against the
/// original probabilities — so a rare-event estimator reweighting by
/// [`Self::log_weight`] is unbiased by construction.
///
/// The per-word ratio factorises over bits:
///
/// ```text
/// log w(word) = Σᵢ log( [pᵢ/p'ᵢ]^bᵢ · [(1−pᵢ)/(1−p'ᵢ)]^(1−bᵢ) )
///             = total_absent + Σ_{set bits} δᵢ
/// ```
///
/// with `total_absent = Σᵢ log((1−pᵢ)/(1−p'ᵢ))` precomputed and
/// `δᵢ = log(pᵢ/p'ᵢ) − log((1−pᵢ)/(1−p'ᵢ))`, so evaluating a weight is
/// one popcount-style loop over set bits — no per-sample logs.
///
/// Degenerate bits never distort the ratio: `p = 0` stays untilted
/// (the bit cannot appear, so its factor is 1) and `p = 1` stays
/// always-present (factor 1 again).
#[derive(Debug, Clone)]
pub struct BiasedBitSampler {
    plan: WordPlan,
    tilted: Vec<f64>,
    /// `δᵢ` per lane bit (0 for untilted/degenerate bits).
    delta: Vec<f64>,
    /// `Σᵢ log((1−pᵢ)/(1−p'ᵢ))` — the all-absent log ratio.
    total_absent: f64,
}

impl BiasedBitSampler {
    /// Exponential tilt: `p'ᵢ = pᵢ·eᶿ / (1 − pᵢ + pᵢ·eᶿ)` — the
    /// natural exponential family through each Bernoulli, so `θ = 0`
    /// is the identity (every weight exactly 1) and growing `θ` pushes
    /// fault counts up smoothly without ever leaving `(0, 1)`.
    ///
    /// # Errors
    ///
    /// [`DevSimError::InvalidConfig`] for more than 64 probabilities,
    /// probabilities outside `[0, 1]`, or a non-finite `theta`.
    pub fn exponential(ps: &[f64], theta: f64) -> Result<Self, DevSimError> {
        if !theta.is_finite() {
            return Err(DevSimError::InvalidConfig(format!(
                "tilt theta must be finite, got {theta}"
            )));
        }
        let e = theta.exp();
        let tilted: Vec<f64> = ps
            .iter()
            .map(|&p| {
                // θ = 0 is the exact identity (no rounding detour
                // through the tilt formula), so every weight is 1.0.
                if theta == 0.0 || p <= 0.0 || p >= 1.0 {
                    p
                } else {
                    p * e / (1.0 - p + p * e)
                }
            })
            .collect();
        Self::with_tilted(ps, tilted)
    }

    /// Multiplier proposal: `p'ᵢ = min(pᵢ·factor, ½)` (probabilities
    /// already ≥ ½ are left untouched) — the blunt instrument for
    /// quick exploratory runs.
    ///
    /// # Errors
    ///
    /// [`DevSimError::InvalidConfig`] for more than 64 probabilities,
    /// probabilities outside `[0, 1]`, or `factor < 1`/non-finite.
    pub fn multiplier(ps: &[f64], factor: f64) -> Result<Self, DevSimError> {
        if !factor.is_finite() || factor < 1.0 {
            return Err(DevSimError::InvalidConfig(format!(
                "tilt multiplier must be finite and >= 1, got {factor}"
            )));
        }
        let tilted: Vec<f64> = ps
            .iter()
            .map(|&p| {
                if p <= 0.0 || p >= 0.5 {
                    p
                } else {
                    (p * factor).min(0.5)
                }
            })
            .collect();
        Self::with_tilted(ps, tilted)
    }

    fn with_tilted(ps: &[f64], tilted: Vec<f64>) -> Result<Self, DevSimError> {
        if ps.len() > WORD_BITS {
            return Err(DevSimError::InvalidConfig(format!(
                "biased lane holds at most {WORD_BITS} bits, got {}",
                ps.len()
            )));
        }
        for &p in ps {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(DevSimError::InvalidConfig(format!(
                    "bit probability {p} outside [0, 1]"
                )));
            }
        }
        let mut delta = vec![0.0f64; ps.len()];
        let mut total_absent = 0.0f64;
        for (b, (&p, &t)) in ps.iter().zip(&tilted).enumerate() {
            if p <= 0.0 || p >= 1.0 || t == p {
                continue;
            }
            let absent = (1.0 - p).ln() - (1.0 - t).ln();
            delta[b] = (p.ln() - t.ln()) - absent;
            total_absent += absent;
        }
        Ok(BiasedBitSampler {
            plan: WordPlan::new(&tilted),
            tilted,
            delta,
            total_absent,
        })
    }

    /// The tilted probabilities the sampler actually draws from.
    pub fn tilted_ps(&self) -> &[f64] {
        &self.tilted
    }

    /// Number of lane bits.
    pub fn len(&self) -> usize {
        self.tilted.len()
    }

    /// True for an empty lane.
    pub fn is_empty(&self) -> bool {
        self.tilted.is_empty()
    }

    /// Draws one word from the **tilted** probabilities.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.plan.sample(rng)
    }

    /// Exact log likelihood ratio `log(P_original(word)/P_tilted(word))`
    /// of a sampled word. Always finite for words the tilted sampler
    /// can produce.
    #[inline]
    pub fn log_weight(&self, word: u64) -> f64 {
        let mut lw = self.total_absent;
        let mut set = word & self.plan.mask;
        while set != 0 {
            let b = set.trailing_zeros() as usize;
            lw += self.delta[b];
            set &= set - 1;
        }
        lw
    }
}

/// Conditional sampling of one ≤ 64-bit lane of independent Bernoulli
/// bits **given the number of set bits** — the per-stratum draw of a
/// fault-count-stratified estimator.
///
/// Construction runs the Poisson-binomial suffix recursion
/// `R[i][j] = P(exactly j of bits i.. present)`, so `R[0]` is the
/// exact count PMF and the sequential conditional inclusion
/// probability of bit `i` given `j` remaining successes is
/// `pᵢ·R[i+1][j−1] / R[i][j]` — each conditional word costs `n`
/// uniforms and no rejection.
#[derive(Debug, Clone)]
pub struct CountConditionedSampler {
    ps: Vec<f64>,
    /// `suffix[i][j] = P(exactly j of bits i.. present)`,
    /// `i ∈ 0..=n`, `j ∈ 0..=n−i`.
    suffix: Vec<Vec<f64>>,
}

impl CountConditionedSampler {
    /// Builds the suffix tables for one lane of probabilities.
    ///
    /// # Errors
    ///
    /// [`DevSimError::InvalidConfig`] for more than 64 probabilities
    /// or probabilities outside `[0, 1]`.
    pub fn new(ps: &[f64]) -> Result<Self, DevSimError> {
        if ps.len() > WORD_BITS {
            return Err(DevSimError::InvalidConfig(format!(
                "count-conditioned lane holds at most {WORD_BITS} bits, got {}",
                ps.len()
            )));
        }
        for &p in ps {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(DevSimError::InvalidConfig(format!(
                    "bit probability {p} outside [0, 1]"
                )));
            }
        }
        let n = ps.len();
        let mut suffix = vec![Vec::new(); n + 1];
        suffix[n] = vec![1.0];
        for i in (0..n).rev() {
            let p = ps[i];
            let next = &suffix[i + 1];
            let mut row = vec![0.0f64; next.len() + 1];
            for (j, slot) in row.iter_mut().enumerate() {
                let stay = if j < next.len() {
                    (1.0 - p) * next[j]
                } else {
                    0.0
                };
                let take = if j > 0 { p * next[j - 1] } else { 0.0 };
                *slot = stay + take;
            }
            suffix[i] = row;
        }
        Ok(CountConditionedSampler {
            ps: ps.to_vec(),
            suffix,
        })
    }

    /// Number of lane bits.
    pub fn len(&self) -> usize {
        self.ps.len()
    }

    /// True for an empty lane.
    pub fn is_empty(&self) -> bool {
        self.ps.is_empty()
    }

    /// The exact count PMF: entry `j` is `P(N = j)` (the
    /// Poisson-binomial law of the lane).
    pub fn count_pmf(&self) -> &[f64] {
        &self.suffix[0]
    }

    /// Draws one word conditional on **exactly** `j` set bits.
    ///
    /// # Panics
    ///
    /// If `j` exceeds the lane size or `P(N = j) = 0` (callers select
    /// strata from [`Self::count_pmf`], so a zero-probability stratum
    /// is a logic error, not a data error).
    pub fn sample_exact<R: Rng + ?Sized>(&self, rng: &mut R, j: usize) -> u64 {
        let n = self.ps.len();
        assert!(
            j <= n && self.suffix[0][j] > 0.0,
            "stratum N = {j} has zero probability"
        );
        let mut word = 0u64;
        let mut remaining = j;
        for i in 0..n {
            if remaining == 0 {
                break;
            }
            // All of the rest must be present, or the absent branch has
            // zero conditional mass: include without burning a draw.
            let rest = n - i;
            let absent_mass = self.suffix[i + 1].get(remaining).copied().unwrap_or(0.0);
            if remaining == rest || absent_mass == 0.0 {
                word |= 1u64 << i;
                remaining -= 1;
                continue;
            }
            let cur = self.suffix[i][remaining];
            let take = self.ps[i] * self.suffix[i + 1][remaining - 1] / cur;
            if rng.gen::<f64>() < take {
                word |= 1u64 << i;
                remaining -= 1;
            }
        }
        word
    }

    /// Draws one word conditional on **at least** `j` set bits: the
    /// exact count is first drawn from the renormalised tail of the
    /// count PMF (inverse CDF), then the word conditional on that
    /// count. Returns the word.
    ///
    /// # Panics
    ///
    /// If the tail `P(N ≥ j)` has zero probability.
    pub fn sample_at_least<R: Rng + ?Sized>(&self, rng: &mut R, j: usize) -> u64 {
        let pmf = self.count_pmf();
        let tail: f64 = pmf[j.min(pmf.len())..].iter().sum();
        assert!(tail > 0.0, "tail stratum N >= {j} has zero probability");
        let mut u = rng.gen::<f64>() * tail;
        let mut count = j;
        for (t, &m) in pmf.iter().enumerate().skip(j) {
            count = t;
            if u < m && m > 0.0 {
                break;
            }
            u -= m;
        }
        // fp drift past the end lands on the largest positive-mass count.
        while pmf[count] == 0.0 && count > j {
            count -= 1;
        }
        self.sample_exact(rng, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(ps: &[f64]) -> FaultModel {
        let qs = vec![0.01; ps.len()];
        FaultModel::from_params(ps, &qs).unwrap()
    }

    fn rates(ps: &[f64], intro: FaultIntroduction, n: usize, seed: u64) -> Vec<f64> {
        let m = model(ps);
        let s = BitSampler::new(&m, intro);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = FaultSet::new(m.len());
        let mut counts = vec![0usize; m.len()];
        for _ in 0..n {
            s.sample_into(&mut rng, &mut out);
            for i in out.iter_ones() {
                counts[i] += 1;
            }
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn independent_marginals_match() {
        let ps = [0.0, 0.3, 0.05, 1.0, 0.6, 0.011, 0.3];
        let r = rates(&ps, FaultIntroduction::Independent, 60_000, 1);
        for (i, (&got, &want)) in r.iter().zip(&ps).enumerate() {
            assert!(
                (got - want).abs() < 0.01,
                "fault {i}: rate {got} vs p {want}"
            );
        }
    }

    #[test]
    fn independent_marginals_match_across_words() {
        // > 64 faults so multiple word plans are exercised.
        let ps: Vec<f64> = (0..150)
            .map(|i| 0.02 + 0.3 * ((i % 13) as f64 / 12.0))
            .collect();
        let r = rates(&ps, FaultIntroduction::Independent, 40_000, 2);
        for (i, (&got, &want)) in r.iter().zip(&ps).enumerate() {
            assert!(
                (got - want).abs() < 0.015,
                "fault {i}: rate {got} vs p {want}"
            );
        }
    }

    #[test]
    fn independent_joint_is_product() {
        // Pairwise independence within a word: P(i and j) ≈ p_i p_j.
        let ps = [0.4, 0.25, 0.1];
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::Independent);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = FaultSet::new(3);
        let n = 80_000;
        let mut both01 = 0usize;
        for _ in 0..n {
            s.sample_into(&mut rng, &mut out);
            if out.contains(0) && out.contains(1) {
                both01 += 1;
            }
        }
        assert!((both01 as f64 / n as f64 - 0.1).abs() < 0.006);
    }

    #[test]
    fn fused_pair_members_are_independent() {
        // The fused tail shares RNG words between A and B; the decided
        // bits must still be independent across members.
        let ps = [0.5, 0.3];
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::Independent);
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = FaultSet::new(2);
        let mut b = FaultSet::new(2);
        let n = 120_000;
        let (mut ca, mut cb, mut cab) = (0usize, 0usize, 0usize);
        for _ in 0..n {
            s.sample_pair_into(&mut rng, &mut a, &mut b);
            let pa = a.contains(0);
            let pb = b.contains(0);
            ca += pa as usize;
            cb += pb as usize;
            cab += (pa && pb) as usize;
        }
        let (ra, rb, rab) = (
            ca as f64 / n as f64,
            cb as f64 / n as f64,
            cab as f64 / n as f64,
        );
        assert!((ra - 0.5).abs() < 0.006, "A marginal {ra}");
        assert!((rb - 0.5).abs() < 0.006, "B marginal {rb}");
        assert!((rab - 0.25).abs() < 0.006, "joint {rab} vs 0.25");
    }

    #[test]
    fn pair_sampling_matches_single_sampling_distribution() {
        // sample_pair_into and two sample_into calls draw from the same
        // distribution (different stream consumption).
        let ps: Vec<f64> = (0..40)
            .map(|i| 0.05 + 0.2 * ((i % 7) as f64 / 6.0))
            .collect();
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::Independent);
        let n = 40_000;
        let mut a = FaultSet::new(40);
        let mut b = FaultSet::new(40);
        let mut rng = StdRng::seed_from_u64(5);
        let mut common_paired = 0usize;
        for _ in 0..n {
            s.sample_pair_into(&mut rng, &mut a, &mut b);
            common_paired += a.intersect_count(&b);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut common_single = 0usize;
        for _ in 0..n {
            s.sample_into(&mut rng, &mut a);
            s.sample_into(&mut rng, &mut b);
            common_single += a.intersect_count(&b);
        }
        let expect: f64 = ps.iter().map(|p| p * p).sum();
        let got_p = common_paired as f64 / n as f64;
        let got_s = common_single as f64 / n as f64;
        assert!((got_p - expect).abs() < 0.05, "paired {got_p} vs {expect}");
        assert!((got_s - expect).abs() < 0.05, "single {got_s} vs {expect}");
    }

    #[test]
    fn comonotone_prefix_structure() {
        let ps = [0.8, 0.2, 0.5];
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::CommonCause { lambda: 1.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = FaultSet::new(3);
        for _ in 0..5_000 {
            s.sample_into(&mut rng, &mut out);
            // Smaller-p present implies larger-p present (nested sets).
            if out.contains(1) {
                assert!(out.contains(2) && out.contains(0));
            }
            if out.contains(2) {
                assert!(out.contains(0));
            }
        }
        let r = rates(
            &ps,
            FaultIntroduction::CommonCause { lambda: 1.0 },
            60_000,
            5,
        );
        for (got, want) in r.iter().zip(&ps) {
            assert!((got - want).abs() < 0.01);
        }
    }

    #[test]
    fn antithetic_matches_reference_stream() {
        // The antithetic branch consumes uniforms exactly like the
        // reference sampler, so λ = 1 must reproduce its fault sets
        // from the same seed.
        let ps = [0.3, 0.3, 0.1, 0.9, 0.5];
        let m = model(&ps);
        let intro = FaultIntroduction::Antithetic { lambda: 1.0 };
        let s = BitSampler::new(&m, intro);
        let mut r1 = StdRng::seed_from_u64(6);
        let mut r2 = StdRng::seed_from_u64(6);
        let mut out = FaultSet::new(5);
        for _ in 0..2_000 {
            let reference = intro.sample_version(&m, &mut r1);
            s.sample_into(&mut r2, &mut out);
            assert_eq!(out.to_bools(), reference);
        }
    }

    #[test]
    fn mixture_marginals_preserved() {
        let ps = [0.3, 0.3, 0.1, 0.1];
        for intro in [
            FaultIntroduction::CommonCause { lambda: 0.7 },
            FaultIntroduction::Antithetic { lambda: 0.7 },
        ] {
            let r = rates(&ps, intro, 60_000, 7);
            for (i, (&got, &want)) in r.iter().zip(&ps).enumerate() {
                assert!(
                    (got - want).abs() < 0.01,
                    "{intro:?} fault {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn dyadic_probabilities_are_exact() {
        // p = 0.5 and p = 0.25 have 1-2 plane expansions and zero tail;
        // the sampler must hit them exactly (modulo MC error) and the
        // plan must not confuse short expansions with p = 0.
        let ps = [0.5, 0.25, 0.0, 1.0];
        let r = rates(&ps, FaultIntroduction::Independent, 60_000, 8);
        assert!((r[0] - 0.5).abs() < 0.01);
        assert!((r[1] - 0.25).abs() < 0.01);
        assert_eq!(r[2], 0.0);
        assert_eq!(r[3], 1.0);
    }

    /// Direct evaluation of `log P_q(word) − log P_{q'}(word)` from the
    /// raw probabilities, for cross-checking the table form.
    fn reference_log_weight(ps: &[f64], tilted: &[f64], word: u64) -> f64 {
        let mut lw = 0.0;
        for (b, (&p, &t)) in ps.iter().zip(tilted).enumerate() {
            if p == t {
                continue;
            }
            if word >> b & 1 == 1 {
                lw += p.ln() - t.ln();
            } else {
                lw += (1.0 - p).ln() - (1.0 - t).ln();
            }
        }
        lw
    }

    #[test]
    fn biased_sampler_marginals_match_the_tilted_probabilities() {
        let ps = [1e-3, 0.02, 0.3, 0.0, 1.0];
        let s = BiasedBitSampler::exponential(&ps, 3.0).unwrap();
        let tilted = s.tilted_ps().to_vec();
        // Degenerate bits stay degenerate; interior bits move up.
        assert_eq!(tilted[3], 0.0);
        assert_eq!(tilted[4], 1.0);
        assert!(tilted[0] > ps[0] && tilted[1] > ps[1] && tilted[2] > ps[2]);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 60_000;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            let w = s.sample(&mut rng);
            for (b, c) in counts.iter_mut().enumerate() {
                *c += w >> b & 1;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            assert!(
                (rate - tilted[b]).abs() < 0.01,
                "bit {b}: rate {rate} vs tilted {}",
                tilted[b]
            );
        }
    }

    #[test]
    fn biased_sampler_log_weight_is_exact_per_word() {
        let ps = [1e-4, 0.03, 0.5, 0.0, 1.0, 0.2];
        for s in [
            BiasedBitSampler::exponential(&ps, 5.0).unwrap(),
            BiasedBitSampler::multiplier(&ps, 50.0).unwrap(),
        ] {
            let tilted = s.tilted_ps().to_vec();
            // Enumerate every word the tilted sampler can produce: bit 3
            // (p = 0) always absent, bit 4 (p = 1) always present.
            for raw in 0u64..64 {
                let word = (raw & !(1 << 3)) | (1 << 4);
                let expect = reference_log_weight(&ps, &tilted, word);
                let got = s.log_weight(word);
                assert!(
                    (got - expect).abs() < 1e-12,
                    "word {word:#b}: {got} vs {expect}"
                );
                assert!(got.is_finite());
            }
        }
    }

    #[test]
    fn zero_tilt_is_the_identity_with_unit_weights() {
        let ps = [0.01, 0.3, 0.9];
        let s = BiasedBitSampler::exponential(&ps, 0.0).unwrap();
        assert_eq!(s.tilted_ps(), &ps);
        for word in 0u64..8 {
            assert_eq!(s.log_weight(word), 0.0);
        }
        let m = BiasedBitSampler::multiplier(&ps, 1.0).unwrap();
        assert_eq!(m.tilted_ps(), &ps);
    }

    #[test]
    fn biased_sampler_rejects_bad_parameters() {
        assert!(BiasedBitSampler::exponential(&[0.5], f64::NAN).is_err());
        assert!(BiasedBitSampler::exponential(&[1.5], 1.0).is_err());
        assert!(BiasedBitSampler::multiplier(&[0.5], 0.5).is_err());
        let too_many = vec![0.1; 65];
        assert!(BiasedBitSampler::exponential(&too_many, 1.0).is_err());
    }

    #[test]
    fn count_conditioned_pmf_matches_poisson_binomial() {
        let ps = [0.02, 0.4, 0.11, 0.0, 0.93, 0.25];
        let s = CountConditionedSampler::new(&ps).unwrap();
        let pb = divrel_numerics::PoissonBinomial::new(&ps).unwrap();
        assert_eq!(s.count_pmf().len(), ps.len() + 1);
        for (j, &m) in s.count_pmf().iter().enumerate() {
            assert!((m - pb.pmf(j)).abs() < 1e-14, "j = {j}");
        }
    }

    #[test]
    fn sample_exact_has_the_right_count_and_conditional_marginals() {
        let ps = [0.1, 0.5, 0.25, 0.8];
        let s = CountConditionedSampler::new(&ps).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 60_000;
        for j in 0..=4usize {
            if s.count_pmf()[j] == 0.0 {
                continue;
            }
            let mut counts = [0u64; 4];
            for _ in 0..n {
                let w = s.sample_exact(&mut rng, j);
                assert_eq!(w.count_ones() as usize, j, "stratum {j}");
                for (b, c) in counts.iter_mut().enumerate() {
                    *c += w >> b & 1;
                }
            }
            // Exact conditional marginal: P(bit b | N = j) =
            // p_b · P(N_{-b} = j−1) / P(N = j).
            for (b, &c) in counts.iter().enumerate() {
                let mut rest: Vec<f64> = ps.to_vec();
                rest.remove(b);
                let pb_rest = divrel_numerics::PoissonBinomial::new(&rest).unwrap();
                let expect = if j == 0 {
                    0.0
                } else {
                    ps[b] * pb_rest.pmf(j - 1) / s.count_pmf()[j]
                };
                let rate = c as f64 / n as f64;
                assert!(
                    (rate - expect).abs() < 0.012,
                    "stratum {j} bit {b}: {rate} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn sample_at_least_draws_the_renormalised_tail() {
        let ps = [0.3, 0.3, 0.3, 0.3];
        let s = CountConditionedSampler::new(&ps).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let n = 80_000;
        let j = 2usize;
        let mut by_count = [0u64; 5];
        for _ in 0..n {
            let w = s.sample_at_least(&mut rng, j);
            let c = w.count_ones() as usize;
            assert!(c >= j);
            by_count[c] += 1;
        }
        let tail: f64 = s.count_pmf()[j..].iter().sum();
        for (c, &hits) in by_count.iter().enumerate().skip(j) {
            let expect = s.count_pmf()[c] / tail;
            let rate = hits as f64 / n as f64;
            assert!(
                (rate - expect).abs() < 0.01,
                "count {c}: {rate} vs {expect}"
            );
        }
    }

    #[test]
    fn degenerate_bits_are_respected_in_conditional_draws() {
        // p = 1 bits are in every word; p = 0 bits in none; the count
        // stratum includes the forced bit.
        let ps = [1.0, 0.0, 0.5];
        let s = CountConditionedSampler::new(&ps).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        assert_eq!(s.count_pmf()[0], 0.0);
        for _ in 0..2_000 {
            let w = s.sample_exact(&mut rng, 1);
            assert_eq!(w, 0b001);
            let w2 = s.sample_exact(&mut rng, 2);
            assert_eq!(w2, 0b101);
        }
    }
}
