//! The bitset sampling fast path: draws whole fault sets with a
//! handful of `u64` RNG draws instead of one `f64` draw per potential
//! fault.
//!
//! # Bit-sliced Bernoulli sampling
//!
//! `u < p` compares a uniform `u` against `p` one binary digit at a
//! time: at the first bit position where they differ, the comparison is
//! decided. Running that comparison for 64 faults *in parallel* takes
//! one random word per bit-plane: with `Pℓ` the word holding the ℓ-th
//! fraction bit of every fault's `p`, and `R` a fresh random word,
//!
//! * `undecided & !R & Pℓ` — uniform bit 0, p bit 1 → `u < p`: fault
//!   present, decided;
//! * `undecided & R & !Pℓ` — uniform bit 1, p bit 0 → `u > p`: fault
//!   absent, decided.
//!
//! Each plane decides every still-undecided fault with probability ½,
//! so a 64-fault word finishes after ~`log₂ 64 + 1.3 ≈ 7` draws in
//! expectation. The plane depth is capped at [`DEPTH`]; the
//! astronomically rare ties left after that are finished with exact
//! per-fault draws against the remaining fraction tail, so every
//! marginal is exactly `p` (to the same fp quantisation as the
//! reference `gen::<f64>() < p`).
//!
//! For 1-out-of-2 pair sampling with ≤ 32 faults per word, the two
//! versions' bits share each random word ([`BitSampler::sample_pair_into`]),
//! halving the draw count again.
//!
//! The §6.1 correlated mixtures of
//! [`FaultIntroduction`](crate::process::FaultIntroduction) keep their
//! exact marginal-preserving semantics:
//!
//! * **CommonCause** — the comonotone branch's fault set is a function
//!   of a single uniform `u`: `{i : p_i > u}`, always a prefix of the
//!   faults sorted by descending `p`. The prefixes are precomputed as
//!   bitmasks, so the branch costs one draw, one binary search and one
//!   word copy.
//! * **Antithetic** — pairwise antithetic uniforms, drawn exactly as
//!   the reference sampler does.
//!
//! Every path writes into a caller-supplied [`FaultSet`], so the hot
//! Monte-Carlo loops allocate nothing per sample.

use crate::process::FaultIntroduction;
use divrel_demand::fault_set::{words_for, FaultSet, WORD_BITS};
use divrel_model::FaultModel;
use rand::Rng;

/// Bit-plane depth before the per-fault tail fallback. A tie survives
/// one plane with probability ½, so the fallback fires with probability
/// `≈ bits · 2⁻⁴⁰` per sampled word.
const DEPTH: usize = 40;

/// Bit-plane tables for one 64-bit lane of independent Bernoulli draws.
#[derive(Debug, Clone)]
struct WordPlan {
    /// Lane bits actually in use.
    mask: u64,
    /// Faults with `p = 1` (always present).
    always: u64,
    /// Faults with `p = 0` (never present; skipped entirely).
    never: u64,
    /// Bits whose comparison tail after [`DEPTH`] planes is exactly
    /// zero: a tie there resolves to "absent" with no extra draw.
    dead: u64,
    /// `planes[ℓ]` holds the ℓ-th binary fraction digit of each `p`.
    planes: Vec<u64>,
    /// Conditional tail probability per lane bit after [`DEPTH`] tied
    /// planes (exact continuation of the comparison).
    tail_p: Vec<f64>,
}

impl WordPlan {
    /// Builds the plan for the probabilities of one lane.
    fn new(ps: &[f64]) -> Self {
        assert!(ps.len() <= WORD_BITS);
        let mut mask = 0u64;
        let mut always = 0u64;
        let mut never = 0u64;
        let mut planes = vec![0u64; DEPTH];
        let mut tail_p = vec![0.0f64; ps.len()];
        for (bit, &p) in ps.iter().enumerate() {
            mask |= 1u64 << bit;
            if p >= 1.0 {
                always |= 1u64 << bit;
                continue;
            }
            if p <= 0.0 {
                never |= 1u64 << bit;
                continue;
            }
            // Exact binary expansion: doubling and subtracting are
            // exact in IEEE754 for values in [0, 1).
            let mut frac = p.max(0.0);
            for plane in planes.iter_mut() {
                frac *= 2.0;
                if frac >= 1.0 {
                    *plane |= 1u64 << bit;
                    frac -= 1.0;
                }
            }
            tail_p[bit] = frac;
        }
        // Drop all-zero trailing planes (p's with short expansions).
        while planes.last() == Some(&0) && planes.len() > 1 {
            let all_zero_tail = tail_p.iter().all(|&t| t == 0.0);
            if !all_zero_tail {
                break;
            }
            planes.pop();
        }
        let mut dead = 0u64;
        for (bit, &t) in tail_p.iter().enumerate() {
            if t == 0.0 && always >> bit & 1 == 0 {
                dead |= 1u64 << bit;
            }
        }
        WordPlan {
            mask,
            always,
            never,
            dead,
            planes,
            tail_p,
        }
    }

    /// Draws one word of Bernoulli bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut result = self.always;
        let mut undecided = self.mask & !self.always & !self.never;
        for plane in &self.planes {
            if undecided == 0 {
                return result;
            }
            let r = rng.next_u64();
            let lt = undecided & !r & plane;
            let gt = undecided & r & !plane;
            result |= lt;
            undecided &= !(lt | gt);
        }
        // A tie with a zero remainder can only resolve to u > p.
        undecided &= !self.dead;
        // Ties after DEPTH planes: finish exactly, per fault.
        while undecided != 0 {
            let b = undecided.trailing_zeros() as usize;
            if rng.gen::<f64>() < self.tail_p[b] {
                result |= 1u64 << b;
            }
            undecided &= undecided - 1;
        }
        result
    }
}

/// Precomputed tables for sampling fault sets of one model under one
/// introduction model.
#[derive(Debug, Clone)]
pub struct BitSampler {
    n: usize,
    intro: FaultIntroduction,
    /// One plan per 64-fault word of a version.
    word_plans: Vec<WordPlan>,
    /// When the final word holds ≤ 32 faults: a fused plan over both
    /// pair members' tail bits (A in the low half, B shifted up).
    fused_tail: Option<WordPlan>,
    /// Bits of the final (possibly partial) word.
    tail_bits: usize,
    /// Full probability vector (used by the antithetic branch).
    ps: Vec<f64>,
    /// CommonCause only: probabilities sorted descending…
    sorted_p: Vec<f64>,
    /// …and the matching prefix bitmasks, flattened `(n + 1) × wps`.
    prefix_masks: Vec<u64>,
    wps: usize,
}

impl BitSampler {
    /// Builds the tables for `model` under `intro`.
    pub fn new(model: &FaultModel, intro: FaultIntroduction) -> Self {
        let ps: Vec<f64> = model.p_values().collect();
        let n = ps.len();
        let wps = words_for(n);
        let mut word_plans = Vec::with_capacity(wps);
        for chunk in ps.chunks(WORD_BITS) {
            word_plans.push(WordPlan::new(chunk));
        }
        let tail_bits = if n.is_multiple_of(WORD_BITS) && n > 0 {
            WORD_BITS
        } else {
            n % WORD_BITS
        };
        let fused_tail = if tail_bits > 0 && tail_bits * 2 <= WORD_BITS {
            let tail_ps = &ps[n - tail_bits..];
            let mut both = tail_ps.to_vec();
            both.extend_from_slice(tail_ps);
            Some(WordPlan::new(&both))
        } else {
            None
        };
        let (sorted_p, prefix_masks) = if matches!(intro, FaultIntroduction::CommonCause { .. }) {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| ps[b].total_cmp(&ps[a]));
            let mut masks = vec![0u64; (n + 1) * wps];
            let mut acc = FaultSet::new(n);
            for (k, &f) in order.iter().enumerate() {
                acc.insert(f);
                masks[(k + 1) * wps..(k + 2) * wps].copy_from_slice(acc.words());
            }
            (order.into_iter().map(|f| ps[f]).collect(), masks)
        } else {
            (Vec::new(), Vec::new())
        };
        BitSampler {
            n,
            intro,
            word_plans,
            fused_tail,
            tail_bits,
            ps,
            sorted_p,
            prefix_masks,
            wps,
        }
    }

    /// The fault-universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Draws one version's fault set into `out` (which must have the
    /// model's universe size). Distribution-identical to
    /// [`FaultIntroduction::sample_version`], but consumes far fewer
    /// RNG draws (≈ `log₂ 64` per 64-fault word).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        debug_assert_eq!(out.universe(), self.n, "scratch set universe mismatch");
        match self.intro {
            FaultIntroduction::Independent => self.sample_independent(rng, out),
            FaultIntroduction::CommonCause { lambda } => {
                if rng.gen::<f64>() < lambda {
                    self.sample_comonotone(rng, out);
                } else {
                    self.sample_independent(rng, out);
                }
            }
            FaultIntroduction::Antithetic { lambda } => {
                if rng.gen::<f64>() < lambda {
                    self.sample_antithetic(rng, out);
                } else {
                    self.sample_independent(rng, out);
                }
            }
        }
    }

    /// Draws a 1-out-of-2 pair (two independent versions) into `a` and
    /// `b`. Under the independent introduction model with a ≤ 32-fault
    /// tail word, both versions' tail bits share each random word.
    pub fn sample_pair_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &mut FaultSet,
        b: &mut FaultSet,
    ) {
        if !matches!(self.intro, FaultIntroduction::Independent) {
            self.sample_into(rng, a);
            self.sample_into(rng, b);
            return;
        }
        debug_assert_eq!(a.universe(), self.n);
        debug_assert_eq!(b.universe(), self.n);
        match &self.fused_tail {
            Some(fused) => {
                let full = self.word_plans.len() - 1;
                {
                    let wa = a.words_mut();
                    for (w, plan) in self.word_plans[..full].iter().enumerate() {
                        wa[w] = plan.sample(rng);
                    }
                }
                {
                    let wb = b.words_mut();
                    for (w, plan) in self.word_plans[..full].iter().enumerate() {
                        wb[w] = plan.sample(rng);
                    }
                }
                let both = fused.sample(rng);
                let lo_mask = (1u64 << self.tail_bits) - 1;
                a.words_mut()[full] = both & lo_mask;
                b.words_mut()[full] = (both >> self.tail_bits) & lo_mask;
            }
            None => {
                self.sample_independent(rng, a);
                self.sample_independent(rng, b);
            }
        }
    }

    fn sample_independent<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        let words = out.words_mut();
        for (w, plan) in self.word_plans.iter().enumerate() {
            words[w] = plan.sample(rng);
        }
    }

    fn sample_comonotone<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        let u: f64 = rng.gen();
        // Present set = {i : p_i > u} = a prefix of the descending sort.
        let k = self.sorted_p.partition_point(|&p| p > u);
        out.words_mut()
            .copy_from_slice(&self.prefix_masks[k * self.wps..(k + 1) * self.wps]);
    }

    fn sample_antithetic<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut FaultSet) {
        out.clear();
        let ps = &self.ps;
        let mut i = 0;
        while i < ps.len() {
            let u: f64 = rng.gen();
            if u < ps[i] {
                out.insert(i);
            }
            if i + 1 < ps.len() && (1.0 - u) < ps[i + 1] {
                out.insert(i + 1);
            }
            i += 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(ps: &[f64]) -> FaultModel {
        let qs = vec![0.01; ps.len()];
        FaultModel::from_params(ps, &qs).unwrap()
    }

    fn rates(ps: &[f64], intro: FaultIntroduction, n: usize, seed: u64) -> Vec<f64> {
        let m = model(ps);
        let s = BitSampler::new(&m, intro);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = FaultSet::new(m.len());
        let mut counts = vec![0usize; m.len()];
        for _ in 0..n {
            s.sample_into(&mut rng, &mut out);
            for i in out.iter_ones() {
                counts[i] += 1;
            }
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn independent_marginals_match() {
        let ps = [0.0, 0.3, 0.05, 1.0, 0.6, 0.011, 0.3];
        let r = rates(&ps, FaultIntroduction::Independent, 60_000, 1);
        for (i, (&got, &want)) in r.iter().zip(&ps).enumerate() {
            assert!(
                (got - want).abs() < 0.01,
                "fault {i}: rate {got} vs p {want}"
            );
        }
    }

    #[test]
    fn independent_marginals_match_across_words() {
        // > 64 faults so multiple word plans are exercised.
        let ps: Vec<f64> = (0..150)
            .map(|i| 0.02 + 0.3 * ((i % 13) as f64 / 12.0))
            .collect();
        let r = rates(&ps, FaultIntroduction::Independent, 40_000, 2);
        for (i, (&got, &want)) in r.iter().zip(&ps).enumerate() {
            assert!(
                (got - want).abs() < 0.015,
                "fault {i}: rate {got} vs p {want}"
            );
        }
    }

    #[test]
    fn independent_joint_is_product() {
        // Pairwise independence within a word: P(i and j) ≈ p_i p_j.
        let ps = [0.4, 0.25, 0.1];
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::Independent);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = FaultSet::new(3);
        let n = 80_000;
        let mut both01 = 0usize;
        for _ in 0..n {
            s.sample_into(&mut rng, &mut out);
            if out.contains(0) && out.contains(1) {
                both01 += 1;
            }
        }
        assert!((both01 as f64 / n as f64 - 0.1).abs() < 0.006);
    }

    #[test]
    fn fused_pair_members_are_independent() {
        // The fused tail shares RNG words between A and B; the decided
        // bits must still be independent across members.
        let ps = [0.5, 0.3];
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::Independent);
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = FaultSet::new(2);
        let mut b = FaultSet::new(2);
        let n = 120_000;
        let (mut ca, mut cb, mut cab) = (0usize, 0usize, 0usize);
        for _ in 0..n {
            s.sample_pair_into(&mut rng, &mut a, &mut b);
            let pa = a.contains(0);
            let pb = b.contains(0);
            ca += pa as usize;
            cb += pb as usize;
            cab += (pa && pb) as usize;
        }
        let (ra, rb, rab) = (
            ca as f64 / n as f64,
            cb as f64 / n as f64,
            cab as f64 / n as f64,
        );
        assert!((ra - 0.5).abs() < 0.006, "A marginal {ra}");
        assert!((rb - 0.5).abs() < 0.006, "B marginal {rb}");
        assert!((rab - 0.25).abs() < 0.006, "joint {rab} vs 0.25");
    }

    #[test]
    fn pair_sampling_matches_single_sampling_distribution() {
        // sample_pair_into and two sample_into calls draw from the same
        // distribution (different stream consumption).
        let ps: Vec<f64> = (0..40)
            .map(|i| 0.05 + 0.2 * ((i % 7) as f64 / 6.0))
            .collect();
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::Independent);
        let n = 40_000;
        let mut a = FaultSet::new(40);
        let mut b = FaultSet::new(40);
        let mut rng = StdRng::seed_from_u64(5);
        let mut common_paired = 0usize;
        for _ in 0..n {
            s.sample_pair_into(&mut rng, &mut a, &mut b);
            common_paired += a.intersect_count(&b);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut common_single = 0usize;
        for _ in 0..n {
            s.sample_into(&mut rng, &mut a);
            s.sample_into(&mut rng, &mut b);
            common_single += a.intersect_count(&b);
        }
        let expect: f64 = ps.iter().map(|p| p * p).sum();
        let got_p = common_paired as f64 / n as f64;
        let got_s = common_single as f64 / n as f64;
        assert!((got_p - expect).abs() < 0.05, "paired {got_p} vs {expect}");
        assert!((got_s - expect).abs() < 0.05, "single {got_s} vs {expect}");
    }

    #[test]
    fn comonotone_prefix_structure() {
        let ps = [0.8, 0.2, 0.5];
        let m = model(&ps);
        let s = BitSampler::new(&m, FaultIntroduction::CommonCause { lambda: 1.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = FaultSet::new(3);
        for _ in 0..5_000 {
            s.sample_into(&mut rng, &mut out);
            // Smaller-p present implies larger-p present (nested sets).
            if out.contains(1) {
                assert!(out.contains(2) && out.contains(0));
            }
            if out.contains(2) {
                assert!(out.contains(0));
            }
        }
        let r = rates(
            &ps,
            FaultIntroduction::CommonCause { lambda: 1.0 },
            60_000,
            5,
        );
        for (got, want) in r.iter().zip(&ps) {
            assert!((got - want).abs() < 0.01);
        }
    }

    #[test]
    fn antithetic_matches_reference_stream() {
        // The antithetic branch consumes uniforms exactly like the
        // reference sampler, so λ = 1 must reproduce its fault sets
        // from the same seed.
        let ps = [0.3, 0.3, 0.1, 0.9, 0.5];
        let m = model(&ps);
        let intro = FaultIntroduction::Antithetic { lambda: 1.0 };
        let s = BitSampler::new(&m, intro);
        let mut r1 = StdRng::seed_from_u64(6);
        let mut r2 = StdRng::seed_from_u64(6);
        let mut out = FaultSet::new(5);
        for _ in 0..2_000 {
            let reference = intro.sample_version(&m, &mut r1);
            s.sample_into(&mut r2, &mut out);
            assert_eq!(out.to_bools(), reference);
        }
    }

    #[test]
    fn mixture_marginals_preserved() {
        let ps = [0.3, 0.3, 0.1, 0.1];
        for intro in [
            FaultIntroduction::CommonCause { lambda: 0.7 },
            FaultIntroduction::Antithetic { lambda: 0.7 },
        ] {
            let r = rates(&ps, intro, 60_000, 7);
            for (i, (&got, &want)) in r.iter().zip(&ps).enumerate() {
                assert!(
                    (got - want).abs() < 0.01,
                    "{intro:?} fault {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn dyadic_probabilities_are_exact() {
        // p = 0.5 and p = 0.25 have 1-2 plane expansions and zero tail;
        // the sampler must hit them exactly (modulo MC error) and the
        // plan must not confuse short expansions with p = 0.
        let ps = [0.5, 0.25, 0.0, 1.0];
        let r = rates(&ps, FaultIntroduction::Independent, 60_000, 8);
        assert!((r[0] - 0.5).abs() < 0.01);
        assert!((r[1] - 0.25).abs() < 0.01);
        assert_eq!(r[2], 0.0);
        assert_eq!(r[3], 1.0);
    }
}
