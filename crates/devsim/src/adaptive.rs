//! The cell-level runtime of **posterior-driven adaptive sweeps**.
//!
//! A fixed-budget sweep spends its samples uniformly across the grid;
//! the paper's closing argument (§6–7) is that the fault-creation model
//! should *drive* assessment — spend demands where the posterior is
//! still wide, not where the grid happens to be. This module holds the
//! deterministic ground layer of that loop:
//!
//! * [`AdaptivePfdRuntime`] — a grid of cells, each holding **one
//!   version sampled from the fault model** (its own SplitMix64 stream,
//!   independent of every demand stream), exposed to rounds of Bernoulli
//!   demand trials;
//! * [`CellEvidence`] — the per-cell `(failures, demands)` accumulator
//!   that crosses threads, journals and worker fleets in wire form;
//! * [`uniform_allocation`] / [`refine_allocation`] — the budget
//!   allocators: round 0 spreads the initial budget evenly, every later
//!   round leases its budget to the cells with the widest posterior
//!   bounds (largest-remainder apportionment, so the allocation is an
//!   exact integer partition of the budget and a pure function of the
//!   widths).
//!
//! Determinism is by construction: cell `c`'s version stream is
//! `split_seed(split_seed(seed, VERSION_STREAM), c)` and its round-`r`
//! demand stream is `split_seed(split_seed(seed, round_stream(r)), c)`,
//! so any thread count, worker fleet or crash/resume history reproduces
//! the same evidence bit for bit. The posterior side of the loop (exact
//! Bayes updates, stopping rule) lives upstream in `divrel-bayes` and
//! the scenario driver — this layer never sees a probability it didn't
//! simulate.

use crate::error::DevSimError;
use crate::factory::VersionFactory;
use crate::process::FaultIntroduction;
use divrel_model::FaultModel;
use divrel_numerics::sweep::{split_seed, SweepReduce};
use divrel_numerics::wire::{Wire, WireError, WireForm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Stream salt of the per-cell **version sampling** streams. Distinct
/// from every [`round_stream`] salt, so re-sampling a cell's version is
/// independent of any round's demand draws.
pub const VERSION_STREAM: u64 = 0;

/// Stream salt of round `round`'s demand streams: rounds are explicit
/// in the seed layout, which is what keeps an adaptive run reproducible
/// when the number of rounds is itself data-dependent.
#[must_use]
pub fn round_stream(round: u32) -> u64 {
    1 + u64::from(round)
}

/// Per-cell operational evidence: `failures` failures observed in
/// `demands` demands. The accumulator of the adaptive sweep — merged
/// across rounds by [`SweepReduce::absorb`], shipped across fleets in
/// wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellEvidence {
    /// Failures observed.
    pub failures: u64,
    /// Demands exercised.
    pub demands: u64,
}

impl SweepReduce for CellEvidence {
    fn absorb(&mut self, other: Self) {
        self.failures += other.failures;
        self.demands += other.demands;
    }
}

impl WireForm for CellEvidence {
    fn to_wire(&self) -> Wire {
        Wire::record([
            ("failures", Wire::U64(self.failures)),
            ("demands", Wire::U64(self.demands)),
        ])
    }

    fn from_wire(wire: &Wire) -> Result<Self, WireError> {
        Ok(CellEvidence {
            failures: wire.field("failures")?.as_u64()?,
            demands: wire.field("demands")?.as_u64()?,
        })
    }
}

/// A compiled adaptive-PFD grid: `cells` versions sampled once from the
/// fault model (seed layout above), each exposed to per-round Bernoulli
/// demand trials at its exact PFD. [`Self::run_cell`] is a pure
/// function of `(spec, cell, demands, round)` — the property the
/// in-process sweep, the distributed runtime and the journal all lean
/// on.
#[derive(Debug, Clone)]
pub struct AdaptivePfdRuntime {
    sweep_seed: u64,
    true_pfds: Vec<f64>,
    fault_counts: Vec<usize>,
}

impl AdaptivePfdRuntime {
    /// Samples the grid's versions from `model` (one per cell, each
    /// from its own split stream) and records their exact PFDs.
    ///
    /// # Errors
    ///
    /// Factory construction errors.
    pub fn new(model: Arc<FaultModel>, sweep_seed: u64, cells: usize) -> Result<Self, DevSimError> {
        let factory = VersionFactory::shared(model, FaultIntroduction::Independent)?;
        let version_base = split_seed(sweep_seed, VERSION_STREAM);
        let mut true_pfds = Vec::with_capacity(cells);
        let mut fault_counts = Vec::with_capacity(cells);
        for c in 0..cells {
            let mut rng = StdRng::seed_from_u64(split_seed(version_base, c as u64));
            let version = factory.sample_version(&mut rng);
            true_pfds.push(version.pfd);
            fault_counts.push(version.fault_count());
        }
        Ok(AdaptivePfdRuntime {
            sweep_seed,
            true_pfds,
            fault_counts,
        })
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.true_pfds.len()
    }

    /// The exact PFD of cell `cell`'s sampled version.
    pub fn true_pfd(&self, cell: usize) -> f64 {
        self.true_pfds[cell]
    }

    /// How many faults cell `cell`'s sampled version carries.
    pub fn fault_count(&self, cell: usize) -> usize {
        self.fault_counts[cell]
    }

    /// Runs `demands` Bernoulli demand trials against cell `cell`'s
    /// version in round `round`, on the cell's round-specific split
    /// stream. `demands = 0` consumes no randomness and returns empty
    /// evidence — unrefined cells cost nothing.
    pub fn run_cell(&self, cell: usize, demands: u64, round: u32) -> CellEvidence {
        let seed = split_seed(
            split_seed(self.sweep_seed, round_stream(round)),
            cell as u64,
        );
        let pfd = self.true_pfds[cell];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failures = 0u64;
        for _ in 0..demands {
            if rng.gen::<f64>() < pfd {
                failures += 1;
            }
        }
        CellEvidence { failures, demands }
    }
}

/// Splits `budget` demands evenly over `cells` cells: every cell gets
/// `⌊budget/cells⌋`, the first `budget mod cells` cells one more. The
/// round-0 allocation (no posterior exists yet), and the per-round
/// allocation of the fixed-budget baseline the adaptive driver is
/// benchmarked against.
#[must_use]
pub fn uniform_allocation(budget: u64, cells: usize) -> Vec<u64> {
    if cells == 0 {
        return Vec::new();
    }
    let base = budget / cells as u64;
    let extra = (budget % cells as u64) as usize;
    (0..cells).map(|c| base + u64::from(c < extra)).collect()
}

/// Apportions `budget` demands to the cells still above the target:
/// cell `c` with posterior width `widths[c] > target_width` receives a
/// share proportional to its width, by the largest-remainder method
/// (floors first, then one extra demand each down the largest
/// fractional remainders, ties to the lower cell index). Cells at or
/// below the target receive nothing; if every cell has converged the
/// allocation is all zeros and the sweep is done.
///
/// The result is an exact integer partition of `budget` (whenever any
/// cell is eligible) and a pure function of `(widths, target_width,
/// budget)` — which is what lets in-process, distributed and resumed
/// runs recompute identical rounds instead of shipping them.
#[must_use]
pub fn refine_allocation(widths: &[f64], target_width: f64, budget: u64) -> Vec<u64> {
    let mut alloc = vec![0u64; widths.len()];
    let total: f64 = widths.iter().filter(|&&w| w > target_width).sum();
    if total.is_nan() || total <= 0.0 || budget == 0 {
        return alloc;
    }
    let mut remainders: Vec<(usize, f64)> = Vec::new();
    let mut assigned = 0u64;
    for (c, &w) in widths.iter().enumerate() {
        if w > target_width {
            let ideal = budget as f64 * (w / total);
            let floor = ideal.floor();
            alloc[c] = floor as u64;
            assigned += alloc[c];
            remainders.push((c, ideal - floor));
        }
    }
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mut left = budget.saturating_sub(assigned);
    for (c, _) in remainders {
        if left == 0 {
            break;
        }
        alloc[c] += 1;
        left -= 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(cells: usize) -> AdaptivePfdRuntime {
        let model = FaultModel::uniform(3, 0.4, 0.05).expect("valid model");
        AdaptivePfdRuntime::new(Arc::new(model), 97, cells).expect("valid runtime")
    }

    #[test]
    fn cell_evaluation_is_a_pure_function_of_its_arguments() {
        let rt = runtime(12);
        for cell in [0usize, 5, 11] {
            for round in [0u32, 1, 7] {
                let a = rt.run_cell(cell, 500, round);
                let b = rt.run_cell(cell, 500, round);
                assert_eq!(a, b);
                assert_eq!(a.demands, 500);
                assert!(a.failures <= a.demands);
            }
        }
        // Distinct rounds draw distinct demand streams: the raw u64
        // draws of round 0 and round 1 must differ even on a
        // fault-free cell, so replaying a round never doubles its
        // evidence silently.
        let s0 = split_seed(split_seed(97, round_stream(0)), 3);
        let s1 = split_seed(split_seed(97, round_stream(1)), 3);
        assert_ne!(
            StdRng::seed_from_u64(s0).gen::<u64>(),
            StdRng::seed_from_u64(s1).gen::<u64>(),
            "independent rounds must draw from independent streams"
        );
    }

    #[test]
    fn versions_are_stable_across_rounds_and_clones() {
        let a = runtime(20);
        let b = runtime(20);
        for c in 0..20 {
            assert_eq!(a.true_pfd(c).to_bits(), b.true_pfd(c).to_bits());
            assert_eq!(a.fault_count(c), b.fault_count(c));
        }
        // The empirical failure rate tracks the recorded exact PFD.
        let cell = (0..20)
            .find(|&c| a.true_pfd(c) > 0.02)
            .expect("some cell carries faults");
        let ev = a.run_cell(cell, 50_000, 3);
        let rate = ev.failures as f64 / ev.demands as f64;
        assert!(
            (rate - a.true_pfd(cell)).abs() < 0.01,
            "rate {rate} vs pfd {}",
            a.true_pfd(cell)
        );
    }

    #[test]
    fn zero_demand_cells_return_empty_evidence() {
        let rt = runtime(4);
        assert_eq!(rt.run_cell(2, 0, 5), CellEvidence::default());
    }

    #[test]
    fn evidence_merges_and_round_trips() {
        let mut a = CellEvidence {
            failures: 3,
            demands: 100,
        };
        a.absorb(CellEvidence {
            failures: 1,
            demands: 50,
        });
        assert_eq!(
            a,
            CellEvidence {
                failures: 4,
                demands: 150,
            }
        );
        let back = CellEvidence::from_wire(&a.to_wire()).expect("round trip");
        assert_eq!(back, a);
    }

    #[test]
    fn uniform_allocation_partitions_the_budget_exactly() {
        for (budget, cells) in [(100u64, 7usize), (5, 8), (0, 3), (2048, 1)] {
            let alloc = uniform_allocation(budget, cells);
            assert_eq!(alloc.len(), cells);
            assert_eq!(alloc.iter().sum::<u64>(), budget);
            let min = alloc.iter().min().copied().unwrap_or(0);
            let max = alloc.iter().max().copied().unwrap_or(0);
            assert!(max - min <= 1, "uniform split is off by more than 1");
        }
        assert!(uniform_allocation(10, 0).is_empty());
    }

    #[test]
    fn refinement_allocates_proportionally_to_width() {
        let widths = [0.4, 0.0, 0.1, 0.0005, 0.5];
        let alloc = refine_allocation(&widths, 0.001, 1_000);
        assert_eq!(alloc.iter().sum::<u64>(), 1_000);
        // Converged cells get nothing.
        assert_eq!(alloc[1], 0);
        assert_eq!(alloc[3], 0);
        // Wider cells get more.
        assert!(alloc[4] > alloc[2]);
        assert!(alloc[0] > alloc[2]);
        // Proportionality within rounding.
        assert!((alloc[4] as f64 - 500.0).abs() <= 1.0);
        assert!((alloc[0] as f64 - 400.0).abs() <= 1.0);
    }

    #[test]
    fn refinement_stops_allocating_when_everything_converged() {
        let widths = [0.0, 0.0009, 0.001];
        assert_eq!(refine_allocation(&widths, 0.001, 500), vec![0, 0, 0]);
        assert_eq!(refine_allocation(&[], 0.001, 500), Vec::<u64>::new());
        assert_eq!(refine_allocation(&[0.5, 0.2], 0.001, 0), vec![0, 0]);
    }

    #[test]
    fn refinement_remainders_break_ties_deterministically() {
        // Three equal widths, budget 100: 33/33/33 floors + 1 remainder
        // to the lowest index.
        let alloc = refine_allocation(&[0.2, 0.2, 0.2], 0.01, 100);
        assert_eq!(alloc, vec![34, 33, 33]);
    }
}
