//! # divrel-devsim
//!
//! Monte-Carlo simulation of the paper's **fault creation process**.
//!
//! §2.2 of Popov & Strigini models separate development as "choosing,
//! randomly and independently, possible subsets of this set of possible
//! faults". That *is* a sampling procedure, and this crate executes it:
//!
//! * [`process::FaultIntroduction`] — how fault sets are drawn: the
//!   paper's independent coin-tosses, plus the §6.1 violations (positively
//!   correlated "common conceptual error" mistakes; negatively correlated
//!   budget-coupled mistakes), all preserving the marginal `pᵢ` exactly so
//!   that deviations from the analytic model are attributable to
//!   correlation alone;
//! * [`sampler::BitSampler`] — the bitset fast path: bit-sliced
//!   word-parallel Bernoulli sampling into reusable
//!   [`divrel_demand::FaultSet`] buffers (one `u64` draw decides one
//!   comparison bit-plane for 64 faults at once; precomputed prefix
//!   masks serve the comonotone branch), exactly preserving every
//!   marginal;
//! * [`factory::VersionFactory`] — samples whole versions and 1-out-of-2
//!   pairs with their PFDs (bitset-backed; a stream-compatible
//!   reference path is kept for equivalence testing);
//! * [`experiment::MonteCarloExperiment`] — estimates the distribution of
//!   `Θ₁`/`Θ₂`, fault-free probabilities and the eq (10) risk ratio, with
//!   confidence intervals and a multi-threaded driver;
//! * [`sweep`] — the deterministic sweep-sharding engine: experiment
//!   grids of `SweepCell { config, seed }` values with counter-based
//!   SplitMix64 stream splitting, executed by work-stealing workers and
//!   reduced in canonical cell order, so every sweep statistic is
//!   bit-identical across thread counts;
//! * [`adaptive`] — the cell layer of posterior-driven adaptive sweeps:
//!   grids of sampled versions exposed to per-round Bernoulli demand
//!   trials on round-salted split streams, with the uniform and
//!   width-proportional budget allocators;
//! * [`kl`] — a synthetic replication of the Knight–Leveson experiment
//!   (27 versions, all pairs) used by §7's qualitative check that
//!   diversity shrinks both the sample mean *and* the sample standard
//!   deviation of the PFD.
//!
//! ```
//! use divrel_devsim::{experiment::MonteCarloExperiment, process::FaultIntroduction};
//! use divrel_model::FaultModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = FaultModel::uniform(8, 0.1, 0.01)?;
//! let exp = MonteCarloExperiment::new(model.clone(), FaultIntroduction::Independent)
//!     .samples(20_000)
//!     .seed(7);
//! let result = exp.run()?;
//! // The empirical mean PFD matches eq (1) within Monte-Carlo error.
//! assert!((result.single.mean_pfd - model.mean_pfd_single()).abs() < 5e-4);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod error;
pub mod experiment;
pub mod factory;
pub mod kl;
pub mod process;
pub mod rare;
pub mod sampler;
pub mod sweep;
pub mod testing;

pub use error::DevSimError;
pub use experiment::MonteCarloExperiment;
pub use factory::VersionFactory;
pub use process::FaultIntroduction;
