//! The effect of testing/debugging on the gain from diversity.
//!
//! §4.2.3 cites Djambazov & Popov \[13\]: "A similar observation on the
//! effect of fault removal on the reliability gain given by fault
//! tolerance has been reported in \[13\]". This module makes that effect
//! executable: an **operational testing campaign** of `t` test demands
//! (drawn from the operational profile) detects a present fault `i` on
//! each demand with probability `qᵢ`; detected faults are removed before
//! delivery (perfect debugging).
//!
//! Analytically, testing transforms the process: a fault survives into
//! the *delivered* version iff it was introduced AND escaped every test
//! demand, so
//!
//! ```text
//! pᵢ(t) = pᵢ · (1 − qᵢ)ᵗ
//! ```
//!
//! This is exactly the **non-proportional** process-improvement move of
//! §4.2.1: big-region faults are scrubbed fast, small-region faults
//! barely at all — so extended testing pushes the fault mix toward the
//! regime where the *relative* gain from diversity erodes (the \[13\]
//! observation), even as absolute reliability improves monotonically.
//! The Monte-Carlo simulator cross-checks the closed form.

use crate::error::DevSimError;
use crate::factory::VersionFactory;
use crate::process::FaultIntroduction;
use divrel_model::{FaultModel, ModelError, PotentialFault};
use rand::Rng;

/// An operational testing campaign applied to every version before
/// delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestingCampaign {
    /// Number of test demands drawn from the operational profile.
    pub demands: u64,
}

impl TestingCampaign {
    /// A campaign of `demands` operational test demands.
    pub fn new(demands: u64) -> Self {
        TestingCampaign { demands }
    }

    /// The delivered-fault model after testing: `pᵢ(t) = pᵢ(1−qᵢ)ᵗ`.
    ///
    /// # Errors
    ///
    /// Propagates model reconstruction errors (cannot occur for a valid
    /// input model).
    pub fn delivered_model(&self, model: &FaultModel) -> Result<FaultModel, ModelError> {
        let faults = model
            .faults()
            .iter()
            .map(|f| {
                let survive = (self.demands as f64 * (-f.q()).ln_1p()).exp();
                PotentialFault::new(f.p() * survive, f.q())
            })
            .collect::<Result<Vec<_>, _>>()?;
        FaultModel::new(faults)
    }

    /// Simulates the campaign on one sampled fault set: each present
    /// fault is detected (and removed) with probability `1−(1−qᵢ)ᵗ`.
    ///
    /// The detection draws are independent per fault, which matches the
    /// delivered-model closed form exactly (each fault's survival is
    /// `(1−qᵢ)ᵗ` regardless of the others under the non-overlap
    /// assumption, since a demand in region `i` reveals fault `i`).
    pub fn scrub_version<R: Rng + ?Sized>(
        &self,
        model: &FaultModel,
        present: &mut [bool],
        rng: &mut R,
    ) {
        for (flag, fault) in present.iter_mut().zip(model.faults()) {
            if *flag {
                let survive = (self.demands as f64 * (-fault.q()).ln_1p()).exp();
                if rng.gen::<f64>() >= survive {
                    *flag = false;
                }
            }
        }
    }
}

/// One row of a testing-effect sweep: the state of the process after `t`
/// test demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestingEffect {
    /// Test demands applied.
    pub demands: u64,
    /// Mean PFD of a delivered single version.
    pub mean_pfd_single: f64,
    /// Mean PFD of a delivered 1-out-of-2 pair.
    pub mean_pfd_pair: f64,
    /// Eq (10) risk ratio of the delivered process (`None` when the
    /// delivered process is fault-free with certainty).
    pub risk_ratio: Option<f64>,
}

/// Sweeps the analytic testing effect over a grid of campaign lengths.
///
/// # Errors
///
/// Propagates model errors.
pub fn testing_sweep(
    model: &FaultModel,
    demand_grid: &[u64],
) -> Result<Vec<TestingEffect>, DevSimError> {
    demand_grid
        .iter()
        .map(|&t| {
            let delivered = TestingCampaign::new(t).delivered_model(model)?;
            Ok(TestingEffect {
                demands: t,
                mean_pfd_single: delivered.mean_pfd_single(),
                mean_pfd_pair: delivered.mean_pfd_pair(),
                risk_ratio: delivered.risk_ratio().ok(),
            })
        })
        .collect()
}

/// Monte-Carlo cross-check: samples `samples` versions, scrubs each with
/// the campaign, and returns the empirical delivered fault rate per fault.
///
/// # Errors
///
/// Propagates factory construction errors;
/// [`DevSimError::TooFewSamples`] for zero samples.
pub fn empirical_delivered_rates<R: Rng + ?Sized>(
    model: &FaultModel,
    campaign: TestingCampaign,
    samples: usize,
    rng: &mut R,
) -> Result<Vec<f64>, DevSimError> {
    if samples == 0 {
        return Err(DevSimError::TooFewSamples { got: 0, need: 1 });
    }
    let factory = VersionFactory::new(model.clone(), FaultIntroduction::Independent)?;
    let mut counts = vec![0u64; model.len()];
    for _ in 0..samples {
        let mut v = factory.sample_version(rng).present_bools();
        campaign.scrub_version(model, &mut v, rng);
        for (c, &b) in counts.iter_mut().zip(&v) {
            if b {
                *c += 1;
            }
        }
    }
    Ok(counts.iter().map(|&c| c as f64 / samples as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> FaultModel {
        // One big-region fault, one small-region fault.
        FaultModel::from_params(&[0.4, 0.4], &[0.01, 1e-5]).expect("valid")
    }

    #[test]
    fn delivered_model_closed_form() {
        let m = model();
        let t = 1_000u64;
        let d = TestingCampaign::new(t).delivered_model(&m).expect("ok");
        let want0 = 0.4 * 0.99_f64.powi(1000);
        let want1 = 0.4 * (1.0 - 1e-5_f64).powi(1000);
        assert!((d.faults()[0].p() - want0).abs() < 1e-12);
        assert!((d.faults()[1].p() - want1).abs() < 1e-12);
        // q values untouched.
        assert_eq!(d.faults()[0].q(), 0.01);
    }

    #[test]
    fn zero_demand_campaign_is_identity() {
        let m = model();
        let d = TestingCampaign::new(0).delivered_model(&m).expect("ok");
        assert_eq!(d, m);
    }

    #[test]
    fn testing_always_improves_absolute_reliability() {
        let m = model();
        let sweep = testing_sweep(&m, &[0, 10, 100, 1_000, 10_000, 100_000]).expect("ok");
        for w in sweep.windows(2) {
            assert!(w[1].mean_pfd_single <= w[0].mean_pfd_single + 1e-18);
            assert!(w[1].mean_pfd_pair <= w[0].mean_pfd_pair + 1e-18);
        }
    }

    #[test]
    fn testing_makes_the_relative_gain_non_monotone() {
        // The [13] observation, sharpened: the eq (10) risk ratio is
        // NON-MONOTONE in testing duration. Early testing scrubs the
        // big-region fault toward its Appendix-A stationary point
        // (ratio improves); pushing past it ERODES the relative gain for
        // a window; eventually the surviving small-region fault is
        // scrubbed too and the ratio falls again. Absolute reliability
        // improves monotonically throughout.
        let m = model();
        let sweep = testing_sweep(&m, &[0, 200, 500, 50_000]).expect("ok");
        let r: Vec<f64> = sweep.iter().map(|e| e.risk_ratio.expect("risky")).collect();
        assert!(r[1] < r[0], "early testing improves the gain: {r:?}");
        assert!(r[2] > r[1] + 0.01, "the erosion window must appear: {r:?}");
        assert!(
            r[3] < r[2],
            "long-run testing improves the gain again: {r:?}"
        );
        // Meanwhile absolute reliability never regresses.
        for w in sweep.windows(2) {
            assert!(w[1].mean_pfd_single <= w[0].mean_pfd_single);
            assert!(w[1].mean_pfd_pair <= w[0].mean_pfd_pair);
        }
    }

    #[test]
    fn testing_effect_is_nonproportional() {
        let m = model();
        let d = TestingCampaign::new(10_000)
            .delivered_model(&m)
            .expect("ok");
        let shrink0 = d.faults()[0].p() / m.faults()[0].p();
        let shrink1 = d.faults()[1].p() / m.faults()[1].p();
        // Big-region fault essentially gone; small-region fault ~unchanged.
        assert!(shrink0 < 1e-20);
        assert!(shrink1 > 0.9);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let m = model();
        let campaign = TestingCampaign::new(100);
        let mut rng = StdRng::seed_from_u64(17);
        let rates = empirical_delivered_rates(&m, campaign, 60_000, &mut rng).expect("ok");
        let d = campaign.delivered_model(&m).expect("ok");
        for (i, (&rate, fault)) in rates.iter().zip(d.faults()).enumerate() {
            let sigma = (fault.p() * (1.0 - fault.p()) / 60_000.0).sqrt();
            assert!(
                (rate - fault.p()).abs() < 6.0 * sigma + 1e-4,
                "fault {i}: empirical {rate} vs analytic {}",
                fault.p()
            );
        }
    }

    #[test]
    fn empirical_rates_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(
            empirical_delivered_rates(&model(), TestingCampaign::new(10), 0, &mut rng).is_err()
        );
    }

    #[test]
    fn scrub_only_removes_present_faults() {
        let m = model();
        let campaign = TestingCampaign::new(1_000_000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut none_present = vec![false, false];
        campaign.scrub_version(&m, &mut none_present, &mut rng);
        assert_eq!(none_present, vec![false, false]);
        // The big-q fault is removed essentially surely at t = 1e6.
        let mut both = vec![true, true];
        campaign.scrub_version(&m, &mut both, &mut rng);
        assert!(!both[0]);
    }
}
