//! Synthetic replication of the Knight–Leveson experiment — paper §7.
//!
//! The paper's only empirical check: "in the Knight and Leveson experiment
//! \[2, 16, 17\] diversity reduced not only the sample mean of the PFD of
//! the 27 program versions produced, but also – greatly – its standard
//! deviation. … On the other hand, the data do not fit (nor would we expect
//! them to fit, given the few faults observed) a normal approximation."
//!
//! We cannot redistribute the original data, so [`KnightLevesonExperiment`]
//! replays the protocol inside the fault-creation model: develop
//! `n_versions` independent versions, measure every version's PFD and every
//! one of the `C(n, 2)` pairs' PFDs, and report exactly the §7 statistics —
//! sample means, sample standard deviations, their reduction factors, and a
//! KS test of normality of the version PFDs.

use crate::error::DevSimError;
use crate::factory::VersionFactory;
use crate::process::FaultIntroduction;
use divrel_model::FaultModel;
use divrel_numerics::descriptive::Moments;
use divrel_numerics::ks::{ks_test, KsTest};
use divrel_numerics::normal::Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The number of versions in the original Knight–Leveson experiment.
pub const KL_VERSION_COUNT: usize = 27;

/// Configuration of a synthetic N-version experiment.
///
/// The fault model is held behind an `Arc`: replication sweeps build one
/// experiment per grid cell, and sharing the model through the worker
/// closures costs a refcount bump per cell instead of a deep copy of the
/// fault vector (the ROADMAP allocation hot spot at 100k-cell scales).
#[derive(Debug, Clone)]
pub struct KnightLevesonExperiment {
    model: Arc<FaultModel>,
    introduction: FaultIntroduction,
    n_versions: usize,
    seed: u64,
}

/// Results of one synthetic N-version experiment.
#[derive(Debug, Clone)]
pub struct KlResult {
    /// PFD of each developed version.
    pub version_pfds: Vec<f64>,
    /// PFD of every unordered pair (1-out-of-2 semantics).
    pub pair_pfds: Vec<f64>,
    /// Sample mean of version PFDs.
    pub single_mean: f64,
    /// Sample standard deviation of version PFDs.
    pub single_std: f64,
    /// Sample mean of pair PFDs.
    pub pair_mean: f64,
    /// Sample standard deviation of pair PFDs.
    pub pair_std: f64,
    /// KS test of the version PFDs against a fitted normal, if the sample
    /// is non-degenerate (the §7 observation that KL data "do not fit" a
    /// normal).
    pub normality: Option<KsTest>,
}

impl KlResult {
    /// Factor by which pairing reduced the sample mean
    /// (`single_mean / pair_mean`); `None` when the pair mean is zero.
    pub fn mean_reduction(&self) -> Option<f64> {
        (self.pair_mean > 0.0).then(|| self.single_mean / self.pair_mean)
    }

    /// Factor by which pairing reduced the sample standard deviation;
    /// `None` when the pair std is zero.
    pub fn std_reduction(&self) -> Option<f64> {
        (self.pair_std > 0.0).then(|| self.single_std / self.pair_std)
    }

    /// §7's qualitative claim: diversity reduced both the mean and the
    /// standard deviation.
    pub fn diversity_reduced_mean_and_std(&self) -> bool {
        self.pair_mean <= self.single_mean && self.pair_std <= self.single_std
    }
}

impl KnightLevesonExperiment {
    /// Creates the experiment with the historical 27 versions.
    pub fn new(model: FaultModel) -> Self {
        Self::shared(Arc::new(model))
    }

    /// Creates the experiment over a **shared** fault model (no deep
    /// copy; see the type docs). Sweep workers should prefer this with an
    /// `Arc::clone` per cell.
    pub fn shared(model: Arc<FaultModel>) -> Self {
        KnightLevesonExperiment {
            model,
            introduction: FaultIntroduction::Independent,
            n_versions: KL_VERSION_COUNT,
            seed: 0,
        }
    }

    /// Overrides the number of versions.
    pub fn versions(mut self, n: usize) -> Self {
        self.n_versions = n;
        self
    }

    /// Overrides the fault-introduction model (e.g. to replay under §6.1
    /// correlation).
    pub fn introduction(mut self, intro: FaultIntroduction) -> Self {
        self.introduction = intro;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Develops the versions and measures all versions and pairs.
    ///
    /// # Errors
    ///
    /// [`DevSimError::TooFewSamples`] for fewer than 2 versions; factory
    /// validation errors otherwise.
    pub fn run(&self) -> Result<KlResult, DevSimError> {
        if self.n_versions < 2 {
            return Err(DevSimError::TooFewSamples {
                got: self.n_versions,
                need: 2,
            });
        }
        let factory = VersionFactory::shared(Arc::clone(&self.model), self.introduction)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let versions: Vec<_> = (0..self.n_versions)
            .map(|_| factory.sample_version(&mut rng))
            .collect();
        let version_pfds: Vec<f64> = versions.iter().map(|v| v.pfd).collect();
        let q: Vec<f64> = self.model.q_values().collect();
        let mut pair_pfds = Vec::with_capacity(self.n_versions * (self.n_versions - 1) / 2);
        for i in 0..versions.len() {
            for j in (i + 1)..versions.len() {
                let pfd = versions[i]
                    .faults
                    .intersect_sum_weights(&versions[j].faults, &q);
                pair_pfds.push(pfd);
            }
        }
        let singles: Moments = version_pfds.iter().copied().collect();
        let pairs: Moments = pair_pfds.iter().copied().collect();
        let single_mean = singles.mean().map_err(DevSimError::from)?;
        let single_std = singles.sample_std_dev().map_err(DevSimError::from)?;
        let pair_mean = pairs.mean().map_err(DevSimError::from)?;
        let pair_std = pairs.sample_std_dev().map_err(DevSimError::from)?;
        let normality = if single_std > 0.0 {
            Normal::new(single_mean, single_std)
                .ok()
                .and_then(|n| ks_test(&version_pfds, |x| n.cdf(x)).ok())
        } else {
            None
        };
        Ok(KlResult {
            version_pfds,
            pair_pfds,
            single_mean,
            single_std,
            pair_mean,
            pair_std,
            normality,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        // Few moderately likely faults, as in a student experiment.
        FaultModel::from_params(
            &[0.3, 0.2, 0.15, 0.1, 0.05],
            &[0.002, 0.005, 0.001, 0.01, 0.02],
        )
        .unwrap()
    }

    #[test]
    fn shapes_and_counts() {
        let r = KnightLevesonExperiment::new(model()).seed(1).run().unwrap();
        assert_eq!(r.version_pfds.len(), 27);
        assert_eq!(r.pair_pfds.len(), 27 * 26 / 2);
    }

    #[test]
    fn section7_qualitative_check_holds_across_seeds() {
        // Diversity should reduce both mean and std dev in the typical run;
        // check a majority of seeds to avoid flakiness from a single draw.
        let mut holds = 0;
        for seed in 0..20 {
            let r = KnightLevesonExperiment::new(model())
                .seed(seed)
                .run()
                .unwrap();
            if r.diversity_reduced_mean_and_std() {
                holds += 1;
            }
        }
        assert!(holds >= 18, "only {holds}/20 seeds showed the reduction");
    }

    #[test]
    fn reduction_factors() {
        let r = KnightLevesonExperiment::new(model()).seed(3).run().unwrap();
        if let Some(f) = r.mean_reduction() {
            assert!(f >= 1.0, "mean reduction factor {f} < 1");
        }
        if let Some(f) = r.std_reduction() {
            assert!(f >= 1.0, "std reduction factor {f} < 1");
        }
    }

    #[test]
    fn few_faults_break_normality() {
        // §7: with few faults the PFD sample should NOT fit a normal.
        let sparse = FaultModel::from_params(&[0.4, 0.2], &[0.01, 0.03]).unwrap();
        let r = KnightLevesonExperiment::new(sparse)
            .versions(100)
            .seed(11)
            .run()
            .unwrap();
        let ks = r.normality.expect("non-degenerate sample expected");
        assert!(
            ks.p_value < 0.01,
            "normal fit unexpectedly good: p = {}",
            ks.p_value
        );
    }

    #[test]
    fn degenerate_sample_has_no_normality_test() {
        let certain = FaultModel::uniform(2, 0.0, 0.1).unwrap();
        let r = KnightLevesonExperiment::new(certain).seed(0).run().unwrap();
        assert!(r.normality.is_none());
        assert_eq!(r.mean_reduction(), None);
        assert_eq!(r.std_reduction(), None);
        assert!(r.diversity_reduced_mean_and_std());
    }

    #[test]
    fn too_few_versions_rejected() {
        let e = KnightLevesonExperiment::new(model())
            .versions(1)
            .run()
            .unwrap_err();
        assert!(matches!(e, DevSimError::TooFewSamples { .. }));
    }

    #[test]
    fn reproducible_per_seed() {
        let a = KnightLevesonExperiment::new(model()).seed(9).run().unwrap();
        let b = KnightLevesonExperiment::new(model()).seed(9).run().unwrap();
        assert_eq!(a.version_pfds, b.version_pfds);
        assert_eq!(a.pair_pfds, b.pair_pfds);
    }
}
