//! The rare-event estimation engine: exact importance sampling and
//! fault-count stratification for PFD regimes plain Monte Carlo cannot
//! reach.
//!
//! At realistic protection-system PFDs (`1e-6 … 1e-9`) almost every
//! naive sample draws a fault-free demand and contributes nothing: the
//! `O(1/√n)` convergence of [`crate::experiment`] needs `~100/PFD`
//! samples for 10% relative error, which at `1e-9` is `1e11` demands —
//! beyond what any hardware speedup buys. Variance reduction is the
//! multiplier that remains, and this module supplies two exact forms
//! over the β-factor shared-cause model of PR 8:
//!
//! * **Importance tilting** ([`RareEstimator::ImportanceTilt`]): both
//!   the common-cause layer (`γᵢ`) and the per-channel residual layer
//!   (`ρᵢ`) are sampled from exponentially tilted probabilities via
//!   [`BiasedBitSampler`], and every sample is reweighted by its exact
//!   per-word likelihood ratio — the estimate is unbiased by
//!   construction, and the weight bookkeeping lives in the log domain
//!   ([`WeightedMean`]) so squared weights never underflow.
//! * **Fault-count stratification**
//!   ([`RareEstimator::StratifyByCount`]): the concatenated
//!   common+residual Bernoulli universe is partitioned by its exact
//!   Poisson-binomial bit count ([`CountConditionedSampler`]); each
//!   sweep cell spends its budget across count strata with
//!   Neyman-style reallocation between rounds, so the all-absent
//!   stratum — which carries nearly all the probability and exactly
//!   zero payoff — costs almost nothing.
//!
//! Both estimators run on the deterministic sweep engine: cells are
//! pure functions of `(spec, cell index)`, accumulators implement
//! [`SweepReduce`] + [`WireForm`], and so thread-invariance,
//! journaling and fleet distribution hold bit-for-bit, exactly as for
//! the plain Monte-Carlo path.
//!
//! Because the per-fault layers stay independent of each other, the
//! engine also knows the **exact answer** ([`RareEventExperiment::true_pfd`])
//! — which is what makes the statistical-equivalence suite possible:
//! every estimator is tested against the closed form, not just against
//! another sampler.

use crate::error::DevSimError;
use crate::sampler::{BiasedBitSampler, CountConditionedSampler};
use crate::sweep::{run_sweep, GridSpec};
use divrel_model::shared::SharedCauseModel;
use divrel_numerics::estimator::{StratumMoments, WeightedMean};
use divrel_numerics::special::ln_binomial;
use divrel_numerics::sweep::SweepReduce;
use divrel_numerics::wire::{Wire, WireError, WireForm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples per sweep cell: coarser than the plain Monte-Carlo grid
/// (2048) because rare-event cells do less work per observation on
/// average (most strata/words short-circuit).
pub const RARE_CELL_SAMPLES: usize = 4096;

/// Number of count strata (exact counts `0 .. STRATA-1`, final stratum
/// `≥ STRATA-1`). Eight captures everything: beyond 7 simultaneous
/// bits the Poisson-binomial mass is negligible for any model in the
/// rare regime, and the tail stratum keeps the partition exhaustive
/// regardless.
pub const STRATA: usize = 8;

/// Which rare-event estimator a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RareEstimator {
    /// Plain Monte Carlo over the two-layer model (the unbiased
    /// baseline every variance-reduced estimator is tested against).
    Naive,
    /// Exponential importance tilt of strength `theta` on both layers,
    /// with exact per-sample likelihood-ratio reweighting.
    ImportanceTilt {
        /// Tilt strength `θ ≥ 0` (0 reduces exactly to `Naive`).
        theta: f64,
    },
    /// Stratification by the exact count of set bits in the
    /// concatenated common+residual universe, with `rounds` Neyman
    /// reallocation rounds per sweep cell.
    StratifyByCount {
        /// Allocation rounds per cell (≥ 1; round 1 splits evenly,
        /// later rounds follow `Wₕ·σ̂ₕ`).
        rounds: u32,
    },
}

/// Per-cell accumulator of a rare-event run: the weighted estimator
/// state for the naive/tilted paths and the per-stratum moments for
/// the stratified path (whichever the estimator does not use stays
/// empty and merges as the identity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RareAccumulator {
    weighted: WeightedMean,
    strata: StratumMoments,
}

impl RareAccumulator {
    /// The weighted-mean state (naive and tilted estimators).
    pub fn weighted(&self) -> &WeightedMean {
        &self.weighted
    }

    /// The per-stratum moments (stratified estimator).
    pub fn strata(&self) -> &StratumMoments {
        &self.strata
    }

    /// Total observations in the accumulator.
    pub fn count(&self) -> u64 {
        self.weighted.count() + self.strata.count()
    }
}

impl SweepReduce for RareAccumulator {
    fn absorb(&mut self, other: Self) {
        self.weighted.absorb(other.weighted);
        self.strata.absorb(other.strata);
    }
}

impl WireForm for RareAccumulator {
    fn to_wire(&self) -> Wire {
        Wire::record([
            ("weighted", self.weighted.to_wire()),
            ("strata", self.strata.to_wire()),
        ])
    }

    fn from_wire(wire: &Wire) -> Result<Self, WireError> {
        Ok(RareAccumulator {
            weighted: WeightedMean::from_wire(wire.field("weighted")?)?,
            strata: StratumMoments::from_wire(wire.field("strata")?)?,
        })
    }
}

/// The reduced outcome of a rare-event run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareOutcome {
    /// The PFD estimate.
    pub estimate: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// `std_error / estimate` (`+∞` when the estimate is zero — the
    /// naive estimator at budgets that never saw a failure).
    pub relative_error: f64,
    /// Effective sample size: Kish `(Σw)²/Σw²` for weighted
    /// estimators, the realised draw count for the stratified one.
    pub ess: f64,
    /// Total samples drawn.
    pub samples: u64,
    /// The exact closed-form PFD of the same system (the layers stay
    /// independent across faults, so the engine knows the answer).
    pub true_pfd: f64,
}

/// `P(Binomial(n, p) ≥ m)` by direct ascending tail summation in log
/// space — exact enough at any `p`, including the `ρ ≈ 1e-3` residuals
/// where the tail is the product of tiny per-channel probabilities.
fn binomial_sf(n: u32, p: f64, m: u32) -> f64 {
    if m == 0 {
        return 1.0;
    }
    if m > n || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut acc = 0.0;
    for j in m..=n {
        let lb = ln_binomial(u64::from(n), u64::from(j)).unwrap_or(f64::NEG_INFINITY);
        acc += (lb + f64::from(j) * lp + f64::from(n - j) * lq).exp();
    }
    acc.min(1.0)
}

/// The precompiled sampling kernel of one estimator.
#[derive(Debug, Clone)]
enum Kernel {
    /// Naive and tilted paths share one shape: a biased sampler per
    /// layer (the naive case is the exact zero tilt, every weight 1).
    Layered {
        common: BiasedBitSampler,
        residual: Box<BiasedBitSampler>,
    },
    /// Stratified path: conditional sampler over the concatenated
    /// `γ ++ ρ×channels` universe.
    Stratified {
        cond: CountConditionedSampler,
        rounds: u32,
    },
}

/// A rare-event estimation run over a `k`-out-of-`n` protection system
/// with β-factor shared causes: builder-style configuration, a
/// deterministic sweep grid, and pure per-cell evaluation — the same
/// shape as [`crate::experiment::MonteCarloExperiment`], so the
/// scenario and distribution layers treat it uniformly.
///
/// The system fails on a demand exposed to fault `i` iff at least
/// `m = channels − k + 1` channels carry the fault (the shared cause
/// plants it in all channels at once); the per-demand PFD is
/// `Σᵢ qᵢ·1[fault i defeats the vote]`, matching
/// [`SharedCauseModel::mean_pfd`] at `k = 1`.
#[derive(Debug, Clone)]
pub struct RareEventExperiment {
    gammas: Vec<f64>,
    rhos: Vec<f64>,
    qs: Vec<f64>,
    channels: u32,
    /// Failing channels needed to defeat the vote: `channels − k + 1`.
    threshold: u32,
    fault_mask: u64,
    samples: usize,
    seed: u64,
    threads: usize,
    estimator: RareEstimator,
    kernel: Kernel,
}

impl RareEventExperiment {
    /// Compiles the estimator kernel for `model` protecting a
    /// `k`-out-of-`channels` system.
    ///
    /// # Errors
    ///
    /// [`DevSimError::InvalidConfig`] for an empty fault model, more
    /// than 64 faults, `k ∉ [1, channels]`, a non-finite/negative
    /// tilt, zero rounds, or a stratified universe exceeding 64 bits
    /// (`faults × (1 + channels)`).
    pub fn from_shared(
        model: &SharedCauseModel,
        channels: u32,
        k: u32,
        estimator: RareEstimator,
    ) -> Result<Self, DevSimError> {
        let faults = model.base().len();
        if faults == 0 || faults > 64 {
            return Err(DevSimError::InvalidConfig(format!(
                "rare-event engine needs 1..=64 faults, got {faults}"
            )));
        }
        if channels == 0 || k == 0 || k > channels {
            return Err(DevSimError::InvalidConfig(format!(
                "need 1 <= k <= channels, got k = {k}, channels = {channels}"
            )));
        }
        let mut gammas = Vec::with_capacity(faults);
        let mut rhos = Vec::with_capacity(faults);
        let mut qs = Vec::with_capacity(faults);
        for f in model.base().faults() {
            let (gamma, rho) = model.layers(f.p());
            gammas.push(gamma);
            rhos.push(rho);
            qs.push(f.q());
        }
        let kernel = match estimator {
            RareEstimator::Naive => Kernel::Layered {
                common: BiasedBitSampler::exponential(&gammas, 0.0)?,
                residual: Box::new(BiasedBitSampler::exponential(&rhos, 0.0)?),
            },
            RareEstimator::ImportanceTilt { theta } => {
                if !theta.is_finite() || theta < 0.0 {
                    return Err(DevSimError::InvalidConfig(format!(
                        "tilt theta must be finite and >= 0, got {theta}"
                    )));
                }
                // The common-cause layer sits a factor β below the
                // residual layer (`γᵢ = β·pᵢ` vs `ρᵢ ≈ pᵢ`), so under a
                // flat tilt it stays rare long after residual failures
                // are commonplace — and it often carries a large share
                // of the PFD. Give it `ln(1/β)` of extra exposure so
                // both layers reach the same proposal scale; the
                // likelihood ratio is exact for *any* proposal, so the
                // estimate stays unbiased by construction. θ = 0 keeps
                // the exact naive identity (no exposure correction).
                let theta_common = if theta > 0.0 && model.beta() > 0.0 {
                    (theta + (1.0 / model.beta()).ln()).min(theta + 300.0)
                } else {
                    theta
                };
                Kernel::Layered {
                    common: BiasedBitSampler::exponential(&gammas, theta_common)?,
                    residual: Box::new(BiasedBitSampler::exponential(&rhos, theta)?),
                }
            }
            RareEstimator::StratifyByCount { rounds } => {
                if rounds == 0 {
                    return Err(DevSimError::InvalidConfig(
                        "stratified estimator needs at least one round".into(),
                    ));
                }
                let bits = faults * (1 + channels as usize);
                if bits > 64 {
                    return Err(DevSimError::InvalidConfig(format!(
                        "stratified universe needs faults x (1 + channels) <= 64 bits, \
                         got {faults} x {} = {bits}",
                        1 + channels
                    )));
                }
                let mut concat = gammas.clone();
                for _ in 0..channels {
                    concat.extend_from_slice(&rhos);
                }
                Kernel::Stratified {
                    cond: CountConditionedSampler::new(&concat)?,
                    rounds,
                }
            }
        };
        Ok(RareEventExperiment {
            gammas,
            rhos,
            qs,
            channels,
            threshold: channels - k + 1,
            fault_mask: u64::MAX >> (64 - faults),
            samples: 1 << 16,
            seed: 0,
            threads: 1,
            estimator,
            kernel,
        })
    }

    /// Sets the total sample budget.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Sets the master sweep seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread count (an execution hint; results never depend
    /// on it).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured estimator.
    pub fn estimator(&self) -> RareEstimator {
        self.estimator
    }

    /// The total sample budget.
    pub fn sample_budget(&self) -> usize {
        self.samples
    }

    /// The deterministic cell layout of this run.
    pub fn grid_spec(&self) -> GridSpec {
        GridSpec::new(self.samples, RARE_CELL_SAMPLES)
    }

    /// The exact PFD: `Σᵢ qᵢ·Pᵢ` with
    /// `Pᵢ = γᵢ + (1−γᵢ)·P(Binomial(channels, ρᵢ) ≥ m)`.
    pub fn true_pfd(&self) -> f64 {
        self.fault_failure_probs()
            .iter()
            .zip(&self.qs)
            .map(|(&pi, &q)| q * pi)
            .sum()
    }

    /// The exact per-demand standard deviation of the payoff `Y`
    /// (faults are independent of each other, so the cross terms
    /// vanish): `√(Σᵢ qᵢ²·Pᵢ(1−Pᵢ))`.
    pub fn exact_std_dev(&self) -> f64 {
        self.fault_failure_probs()
            .iter()
            .zip(&self.qs)
            .map(|(&pi, &q)| q * q * pi * (1.0 - pi))
            .sum::<f64>()
            .sqrt()
    }

    /// `Pᵢ = P(fault i defeats the vote)` per fault.
    fn fault_failure_probs(&self) -> Vec<f64> {
        self.gammas
            .iter()
            .zip(&self.rhos)
            .map(|(&gamma, &rho)| {
                gamma + (1.0 - gamma) * binomial_sf(self.channels, rho, self.threshold)
            })
            .collect()
    }

    /// The payoff of one sampled state: `Σᵢ qᵢ` over faults carried by
    /// at least `threshold` channels (a shared-cause bit counts as all
    /// channels at once).
    fn payoff(&self, commons: u64, residuals: &[u64]) -> f64 {
        let mut any = commons;
        for &r in residuals {
            any |= r;
        }
        let mut y = 0.0;
        let mut bits = any & self.fault_mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            let failing = commons >> i & 1 == 1 || {
                let mut c = 0u32;
                for &r in residuals {
                    c += (r >> i & 1) as u32;
                }
                c >= self.threshold
            };
            if failing {
                y += self.qs[i];
            }
            bits &= bits - 1;
        }
        y
    }

    /// Splits a concatenated-universe word (`γ` bits low, then one
    /// `ρ` block per channel) into the layered form and evaluates it.
    fn payoff_concat(&self, word: u64, scratch: &mut Vec<u64>) -> f64 {
        let f = self.qs.len();
        let commons = word & self.fault_mask;
        scratch.clear();
        for ch in 0..self.channels as usize {
            scratch.push(word >> (f * (1 + ch)) & self.fault_mask);
        }
        self.payoff(commons, scratch)
    }

    /// Evaluates one sweep cell: `count` observations from the cell's
    /// split RNG stream. A pure function of `(self, count, seed)` —
    /// the distribution layer calls this on any host and gets the
    /// exact bits the in-process sweep produces.
    pub fn run_cell(&self, count: usize, seed: u64) -> RareAccumulator {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = RareAccumulator::default();
        match &self.kernel {
            Kernel::Layered { common, residual } => {
                let mut resid = vec![0u64; self.channels as usize];
                for _ in 0..count {
                    let cw = common.sample(&mut rng);
                    let mut log_w = common.log_weight(cw);
                    for r in resid.iter_mut() {
                        *r = residual.sample(&mut rng);
                        log_w += residual.log_weight(*r);
                    }
                    acc.weighted.push(log_w, self.payoff(cw, &resid));
                }
            }
            Kernel::Stratified { cond, rounds } => {
                self.run_stratified_cell(cond, *rounds, count, &mut rng, &mut acc);
            }
        }
        acc
    }

    fn run_stratified_cell(
        &self,
        cond: &CountConditionedSampler,
        rounds: u32,
        count: usize,
        rng: &mut StdRng,
        acc: &mut RareAccumulator,
    ) {
        let pmf = cond.count_pmf();
        let strata = STRATA.min(pmf.len());
        let weights = stratum_weights(pmf, strata);
        acc.strata = StratumMoments::with_strata(strata);
        let mut scratch = Vec::with_capacity(self.channels as usize);
        let rounds = rounds.max(1) as usize;
        let base = count / rounds;
        for round in 0..rounds {
            let budget = if round + 1 == rounds {
                count - base * (rounds - 1)
            } else {
                base
            };
            // Round 1 has no variance information: split evenly across
            // positive-probability strata. Later rounds follow Neyman
            // scores Wₕ·σ̂ₕ from everything accumulated so far.
            let scores: Vec<f64> = if round == 0 {
                weights.iter().map(|&w| f64::from(w > 0.0)).collect()
            } else {
                weights
                    .iter()
                    .zip(acc.strata.strata())
                    .map(|(&w, m)| {
                        if w == 0.0 {
                            0.0
                        } else {
                            w * m.sample_variance().unwrap_or(0.0).sqrt()
                        }
                    })
                    .collect()
            };
            let active: Vec<bool> = weights.iter().map(|&w| w > 0.0).collect();
            for (h, n_h) in allocate_budget(budget, &scores, &active)
                .into_iter()
                .enumerate()
            {
                for _ in 0..n_h {
                    let word = if h + 1 < strata {
                        cond.sample_exact(rng, h)
                    } else {
                        cond.sample_at_least(rng, h)
                    };
                    let y = self.payoff_concat(word, &mut scratch);
                    acc.strata.push(h, y);
                }
            }
        }
    }

    /// Runs the full sweep at the configured thread count.
    ///
    /// # Errors
    ///
    /// Estimator-assembly errors from [`Self::finish`].
    pub fn run(&self) -> Result<RareOutcome, DevSimError> {
        let grid = self.grid_spec().grid(self.seed);
        let acc = run_sweep(grid.cells(), self.threads, |cell| {
            self.run_cell(cell.config, cell.seed)
        })
        .expect("grid has at least one cell");
        self.finish(acc)
    }

    /// Assembles the outcome from a fully folded accumulator —
    /// bit-identical whether the cells ran in-process or across a
    /// fleet.
    ///
    /// # Errors
    ///
    /// [`DevSimError::Numerics`] if the accumulator holds too few
    /// observations for a variance, or a positive-probability stratum
    /// was never sampled.
    pub fn finish(&self, acc: RareAccumulator) -> Result<RareOutcome, DevSimError> {
        let true_pfd = self.true_pfd();
        match &self.kernel {
            Kernel::Layered { .. } => {
                let estimate = acc.weighted.estimate();
                let std_error = acc.weighted.std_error()?;
                let relative_error = acc.weighted.relative_error()?;
                Ok(RareOutcome {
                    estimate,
                    std_error,
                    relative_error,
                    ess: acc.weighted.ess(),
                    samples: acc.weighted.count(),
                    true_pfd,
                })
            }
            Kernel::Stratified { cond, .. } => {
                let pmf = cond.count_pmf();
                let strata = STRATA.min(pmf.len());
                let weights = stratum_weights(pmf, strata);
                let (estimate, std_error) = acc.strata.stratified_estimate(&weights)?;
                let relative_error = if estimate > 0.0 {
                    std_error / estimate
                } else {
                    f64::INFINITY
                };
                let samples = acc.strata.count();
                Ok(RareOutcome {
                    estimate,
                    std_error,
                    relative_error,
                    ess: samples as f64,
                    samples,
                    true_pfd,
                })
            }
        }
    }
}

/// Stratum probabilities from a count PMF: exact counts `0..strata-1`,
/// the final stratum absorbing the whole remaining tail.
fn stratum_weights(pmf: &[f64], strata: usize) -> Vec<f64> {
    let mut w: Vec<f64> = pmf[..strata - 1].to_vec();
    w.push(pmf[strata - 1..].iter().sum());
    w
}

/// Deterministic integer allocation of `budget` draws over strata:
/// every active stratum gets one draw first (so variance estimates
/// keep refining), then the remainder follows `scores` by the largest-
/// remainder method with index-order tie-breaking. A pure function of
/// its arguments — allocation never depends on scheduling.
fn allocate_budget(budget: usize, scores: &[f64], active: &[bool]) -> Vec<usize> {
    let h = scores.len();
    let mut out = vec![0usize; h];
    let mut left = budget;
    for (i, &a) in active.iter().enumerate() {
        if left == 0 {
            return out;
        }
        if a {
            out[i] = 1;
            left -= 1;
        }
    }
    let total: f64 = scores
        .iter()
        .zip(active)
        .filter(|&(_, &a)| a)
        .map(|(&s, _)| s)
        .sum();
    if left == 0 {
        return out;
    }
    if total <= 0.0 {
        // No variance signal yet: spread evenly over active strata.
        let n_active = active.iter().filter(|&&a| a).count().max(1);
        let each = left / n_active;
        let mut rem = left - each * n_active;
        for (i, &a) in active.iter().enumerate() {
            if a {
                out[i] += each + usize::from(rem > 0);
                rem = rem.saturating_sub(1);
            }
        }
        return out;
    }
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(h);
    let mut assigned = 0usize;
    for (i, (&s, &a)) in scores.iter().zip(active).enumerate() {
        if !a || s <= 0.0 {
            fracs.push((i, 0.0));
            continue;
        }
        let share = s / total * left as f64;
        let floor = share.floor() as usize;
        out[i] += floor;
        assigned += floor;
        fracs.push((i, share - floor as f64));
    }
    let mut rem = left - assigned.min(left);
    // Largest fractional part first; ties resolve to the lower index.
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for (i, _) in fracs {
        if rem == 0 {
            break;
        }
        if active[i] {
            out[i] += 1;
            rem -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_model::FaultModel;

    fn shared(beta: f64) -> SharedCauseModel {
        let base = FaultModel::from_params(
            &[0.02, 0.05, 0.01, 0.08, 0.03],
            &[0.04, 0.01, 0.09, 0.02, 0.05],
        )
        .unwrap();
        SharedCauseModel::new(base, beta).unwrap()
    }

    fn rare_shared() -> SharedCauseModel {
        let base = FaultModel::from_params(
            &[1e-3, 2e-3, 5e-4, 1.5e-3, 8e-4, 1e-3],
            &[0.005, 0.003, 0.008, 0.004, 0.006, 0.005],
        )
        .unwrap();
        SharedCauseModel::new(base, 0.002).unwrap()
    }

    #[test]
    fn binomial_sf_matches_direct_enumeration() {
        // n = 3, p = 0.2: P(X >= 2) = 3·0.04·0.8 + 0.008 = 0.104
        assert!((binomial_sf(3, 0.2, 2) - 0.104).abs() < 1e-12);
        assert_eq!(binomial_sf(3, 0.2, 0), 1.0);
        assert_eq!(binomial_sf(3, 0.0, 1), 0.0);
        assert_eq!(binomial_sf(3, 1.0, 3), 1.0);
        assert_eq!(binomial_sf(3, 0.5, 4), 0.0);
        // Tiny p: P(X >= 3) = p³ exactly (one term dominates).
        let p = 1e-4;
        let sf = binomial_sf(3, p, 3);
        assert!((sf - p * p * p).abs() < 1e-24);
    }

    #[test]
    fn true_pfd_matches_shared_cause_model_at_k_equals_one() {
        // k = 1 (1-out-of-N): the vote is defeated only when ALL
        // channels carry the fault — exactly mean_pfd(channels).
        let m = shared(0.15);
        for channels in [1u32, 2, 3] {
            let exp =
                RareEventExperiment::from_shared(&m, channels, 1, RareEstimator::Naive).unwrap();
            assert!(
                (exp.true_pfd() - m.mean_pfd(channels)).abs() < 1e-15,
                "channels = {channels}"
            );
        }
    }

    #[test]
    fn naive_estimate_converges_to_the_closed_form() {
        // Moderate probabilities so the naive estimator converges fast.
        let m = shared(0.1);
        let exp = RareEventExperiment::from_shared(&m, 3, 2, RareEstimator::Naive)
            .unwrap()
            .samples(200_000)
            .seed(41)
            .threads(2);
        let out = exp.run().unwrap();
        assert!(
            (out.estimate - out.true_pfd).abs() < 4.0 * out.std_error + 1e-12,
            "estimate {} vs true {} (se {})",
            out.estimate,
            out.true_pfd,
            out.std_error
        );
        assert!((out.ess - out.samples as f64).abs() < 1e-6);
    }

    #[test]
    fn tilted_estimate_is_unbiased_on_a_rare_system() {
        let m = rare_shared();
        let exp = RareEventExperiment::from_shared(
            &m,
            3,
            2,
            RareEstimator::ImportanceTilt { theta: 5.0 },
        )
        .unwrap()
        .samples(1 << 16)
        .seed(42)
        .threads(2);
        let out = exp.run().unwrap();
        assert!(
            out.true_pfd > 1e-8 && out.true_pfd < 1e-6,
            "{}",
            out.true_pfd
        );
        assert!(
            (out.estimate - out.true_pfd).abs() < 5.0 * out.std_error,
            "estimate {} vs true {} (se {})",
            out.estimate,
            out.true_pfd,
            out.std_error
        );
        // The tilt must be a real variance reduction at this budget.
        assert!(out.relative_error < 0.2, "rel err {}", out.relative_error);
        assert!(out.ess > 0.0 && out.ess < out.samples as f64);
    }

    #[test]
    fn stratified_estimate_is_unbiased_on_a_rare_system() {
        let m = rare_shared();
        let exp = RareEventExperiment::from_shared(
            &m,
            3,
            2,
            RareEstimator::StratifyByCount { rounds: 3 },
        )
        .unwrap()
        .samples(1 << 16)
        .seed(43)
        .threads(2);
        let out = exp.run().unwrap();
        assert!(
            (out.estimate - out.true_pfd).abs() < 5.0 * out.std_error,
            "estimate {} vs true {} (se {})",
            out.estimate,
            out.true_pfd,
            out.std_error
        );
        assert!(out.relative_error < 0.2, "rel err {}", out.relative_error);
    }

    #[test]
    fn all_estimators_are_thread_invariant_bit_for_bit() {
        let m = rare_shared();
        for est in [
            RareEstimator::Naive,
            RareEstimator::ImportanceTilt { theta: 4.0 },
            RareEstimator::StratifyByCount { rounds: 2 },
        ] {
            let run = |threads: usize| {
                RareEventExperiment::from_shared(&m, 3, 2, est)
                    .unwrap()
                    .samples(20_000)
                    .seed(7)
                    .threads(threads)
                    .run()
                    .unwrap()
            };
            let base = run(1);
            for threads in [2, 7] {
                let r = run(threads);
                assert_eq!(
                    r.estimate.to_bits(),
                    base.estimate.to_bits(),
                    "{est:?} threads = {threads}"
                );
                assert_eq!(
                    r.std_error.to_bits(),
                    base.std_error.to_bits(),
                    "{est:?} threads = {threads}"
                );
                assert_eq!(r.samples, base.samples);
            }
        }
    }

    #[test]
    fn cell_level_wire_round_trip_reassembles_bit_identically() {
        let m = rare_shared();
        for est in [
            RareEstimator::ImportanceTilt { theta: 5.0 },
            RareEstimator::StratifyByCount { rounds: 2 },
        ] {
            let exp = RareEventExperiment::from_shared(&m, 3, 2, est)
                .unwrap()
                .samples(3 * RARE_CELL_SAMPLES + 17)
                .seed(9);
            let direct = exp.run().unwrap();
            // Evaluate each cell independently, ship through JSON wire
            // text, fold in canonical order, assemble.
            let grid = exp.grid_spec().grid(9);
            let mut acc: Option<RareAccumulator> = None;
            for cell in grid.cells() {
                let a = exp.run_cell(cell.config, cell.seed);
                let json = serde_json::to_string(&a.to_wire()).unwrap();
                let wire: Wire = serde_json::from_str(&json).unwrap();
                let back = RareAccumulator::from_wire(&wire).unwrap();
                assert_eq!(back, a);
                match acc.as_mut() {
                    Some(x) => x.absorb(back),
                    None => acc = Some(back),
                }
            }
            let refolded = exp.finish(acc.unwrap()).unwrap();
            assert_eq!(refolded.estimate.to_bits(), direct.estimate.to_bits());
            assert_eq!(refolded.std_error.to_bits(), direct.std_error.to_bits());
        }
    }

    #[test]
    fn zero_tilt_reproduces_the_naive_stream_exactly() {
        let m = shared(0.05);
        let run = |est| {
            RareEventExperiment::from_shared(&m, 2, 1, est)
                .unwrap()
                .samples(10_000)
                .seed(5)
                .run()
                .unwrap()
        };
        let naive = run(RareEstimator::Naive);
        let zero_tilt = run(RareEstimator::ImportanceTilt { theta: 0.0 });
        assert_eq!(naive.estimate.to_bits(), zero_tilt.estimate.to_bits());
        assert_eq!(naive.ess.to_bits(), zero_tilt.ess.to_bits());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let m = shared(0.1);
        assert!(RareEventExperiment::from_shared(&m, 0, 1, RareEstimator::Naive).is_err());
        assert!(RareEventExperiment::from_shared(&m, 2, 3, RareEstimator::Naive).is_err());
        assert!(RareEventExperiment::from_shared(
            &m,
            2,
            1,
            RareEstimator::ImportanceTilt { theta: -1.0 }
        )
        .is_err());
        assert!(RareEventExperiment::from_shared(
            &m,
            2,
            1,
            RareEstimator::StratifyByCount { rounds: 0 }
        )
        .is_err());
        // 5 faults x (1 + 15 channels) = 80 bits > 64.
        assert!(RareEventExperiment::from_shared(
            &m,
            15,
            1,
            RareEstimator::StratifyByCount { rounds: 2 }
        )
        .is_err());
    }

    #[test]
    fn allocate_budget_is_exact_and_deterministic() {
        // Scores drive the split; every active stratum keeps >= 1.
        let out = allocate_budget(100, &[0.0, 1.0, 3.0], &[true, true, true]);
        assert_eq!(out.iter().sum::<usize>(), 100);
        assert!(out[0] >= 1 && out[1] >= 1 && out[2] >= 1);
        assert!(out[2] > out[1]);
        // Inactive strata get nothing.
        let out = allocate_budget(10, &[1.0, 1.0, 1.0], &[true, false, true]);
        assert_eq!(out[1], 0);
        assert_eq!(out.iter().sum::<usize>(), 10);
        // No signal: even split.
        let out = allocate_budget(9, &[0.0, 0.0, 0.0], &[true, true, true]);
        assert_eq!(out.iter().sum::<usize>(), 9);
        assert!(out.iter().all(|&n| n >= 2));
        // Budget smaller than the stratum count: prefix gets it.
        let out = allocate_budget(2, &[1.0, 1.0, 1.0], &[true, true, true]);
        assert_eq!(out, vec![1, 1, 0]);
    }

    #[test]
    fn stratum_weights_cover_the_whole_pmf() {
        let pmf = [0.5, 0.3, 0.1, 0.05, 0.03, 0.01, 0.005, 0.003, 0.002];
        let w = stratum_weights(&pmf, 4);
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[3] - 0.1f64).abs() < 1e-12); // 0.05+0.03+0.01+0.005+0.003+0.002
    }
}
