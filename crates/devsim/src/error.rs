//! Error type for the development-process simulator.

use std::fmt;

/// Errors produced by the Monte-Carlo layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DevSimError {
    /// A configuration parameter was invalid (message explains which).
    InvalidConfig(String),
    /// Not enough samples were requested for the statistic to be defined.
    TooFewSamples {
        /// Samples requested.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A propagated model error.
    Model(divrel_model::ModelError),
    /// A propagated numerics error.
    Numerics(divrel_numerics::NumericsError),
}

impl fmt::Display for DevSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevSimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DevSimError::TooFewSamples { got, need } => {
                write!(f, "need at least {need} samples, got {got}")
            }
            DevSimError::Model(e) => write!(f, "model error: {e}"),
            DevSimError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for DevSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DevSimError::Model(e) => Some(e),
            DevSimError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<divrel_model::ModelError> for DevSimError {
    fn from(e: divrel_model::ModelError) -> Self {
        DevSimError::Model(e)
    }
}

impl From<divrel_numerics::NumericsError> for DevSimError {
    fn from(e: divrel_numerics::NumericsError) -> Self {
        DevSimError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        assert!(DevSimError::InvalidConfig("bad lambda".into())
            .to_string()
            .contains("bad lambda"));
        assert!(DevSimError::TooFewSamples { got: 1, need: 2 }
            .to_string()
            .contains("at least 2"));
        let m = DevSimError::from(divrel_model::ModelError::EmptyModel);
        assert!(m.source().is_some());
        let n = DevSimError::from(divrel_numerics::NumericsError::EmptyData("x"));
        assert!(n.source().is_some());
        assert!(DevSimError::InvalidConfig(String::new()).source().is_none());
    }
}
