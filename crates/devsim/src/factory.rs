//! Version factory: turns a fault model plus an introduction model into a
//! stream of sampled versions and 1-out-of-2 pairs.
//!
//! This is the executable form of the paper's thought experiment of
//! "sampling from a distribution of possible versions" (§2.2, after
//! Eckhardt & Lee / Littlewood & Miller).
//!
//! Sampling runs on the bitset fast path
//! ([`crate::sampler::BitSampler`]): fault sets are drawn straight
//! into word-packed [`FaultSet`]s with expected `O(#present + 1)` RNG
//! draws, PFDs are summed by iterating set bits, and a pair's common
//! faults are one AND + popcount. The distribution is exactly that of
//! the reference one-draw-per-fault sampler
//! ([`FaultIntroduction::sample_version`]), which is kept available via
//! [`VersionFactory::sample_pair_reference`] for equivalence tests and
//! before/after benchmarks.

use crate::process::FaultIntroduction;
use crate::sampler::BitSampler;
use divrel_demand::fault_set::FaultSet;
use divrel_model::FaultModel;
use rand::Rng;
use std::sync::Arc;

/// One sampled version: its fault set and PFD under the model's
/// non-overlap semantics (`PFD = Σ qᵢ` over present faults).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledVersion {
    /// The version's fault set.
    pub faults: FaultSet,
    /// The version's PFD.
    pub pfd: f64,
}

impl SampledVersion {
    /// Number of faults in the version.
    pub fn fault_count(&self) -> usize {
        self.faults.count()
    }

    /// Whether the version is fault-free.
    pub fn is_fault_free(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault set as one `bool` per potential fault (the legacy
    /// representation).
    pub fn present_bools(&self) -> Vec<bool> {
        self.faults.to_bools()
    }
}

/// One sampled 1-out-of-2 pair: both versions plus the pair's common-fault
/// PFD.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledPair {
    /// First independently developed version.
    pub a: SampledVersion,
    /// Second independently developed version.
    pub b: SampledVersion,
    /// PFD of the 1-out-of-2 system: `Σ qᵢ` over faults common to both.
    pub pfd: f64,
    /// Number of common faults.
    pub common_faults: usize,
}

impl SampledPair {
    /// An all-empty pair over `n` potential faults, for use as a
    /// reusable buffer with [`VersionFactory::sample_pair_into`].
    pub fn empty(n: usize) -> Self {
        SampledPair {
            a: SampledVersion {
                faults: FaultSet::new(n),
                pfd: 0.0,
            },
            b: SampledVersion {
                faults: FaultSet::new(n),
                pfd: 0.0,
            },
            pfd: 0.0,
            common_faults: 0,
        }
    }
}

/// Samples versions and pairs from a fault model under a chosen
/// introduction model.
///
/// ```
/// use divrel_devsim::{factory::VersionFactory, process::FaultIntroduction};
/// use divrel_model::FaultModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(5, 0.2, 0.01)?;
/// let factory = VersionFactory::new(model, FaultIntroduction::Independent)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let pair = factory.sample_pair(&mut rng);
/// assert!(pair.pfd <= pair.a.pfd.min(pair.b.pfd) + 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VersionFactory {
    model: Arc<FaultModel>,
    introduction: FaultIntroduction,
    q: Vec<f64>,
    sampler: BitSampler,
}

impl VersionFactory {
    /// Creates a factory (precomputing the fast-path sampling tables).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultIntroduction::validate`].
    pub fn new(
        model: FaultModel,
        introduction: FaultIntroduction,
    ) -> Result<Self, crate::error::DevSimError> {
        Self::shared(Arc::new(model), introduction)
    }

    /// Creates a factory over a **shared** fault model: the factory keeps
    /// the `Arc` instead of a deep copy, so sweep workers that build a
    /// factory per cell pay one refcount bump rather than cloning the
    /// model's fault vector (the ROADMAP allocation hot spot at
    /// 100k-cell scales).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultIntroduction::validate`].
    pub fn shared(
        model: Arc<FaultModel>,
        introduction: FaultIntroduction,
    ) -> Result<Self, crate::error::DevSimError> {
        introduction.validate()?;
        let q = model.q_values().collect();
        let sampler = BitSampler::new(&model, introduction);
        Ok(VersionFactory {
            model,
            introduction,
            q,
            sampler,
        })
    }

    /// The underlying fault model.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// The shared handle to the fault model (an `Arc` clone is a
    /// refcount bump, not a model copy).
    pub fn model_shared(&self) -> Arc<FaultModel> {
        Arc::clone(&self.model)
    }

    /// The introduction model in use.
    pub fn introduction(&self) -> FaultIntroduction {
        self.introduction
    }

    /// Samples one version (bitset fast path).
    pub fn sample_version<R: Rng + ?Sized>(&self, rng: &mut R) -> SampledVersion {
        let mut faults = FaultSet::new(self.model.len());
        self.sampler.sample_into(rng, &mut faults);
        let pfd = faults.sum_weights(&self.q);
        SampledVersion { faults, pfd }
    }

    /// Samples a 1-out-of-2 pair: two versions developed separately (two
    /// independent draws of the introduction model).
    pub fn sample_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> SampledPair {
        let mut pair = SampledPair::empty(self.model.len());
        self.sample_pair_into(rng, &mut pair);
        pair
    }

    /// Samples a pair into a reusable buffer: the zero-allocation form
    /// of [`Self::sample_pair`] used by the Monte-Carlo shard loops.
    pub fn sample_pair_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut SampledPair) {
        self.sampler
            .sample_pair_into(rng, &mut out.a.faults, &mut out.b.faults);
        out.a.pfd = out.a.faults.sum_weights(&self.q);
        out.b.pfd = out.b.faults.sum_weights(&self.q);
        out.pfd = out.a.faults.intersect_sum_weights(&out.b.faults, &self.q);
        out.common_faults = out.a.faults.intersect_count(&out.b.faults);
    }

    /// Samples a pair with the reference one-draw-per-fault sampler —
    /// the exact seed-stream semantics of the original `Vec<bool>`
    /// implementation, kept for equivalence tests and before/after
    /// benchmarking of the fast path.
    pub fn sample_pair_reference<R: Rng + ?Sized>(&self, rng: &mut R) -> SampledPair {
        let pa = self.introduction.sample_version(&self.model, rng);
        let pb = self.introduction.sample_version(&self.model, rng);
        let mut pfd = 0.0;
        let mut common = 0usize;
        for i in 0..self.q.len() {
            if pa[i] && pb[i] {
                pfd += self.q[i];
                common += 1;
            }
        }
        SampledPair {
            a: SampledVersion {
                pfd: self.pfd_of(&pa),
                faults: FaultSet::from_bools(&pa),
            },
            b: SampledVersion {
                pfd: self.pfd_of(&pb),
                faults: FaultSet::from_bools(&pb),
            },
            pfd,
            common_faults: common,
        }
    }

    /// PFD of an explicit fault set under the model's sum semantics.
    pub fn pfd_of(&self, present: &[bool]) -> f64 {
        present
            .iter()
            .zip(&self.q)
            .filter(|(&b, _)| b)
            .map(|(_, &q)| q)
            .sum()
    }

    /// PFD of a bitset fault set under the model's sum semantics.
    pub fn pfd_of_set(&self, faults: &FaultSet) -> f64 {
        faults.sum_weights(&self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factory() -> VersionFactory {
        let model = FaultModel::from_params(&[0.5, 0.2, 0.1], &[0.01, 0.02, 0.04]).unwrap();
        VersionFactory::new(model, FaultIntroduction::Independent).unwrap()
    }

    #[test]
    fn rejects_invalid_introduction() {
        let model = FaultModel::uniform(2, 0.1, 0.01).unwrap();
        assert!(
            VersionFactory::new(model, FaultIntroduction::CommonCause { lambda: 2.0 }).is_err()
        );
    }

    #[test]
    fn pfd_of_explicit_sets() {
        let f = factory();
        assert_eq!(f.pfd_of(&[false, false, false]), 0.0);
        assert!((f.pfd_of(&[true, false, true]) - 0.05).abs() < 1e-15);
        assert!((f.pfd_of(&[true, true, true]) - 0.07).abs() < 1e-15);
        let set = FaultSet::from_bools(&[true, false, true]);
        assert!((f.pfd_of_set(&set) - 0.05).abs() < 1e-15);
    }

    #[test]
    fn sampled_version_consistency() {
        let f = factory();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let v = f.sample_version(&mut rng);
            assert_eq!(v.faults.universe(), 3);
            assert!((v.pfd - f.pfd_of_set(&v.faults)).abs() < 1e-15);
            assert!((v.pfd - f.pfd_of(&v.present_bools())).abs() < 1e-15);
            assert_eq!(v.is_fault_free(), v.fault_count() == 0);
        }
    }

    #[test]
    fn pair_pfd_is_common_fault_mass() {
        let f = factory();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let p = f.sample_pair(&mut rng);
            // Pair PFD can never exceed either member's PFD.
            assert!(p.pfd <= p.a.pfd + 1e-15);
            assert!(p.pfd <= p.b.pfd + 1e-15);
            // Recompute by hand.
            let mut expect = 0.0;
            for i in 0..3 {
                if p.a.faults.contains(i) && p.b.faults.contains(i) {
                    expect += f.model().faults()[i].q();
                }
            }
            assert!((p.pfd - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn fast_and_reference_paths_agree_in_distribution() {
        // Same factory, different RNG consumption: means must agree
        // within Monte-Carlo error.
        let f = factory();
        let n = 60_000;
        let mut fast_mean = 0.0;
        let mut ref_mean = 0.0;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..n {
            fast_mean += f.sample_pair(&mut rng).pfd;
        }
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..n {
            ref_mean += f.sample_pair_reference(&mut rng).pfd;
        }
        fast_mean /= n as f64;
        ref_mean /= n as f64;
        let mu2 = f.model().mean_pfd_pair();
        let tol = 6.0 * f.model().std_pfd_pair() / (n as f64).sqrt();
        assert!((fast_mean - mu2).abs() < tol, "fast {fast_mean} vs {mu2}");
        assert!((ref_mean - mu2).abs() < tol, "ref {ref_mean} vs {mu2}");
    }

    #[test]
    fn sample_pair_into_reuses_buffer() {
        let f = factory();
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = SampledPair::empty(3);
        let mut rng2 = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            f.sample_pair_into(&mut rng, &mut buf);
            let owned = f.sample_pair(&mut rng2);
            assert_eq!(buf, owned);
        }
    }

    #[test]
    fn empirical_mean_matches_eq1() {
        let f = factory();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut sum1 = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let p = f.sample_pair(&mut rng);
            sum1 += p.a.pfd;
            sum2 += p.pfd;
        }
        let mu1 = f.model().mean_pfd_single();
        let mu2 = f.model().mean_pfd_pair();
        // Std error of the mean ~ sigma/sqrt(n); use generous 6-sigma bands.
        assert!(
            (sum1 / n as f64 - mu1).abs() < 6.0 * f.model().std_pfd_single() / (n as f64).sqrt()
        );
        assert!((sum2 / n as f64 - mu2).abs() < 6.0 * f.model().std_pfd_pair() / (n as f64).sqrt());
    }

    #[test]
    fn accessors() {
        let f = factory();
        assert_eq!(f.introduction(), FaultIntroduction::Independent);
        assert_eq!(f.model().len(), 3);
    }
}
