//! Monte-Carlo experiments over the fault-creation process.
//!
//! Estimates, with confidence intervals, every quantity the analytic model
//! predicts — eq (1)–(3) moments, §4 fault-free probabilities and the
//! eq (10) risk ratio — so the model can be checked against its own
//! sampling semantics (experiment E1) and against the §6.1 correlated
//! variants the analytic model does *not* cover (experiment E13).
//!
//! The driver runs on the [`crate::sweep`] engine: samples are cut into
//! fixed-size grid cells whose RNG streams are split from the experiment
//! seed by counter-based SplitMix64 ([`divrel_numerics::sweep::split_seed`]),
//! executed by work-stealing workers and reduced in canonical cell order —
//! so the results are **bit-identical for every thread count**, not merely
//! statistically close.

use crate::error::DevSimError;
use crate::factory::VersionFactory;
use crate::process::FaultIntroduction;
use crate::sweep::{run_sweep, GridSpec};
use divrel_model::FaultModel;
use divrel_numerics::descriptive::Moments;
use divrel_numerics::normal::standard_quantile;
use divrel_numerics::sweep::SweepReduce;
use divrel_numerics::wire::{Wire, WireError, WireForm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summary statistics for one system level (single version or pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// Empirical mean PFD.
    pub mean_pfd: f64,
    /// Empirical standard deviation of the PFD.
    pub std_pfd: f64,
    /// Fraction of samples with zero (common) faults.
    pub fault_free_rate: f64,
    /// Mean number of (common) faults.
    pub mean_fault_count: f64,
}

/// A Wilson-score confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionCi {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Wilson score interval for `successes` out of `trials` at the given
/// confidence level.
///
/// # Errors
///
/// [`DevSimError::TooFewSamples`] for `trials == 0`;
/// [`DevSimError::InvalidConfig`] for `successes > trials` or a confidence
/// outside `(0, 1)`.
///
/// ```
/// use divrel_devsim::experiment::wilson_ci;
/// let ci = wilson_ci(8, 10, 0.95)?;
/// assert!(ci.lo < 0.8 && 0.8 < ci.hi);
/// assert!(ci.lo > 0.4 && ci.hi < 0.98);
/// # Ok::<(), divrel_devsim::DevSimError>(())
/// ```
pub fn wilson_ci(
    successes: u64,
    trials: u64,
    confidence: f64,
) -> Result<ProportionCi, DevSimError> {
    if trials == 0 {
        return Err(DevSimError::TooFewSamples { got: 0, need: 1 });
    }
    if successes > trials {
        return Err(DevSimError::InvalidConfig(format!(
            "{successes} successes out of {trials} trials"
        )));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(DevSimError::InvalidConfig(format!(
            "confidence {confidence} not in (0, 1)"
        )));
    }
    let z = standard_quantile(0.5 + confidence / 2.0)?;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(ProportionCi {
        estimate: p,
        lo: (centre - half).max(0.0),
        hi: (centre + half).min(1.0),
    })
}

/// Results of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Number of pairs sampled (each pair contributes one single-version
    /// observation from its first member to keep observations independent).
    pub samples: usize,
    /// Statistics of single versions.
    pub single: LevelStats,
    /// Statistics of 1-out-of-2 pairs.
    pub pair: LevelStats,
    /// Empirical eq (10) risk ratio
    /// `#(pairs with common faults) / #(versions with faults)`.
    pub risk_ratio: Option<f64>,
    /// Wilson CI (95%) on `P(N₁ > 0)`.
    pub risk_single_ci: ProportionCi,
    /// Wilson CI (95%) on `P(N₂ > 0)`.
    pub risk_pair_ci: ProportionCi,
}

/// A configurable Monte-Carlo experiment (consuming builder).
#[derive(Debug, Clone)]
pub struct MonteCarloExperiment {
    model: FaultModel,
    introduction: FaultIntroduction,
    samples: usize,
    seed: u64,
    threads: usize,
}

impl MonteCarloExperiment {
    /// Creates an experiment with defaults: 100 000 samples, seed 0, one
    /// thread per available CPU (capped at 8).
    pub fn new(model: FaultModel, introduction: FaultIntroduction) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        MonteCarloExperiment {
            model,
            introduction,
            samples: 100_000,
            seed: 0,
            threads,
        }
    }

    /// Sets the number of sampled pairs.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the RNG seed. Results are bit-reproducible per seed and
    /// **independent of the thread count**: the sweep-cell layout depends
    /// only on the sample count, and each cell's stream only on
    /// `(seed, cell index)`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (an execution hint only — the
    /// results do not depend on it).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs the experiment on the deterministic sweep engine.
    ///
    /// # Errors
    ///
    /// [`DevSimError::TooFewSamples`] for fewer than 2 samples; factory
    /// validation errors otherwise.
    pub fn run(&self) -> Result<ExperimentResult, DevSimError> {
        let factory = self.factory()?;
        let grid = self.grid_spec().grid(self.seed);
        let acc = run_sweep(grid.cells(), self.threads, |cell| {
            run_cell(&factory, cell.config, cell.seed)
        })
        .expect("at least one cell for samples >= 2");
        self.finish(acc)
    }

    /// The version factory this experiment samples from — built the
    /// same way [`Self::run`] builds it, so external executors (the
    /// distributed sweep runtime) evaluate cells with identical bits.
    ///
    /// # Errors
    ///
    /// [`DevSimError::TooFewSamples`] for fewer than 2 samples; factory
    /// validation errors otherwise.
    pub fn factory(&self) -> Result<VersionFactory, DevSimError> {
        if self.samples < 2 {
            return Err(DevSimError::TooFewSamples {
                got: self.samples,
                need: 2,
            });
        }
        VersionFactory::new(self.model.clone(), self.introduction)
    }

    /// Converts the fully-folded cell accumulator into the experiment
    /// result. `acc` must be the canonical-order fold of every grid
    /// cell's [`run_cell`] output (in-process or shipped over the wire
    /// — the bits are the same either way).
    ///
    /// # Errors
    ///
    /// Statistics errors for an accumulator that does not cover the
    /// experiment's sample count.
    pub fn finish(&self, acc: McAccumulator) -> Result<ExperimentResult, DevSimError> {
        let n = self.samples as u64;
        let risk_single_ci = wilson_ci(acc.single_with_faults, n, 0.95)?;
        let risk_pair_ci = wilson_ci(acc.pair_with_common, n, 0.95)?;
        let risk_ratio = if acc.single_with_faults > 0 {
            Some(acc.pair_with_common as f64 / acc.single_with_faults as f64)
        } else {
            None
        };
        Ok(ExperimentResult {
            samples: self.samples,
            single: LevelStats {
                mean_pfd: acc.single_pfd.mean().map_err(DevSimError::from)?,
                std_pfd: acc.single_pfd.sample_std_dev().map_err(DevSimError::from)?,
                fault_free_rate: 1.0 - acc.single_with_faults as f64 / n as f64,
                mean_fault_count: acc.single_faults as f64 / n as f64,
            },
            pair: LevelStats {
                mean_pfd: acc.pair_pfd.mean().map_err(DevSimError::from)?,
                std_pfd: acc.pair_pfd.sample_std_dev().map_err(DevSimError::from)?,
                fault_free_rate: 1.0 - acc.pair_with_common as f64 / n as f64,
                mean_fault_count: acc.pair_faults as f64 / n as f64,
            },
            risk_ratio,
            risk_single_ci,
            risk_pair_ci,
        })
    }

    /// The declarative grid layout of this experiment: the sample budget
    /// in cells of [`MC_CELL_SAMPLES`]. A function of `samples` alone —
    /// never of the thread count — which is what makes the reduced
    /// result thread-invariant.
    pub fn grid_spec(&self) -> GridSpec {
        GridSpec::new(self.samples, MC_CELL_SAMPLES)
    }

    /// Draws the raw PFD samples `(single-version PFDs, pair PFDs)`
    /// instead of summary statistics — for ECDFs, histograms and
    /// goodness-of-fit tests against the exact distribution.
    ///
    /// Single-threaded and seed-deterministic.
    ///
    /// # Errors
    ///
    /// Factory validation errors.
    pub fn sample_pfds(&self) -> Result<(Vec<f64>, Vec<f64>), DevSimError> {
        let factory = VersionFactory::new(self.model.clone(), self.introduction)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut singles = Vec::with_capacity(self.samples);
        let mut pairs = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let p = factory.sample_pair(&mut rng);
            singles.push(p.a.pfd);
            pairs.push(p.pfd);
        }
        Ok((singles, pairs))
    }
}

/// Samples per sweep cell of the Monte-Carlo driver. Small enough to
/// keep plenty of cells for work stealing at 10k-sample grids, large
/// enough that per-cell overhead (RNG seeding, accumulator merge) is
/// noise.
const MC_CELL_SAMPLES: usize = 2048;

/// The mergeable per-cell accumulator of the Monte-Carlo driver:
/// Welford partials of the PFD samples plus the fault counters. Public
/// so distributed executors can evaluate grid cells remotely
/// ([`run_cell`]) and ship the partials home ([`WireForm`]) for the
/// canonical-order fold that [`MonteCarloExperiment::finish`] consumes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct McAccumulator {
    single_pfd: Moments,
    pair_pfd: Moments,
    single_with_faults: u64,
    pair_with_common: u64,
    single_faults: u64,
    pair_faults: u64,
}

impl SweepReduce for McAccumulator {
    fn absorb(&mut self, other: Self) {
        self.single_pfd.merge(&other.single_pfd);
        self.pair_pfd.merge(&other.pair_pfd);
        self.single_with_faults += other.single_with_faults;
        self.pair_with_common += other.pair_with_common;
        self.single_faults += other.single_faults;
        self.pair_faults += other.pair_faults;
    }
}

impl WireForm for McAccumulator {
    fn to_wire(&self) -> Wire {
        Wire::record([
            ("single_pfd", self.single_pfd.to_wire()),
            ("pair_pfd", self.pair_pfd.to_wire()),
            ("single_with_faults", Wire::U64(self.single_with_faults)),
            ("pair_with_common", Wire::U64(self.pair_with_common)),
            ("single_faults", Wire::U64(self.single_faults)),
            ("pair_faults", Wire::U64(self.pair_faults)),
        ])
    }

    fn from_wire(wire: &Wire) -> Result<Self, WireError> {
        Ok(McAccumulator {
            single_pfd: Moments::from_wire(wire.field("single_pfd")?)?,
            pair_pfd: Moments::from_wire(wire.field("pair_pfd")?)?,
            single_with_faults: wire.field("single_with_faults")?.as_u64()?,
            pair_with_common: wire.field("pair_with_common")?.as_u64()?,
            single_faults: wire.field("single_faults")?.as_u64()?,
            pair_faults: wire.field("pair_faults")?.as_u64()?,
        })
    }
}

/// Evaluates one Monte-Carlo grid cell: `count` sampled pairs from the
/// split stream `seed`. A pure function of its arguments, so any worker
/// anywhere reproduces the exact cell bits.
pub fn run_cell(factory: &VersionFactory, count: usize, seed: u64) -> McAccumulator {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = McAccumulator::default();
    // One reusable pair buffer per shard: the sampling loop allocates
    // nothing per iteration.
    let mut pair = crate::factory::SampledPair::empty(factory.model().len());
    for _ in 0..count {
        factory.sample_pair_into(&mut rng, &mut pair);
        acc.single_pfd.push(pair.a.pfd);
        acc.pair_pfd.push(pair.pfd);
        let fc = pair.a.fault_count() as u64;
        acc.single_faults += fc;
        if fc > 0 {
            acc.single_with_faults += 1;
        }
        acc.pair_faults += pair.common_faults as u64;
        if pair.common_faults > 0 {
            acc.pair_with_common += 1;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel::from_params(&[0.4, 0.2, 0.1, 0.05], &[0.01, 0.02, 0.03, 0.04]).unwrap()
    }

    #[test]
    fn wilson_ci_basics() {
        let ci = wilson_ci(50, 100, 0.95).unwrap();
        assert!((ci.estimate - 0.5).abs() < 1e-15);
        assert!(ci.lo < 0.5 && ci.hi > 0.5);
        assert!(ci.lo > 0.39 && ci.hi < 0.61);
        // Extremes stay within [0, 1].
        let ci = wilson_ci(0, 10, 0.95).unwrap();
        assert_eq!(ci.estimate, 0.0);
        assert!(ci.lo.abs() < 1e-12);
        assert!(ci.hi > 0.0);
        let ci = wilson_ci(10, 10, 0.95).unwrap();
        assert_eq!(ci.hi, 1.0);
        assert!(ci.lo < 1.0);
    }

    #[test]
    fn wilson_ci_validation() {
        assert!(wilson_ci(1, 0, 0.95).is_err());
        assert!(wilson_ci(11, 10, 0.95).is_err());
        assert!(wilson_ci(5, 10, 1.0).is_err());
    }

    #[test]
    fn experiment_matches_analytic_model() {
        let m = model();
        let res = MonteCarloExperiment::new(m.clone(), FaultIntroduction::Independent)
            .samples(200_000)
            .seed(42)
            .run()
            .unwrap();
        let tol_mean1 = 6.0 * m.std_pfd_single() / (200_000f64).sqrt();
        assert!((res.single.mean_pfd - m.mean_pfd_single()).abs() < tol_mean1);
        let tol_mean2 = 6.0 * m.std_pfd_pair() / (200_000f64).sqrt();
        assert!((res.pair.mean_pfd - m.mean_pfd_pair()).abs() < tol_mean2);
        // Std devs within 5%.
        assert!((res.single.std_pfd / m.std_pfd_single() - 1.0).abs() < 0.05);
        assert!((res.pair.std_pfd / m.std_pfd_pair() - 1.0).abs() < 0.05);
        // Fault-free rates bracket the analytic values.
        assert!((res.single.fault_free_rate - m.prob_fault_free_single()).abs() < 0.01);
        assert!((res.pair.fault_free_rate - m.prob_fault_free_pair()).abs() < 0.01);
        // Risk ratio near eq (10).
        let rr = res.risk_ratio.unwrap();
        assert!((rr - m.risk_ratio().unwrap()).abs() < 0.02);
        // The analytic risks lie inside the 95% CIs (should essentially
        // always hold at this sample size with these tolerances).
        assert!(res.risk_single_ci.lo <= m.risk_any_fault_single());
        assert!(res.risk_single_ci.hi >= m.risk_any_fault_single());
    }

    #[test]
    fn deterministic_per_seed_and_thread_invariant() {
        // The sweep-cell layout depends only on the sample count and each
        // cell's stream only on (seed, index), so changing the thread
        // count changes NOTHING about the result — bitwise.
        let m = model();
        let r1 = MonteCarloExperiment::new(m.clone(), FaultIntroduction::Independent)
            .samples(10_000)
            .seed(7)
            .threads(1)
            .run()
            .unwrap();
        for threads in [2, 4, 7] {
            let rt = MonteCarloExperiment::new(m.clone(), FaultIntroduction::Independent)
                .samples(10_000)
                .seed(7)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(r1, rt, "threads = {threads}");
            assert_eq!(
                r1.single.mean_pfd.to_bits(),
                rt.single.mean_pfd.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn cell_level_api_reassembles_run_bit_identically() {
        // Evaluate every grid cell by hand (as a distributed worker
        // would), ship each accumulator through the wire form, fold in
        // canonical order, finish — and land on the exact bits of run().
        let exp = MonteCarloExperiment::new(model(), FaultIntroduction::Independent)
            .samples(9_000)
            .seed(23)
            .threads(2);
        let direct = exp.run().unwrap();
        let factory = exp.factory().unwrap();
        let grid = exp.grid_spec().grid(23);
        let mut acc: Option<McAccumulator> = None;
        for cell in grid.cells() {
            let local = run_cell(&factory, cell.config, cell.seed);
            let text = serde_json::to_string(&local.to_wire()).unwrap();
            let shipped = McAccumulator::from_wire(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(shipped, local);
            match acc.as_mut() {
                Some(a) => a.absorb(shipped),
                None => acc = Some(shipped),
            }
        }
        let reassembled = exp.finish(acc.unwrap()).unwrap();
        assert_eq!(reassembled, direct);
        assert_eq!(
            reassembled.single.mean_pfd.to_bits(),
            direct.single.mean_pfd.to_bits()
        );
        assert_eq!(
            reassembled.pair.std_pfd.to_bits(),
            direct.pair.std_pfd.to_bits()
        );
    }

    #[test]
    fn too_few_samples_rejected() {
        let e = MonteCarloExperiment::new(model(), FaultIntroduction::Independent)
            .samples(1)
            .run()
            .unwrap_err();
        assert!(matches!(e, DevSimError::TooFewSamples { .. }));
    }

    #[test]
    fn correlated_introduction_shifts_distribution_not_means() {
        // §6.1 concerns correlation between mistakes *within one version*.
        // Because the two versions of a pair are still developed
        // independently, P(fault i common) = pᵢ² is untouched, so BOTH
        // mean PFDs are invariant — only the distribution shape (variance,
        // fault-free probability) moves. This is exactly why the paper can
        // argue §6.1 violations "do not much reduce the usefulness" of its
        // mean-level results.
        let m = FaultModel::uniform(6, 0.2, 0.01).unwrap();
        let indep = MonteCarloExperiment::new(m.clone(), FaultIntroduction::Independent)
            .samples(60_000)
            .seed(1)
            .run()
            .unwrap();
        let corr =
            MonteCarloExperiment::new(m.clone(), FaultIntroduction::CommonCause { lambda: 0.8 })
                .samples(60_000)
                .seed(1)
                .run()
                .unwrap();
        // Means preserved (within MC error) at both levels.
        assert!((corr.single.mean_pfd - indep.single.mean_pfd).abs() < 8e-4);
        assert!((corr.pair.mean_pfd - indep.pair.mean_pfd).abs() < 3e-4);
        // Single-version PFD variance rises sharply (faults cluster).
        assert!(
            corr.single.std_pfd > 1.8 * indep.single.std_pfd,
            "correlated std {} vs independent {}",
            corr.single.std_pfd,
            indep.single.std_pfd
        );
        // Comonotone clustering concentrates faults in fewer versions, so
        // a randomly chosen version is MORE often fault-free...
        assert!(corr.single.fault_free_rate > indep.single.fault_free_rate + 0.1);
        // ...and so is the pair.
        assert!(corr.pair.fault_free_rate > indep.pair.fault_free_rate);
    }

    #[test]
    fn zero_risk_model_yields_no_ratio() {
        let m = FaultModel::uniform(3, 0.0, 0.1).unwrap();
        let res = MonteCarloExperiment::new(m, FaultIntroduction::Independent)
            .samples(100)
            .seed(5)
            .run()
            .unwrap();
        assert_eq!(res.risk_ratio, None);
        assert_eq!(res.single.fault_free_rate, 1.0);
    }

    #[test]
    fn sampled_pfds_pass_chi_squared_against_exact_distribution() {
        // The sampled PFDs must be statistically indistinguishable from
        // the exact model distribution — the strongest consistency check
        // between the analytic and sampling layers (tests the whole
        // distribution, not just moments). The reference is atomic, so the
        // right test is chi-squared over atoms, not KS.
        let m = model();
        let exact = divrel_numerics::WeightedBernoulliSum::enumerate(&m.terms(1)).unwrap();
        let (singles, pairs) = MonteCarloExperiment::new(m.clone(), FaultIntroduction::Independent)
            .samples(5_000)
            .seed(13)
            .sample_pfds()
            .unwrap();
        assert_eq!(singles.len(), 5_000);
        let t = divrel_numerics::ks::chi_squared_gof(&singles, &exact).unwrap();
        assert!(
            t.p_value > 0.01,
            "single-version sample rejected: chi2 = {}, p = {}",
            t.statistic,
            t.p_value
        );
        let exact2 = divrel_numerics::WeightedBernoulliSum::enumerate(&m.terms(2)).unwrap();
        let t2 = divrel_numerics::ks::chi_squared_gof(&pairs, &exact2).unwrap();
        assert!(
            t2.p_value > 0.01,
            "pair sample rejected: p = {}",
            t2.p_value
        );
    }

    #[test]
    fn cell_sizes_cover_samples_and_ignore_threads() {
        for samples in [3usize, 10, 2048, 2049, 10_000, 100_000] {
            let exp = MonteCarloExperiment::new(model(), FaultIntroduction::Independent)
                .samples(samples)
                .threads(4);
            let cells = exp.grid_spec().cell_sizes();
            assert_eq!(cells.iter().sum::<usize>(), samples);
            assert!(cells.iter().all(|&c| c > 0 && c <= MC_CELL_SAMPLES));
            // The layout is a pure function of the sample count.
            let exp16 = MonteCarloExperiment::new(model(), FaultIntroduction::Independent)
                .samples(samples)
                .threads(16);
            assert_eq!(cells, exp16.grid_spec().cell_sizes());
        }
    }
}
