//! Deterministic sweep sharding: experiment grids as verifiable artifacts.
//!
//! The paper's claims are demonstrated through whole experiment grids —
//! thousands of (model-configuration, seed) Monte-Carlo cells — and this
//! module is the engine that executes such a grid in parallel without
//! giving up reproducibility:
//!
//! * a [`SweepGrid`] expands a list of cell configurations into
//!   [`SweepCell`]s, each carrying a per-cell RNG seed derived by
//!   counter-based SplitMix64 splitting
//!   ([`divrel_numerics::sweep::split_seed`]) — a pure function of
//!   `(sweep_seed, cell_index)`, so the streams do not depend on thread
//!   count or scheduling;
//! * [`run_cells`] executes cells with work-stealing over
//!   `std::thread::scope` and returns the per-cell results **in canonical
//!   cell order** whatever order they actually completed in;
//! * [`run_sweep`] / [`try_run_sweep`] fold per-cell
//!   [`SweepReduce`] accumulators in canonical order, so the reduced
//!   output is bit-identical across thread counts 1, 2, 7, ….
//!
//! ```
//! use divrel_devsim::sweep::{run_sweep, SweepGrid};
//! use divrel_numerics::descriptive::Moments;
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! // A 100-cell grid; each cell draws from its own split stream.
//! let grid = SweepGrid::new(2001, (0..100u32).collect::<Vec<_>>());
//! let reduce = |threads| {
//!     run_sweep(grid.cells(), threads, |cell| {
//!         let mut rng = StdRng::seed_from_u64(cell.seed);
//!         let mut m = Moments::new();
//!         for _ in 0..50 {
//!             m.push(rng.gen::<f64>());
//!         }
//!         m
//!     })
//! };
//! let serial = reduce(1).unwrap();
//! let sharded = reduce(4).unwrap();
//! // Bit-identical, not merely statistically close.
//! assert_eq!(serial.mean().unwrap().to_bits(), sharded.mean().unwrap().to_bits());
//! ```

use divrel_numerics::sweep::{split_seed, SweepReduce};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The declarative form of a sample-budget grid: `total` Monte-Carlo
/// observations cut into cells of `per_cell` (the last cell takes the
/// remainder).
///
/// Every sweep in the workspace that shards a flat sample budget —
/// the Monte-Carlo driver, the forced-diversity grid, the raw PFD
/// sampler — used to hand-roll this division; `GridSpec` is that layout
/// as a serialisable value, so a scenario file pins the exact cell
/// structure (and therefore, with the sweep seed, the exact output
/// bits). The layout is a pure function of the spec — never of the
/// thread count — which is what keeps reduced results thread-invariant.
///
/// ```
/// use divrel_devsim::sweep::GridSpec;
/// let spec = GridSpec::new(5_000, 2_048);
/// assert_eq!(spec.cell_sizes(), vec![2_048, 2_048, 904]);
/// assert_eq!(spec.cell_count(), 3);
/// let grid = spec.grid(2001);
/// assert_eq!(grid.len(), 3);
/// assert_eq!(grid.cells()[2].config, 904);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Total number of observations the grid draws.
    pub total: usize,
    /// Observations per full cell (min 1; the final cell may be smaller).
    pub per_cell: usize,
}

impl GridSpec {
    /// Builds the spec (a `per_cell` of 0 is treated as 1).
    pub fn new(total: usize, per_cell: usize) -> Self {
        GridSpec { total, per_cell }
    }

    /// The per-cell observation counts, in canonical cell order. The
    /// sizes sum to `total`; every cell is non-empty.
    pub fn cell_sizes(&self) -> Vec<usize> {
        let per_cell = self.per_cell.max(1);
        let full = self.total / per_cell;
        let rem = self.total % per_cell;
        let mut cells = vec![per_cell; full];
        if rem > 0 {
            cells.push(rem);
        }
        cells
    }

    /// Number of cells the layout produces.
    pub fn cell_count(&self) -> usize {
        let per_cell = self.per_cell.max(1);
        self.total / per_cell + usize::from(!self.total.is_multiple_of(per_cell))
    }

    /// Compiles the layout onto the sweep engine: a [`SweepGrid`] whose
    /// cell configs are the cell sizes and whose streams split from
    /// `sweep_seed`.
    pub fn grid(&self, sweep_seed: u64) -> SweepGrid<usize> {
        SweepGrid::new(sweep_seed, self.cell_sizes())
    }
}

/// A contiguous slice of grid-cell indices `[start, end)` — the lease
/// unit of distributed sweep execution.
///
/// Because every cell's RNG stream is a pure function of
/// `(sweep_seed, cell_index)` ([`split_seed`]), a range of cells can be
/// evaluated by **any** worker on **any** host and produce the exact
/// bits an in-process run would have: a coordinator partitions the grid
/// into ranges, hands them out as leases, and folds the returned
/// per-cell accumulators in canonical cell order. The range itself is
/// serialisable (indices stay far below the `2^53` JSON-number limit in
/// practice) so it can ride the wire protocol directly.
///
/// ```
/// use divrel_devsim::sweep::CellRange;
/// let parts = CellRange::partition(10, 4);
/// assert_eq!(parts.len(), 3);
/// assert_eq!((parts[0].start, parts[0].end), (0, 4));
/// assert_eq!((parts[2].start, parts[2].end), (8, 10));
/// assert_eq!(parts.iter().map(CellRange::len).sum::<u64>(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRange {
    /// First cell index covered (inclusive).
    pub start: u64,
    /// One past the last cell index covered (exclusive).
    pub end: u64,
}

impl CellRange {
    /// Builds the range `[start, end)`; an inverted pair collapses to
    /// the empty range at `start`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        CellRange {
            start,
            end: end.max(start),
        }
    }

    /// Number of cells covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `index` falls inside the range.
    #[must_use]
    pub fn contains(&self, index: u64) -> bool {
        self.start <= index && index < self.end
    }

    /// Cuts `[0, cell_count)` into contiguous ranges of at most
    /// `lease_cells` cells (minimum 1), in ascending order. The layout
    /// is a pure function of its arguments — never of the worker count
    /// — which is what keeps distributed reductions partition-invariant.
    #[must_use]
    pub fn partition(cell_count: u64, lease_cells: u64) -> Vec<CellRange> {
        let chunk = lease_cells.max(1);
        let mut out = Vec::with_capacity(cell_count.div_ceil(chunk) as usize);
        let mut start = 0;
        while start < cell_count {
            let end = (start + chunk).min(cell_count);
            out.push(CellRange { start, end });
            start = end;
        }
        out
    }
}

/// One cell of an experiment grid: a configuration plus the cell's
/// deterministic RNG seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell<C> {
    /// Position of the cell in the grid (also the splitting counter).
    pub index: u64,
    /// The cell's RNG seed, `split_seed(sweep_seed, index)`.
    pub seed: u64,
    /// The experiment configuration evaluated in this cell.
    pub config: C,
}

/// A deterministic grid of sweep cells.
///
/// The grid owns the cells; engines borrow them, so one grid can be
/// executed at several thread counts (or re-reduced) without rebuilding.
#[derive(Debug, Clone)]
pub struct SweepGrid<C> {
    sweep_seed: u64,
    cells: Vec<SweepCell<C>>,
}

impl<C> SweepGrid<C> {
    /// Builds the grid: cell `i` gets configuration `configs[i]` and seed
    /// `split_seed(sweep_seed, i)`.
    pub fn new(sweep_seed: u64, configs: Vec<C>) -> Self {
        let cells = configs
            .into_iter()
            .enumerate()
            .map(|(i, config)| SweepCell {
                index: i as u64,
                seed: split_seed(sweep_seed, i as u64),
                config,
            })
            .collect();
        SweepGrid { sweep_seed, cells }
    }

    /// The master seed the per-cell streams were split from.
    pub fn sweep_seed(&self) -> u64 {
        self.sweep_seed
    }

    /// The cells, in canonical order.
    pub fn cells(&self) -> &[SweepCell<C>] {
        &self.cells
    }

    /// The cells of lease `range`, in canonical order (clamped to the
    /// grid, so an overhanging range yields the in-bounds prefix).
    pub fn range_cells(&self, range: CellRange) -> &[SweepCell<C>] {
        let start = (range.start as usize).min(self.cells.len());
        let end = (range.end as usize).min(self.cells.len());
        &self.cells[start..end]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Executes `f` on every cell with up to `threads` work-stealing workers
/// and returns the results **aligned with the input slice** (`out[i]` is
/// the result of `cells[i]`, whatever order the cells completed in).
///
/// Workers claim cells from a shared atomic counter (so an expensive cell
/// does not stall the others) and tag every result with its slice
/// position; the tags restore the slice order after the scope joins.
/// Because each cell's work depends only on the cell itself (its config
/// and its split seed), the returned vector is bit-identical for every
/// `threads` value. The reduction helpers below separately fold these
/// results in canonical `cell.index` order, which is what makes the
/// *reduced* output independent of the listing order too.
///
/// A panic in a worker is a programming error in `f` and is propagated.
pub fn run_cells<C, T, F>(cells: &[SweepCell<C>], threads: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&SweepCell<C>) -> T + Sync,
{
    let threads = threads.max(1).min(cells.len());
    if threads <= 1 {
        return cells.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(cells.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    local.push((i, f(cell)));
                }
                local
            }));
        }
        for h in handles {
            tagged.extend(h.join().expect("sweep worker panicked"));
        }
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// The canonical reduction order of a cell slice: positions sorted by
/// ascending [`SweepCell::index`] (stable, so duplicate indices keep
/// their relative position). Folding in this order makes the reduced
/// output independent of **both** the execution schedule and the order
/// in which the cells happen to be listed.
fn canonical_order<C>(cells: &[SweepCell<C>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by_key(|&i| cells[i].index);
    order
}

/// Runs the sweep and folds the per-cell accumulators in canonical cell
/// order (ascending [`SweepCell::index`]). Returns `None` for an empty
/// grid.
///
/// The fold order — never the execution order or the listing order of
/// the cells — determines the result, so the output is bit-identical
/// across thread counts **and** across permutations of the cell slice.
pub fn run_sweep<C, R, F>(cells: &[SweepCell<C>], threads: usize, f: F) -> Option<R>
where
    C: Sync,
    R: SweepReduce + Send,
    F: Fn(&SweepCell<C>) -> R + Sync,
{
    let mut results: Vec<Option<R>> = run_cells(cells, threads, f).into_iter().map(Some).collect();
    let mut acc: Option<R> = None;
    for i in canonical_order(cells) {
        let r = results[i].take().expect("each cell reduced once");
        match acc.as_mut() {
            Some(a) => a.absorb(r),
            None => acc = Some(r),
        }
    }
    acc
}

/// Fallible variant of [`run_sweep`]: every cell runs (errors do not
/// cancel in-flight cells), then the first error in canonical cell order
/// is returned, otherwise the canonical fold.
///
/// # Errors
///
/// The first cell error in canonical order (ascending cell index).
pub fn try_run_sweep<C, R, E, F>(
    cells: &[SweepCell<C>],
    threads: usize,
    f: F,
) -> Result<Option<R>, E>
where
    C: Sync,
    R: SweepReduce + Send,
    E: Send,
    F: Fn(&SweepCell<C>) -> Result<R, E> + Sync,
{
    let mut results: Vec<Option<Result<R, E>>> =
        run_cells(cells, threads, f).into_iter().map(Some).collect();
    let mut acc: Option<R> = None;
    for i in canonical_order(cells) {
        let r = results[i].take().expect("each cell reduced once")?;
        match acc.as_mut() {
            Some(a) => a.absorb(r),
            None => acc = Some(r),
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_numerics::descriptive::Moments;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn demo_grid(n: u32) -> SweepGrid<u32> {
        SweepGrid::new(99, (0..n).collect())
    }

    #[test]
    fn grid_assigns_split_seeds_in_order() {
        let g = demo_grid(8);
        assert_eq!(g.len(), 8);
        assert!(!g.is_empty());
        assert_eq!(g.sweep_seed(), 99);
        for (i, cell) in g.cells().iter().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert_eq!(cell.config, i as u32);
            assert_eq!(cell.seed, divrel_numerics::sweep::split_seed(99, i as u64));
        }
    }

    #[test]
    fn run_cells_preserves_canonical_order_at_any_thread_count() {
        let g = demo_grid(101);
        for threads in [1, 2, 3, 7, 16] {
            let out = run_cells(g.cells(), threads, |c| c.config * 2);
            assert_eq!(out.len(), 101, "threads = {threads}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as u32 * 2, "threads = {threads}");
            }
        }
    }

    #[test]
    fn run_sweep_is_bit_identical_across_thread_counts() {
        let g = demo_grid(53);
        let reduce = |threads| -> Moments {
            run_sweep(g.cells(), threads, |cell| {
                let mut rng = StdRng::seed_from_u64(cell.seed);
                let mut m = Moments::new();
                for _ in 0..200 {
                    m.push(rng.gen::<f64>());
                }
                m
            })
            .expect("non-empty grid")
        };
        let base = reduce(1);
        for threads in [2, 3, 7] {
            let r = reduce(threads);
            assert_eq!(r.count(), base.count());
            assert_eq!(
                r.mean().unwrap().to_bits(),
                base.mean().unwrap().to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                r.sample_variance().unwrap().to_bits(),
                base.sample_variance().unwrap().to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn shuffled_cell_listing_reduces_bit_identically() {
        // Reduction folds by cell.index, so even re-ordering the cell
        // slice itself changes nothing — the grid is a set, not a list.
        let g = demo_grid(31);
        let worker = |cell: &SweepCell<u32>| {
            let mut rng = StdRng::seed_from_u64(cell.seed);
            let mut m = Moments::new();
            for _ in 0..64 {
                m.push(rng.gen::<f64>());
            }
            m
        };
        let base: Moments = run_sweep(g.cells(), 2, worker).unwrap();
        let mut shuffled = g.cells().to_vec();
        shuffled.reverse();
        shuffled.swap(0, 13);
        let r: Moments = run_sweep(&shuffled, 3, worker).unwrap();
        assert_eq!(r.mean().unwrap().to_bits(), base.mean().unwrap().to_bits());
        assert_eq!(
            r.sample_variance().unwrap().to_bits(),
            base.sample_variance().unwrap().to_bits()
        );
    }

    #[test]
    fn empty_grid_reduces_to_none() {
        let g: SweepGrid<u32> = SweepGrid::new(1, Vec::new());
        assert!(g.is_empty());
        let r: Option<u64> = run_sweep(g.cells(), 4, |_| 1u64);
        assert!(r.is_none());
    }

    #[test]
    fn try_run_sweep_surfaces_first_error_in_canonical_order() {
        let g = demo_grid(20);
        let r: Result<Option<u64>, String> = try_run_sweep(g.cells(), 4, |cell| {
            if cell.config == 11 || cell.config == 3 {
                Err(format!("cell {} failed", cell.config))
            } else {
                Ok(1u64)
            }
        });
        // Canonical order: cell 3's error wins even if cell 11 ran first.
        assert_eq!(r.unwrap_err(), "cell 3 failed");
        let ok: Result<Option<u64>, String> = try_run_sweep(g.cells(), 4, |_| Ok(1u64));
        assert_eq!(ok.unwrap(), Some(20));
    }

    #[test]
    fn grid_spec_layout_is_exact_and_serialisable() {
        for (total, per_cell) in [(0usize, 10usize), (3, 10), (10, 10), (11, 10), (4096, 2048)] {
            let spec = GridSpec::new(total, per_cell);
            let sizes = spec.cell_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert_eq!(sizes.len(), spec.cell_count());
            assert!(sizes.iter().all(|&c| c > 0 && c <= per_cell));
            let grid = spec.grid(7);
            assert_eq!(grid.len(), sizes.len());
        }
        // per_cell 0 degrades to 1-observation cells, not a panic.
        assert_eq!(GridSpec::new(3, 0).cell_sizes(), vec![1, 1, 1]);
        let spec = GridSpec::new(100, 32);
        let v = serde::Serialize::to_value(&spec);
        let back: GridSpec = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn cell_range_partition_tiles_the_grid() {
        for (count, chunk) in [(0u64, 4u64), (1, 4), (4, 4), (10, 4), (10, 1), (7, 100)] {
            let parts = CellRange::partition(count, chunk);
            assert_eq!(parts.iter().map(CellRange::len).sum::<u64>(), count);
            let mut next = 0;
            for r in &parts {
                assert_eq!(r.start, next, "ranges must tile contiguously");
                assert!(!r.is_empty());
                assert!(r.len() <= chunk.max(1));
                next = r.end;
            }
            assert_eq!(next, count);
        }
        // Degenerate chunk size is lifted to 1, not a hang.
        assert_eq!(CellRange::partition(3, 0).len(), 3);
        let r = CellRange::new(5, 3);
        assert!(r.is_empty());
        assert!(!r.contains(5));
        assert!(CellRange::new(2, 6).contains(5));
        let json = serde_json::to_string(&CellRange::new(2, 6)).unwrap();
        let back: CellRange = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CellRange::new(2, 6));
    }

    #[test]
    fn range_cells_slice_matches_partition_and_full_fold() {
        let g = demo_grid(23);
        let worker = |cell: &SweepCell<u32>| {
            let mut rng = StdRng::seed_from_u64(cell.seed);
            let mut m = Moments::new();
            for _ in 0..32 {
                m.push(rng.gen::<f64>());
            }
            m
        };
        let whole: Moments = run_sweep(g.cells(), 2, worker).unwrap();
        // Reduce each lease range separately per cell, then fold ALL
        // per-cell accumulators in canonical order: bit-identical to the
        // in-process sweep whatever the partitioning.
        for chunk in [1u64, 4, 7, 23, 100] {
            let mut acc: Option<Moments> = None;
            for range in CellRange::partition(g.len() as u64, chunk) {
                for r in run_cells(g.range_cells(range), 1, worker) {
                    match acc.as_mut() {
                        Some(a) => a.absorb(r),
                        None => acc = Some(r),
                    }
                }
            }
            let folded = acc.unwrap();
            assert_eq!(
                folded.mean().unwrap().to_bits(),
                whole.mean().unwrap().to_bits(),
                "chunk = {chunk}"
            );
            assert_eq!(
                folded.sample_variance().unwrap().to_bits(),
                whole.sample_variance().unwrap().to_bits(),
                "chunk = {chunk}"
            );
        }
        // Overhanging ranges clamp instead of panicking.
        assert_eq!(g.range_cells(CellRange::new(20, 99)).len(), 3);
        assert!(g.range_cells(CellRange::new(50, 60)).is_empty());
    }

    #[test]
    fn oversubscribed_threads_are_capped() {
        let g = demo_grid(3);
        let out = run_cells(g.cells(), 64, |c| c.seed);
        assert_eq!(out.len(), 3);
        assert_eq!(out, g.cells().iter().map(|c| c.seed).collect::<Vec<_>>());
    }
}
