//! Fault-introduction models — the paper's independence assumption and the
//! §6.1 correlated alternatives.
//!
//! §2.2 assumes "the mistakes are statistically independent of each other.
//! It is as though the design team, faced with the possibility of inserting
//! a fault, tossed dice". §6.1 then discusses two plausible violations:
//!
//! * **positive correlation** — "mistakes that are due to a common
//!   conceptual error" tend to occur together;
//! * **negative correlation** — "extra effort can be dedicated to avoiding
//!   certain classes of faults only at the expense of others".
//!
//! The correlated samplers here are *marginal-preserving mixtures*: every
//! fault `i` is still present with exactly probability `pᵢ`, so any
//! difference between simulation and the analytic model is attributable to
//! the correlation structure alone — precisely the sensitivity question
//! §6.1 raises.
//!
//! * [`FaultIntroduction::CommonCause`]: with probability `lambda` the
//!   whole version is drawn *comonotonically* (one shared uniform decides
//!   all faults), otherwise independently. `lambda = 0` recovers
//!   independence; `lambda = 1` is maximal positive dependence.
//! * [`FaultIntroduction::Antithetic`]: consecutive fault pairs use
//!   antithetic uniforms (`u`, `1−u`) with probability `lambda`,
//!   producing negative within-pair correlation.

use crate::error::DevSimError;
use divrel_demand::fault_set::FaultSet;
use divrel_model::FaultModel;
use rand::Rng;

/// How a development team's fault set is sampled.
///
/// Serialisable so scenario files can declare the introduction model
/// (`"Independent"`, `{"CommonCause": {"lambda": 0.8}}`, …); mixture
/// weights are still validated by [`Self::validate`] at build time, not
/// at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum FaultIntroduction {
    /// The paper's assumption: each fault an independent Bernoulli draw.
    #[default]
    Independent,
    /// Positive correlation: with probability `lambda` all faults are
    /// decided by one shared uniform (comonotone draw), else independent.
    CommonCause {
        /// Mixture weight in `[0, 1]`; 0 = independent.
        lambda: f64,
    },
    /// Negative correlation: with probability `lambda` each consecutive
    /// fault pair `(2j, 2j+1)` is decided by antithetic uniforms, else
    /// independent.
    Antithetic {
        /// Mixture weight in `[0, 1]`; 0 = independent.
        lambda: f64,
    },
}

impl FaultIntroduction {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`DevSimError::InvalidConfig`] if a mixture weight is outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), DevSimError> {
        match self {
            FaultIntroduction::Independent => Ok(()),
            FaultIntroduction::CommonCause { lambda }
            | FaultIntroduction::Antithetic { lambda } => {
                if (0.0..=1.0).contains(lambda) && lambda.is_finite() {
                    Ok(())
                } else {
                    Err(DevSimError::InvalidConfig(format!(
                        "mixture weight {lambda} not in [0, 1]"
                    )))
                }
            }
        }
    }

    /// Draws the fault set of one newly developed version.
    ///
    /// Returns a presence flag per potential fault of `model`.
    pub fn sample_version<R: Rng + ?Sized>(&self, model: &FaultModel, rng: &mut R) -> Vec<bool> {
        match *self {
            FaultIntroduction::Independent => independent(model, rng),
            FaultIntroduction::CommonCause { lambda } => {
                if rng.gen::<f64>() < lambda {
                    let u: f64 = rng.gen();
                    model.p_values().map(|p| u < p).collect()
                } else {
                    independent(model, rng)
                }
            }
            FaultIntroduction::Antithetic { lambda } => {
                if rng.gen::<f64>() < lambda {
                    let ps: Vec<f64> = model.p_values().collect();
                    let mut out = vec![false; ps.len()];
                    let mut i = 0;
                    while i < ps.len() {
                        let u: f64 = rng.gen();
                        out[i] = u < ps[i];
                        if i + 1 < ps.len() {
                            out[i + 1] = (1.0 - u) < ps[i + 1];
                        }
                        i += 2;
                    }
                    out
                } else {
                    independent(model, rng)
                }
            }
        }
    }

    /// Draws the fault set of one newly developed version directly into
    /// a reusable bitset.
    ///
    /// This path is **stream-compatible** with
    /// [`Self::sample_version`]: it consumes exactly the same RNG draws
    /// in the same order, so the same seed yields the same fault set in
    /// either representation (the property the bitset/bool equivalence
    /// tests pin down). For the allocation-free fast path that also
    /// reduces RNG draws, see [`crate::sampler::BitSampler`].
    ///
    /// `out` must have the model's fault count as its universe.
    pub fn sample_version_into<R: Rng + ?Sized>(
        &self,
        model: &FaultModel,
        rng: &mut R,
        out: &mut FaultSet,
    ) {
        debug_assert_eq!(out.universe(), model.len(), "scratch set universe mismatch");
        out.clear();
        match *self {
            FaultIntroduction::Independent => independent_into(model, rng, out),
            FaultIntroduction::CommonCause { lambda } => {
                if rng.gen::<f64>() < lambda {
                    let u: f64 = rng.gen();
                    for (i, p) in model.p_values().enumerate() {
                        if u < p {
                            out.insert(i);
                        }
                    }
                } else {
                    independent_into(model, rng, out);
                }
            }
            FaultIntroduction::Antithetic { lambda } => {
                if rng.gen::<f64>() < lambda {
                    let ps: Vec<f64> = model.p_values().collect();
                    let mut i = 0;
                    while i < ps.len() {
                        let u: f64 = rng.gen();
                        if u < ps[i] {
                            out.insert(i);
                        }
                        if i + 1 < ps.len() && (1.0 - u) < ps[i + 1] {
                            out.insert(i + 1);
                        }
                        i += 2;
                    }
                } else {
                    independent_into(model, rng, out);
                }
            }
        }
    }

    /// Whether this model satisfies the paper's §2.2 independence
    /// assumption exactly.
    pub fn is_independent(&self) -> bool {
        match *self {
            FaultIntroduction::Independent => true,
            FaultIntroduction::CommonCause { lambda }
            | FaultIntroduction::Antithetic { lambda } => lambda == 0.0,
        }
    }
}

fn independent<R: Rng + ?Sized>(model: &FaultModel, rng: &mut R) -> Vec<bool> {
    model.p_values().map(|p| rng.gen::<f64>() < p).collect()
}

fn independent_into<R: Rng + ?Sized>(model: &FaultModel, rng: &mut R, out: &mut FaultSet) {
    for (i, p) in model.p_values().enumerate() {
        if rng.gen::<f64>() < p {
            out.insert(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> FaultModel {
        FaultModel::from_params(&[0.3, 0.3, 0.1, 0.1], &[0.01; 4]).unwrap()
    }

    fn marginal_rates(intro: FaultIntroduction, n: usize, seed: u64) -> Vec<f64> {
        let m = model();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; m.len()];
        for _ in 0..n {
            for (i, b) in intro.sample_version(&m, &mut rng).iter().enumerate() {
                if *b {
                    counts[i] += 1;
                }
            }
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn validation() {
        assert!(FaultIntroduction::Independent.validate().is_ok());
        assert!(FaultIntroduction::CommonCause { lambda: 0.5 }
            .validate()
            .is_ok());
        assert!(FaultIntroduction::CommonCause { lambda: 1.5 }
            .validate()
            .is_err());
        assert!(FaultIntroduction::Antithetic { lambda: -0.1 }
            .validate()
            .is_err());
        assert!(FaultIntroduction::Antithetic { lambda: f64::NAN }
            .validate()
            .is_err());
    }

    #[test]
    fn independence_flag() {
        assert!(FaultIntroduction::Independent.is_independent());
        assert!(FaultIntroduction::CommonCause { lambda: 0.0 }.is_independent());
        assert!(!FaultIntroduction::CommonCause { lambda: 0.3 }.is_independent());
        assert_eq!(FaultIntroduction::default(), FaultIntroduction::Independent);
    }

    #[test]
    fn all_samplers_preserve_marginals() {
        let n = 60_000;
        // 5-sigma tolerance for p = 0.3 at n = 60k is ~0.0094.
        for (name, intro) in [
            ("independent", FaultIntroduction::Independent),
            (
                "common-cause",
                FaultIntroduction::CommonCause { lambda: 0.7 },
            ),
            ("antithetic", FaultIntroduction::Antithetic { lambda: 0.7 }),
        ] {
            let rates = marginal_rates(intro, n, 11);
            let want = [0.3, 0.3, 0.1, 0.1];
            for (i, (&r, &w)) in rates.iter().zip(&want).enumerate() {
                assert!((r - w).abs() < 0.01, "{name} fault {i}: rate {r} vs p {w}");
            }
        }
    }

    #[test]
    fn common_cause_induces_positive_correlation() {
        // Faults 0 and 1 share p = 0.3; comonotone mixing raises
        // P(both present) above p² = 0.09.
        let m = model();
        let intro = FaultIntroduction::CommonCause { lambda: 0.8 };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let mut both = 0usize;
        for _ in 0..n {
            let v = intro.sample_version(&m, &mut rng);
            if v[0] && v[1] {
                both += 1;
            }
        }
        let joint = both as f64 / n as f64;
        // Expected: 0.8*0.3 + 0.2*0.09 = 0.258.
        assert!(
            (joint - 0.258).abs() < 0.01,
            "joint presence {joint}, want ≈ 0.258"
        );
        assert!(joint > 0.09 + 0.05);
    }

    #[test]
    fn antithetic_induces_negative_correlation() {
        let m = model();
        let intro = FaultIntroduction::Antithetic { lambda: 1.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000;
        let mut both = 0usize;
        for _ in 0..n {
            let v = intro.sample_version(&m, &mut rng);
            if v[0] && v[1] {
                both += 1;
            }
        }
        // Antithetic with p0 = p1 = 0.3: both present iff u < 0.3 and
        // 1-u < 0.3, impossible -> joint 0.
        assert_eq!(both, 0, "antithetic joint presence should be impossible");
        let mut rng = StdRng::seed_from_u64(6);
        // Marginals still hold (checked broadly above); sanity-check one.
        let mut c0 = 0usize;
        for _ in 0..n {
            if intro.sample_version(&m, &mut rng)[0] {
                c0 += 1;
            }
        }
        assert!((c0 as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn bitset_sampler_is_stream_identical_to_bool_sampler() {
        // Same RNG stream -> same fault sets, for all three variants.
        let m = model();
        for intro in [
            FaultIntroduction::Independent,
            FaultIntroduction::CommonCause { lambda: 0.6 },
            FaultIntroduction::Antithetic { lambda: 0.6 },
        ] {
            let mut r1 = StdRng::seed_from_u64(21);
            let mut r2 = StdRng::seed_from_u64(21);
            let mut out = FaultSet::new(m.len());
            for _ in 0..2_000 {
                let reference = intro.sample_version(&m, &mut r1);
                intro.sample_version_into(&m, &mut r2, &mut out);
                assert_eq!(out.to_bools(), reference, "{intro:?} diverged");
            }
        }
    }

    #[test]
    fn comonotone_draw_is_nested() {
        // In a comonotone draw, a fault with smaller p present implies any
        // fault with larger p is present too.
        let m = FaultModel::from_params(&[0.8, 0.2], &[0.01, 0.01]).unwrap();
        let intro = FaultIntroduction::CommonCause { lambda: 1.0 };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2_000 {
            let v = intro.sample_version(&m, &mut rng);
            if v[1] {
                assert!(v[0], "nested structure violated");
            }
        }
    }
}
