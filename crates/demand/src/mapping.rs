//! The fault → failure-region mapping, including the assumption violations
//! of paper §6.2 (overlapping regions) and §6.3 (many-to-one mappings).
//!
//! The core model assumes a 1-to-1 mapping between faults and
//! non-overlapping failure regions. [`FaultRegionMap`] carries an explicit
//! geometric mapping so that:
//!
//! * `qᵢ` values can be **measured** under a profile instead of assumed,
//! * overlap between regions can be quantified ([`FaultRegionMap::overlap_matrix`],
//!   [`FaultRegionMap::total_overlap_mass`]) — the model-vs-reality gap of §6.2,
//! * several faults can share a region ([`FaultRegionMap::grouped_region_presence`])
//!   — §6.3's warning that an assessor "would be at risk of underestimating
//!   `p_max`" because the region's presence probability approaches the *sum*
//!   of the faults' probabilities.

use crate::error::DemandError;
use crate::fault_set::{words_for, FaultSet, WORD_BITS};
use crate::profile::Profile;
use crate::region::Region;
use crate::space::{Demand, GridSpace2D};
use divrel_model::{FaultModel, PotentialFault};

/// A demand space together with one failure region per potential fault.
///
/// At construction the map precomputes, for every demand-space cell,
/// the bitset of faults whose failure region contains that cell. A
/// version's failure on a demand (and its whole true PFD) then reduces
/// to AND-ing its [`FaultSet`] against one mask per cell instead of
/// per-fault rectangle/lattice membership tests.
#[derive(Debug, Clone)]
pub struct FaultRegionMap {
    space: GridSpace2D,
    regions: Vec<Region>,
    /// Words per fault bitset (`ceil(regions.len() / 64)`).
    words_per_set: usize,
    /// Flattened per-cell failure masks: cell `c` owns words
    /// `[c * words_per_set .. (c + 1) * words_per_set]`.
    cell_masks: Vec<u64>,
}

/// Equality is defined by the geometry (space + regions); the
/// precomputed masks are derived data.
impl PartialEq for FaultRegionMap {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space && self.regions == other.regions
    }
}

impl FaultRegionMap {
    /// Creates a map, validating that every region fits the space, and
    /// precomputes the per-cell failure masks.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] for an empty region list;
    /// [`DemandError::OutOfBounds`] if a region leaves the space.
    pub fn new(space: GridSpace2D, regions: Vec<Region>) -> Result<Self, DemandError> {
        if regions.is_empty() {
            return Err(DemandError::Mismatch("no regions supplied".into()));
        }
        for r in &regions {
            r.validate_within(&space)?;
        }
        let words_per_set = words_for(regions.len());
        let mut cell_masks = vec![0u64; space.cell_count() * words_per_set];
        for (fault, region) in regions.iter().enumerate() {
            let word = fault / WORD_BITS;
            let bit = 1u64 << (fault % WORD_BITS);
            for cell in region.cell_indices(&space) {
                cell_masks[cell * words_per_set + word] |= bit;
            }
        }
        Ok(FaultRegionMap {
            space,
            regions,
            words_per_set,
            cell_masks,
        })
    }

    /// Words per fault bitset in the precomputed masks.
    pub fn words_per_set(&self) -> usize {
        self.words_per_set
    }

    /// The failure mask of one demand-space cell: the bitset of faults
    /// whose region contains the cell.
    #[inline]
    pub fn cell_mask(&self, cell: usize) -> &[u64] {
        &self.cell_masks[cell * self.words_per_set..(cell + 1) * self.words_per_set]
    }

    /// Whether a version holding exactly `faults` fails on `demand`:
    /// one AND against the demand cell's failure mask. Demands outside
    /// the space hit no region and return `false` (regions are
    /// validated to lie within the space).
    #[inline]
    pub fn set_fails_on(&self, faults: &FaultSet, demand: Demand) -> bool {
        match self.space.index_of(demand) {
            Ok(cell) => faults.intersects_words(self.cell_mask(cell)),
            Err(_) => false,
        }
    }

    /// True PFD of a version holding exactly `faults`: the profile
    /// measure of the union of their regions, computed as one AND +
    /// test per cell against the precomputed masks.
    ///
    /// Falls back to the geometric union for a profile over a different
    /// space (where clipping semantics could differ).
    pub fn union_pfd_set(&self, faults: &FaultSet, profile: &Profile) -> f64 {
        if profile.space() != &self.space {
            let parts: Vec<Region> = faults
                .iter_ones()
                .filter_map(|i| self.regions.get(i).cloned())
                .collect();
            return Region::union(parts).measure(profile);
        }
        let probs = profile.probs();
        let wps = self.words_per_set;
        let mut pfd = 0.0;
        if wps == 1 {
            // Hot case (≤ 64 faults): one AND per cell.
            let v = faults.words().first().copied().unwrap_or(0);
            for (cell, chunk) in self.cell_masks.iter().enumerate() {
                if chunk & v != 0 {
                    pfd += probs[cell];
                }
            }
        } else {
            for (cell, chunk) in self.cell_masks.chunks_exact(wps).enumerate() {
                if faults.intersects_words(chunk) {
                    pfd += probs[cell];
                }
            }
        }
        pfd
    }

    /// Multi-threaded [`Self::union_pfd_set`] for very large grids: the
    /// demand cells are split into `threads` contiguous ranges summed on
    /// `std::thread::scope` threads. The partial sums are combined in
    /// range order, so the result is deterministic for a fixed thread
    /// count (and equals the serial sum up to floating-point
    /// re-association).
    ///
    /// Falls back to the serial path for `threads <= 1`, for profiles
    /// over a different space, and for grids too small to amortise the
    /// thread spawns.
    pub fn union_pfd_set_parallel(
        &self,
        faults: &FaultSet,
        profile: &Profile,
        threads: usize,
    ) -> f64 {
        let cells = self.space.cell_count();
        if !crate::parallel::worth_parallelising(cells, threads) || profile.space() != &self.space {
            return self.union_pfd_set(faults, profile);
        }
        let probs = profile.probs();
        let wps = self.words_per_set;
        crate::parallel::chunked_sum(cells, threads, |range| {
            let mut pfd = 0.0;
            for cell in range {
                if faults.intersects_words(&self.cell_masks[cell * wps..(cell + 1) * wps]) {
                    pfd += probs[cell];
                }
            }
            pfd
        })
    }

    /// The demand space.
    pub fn space(&self) -> &GridSpace2D {
        &self.space
    }

    /// The regions, indexed by fault.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of potential faults.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the map is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The measured `qᵢ` of every region under `profile`.
    pub fn q_values(&self, profile: &Profile) -> Vec<f64> {
        self.regions.iter().map(|r| r.measure(profile)).collect()
    }

    /// Builds the paper's [`FaultModel`] from introduction probabilities
    /// `ps` and the *measured* region probabilities — the bridge from
    /// geometry to the analytical model.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if `ps.len() != self.len()`; model
    /// validation errors otherwise.
    pub fn to_fault_model(&self, ps: &[f64], profile: &Profile) -> Result<FaultModel, DemandError> {
        if ps.len() != self.regions.len() {
            return Err(DemandError::Mismatch(format!(
                "{} probabilities for {} regions",
                ps.len(),
                self.regions.len()
            )));
        }
        let faults = ps
            .iter()
            .zip(self.q_values(profile))
            .map(|(&p, q)| PotentialFault::new(p, q))
            .collect::<Result<Vec<_>, _>>()
            .map_err(DemandError::from)?;
        FaultModel::new(faults).map_err(DemandError::from)
    }

    /// Pairwise overlap measures: entry `(i, j)` is the probability mass of
    /// `regionᵢ ∩ regionⱼ` under `profile` (diagonal = region measures).
    #[allow(clippy::needless_range_loop)] // symmetric-matrix fill reads best indexed
    pub fn overlap_matrix(&self, profile: &Profile) -> Vec<Vec<f64>> {
        let n = self.regions.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            m[i][i] = self.regions[i].measure(profile);
            for j in (i + 1)..n {
                let o = self.regions[i].overlap_measure(&self.regions[j], profile);
                m[i][j] = o;
                m[j][i] = o;
            }
        }
        m
    }

    /// Total probability mass counted more than once when summing region
    /// measures: `Σᵢ qᵢ − measure(∪ᵢ regionᵢ)`. Zero exactly when the
    /// paper's §6.2 non-overlap assumption holds.
    pub fn total_overlap_mass(&self, profile: &Profile) -> f64 {
        let sum: f64 = self.q_values(profile).iter().sum();
        let union = Region::union(self.regions.clone()).measure(profile);
        (sum - union).max(0.0)
    }

    /// True PFD of a version containing exactly the faults in `fault_set`:
    /// the measure of the **union** of their regions (overlaps counted
    /// once). The core model's sum `Σ qᵢ` over-counts any overlap — §6.2's
    /// pessimism, quantified.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] for a fault index outside the map.
    pub fn union_pfd(&self, fault_set: &[usize], profile: &Profile) -> Result<f64, DemandError> {
        let set = FaultSet::from_indices(self.regions.len(), fault_set)?;
        Ok(self.union_pfd_set(&set, profile))
    }

    /// The core model's *sum* PFD for the same fault set (`Σ qᵢ`), for
    /// comparison with [`Self::union_pfd`].
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] for a fault index outside the map.
    pub fn sum_pfd(&self, fault_set: &[usize], profile: &Profile) -> Result<f64, DemandError> {
        let parts = self.gather(fault_set)?;
        Ok(parts.iter().map(|r| r.measure(profile)).sum())
    }

    /// §6.3: presence probability of each *distinct region* when several
    /// faults map onto it. `groups[g]` lists the fault indices (into `ps`)
    /// that would each independently create region `g`; the region is
    /// present iff at least one of them is made:
    /// `P(region g) = 1 − Π (1 − pⱼ)` — which approaches the **sum** of
    /// the faults' probabilities, the quantity the paper warns an assessor
    /// will underestimate by taking only `max pⱼ`.
    ///
    /// Returns `(presence probability, max component pⱼ)` per group so the
    /// underestimation factor is directly readable.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] for fault indices outside `ps`;
    /// [`DemandError::InvalidWeights`] for non-probability entries.
    pub fn grouped_region_presence(
        ps: &[f64],
        groups: &[Vec<usize>],
    ) -> Result<Vec<(f64, f64)>, DemandError> {
        for &p in ps {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(DemandError::InvalidWeights(format!(
                    "probability {p} out of range"
                )));
            }
        }
        groups
            .iter()
            .map(|g| {
                let mut none = 1.0_f64;
                let mut max_p = 0.0_f64;
                for &j in g {
                    let p = *ps.get(j).ok_or_else(|| DemandError::OutOfBounds {
                        what: format!("fault index {j}"),
                    })?;
                    none *= 1.0 - p;
                    max_p = max_p.max(p);
                }
                Ok((1.0 - none, max_p))
            })
            .collect()
    }

    fn gather(&self, fault_set: &[usize]) -> Result<Vec<Region>, DemandError> {
        fault_set
            .iter()
            .map(|&i| {
                self.regions
                    .get(i)
                    .cloned()
                    .ok_or_else(|| DemandError::OutOfBounds {
                        what: format!("fault index {i}"),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Demand;

    fn setup() -> (FaultRegionMap, Profile) {
        let space = GridSpace2D::new(10, 10).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![
                Region::rect(0, 0, 1, 1),            // 4 cells, q = 0.04
                Region::rect(1, 1, 2, 2),            // 4 cells, overlaps 1 cell with #0
                Region::points([Demand::new(9, 9)]), // 1 cell
            ],
        )
        .unwrap();
        (map, profile)
    }

    #[test]
    fn construction_validates() {
        let space = GridSpace2D::new(5, 5).unwrap();
        assert!(FaultRegionMap::new(space, vec![]).is_err());
        assert!(FaultRegionMap::new(space, vec![Region::rect(0, 0, 5, 5)]).is_err());
        let ok = FaultRegionMap::new(space, vec![Region::rect(0, 0, 4, 4)]).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok.is_empty());
    }

    #[test]
    fn q_values_are_measures() {
        let (map, profile) = setup();
        let q = map.q_values(&profile);
        assert!((q[0] - 0.04).abs() < 1e-12);
        assert!((q[1] - 0.04).abs() < 1e-12);
        assert!((q[2] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn to_fault_model_bridges_geometry() {
        let (map, profile) = setup();
        let m = map.to_fault_model(&[0.5, 0.2, 0.1], &profile).unwrap();
        assert_eq!(m.len(), 3);
        assert!((m.faults()[0].q() - 0.04).abs() < 1e-12);
        assert!((m.mean_pfd_single() - (0.5 * 0.04 + 0.2 * 0.04 + 0.1 * 0.01)).abs() < 1e-12);
        assert!(map.to_fault_model(&[0.5], &profile).is_err());
        assert!(map.to_fault_model(&[0.5, 0.2, 1.4], &profile).is_err());
    }

    #[test]
    fn overlap_matrix_is_symmetric_with_measures_on_diagonal() {
        let (map, profile) = setup();
        let m = map.overlap_matrix(&profile);
        assert!((m[0][0] - 0.04).abs() < 1e-12);
        assert!((m[0][1] - 0.01).abs() < 1e-12); // single shared cell (1,1)
        assert_eq!(m[0][1], m[1][0]);
        assert_eq!(m[0][2], 0.0);
    }

    #[test]
    fn total_overlap_mass_quantifies_section_6_2() {
        let (map, profile) = setup();
        // Sum = 0.09, union = 0.08 (one shared cell) -> overlap mass 0.01.
        assert!((map.total_overlap_mass(&profile) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn union_pfd_vs_sum_pfd() {
        let (map, profile) = setup();
        let union = map.union_pfd(&[0, 1], &profile).unwrap();
        let sum = map.sum_pfd(&[0, 1], &profile).unwrap();
        assert!((union - 0.07).abs() < 1e-12);
        assert!((sum - 0.08).abs() < 1e-12);
        assert!(union <= sum); // §6.2: model is pessimistic
        assert!(map.union_pfd(&[7], &profile).is_err());
        assert_eq!(map.union_pfd(&[], &profile).unwrap(), 0.0);
    }

    #[test]
    fn grouped_presence_exceeds_max_component() {
        // §6.3: two faults of p = 0.1 sharing a region give presence 0.19,
        // nearly double the max component 0.1.
        let res =
            FaultRegionMap::grouped_region_presence(&[0.1, 0.1, 0.05], &[vec![0, 1], vec![2]])
                .unwrap();
        assert!((res[0].0 - 0.19).abs() < 1e-12);
        assert!((res[0].1 - 0.1).abs() < 1e-15);
        assert!(res[0].0 > res[0].1);
        assert!((res[1].0 - 0.05).abs() < 1e-12);
        assert!(FaultRegionMap::grouped_region_presence(&[0.1], &[vec![3]]).is_err());
        assert!(FaultRegionMap::grouped_region_presence(&[1.4], &[vec![0]]).is_err());
    }

    #[test]
    fn empty_group_has_zero_presence() {
        let res = FaultRegionMap::grouped_region_presence(&[0.1], &[vec![]]).unwrap();
        assert_eq!(res[0], (0.0, 0.0));
    }

    #[test]
    fn parallel_union_pfd_matches_serial() {
        // Big enough to cross the parallel threshold (160×160 = 25 600
        // cells), with enough regions to exercise multi-word masks.
        let space = GridSpace2D::new(160, 160).unwrap();
        let profile = Profile::uniform(&space);
        let regions: Vec<Region> = (0..70)
            .map(|i| {
                let x = (i * 13) as u32 % 150;
                let y = (i * 29) as u32 % 150;
                Region::rect(x, y, x + 8, y + 8)
            })
            .collect();
        let map = FaultRegionMap::new(space, regions).unwrap();
        let faults = FaultSet::from_indices(70, &(0..70).step_by(3).collect::<Vec<_>>()).unwrap();
        let serial = map.union_pfd_set(&faults, &profile);
        assert!(serial > 0.0);
        for threads in [1, 2, 4, 7] {
            let par = map.union_pfd_set_parallel(&faults, &profile, threads);
            assert!(
                (par - serial).abs() < 1e-12,
                "{threads} threads: {par} vs {serial}"
            );
        }
        // Small grids silently take the serial path.
        let small_space = GridSpace2D::new(10, 10).unwrap();
        let small_profile = Profile::uniform(&small_space);
        let small = FaultRegionMap::new(small_space, vec![Region::rect(0, 0, 3, 3)]).unwrap();
        let fs = FaultSet::from_indices(1, &[0]).unwrap();
        assert_eq!(
            small.union_pfd_set_parallel(&fs, &small_profile, 8),
            small.union_pfd_set(&fs, &small_profile)
        );
    }
}
