//! Word-packed fault sets — the bitset substrate behind the
//! Monte-Carlo fast path.
//!
//! A [`FaultSet`] records, for a universe of `n` potential faults,
//! which faults a version contains, one bit per fault in `u64` words.
//! Set algebra on versions (`pair_with`, `common_faults`,
//! `fault_count`) becomes bitwise AND/OR plus popcount, and the
//! per-cell failure masks of
//! [`FaultRegionMap`](crate::mapping::FaultRegionMap) reduce
//! "does this version fail on this demand?" to a single masked AND.
//!
//! Sets up to 128 faults are stored inline (no heap allocation), which
//! keeps the hot sampling loops of `divrel-devsim` allocation-free for
//! every realistic model size.

use crate::error::DemandError;
use std::fmt;

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `n` bits.
#[inline]
pub const fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

const INLINE_WORDS: usize = 2;

#[derive(Debug, Clone)]
enum Store {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A set of fault indices over a fixed universe `0..n`, packed into
/// `u64` words.
///
/// ```
/// use divrel_demand::fault_set::FaultSet;
///
/// let mut a = FaultSet::new(70);
/// a.insert(3);
/// a.insert(68);
/// let b = FaultSet::from_bools(&(0..70).map(|i| i % 3 == 0).collect::<Vec<_>>());
/// assert!(a.contains(68) && !a.contains(4));
/// assert_eq!(a.intersect_count(&b), 1); // only fault 3 (68 % 3 != 0)
/// let common = a.intersection(&b);
/// assert_eq!(common.iter_ones().collect::<Vec<_>>(), vec![3]);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSet {
    n: usize,
    store: Store,
}

impl FaultSet {
    /// The empty set over a universe of `n` potential faults.
    pub fn new(n: usize) -> Self {
        let store = if words_for(n) <= INLINE_WORDS {
            Store::Inline([0; INLINE_WORDS])
        } else {
            Store::Heap(vec![0; words_for(n)])
        };
        FaultSet { n, store }
    }

    /// Builds a set from one presence flag per fault.
    pub fn from_bools(present: &[bool]) -> Self {
        let mut s = FaultSet::new(present.len());
        for (i, &b) in present.iter().enumerate() {
            if b {
                s.insert(i);
            }
        }
        s
    }

    /// Builds a set from explicit fault indices.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] for an index `>= n`.
    pub fn from_indices(n: usize, indices: &[usize]) -> Result<Self, DemandError> {
        let mut s = FaultSet::new(n);
        for &i in indices {
            if i >= n {
                return Err(DemandError::OutOfBounds {
                    what: format!("fault index {i} of {n}"),
                });
            }
            s.insert(i);
        }
        Ok(s)
    }

    /// The size of the fault universe (number of potential faults).
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The backing words (exactly `words_for(universe())` of them; bits
    /// at positions `>= universe()` are always zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.store {
            Store::Inline(a) => &a[..words_for(self.n)],
            Store::Heap(v) => v,
        }
    }

    /// Mutable access to the backing words. Callers must keep bits at
    /// positions `>= universe()` zero; [`Self::mask_tail`] restores the
    /// invariant after bulk writes.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        let wps = words_for(self.n);
        match &mut self.store {
            Store::Inline(a) => &mut a[..wps],
            Store::Heap(v) => v,
        }
    }

    /// Zeroes any bits at positions `>= universe()` after bulk word
    /// writes (e.g. filling words from an RNG).
    #[inline]
    pub fn mask_tail(&mut self) {
        let n = self.n;
        let tail_bits = n % WORD_BITS;
        if tail_bits != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Inserts fault `i` (must be `< universe()`).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.n, "fault index {i} out of universe {}", self.n);
        self.words_mut()[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes fault `i` (must be `< universe()`).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.n, "fault index {i} out of universe {}", self.n);
        self.words_mut()[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Whether fault `i` is in the set (`false` for `i >= universe()`).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.n {
            return false;
        }
        self.words()[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Empties the set, keeping the universe size.
    #[inline]
    pub fn clear(&mut self) {
        for w in self.words_mut() {
            *w = 0;
        }
    }

    /// Number of faults in the set (popcount).
    #[inline]
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set contains no fault.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Iterates the set's fault indices in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * WORD_BITS + b)
            })
        })
    }

    /// The set as one `bool` per fault.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.n).map(|i| self.contains(i)).collect()
    }

    /// Size of the intersection with `other` (one pass of AND +
    /// popcount; universes may differ — indices beyond either universe
    /// never match).
    #[inline]
    pub fn intersect_count(&self, other: &FaultSet) -> usize {
        self.words()
            .iter()
            .zip(other.words())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether the set intersects a raw mask slice (used with the
    /// per-cell failure masks of `FaultRegionMap`).
    #[inline]
    pub fn intersects_words(&self, mask: &[u64]) -> bool {
        self.words().iter().zip(mask).any(|(&a, &b)| a & b != 0)
    }

    /// The intersection as a new set over the larger universe.
    pub fn intersection(&self, other: &FaultSet) -> FaultSet {
        let mut out = FaultSet::new(self.n.max(other.n));
        for ((o, &a), &b) in out
            .words_mut()
            .iter_mut()
            .zip(self.words())
            .zip(other.words())
        {
            *o = a & b;
        }
        out
    }

    /// In-place union with `other` (universes must match).
    pub fn union_with(&mut self, other: &FaultSet) {
        debug_assert_eq!(self.n, other.n, "union over mismatched universes");
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// Copies `other` into `self` (universes must match; no
    /// allocation).
    pub fn copy_from(&mut self, other: &FaultSet) {
        debug_assert_eq!(self.n, other.n, "copy over mismatched universes");
        self.words_mut().copy_from_slice(other.words());
    }

    /// Sum of `weights[i]` over the faults in the set — the bitset form
    /// of the model's `Σ qᵢ` PFD.
    #[inline]
    pub fn sum_weights(&self, weights: &[f64]) -> f64 {
        debug_assert!(weights.len() >= self.n);
        let mut total = 0.0;
        for (wi, &w) in self.words().iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                total += weights[wi * WORD_BITS + b];
                w &= w - 1;
            }
        }
        total
    }

    /// Sum of `weights[i]` over the intersection with `other`, without
    /// materialising it.
    #[inline]
    pub fn intersect_sum_weights(&self, other: &FaultSet, weights: &[f64]) -> f64 {
        let mut total = 0.0;
        for (wi, (&a, &b)) in self.words().iter().zip(other.words()).enumerate() {
            let mut w = a & b;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                total += weights[wi * WORD_BITS + bit];
                w &= w - 1;
            }
        }
        total
    }
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.words() == other.words()
    }
}

impl Eq for FaultSet {}

impl std::hash::Hash for FaultSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultSet({} of {})", self.count(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FaultSet::new(130); // spills to heap storage
        assert!(s.is_empty());
        for i in [0, 63, 64, 127, 129] {
            s.insert(i);
        }
        assert_eq!(s.count(), 5);
        assert!(s.contains(64) && s.contains(129));
        assert!(!s.contains(65));
        assert!(!s.contains(1000)); // out of universe is simply absent
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 4);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn inline_and_heap_agree() {
        for n in [1usize, 63, 64, 65, 128, 129, 200] {
            let bools: Vec<bool> = (0..n).map(|i| i % 7 == 2).collect();
            let s = FaultSet::from_bools(&bools);
            assert_eq!(s.universe(), n);
            assert_eq!(s.to_bools(), bools);
            assert_eq!(s.count(), bools.iter().filter(|&&b| b).count());
            assert_eq!(
                s.iter_ones().collect::<Vec<_>>(),
                (0..n).filter(|i| i % 7 == 2).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn from_indices_validates() {
        let s = FaultSet::from_indices(10, &[1, 9]).unwrap();
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![1, 9]);
        assert!(FaultSet::from_indices(10, &[10]).is_err());
    }

    #[test]
    fn set_algebra() {
        let a = FaultSet::from_bools(&[true, true, false, true]);
        let b = FaultSet::from_bools(&[false, true, true, true]);
        assert_eq!(a.intersect_count(&b), 2);
        let i = a.intersection(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        // Weighted sums.
        let w = [0.1, 0.2, 0.4, 0.8];
        assert!((a.sum_weights(&w) - 1.1).abs() < 1e-15);
        assert!((a.intersect_sum_weights(&b, &w) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mismatched_universes_intersect_over_common_words() {
        let mut small = FaultSet::new(4);
        small.insert(1);
        let mut big = FaultSet::new(500);
        big.insert(1);
        big.insert(400);
        assert_eq!(small.intersect_count(&big), 1);
        let i = small.intersection(&big);
        assert_eq!(i.universe(), 500);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn mask_tail_clears_out_of_universe_bits() {
        let mut s = FaultSet::new(70);
        for w in s.words_mut() {
            *w = u64::MAX;
        }
        s.mask_tail();
        assert_eq!(s.count(), 70);
        assert!(!s.contains(70));
    }

    #[test]
    fn equality_and_hash_cover_universe() {
        use std::collections::HashSet;
        let a = FaultSet::from_bools(&[true, false]);
        let b = FaultSet::from_bools(&[true, false]);
        let c = FaultSet::from_bools(&[true, false, false]);
        assert_eq!(a, b);
        assert_ne!(a, c); // same bits, different universe
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn intersects_words_masks() {
        let s = FaultSet::from_bools(&[false, true, false]);
        assert!(s.intersects_words(&[0b010]));
        assert!(!s.intersects_words(&[0b101]));
        assert!(!s.intersects_words(&[]));
    }

    #[test]
    fn display_summarises() {
        let s = FaultSet::from_bools(&[true, true, false]);
        assert_eq!(s.to_string(), "FaultSet(2 of 3)");
    }
}
