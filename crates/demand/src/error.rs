//! Error type for the demand-space crate.

use std::fmt;

/// Errors produced by demand-space operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandError {
    /// A space dimension was zero.
    EmptySpace,
    /// A demand or region coordinate lies outside the space.
    OutOfBounds {
        /// Human-readable description of the offending object.
        what: String,
    },
    /// Profile weights were invalid (negative, non-finite, or all zero).
    InvalidWeights(String),
    /// The operation received inconsistent arguments.
    Mismatch(String),
    /// A propagated model-crate error.
    Model(divrel_model::ModelError),
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::EmptySpace => write!(f, "demand space dimensions must be non-zero"),
            DemandError::OutOfBounds { what } => write!(f, "out of bounds: {what}"),
            DemandError::InvalidWeights(msg) => write!(f, "invalid profile weights: {msg}"),
            DemandError::Mismatch(msg) => write!(f, "inconsistent arguments: {msg}"),
            DemandError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for DemandError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DemandError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<divrel_model::ModelError> for DemandError {
    fn from(e: divrel_model::ModelError) -> Self {
        DemandError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(DemandError::EmptySpace.to_string().contains("non-zero"));
        assert!(DemandError::OutOfBounds {
            what: "point (5,5)".into()
        }
        .to_string()
        .contains("(5,5)"));
        assert!(DemandError::InvalidWeights("all zero".into())
            .to_string()
            .contains("all zero"));
        let inner = divrel_model::ModelError::EmptyModel;
        let e = DemandError::from(inner);
        assert!(e.source().is_some());
        assert!(DemandError::EmptySpace.source().is_none());
    }
}
