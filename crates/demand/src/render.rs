//! ASCII rendering of failure regions — the executable counterpart of the
//! paper's Fig 2.
//!
//! Fig 2 shows "an example of failure regions in a two-dimensional demand
//! space". [`render_regions`] reproduces that picture for any region set:
//! each region is drawn with its own digit/letter, overlaps with `*`, and
//! empty space with `·`. Experiment F2 emits this for the README and
//! EXPERIMENTS.md.

use crate::region::Region;
use crate::space::{Demand, GridSpace2D};

/// Characters used for the first regions; later regions wrap around.
const GLYPHS: &[u8] = b"123456789abcdefghijklmnopqrstuvwxyz";

/// Renders the regions over the space as an ASCII raster.
///
/// Rows are printed top-to-bottom with `var2` decreasing, matching the
/// usual plot orientation of Fig 2. Cells covered by more than one region
/// show `*`; untouched cells show `·`.
///
/// ```
/// use divrel_demand::{region::Region, render::render_regions, space::GridSpace2D};
/// let space = GridSpace2D::new(4, 3)?;
/// let art = render_regions(&space, &[Region::rect(0, 0, 1, 1)]);
/// let lines: Vec<&str> = art.lines().collect();
/// assert_eq!(lines[2], "11··"); // bottom row (var2 = 0)
/// assert_eq!(lines[0], "····"); // top row (var2 = 2)
/// # Ok::<(), divrel_demand::DemandError>(())
/// ```
pub fn render_regions(space: &GridSpace2D, regions: &[Region]) -> String {
    let mut out = String::with_capacity((space.nx() as usize + 1) * space.ny() as usize);
    for y in (0..space.ny()).rev() {
        for x in 0..space.nx() {
            let d = Demand::new(x, y);
            let mut covering = regions
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(d))
                .map(|(i, _)| i);
            let glyph = match (covering.next(), covering.next()) {
                (None, _) => '·',
                (Some(i), None) => GLYPHS[i % GLYPHS.len()] as char,
                (Some(_), Some(_)) => '*',
            };
            out.push(glyph);
        }
        out.push('\n');
    }
    out
}

/// Renders with a legend listing each region's glyph and cell count —
/// the format used by experiment F2.
pub fn render_with_legend(space: &GridSpace2D, regions: &[Region]) -> String {
    let mut out = render_regions(space, regions);
    out.push('\n');
    for (i, r) in regions.iter().enumerate() {
        let glyph = GLYPHS[i % GLYPHS.len()] as char;
        out.push_str(&format!(
            "{glyph}: {} cells ({})\n",
            r.cell_count(space),
            region_kind(r)
        ));
    }
    out
}

fn region_kind(r: &Region) -> &'static str {
    match r {
        Region::Rect { .. } => "rectangle",
        Region::Points(_) => "point set",
        Region::Lattice { .. } => "point/line array",
        Region::Union(_) => "union",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rect_and_empty_cells() {
        let s = GridSpace2D::new(5, 3).unwrap();
        let art = render_regions(&s, &[Region::rect(1, 0, 2, 1)]);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "·····"); // y = 2
        assert_eq!(lines[1], "·11··"); // y = 1
        assert_eq!(lines[2], "·11··"); // y = 0
    }

    #[test]
    fn overlap_is_starred() {
        let s = GridSpace2D::new(3, 1).unwrap();
        let art = render_regions(&s, &[Region::rect(0, 0, 1, 0), Region::rect(1, 0, 2, 0)]);
        assert_eq!(art.trim_end(), "1*2");
    }

    #[test]
    fn lattice_renders_as_separate_points() {
        let s = GridSpace2D::new(7, 1).unwrap();
        let art = render_regions(&s, &[Region::lattice(0, 0, 3, 0, 3)]);
        assert_eq!(art.trim_end(), "1··1··1");
    }

    #[test]
    fn legend_lists_regions() {
        let s = GridSpace2D::new(6, 6).unwrap();
        let art = render_with_legend(
            &s,
            &[Region::rect(0, 0, 1, 1), Region::lattice(3, 3, 1, 1, 2)],
        );
        assert!(art.contains("1: 4 cells (rectangle)"));
        assert!(art.contains("2: 2 cells (point/line array)"));
    }

    #[test]
    fn many_regions_wrap_glyphs() {
        let s = GridSpace2D::new(40, 1).unwrap();
        let regions: Vec<Region> = (0..36)
            .map(|i| Region::points([Demand::new(i, 0)]))
            .collect();
        let art = render_regions(&s, &regions);
        // Region 35 wraps to glyph index 0 -> '1'.
        assert_eq!(art.chars().next().unwrap(), '1');
        assert_eq!(art.chars().nth(35).unwrap(), '1');
    }
}
