//! The Eckhardt–Lee "difficulty function" induced by the fault model.
//!
//! §2.1 of the paper notes its construction "is essentially the basis of
//! the models used in \[3\] (Eckhardt & Lee) and \[4\] (Littlewood &
//! Miller)". The EL model works at the demand level: the *difficulty*
//! `θ(x)` of demand `x` is the probability that a randomly developed
//! version fails on `x`, and the key EL results are
//!
//! * `E[Θ₁] = E_X[θ(X)]`,
//! * `E[Θ₂] = E_X[θ(X)²] ≥ (E_X[θ(X)])²` — diverse pairs are *worse* than
//!   the independence assumption predicts, by exactly `Var_X(θ(X))`.
//!
//! The fault-creation model *induces* a difficulty function:
//! `θ(x) = 1 − Π_{i : x ∈ Rᵢ} (1 − pᵢ)`. This module computes it and
//! thereby connects the two model families executably. It also exposes
//! the fact that under **overlapping** regions the demand-level pair PFD
//! `E[θ²]` is the *correct* value, while the core model's common-fault
//! sum `Σ pᵢ²qᵢ` is only exact for non-overlapping regions — the §6.2
//! assumption made measurable at the pair level.

use crate::error::DemandError;
use crate::mapping::FaultRegionMap;
use crate::profile::Profile;

/// The difficulty function of a fault→region map under given introduction
/// probabilities: per demand cell, the probability a random version fails
/// there.
#[derive(Debug, Clone, PartialEq)]
pub struct DifficultyFunction {
    theta: Vec<f64>,
}

impl DifficultyFunction {
    /// Computes `θ(x) = 1 − Π_{i: x∈Rᵢ}(1−pᵢ)` for every cell of the
    /// map's space.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if `ps.len() != map.len()`;
    /// [`DemandError::InvalidWeights`] for non-probability entries.
    pub fn from_map(map: &FaultRegionMap, ps: &[f64]) -> Result<Self, DemandError> {
        if ps.len() != map.len() {
            return Err(DemandError::Mismatch(format!(
                "{} probabilities for {} regions",
                ps.len(),
                map.len()
            )));
        }
        for &p in ps {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(DemandError::InvalidWeights(format!(
                    "probability {p} out of range"
                )));
            }
        }
        let n_cells = map.space().cell_count();
        // Accumulate log(1-p) per covered cell, then θ = 1 - exp(sum).
        let mut log_none = vec![0.0_f64; n_cells];
        let mut certain = vec![false; n_cells];
        for (region, &p) in map.regions().iter().zip(ps) {
            if p == 0.0 {
                continue;
            }
            for idx in region.cell_indices(map.space()) {
                if p == 1.0 {
                    certain[idx] = true;
                } else {
                    log_none[idx] += (-p).ln_1p();
                }
            }
        }
        let theta = log_none
            .iter()
            .zip(&certain)
            .map(|(&l, &c)| if c { 1.0 } else { -l.exp_m1() })
            .collect();
        Ok(DifficultyFunction { theta })
    }

    /// The difficulty of the demand at linear cell index `idx` (0 outside).
    pub fn theta_at(&self, idx: usize) -> f64 {
        self.theta.get(idx).copied().unwrap_or(0.0)
    }

    /// The full difficulty vector in row-major cell order.
    pub fn values(&self) -> &[f64] {
        &self.theta
    }

    /// EL single-version mean PFD: `E_X[θ(X)]` under `profile`.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if the profile's space size differs.
    pub fn mean_single(&self, profile: &Profile) -> Result<f64, DemandError> {
        self.expect_same_space(profile)?;
        Ok(profile
            .probs()
            .iter()
            .zip(&self.theta)
            .map(|(w, t)| w * t)
            .sum())
    }

    /// EL 1-out-of-2 mean PFD: `E_X[θ(X)²]` — exact at the demand level
    /// even when failure regions overlap.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if the profile's space size differs.
    pub fn mean_pair(&self, profile: &Profile) -> Result<f64, DemandError> {
        self.expect_same_space(profile)?;
        Ok(profile
            .probs()
            .iter()
            .zip(&self.theta)
            .map(|(w, t)| w * t * t)
            .sum())
    }

    /// EL k-version mean PFD: `E_X[θ(X)ᵏ]`.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] on space mismatch or `k == 0`.
    pub fn mean_k(&self, profile: &Profile, k: u32) -> Result<f64, DemandError> {
        if k == 0 {
            return Err(DemandError::Mismatch("k must be >= 1".into()));
        }
        self.expect_same_space(profile)?;
        Ok(profile
            .probs()
            .iter()
            .zip(&self.theta)
            .map(|(w, t)| w * t.powi(k as i32))
            .sum())
    }

    /// The EL "variance of difficulty" `Var_X(θ(X))` — exactly how much
    /// worse than the independence prediction a diverse pair is:
    /// `E[Θ₂] = (E[Θ₁])² + Var(θ)`.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if the profile's space size differs.
    pub fn difficulty_variance(&self, profile: &Profile) -> Result<f64, DemandError> {
        let m = self.mean_single(profile)?;
        Ok(self.mean_pair(profile)? - m * m)
    }

    fn expect_same_space(&self, profile: &Profile) -> Result<(), DemandError> {
        if profile.space().cell_count() != self.theta.len() {
            return Err(DemandError::Mismatch(format!(
                "profile over {} cells, difficulty over {}",
                profile.space().cell_count(),
                self.theta.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use crate::space::GridSpace2D;

    fn disjoint_setup() -> (FaultRegionMap, Profile, Vec<f64>) {
        let space = GridSpace2D::new(10, 10).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 1, 1), Region::rect(5, 5, 7, 7)],
        )
        .unwrap();
        (map, profile, vec![0.3, 0.1])
    }

    #[test]
    fn construction_validates() {
        let (map, _, _) = disjoint_setup();
        assert!(DifficultyFunction::from_map(&map, &[0.3]).is_err());
        assert!(DifficultyFunction::from_map(&map, &[0.3, 1.5]).is_err());
        assert!(DifficultyFunction::from_map(&map, &[0.3, 0.1]).is_ok());
    }

    #[test]
    fn theta_values_on_disjoint_regions() {
        let (map, _, ps) = disjoint_setup();
        let d = DifficultyFunction::from_map(&map, &ps).unwrap();
        // Inside region 0: θ = p0; inside region 1: θ = p1; outside: 0.
        let space = map.space();
        let idx0 = space.index_of(crate::space::Demand::new(0, 0)).unwrap();
        let idx1 = space.index_of(crate::space::Demand::new(6, 6)).unwrap();
        let idx_out = space.index_of(crate::space::Demand::new(9, 0)).unwrap();
        assert!((d.theta_at(idx0) - 0.3).abs() < 1e-12);
        assert!((d.theta_at(idx1) - 0.1).abs() < 1e-12);
        assert_eq!(d.theta_at(idx_out), 0.0);
        assert_eq!(d.theta_at(10_000), 0.0);
    }

    #[test]
    fn el_means_match_fault_model_when_regions_disjoint() {
        let (map, profile, ps) = disjoint_setup();
        let d = DifficultyFunction::from_map(&map, &ps).unwrap();
        let model = map.to_fault_model(&ps, &profile).unwrap();
        assert!((d.mean_single(&profile).unwrap() - model.mean_pfd_single()).abs() < 1e-12);
        assert!((d.mean_pair(&profile).unwrap() - model.mean_pfd_pair()).abs() < 1e-12);
        assert!((d.mean_k(&profile, 3).unwrap() - model.mean_pfd(3)).abs() < 1e-12);
    }

    #[test]
    fn el_inequality_pair_worse_than_independence() {
        let (map, profile, ps) = disjoint_setup();
        let d = DifficultyFunction::from_map(&map, &ps).unwrap();
        let m1 = d.mean_single(&profile).unwrap();
        let m2 = d.mean_pair(&profile).unwrap();
        assert!(m2 >= m1 * m1, "EL inequality violated: {m2} < {}", m1 * m1);
        // And the gap is exactly Var(θ).
        assert!((d.difficulty_variance(&profile).unwrap() - (m2 - m1 * m1)).abs() < 1e-15);
        assert!(d.difficulty_variance(&profile).unwrap() > 0.0);
    }

    #[test]
    fn overlap_separates_el_from_common_fault_sum() {
        // Overlapping regions: the demand-level pair PFD exceeds the core
        // model's common-fault sum, because both versions can fail on x
        // via DIFFERENT faults.
        let space = GridSpace2D::new(10, 10).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![Region::rect(0, 0, 4, 4), Region::rect(2, 2, 6, 6)],
        )
        .unwrap();
        let ps = [0.4, 0.4];
        let d = DifficultyFunction::from_map(&map, &ps).unwrap();
        let el_pair = d.mean_pair(&profile).unwrap();
        let model = map.to_fault_model(&ps, &profile).unwrap();
        let core_pair = model.mean_pfd_pair();
        assert!(
            el_pair > core_pair,
            "expected demand-level pair PFD {el_pair} > common-fault sum {core_pair}"
        );
        // Single-version means also differ: the core model double-counts
        // the overlap (pessimistic), EL does not.
        let el_single = d.mean_single(&profile).unwrap();
        assert!(el_single < model.mean_pfd_single());
    }

    #[test]
    fn certain_fault_saturates_theta() {
        let space = GridSpace2D::new(4, 4).unwrap();
        let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 3, 3)]).unwrap();
        let d = DifficultyFunction::from_map(&map, &[1.0]).unwrap();
        assert!(d.values().iter().all(|&t| t == 1.0));
    }

    #[test]
    fn space_mismatch_detected() {
        let (map, _, ps) = disjoint_setup();
        let d = DifficultyFunction::from_map(&map, &ps).unwrap();
        let other_space = GridSpace2D::new(3, 3).unwrap();
        let other_profile = Profile::uniform(&other_space);
        assert!(d.mean_single(&other_profile).is_err());
        assert!(d.mean_k(&other_profile, 2).is_err());
        let (_, profile, _) = disjoint_setup();
        assert!(d.mean_k(&profile, 0).is_err());
    }
}
