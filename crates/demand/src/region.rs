//! Failure regions — paper §2.1 and Fig 2.
//!
//! "A design fault in a version consists in the fact that, for one or more
//! possible demands, that version will not respond as required. … Any set
//! of demands on which a version will fail is called a failure region."
//! Fig 2 and the studies the paper cites \[9, 10, 11\] report simple blobs
//! **and** "non-intuitive shapes, including non-connected regions like
//! arrays of separate points or lines" — hence the [`Region`] variants
//! below.

use crate::error::DemandError;
use crate::profile::Profile;
use crate::space::{Demand, GridSpace2D};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A failure region: a set of demands on which a faulty version fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// An axis-aligned rectangle `[x0, x1] × [y0, y1]` (inclusive).
    Rect {
        /// Left column.
        x0: u32,
        /// Bottom row.
        y0: u32,
        /// Right column (inclusive).
        x1: u32,
        /// Top row (inclusive).
        y1: u32,
    },
    /// An explicit, possibly scattered set of demands.
    Points(Vec<Demand>),
    /// A regular array of isolated points: `count` points starting at
    /// `(x0, y0)` advancing by `(dx, dy)` per step. With `dy = 0` this is a
    /// dashed horizontal line; with `dx = dy` a diagonal — the
    /// "arrays of separate points or lines" of Fig 2.
    Lattice {
        /// Start column.
        x0: u32,
        /// Start row.
        y0: u32,
        /// Column stride per point.
        dx: u32,
        /// Row stride per point.
        dy: u32,
        /// Number of points.
        count: u32,
    },
    /// A union of sub-regions (overlap between members is handled
    /// correctly: each demand counts once).
    Union(Vec<Region>),
}

impl Region {
    /// Convenience constructor for [`Region::Rect`].
    pub fn rect(x0: u32, y0: u32, x1: u32, y1: u32) -> Region {
        Region::Rect { x0, y0, x1, y1 }
    }

    /// Convenience constructor for [`Region::Points`].
    pub fn points<I: IntoIterator<Item = Demand>>(pts: I) -> Region {
        Region::Points(pts.into_iter().collect())
    }

    /// Convenience constructor for [`Region::Lattice`].
    pub fn lattice(x0: u32, y0: u32, dx: u32, dy: u32, count: u32) -> Region {
        Region::Lattice {
            x0,
            y0,
            dx,
            dy,
            count,
        }
    }

    /// Convenience constructor for [`Region::Union`].
    pub fn union<I: IntoIterator<Item = Region>>(parts: I) -> Region {
        Region::Union(parts.into_iter().collect())
    }

    /// Whether the demand lies in this region.
    pub fn contains(&self, d: Demand) -> bool {
        match self {
            Region::Rect { x0, y0, x1, y1 } => {
                d.var1 >= *x0 && d.var1 <= *x1 && d.var2 >= *y0 && d.var2 <= *y1
            }
            Region::Points(pts) => pts.contains(&d),
            Region::Lattice {
                x0,
                y0,
                dx,
                dy,
                count,
            } => {
                for i in 0..*count {
                    let x = *x0 as u64 + *dx as u64 * i as u64;
                    let y = *y0 as u64 + *dy as u64 * i as u64;
                    if d.var1 as u64 == x && d.var2 as u64 == y {
                        return true;
                    }
                }
                false
            }
            Region::Union(parts) => parts.iter().any(|r| r.contains(d)),
        }
    }

    /// The distinct cells of the region clipped to `space`, as sorted
    /// linear indices. Duplicate cells (e.g. from overlapping union
    /// members) appear once.
    pub fn cell_indices(&self, space: &GridSpace2D) -> Vec<usize> {
        let mut set = BTreeSet::new();
        self.collect_indices(space, &mut set);
        set.into_iter().collect()
    }

    fn collect_indices(&self, space: &GridSpace2D, out: &mut BTreeSet<usize>) {
        match self {
            Region::Rect { x0, y0, x1, y1 } => {
                let x_hi = (*x1).min(space.nx().saturating_sub(1));
                let y_hi = (*y1).min(space.ny().saturating_sub(1));
                for y in *y0..=y_hi {
                    for x in *x0..=x_hi {
                        if let Ok(i) = space.index_of(Demand::new(x, y)) {
                            out.insert(i);
                        }
                    }
                }
            }
            Region::Points(pts) => {
                for d in pts {
                    if let Ok(i) = space.index_of(*d) {
                        out.insert(i);
                    }
                }
            }
            Region::Lattice {
                x0,
                y0,
                dx,
                dy,
                count,
            } => {
                for i in 0..*count {
                    let x = *x0 as u64 + *dx as u64 * i as u64;
                    let y = *y0 as u64 + *dy as u64 * i as u64;
                    if x < space.nx() as u64 && y < space.ny() as u64 {
                        if let Ok(idx) = space.index_of(Demand::new(x as u32, y as u32)) {
                            out.insert(idx);
                        }
                    }
                }
            }
            Region::Union(parts) => {
                for r in parts {
                    r.collect_indices(space, out);
                }
            }
        }
    }

    /// Number of distinct cells the region occupies within `space`.
    pub fn cell_count(&self, space: &GridSpace2D) -> usize {
        self.cell_indices(space).len()
    }

    /// The region's probability under `profile` — the paper's `qᵢ`:
    /// "the probability that a demand will be in these regions".
    pub fn measure(&self, profile: &Profile) -> f64 {
        profile.mass_of_indices(self.cell_indices(profile.space()))
    }

    /// Probability of the *intersection* of two regions under `profile`
    /// (the §6.2 overlap the core model assumes away).
    pub fn overlap_measure(&self, other: &Region, profile: &Profile) -> f64 {
        let a: BTreeSet<usize> = self.cell_indices(profile.space()).into_iter().collect();
        let mass: f64 = other
            .cell_indices(profile.space())
            .into_iter()
            .filter(|i| a.contains(i))
            .map(|i| profile.probs()[i])
            .sum();
        mass
    }

    /// Validates that the region lies entirely within `space`.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] naming the offending part.
    pub fn validate_within(&self, space: &GridSpace2D) -> Result<(), DemandError> {
        match self {
            Region::Rect { x0, y0, x1, y1 } => {
                if x0 > x1 || y0 > y1 {
                    return Err(DemandError::OutOfBounds {
                        what: format!("degenerate rect [{x0},{x1}]×[{y0},{y1}]"),
                    });
                }
                if *x1 >= space.nx() || *y1 >= space.ny() {
                    return Err(DemandError::OutOfBounds {
                        what: format!("rect corner ({x1}, {y1}) outside {space}"),
                    });
                }
                Ok(())
            }
            Region::Points(pts) => {
                for d in pts {
                    if !space.contains(*d) {
                        return Err(DemandError::OutOfBounds {
                            what: format!("point {d} outside {space}"),
                        });
                    }
                }
                Ok(())
            }
            Region::Lattice {
                x0,
                y0,
                dx,
                dy,
                count,
            } => {
                if *count == 0 {
                    return Ok(());
                }
                let last = (*count - 1) as u64;
                let x_end = *x0 as u64 + *dx as u64 * last;
                let y_end = *y0 as u64 + *dy as u64 * last;
                if x_end >= space.nx() as u64 || y_end >= space.ny() as u64 {
                    return Err(DemandError::OutOfBounds {
                        what: format!("lattice end ({x_end}, {y_end}) outside {space}"),
                    });
                }
                Ok(())
            }
            Region::Union(parts) => {
                for r in parts {
                    r.validate_within(space)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn space() -> GridSpace2D {
        GridSpace2D::new(20, 20).unwrap()
    }

    #[test]
    fn rect_membership_and_count() {
        let r = Region::rect(2, 3, 5, 6);
        assert!(r.contains(Demand::new(2, 3)));
        assert!(r.contains(Demand::new(5, 6)));
        assert!(!r.contains(Demand::new(6, 6)));
        assert!(!r.contains(Demand::new(2, 7)));
        assert_eq!(r.cell_count(&space()), 16);
    }

    #[test]
    fn points_membership() {
        let r = Region::points([Demand::new(1, 1), Demand::new(4, 9)]);
        assert!(r.contains(Demand::new(4, 9)));
        assert!(!r.contains(Demand::new(4, 8)));
        assert_eq!(r.cell_count(&space()), 2);
    }

    #[test]
    fn lattice_shapes() {
        // Dashed horizontal line: 5 points spaced 3 apart.
        let line = Region::lattice(0, 10, 3, 0, 5);
        assert!(line.contains(Demand::new(0, 10)));
        assert!(line.contains(Demand::new(12, 10)));
        assert!(!line.contains(Demand::new(1, 10)));
        assert_eq!(line.cell_count(&space()), 5);
        // Diagonal.
        let diag = Region::lattice(0, 0, 1, 1, 8);
        assert!(diag.contains(Demand::new(7, 7)));
        assert!(!diag.contains(Demand::new(7, 6)));
    }

    #[test]
    fn union_dedupes_overlap() {
        let r = Region::union([Region::rect(0, 0, 4, 4), Region::rect(3, 3, 6, 6)]);
        // 25 + 16 - 4 (overlap 3..4 × 3..4) = 37
        assert_eq!(r.cell_count(&space()), 37);
        assert!(r.contains(Demand::new(6, 6)));
        assert!(r.contains(Demand::new(0, 0)));
        assert!(!r.contains(Demand::new(7, 7)));
    }

    #[test]
    fn measure_under_uniform_profile() {
        let s = space();
        let p = Profile::uniform(&s);
        let r = Region::rect(0, 0, 9, 9); // 100 of 400 cells
        assert!((r.measure(&p) - 0.25).abs() < 1e-12);
        let empty = Region::points(std::iter::empty());
        assert_eq!(empty.measure(&p), 0.0);
    }

    #[test]
    fn measure_under_hotspot_profile() {
        let s = space();
        let p = Profile::hotspot(&s, &[Demand::new(5, 5)], 0.9).unwrap();
        let covering = Region::rect(5, 5, 5, 5);
        // 0.9 hotspot + 0.1/400 background
        assert!((covering.measure(&p) - (0.9 + 0.1 / 400.0)).abs() < 1e-12);
    }

    #[test]
    fn overlap_measure() {
        let s = space();
        let p = Profile::uniform(&s);
        let a = Region::rect(0, 0, 4, 4);
        let b = Region::rect(3, 3, 6, 6);
        // Overlap is 2×2 cells of 400.
        assert!((a.overlap_measure(&b, &p) - 4.0 / 400.0).abs() < 1e-12);
        assert!((b.overlap_measure(&a, &p) - 4.0 / 400.0).abs() < 1e-12);
        let far = Region::rect(10, 10, 12, 12);
        assert_eq!(a.overlap_measure(&far, &p), 0.0);
    }

    #[test]
    fn regions_are_clipped_to_space() {
        let s = GridSpace2D::new(5, 5).unwrap();
        let r = Region::rect(3, 3, 10, 10);
        assert_eq!(r.cell_count(&s), 4); // 3..4 × 3..4
        let l = Region::lattice(0, 0, 2, 2, 10);
        assert_eq!(l.cell_count(&s), 3); // (0,0), (2,2), (4,4)
    }

    #[test]
    fn validation() {
        let s = GridSpace2D::new(10, 10).unwrap();
        assert!(Region::rect(0, 0, 9, 9).validate_within(&s).is_ok());
        assert!(Region::rect(0, 0, 10, 9).validate_within(&s).is_err());
        assert!(Region::rect(5, 5, 4, 6).validate_within(&s).is_err());
        assert!(Region::points([Demand::new(10, 0)])
            .validate_within(&s)
            .is_err());
        assert!(Region::lattice(0, 0, 3, 3, 4).validate_within(&s).is_ok());
        assert!(Region::lattice(0, 0, 3, 3, 5).validate_within(&s).is_err());
        assert!(Region::lattice(0, 0, 9, 9, 0).validate_within(&s).is_ok());
        assert!(Region::union([
            Region::rect(0, 0, 2, 2),
            Region::points([Demand::new(11, 0)])
        ])
        .validate_within(&s)
        .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let r = Region::union([
            Region::rect(0, 0, 2, 2),
            Region::lattice(5, 5, 1, 0, 3),
            Region::points([Demand::new(9, 9)]),
        ]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Region = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    proptest! {
        #[test]
        fn membership_agrees_with_cell_indices(
            x0 in 0u32..15, y0 in 0u32..15, w in 0u32..10, h in 0u32..10,
            dx in 0u32..20, dy in 0u32..20
        ) {
            let s = space();
            let r = Region::rect(x0, y0, x0 + w, y0 + h);
            let d = Demand::new(dx, dy);
            let via_cells = r
                .cell_indices(&s)
                .into_iter()
                .any(|i| s.demand_at(i).unwrap() == d);
            // contains() is unclipped; restrict to in-space demands.
            if s.contains(d) {
                prop_assert_eq!(r.contains(d), via_cells);
            }
        }

        #[test]
        fn union_measure_never_exceeds_sum(
            ax in 0u32..10, ay in 0u32..10, bx in 0u32..10, by in 0u32..10
        ) {
            let s = space();
            let p = Profile::uniform(&s);
            let a = Region::rect(ax, ay, ax + 5, ay + 5);
            let b = Region::rect(bx, by, bx + 5, by + 5);
            let u = Region::union([a.clone(), b.clone()]);
            // §6.2: the modelled sum over-counts overlap, so union ≤ sum.
            prop_assert!(u.measure(&p) <= a.measure(&p) + b.measure(&p) + 1e-12);
            // Inclusion-exclusion is exact for two regions.
            let ie = a.measure(&p) + b.measure(&p) - a.overlap_measure(&b, &p);
            prop_assert!((u.measure(&p) - ie).abs() < 1e-12);
        }
    }
}
