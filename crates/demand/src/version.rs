//! Program versions as fault sets over a demand space.
//!
//! §2.2: "Developing versions for a given application under a regime of
//! separate development means choosing, randomly and independently,
//! possible subsets of this set of possible faults." A [`ProgramVersion`]
//! is such a subset, made executable: it can be asked whether it fails on
//! a given demand, and its true PFD is the profile measure of the union of
//! its failure regions.
//!
//! Internally a version is a word-packed [`FaultSet`], so set algebra
//! (`pair_with`, `common_faults`, `fault_count`) runs as bitwise
//! AND/OR + popcount, and failure evaluation against a
//! [`FaultRegionMap`] is a single AND against the map's precomputed
//! per-cell failure mask.

use crate::error::DemandError;
use crate::fault_set::FaultSet;
use crate::mapping::FaultRegionMap;
use crate::profile::Profile;
use crate::space::Demand;
use std::fmt;

/// A delivered program version: the subset of potential faults it contains.
///
/// ```
/// use divrel_demand::{
///     mapping::FaultRegionMap, profile::Profile, region::Region,
///     space::{Demand, GridSpace2D}, version::ProgramVersion,
/// };
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = GridSpace2D::new(10, 10)?;
/// let profile = Profile::uniform(&space);
/// let map = FaultRegionMap::new(space, vec![Region::rect(0, 0, 4, 4)])?;
///
/// let faulty = ProgramVersion::new(vec![true]);
/// assert!(faulty.fails_on(&map, Demand::new(2, 2))?);
/// assert!(!faulty.fails_on(&map, Demand::new(9, 9))?);
/// assert!((faulty.true_pfd(&map, &profile)? - 0.25).abs() < 1e-12);
///
/// let perfect = ProgramVersion::new(vec![false]);
/// assert_eq!(perfect.true_pfd(&map, &profile)?, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramVersion {
    faults: FaultSet,
}

impl ProgramVersion {
    /// Creates a version from a presence flag per potential fault.
    pub fn new(present: Vec<bool>) -> Self {
        ProgramVersion {
            faults: FaultSet::from_bools(&present),
        }
    }

    /// A fault-free version over `n` potential faults.
    pub fn fault_free(n: usize) -> Self {
        ProgramVersion {
            faults: FaultSet::new(n),
        }
    }

    /// Creates a version from the indices of its faults.
    pub fn from_fault_indices(n: usize, indices: &[usize]) -> Result<Self, DemandError> {
        Ok(ProgramVersion {
            faults: FaultSet::from_indices(n, indices)?,
        })
    }

    /// Wraps an existing fault set (the zero-copy bridge from the
    /// `divrel-devsim` samplers).
    pub fn from_fault_set(faults: FaultSet) -> Self {
        ProgramVersion { faults }
    }

    /// The underlying bitset.
    pub fn fault_set(&self) -> &FaultSet {
        &self.faults
    }

    /// Number of potential faults the version is defined over.
    pub fn len(&self) -> usize {
        self.faults.universe()
    }

    /// Whether the version is defined over an empty fault universe.
    pub fn is_empty(&self) -> bool {
        self.faults.universe() == 0
    }

    /// Presence flags, one per potential fault.
    pub fn to_bools(&self) -> Vec<bool> {
        self.faults.to_bools()
    }

    /// Indices of the faults this version contains.
    pub fn fault_indices(&self) -> Vec<usize> {
        self.faults.iter_ones().collect()
    }

    /// Number of faults in the version.
    pub fn fault_count(&self) -> usize {
        self.faults.count()
    }

    /// Whether the version contains no fault at all.
    pub fn is_fault_free(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether this version fails on `demand`: true iff the demand lies in
    /// the failure region of any fault the version contains. One AND
    /// against the map's per-cell failure mask.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if the version's length differs from the
    /// map's fault count.
    pub fn fails_on(&self, map: &FaultRegionMap, demand: Demand) -> Result<bool, DemandError> {
        self.check_len(map)?;
        Ok(map.set_fails_on(&self.faults, demand))
    }

    /// The version's **true** PFD: profile measure of the union of its
    /// regions (overlaps counted once) — one AND + test per demand-space
    /// cell against the precomputed failure masks.
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] on length mismatch.
    pub fn true_pfd(&self, map: &FaultRegionMap, profile: &Profile) -> Result<f64, DemandError> {
        self.check_len(map)?;
        Ok(map.union_pfd_set(&self.faults, profile))
    }

    /// The version's PFD as the core model computes it: `Σ qᵢ` over
    /// present faults (over-counts overlap — §6.2).
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] on length mismatch.
    pub fn modelled_pfd(
        &self,
        map: &FaultRegionMap,
        profile: &Profile,
    ) -> Result<f64, DemandError> {
        self.check_len(map)?;
        map.sum_pfd(&self.fault_indices(), profile)
    }

    /// The set of faults common to this version and `other` — what a
    /// 1-out-of-2 pair actually shares.
    pub fn common_faults(&self, other: &ProgramVersion) -> Vec<usize> {
        self.faults
            .intersection(&other.faults)
            .iter_ones()
            .collect()
    }

    /// The 1-out-of-2 pair of this version and `other` as a pseudo-version
    /// containing exactly their common faults (the pair fails only where
    /// both fail, which under the 1-to-1 mapping is the common-fault
    /// region union). Bitwise AND over the packed words.
    pub fn pair_with(&self, other: &ProgramVersion) -> ProgramVersion {
        ProgramVersion {
            faults: self.faults.intersection(&other.faults),
        }
    }

    fn check_len(&self, map: &FaultRegionMap) -> Result<(), DemandError> {
        if self.faults.universe() != map.len() {
            return Err(DemandError::Mismatch(format!(
                "version has {} fault flags, map has {} regions",
                self.faults.universe(),
                map.len()
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ProgramVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProgramVersion({} of {} faults)",
            self.fault_count(),
            self.faults.universe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use crate::space::GridSpace2D;

    fn setup() -> (FaultRegionMap, Profile) {
        let space = GridSpace2D::new(10, 10).unwrap();
        let profile = Profile::uniform(&space);
        let map = FaultRegionMap::new(
            space,
            vec![
                Region::rect(0, 0, 1, 1),
                Region::rect(1, 1, 2, 2),
                Region::points([Demand::new(9, 9)]),
            ],
        )
        .unwrap();
        (map, profile)
    }

    #[test]
    fn construction_helpers() {
        let v = ProgramVersion::from_fault_indices(5, &[1, 3]).unwrap();
        assert_eq!(v.fault_indices(), vec![1, 3]);
        assert_eq!(v.fault_count(), 2);
        assert!(!v.is_fault_free());
        assert!(ProgramVersion::fault_free(4).is_fault_free());
        assert!(ProgramVersion::from_fault_indices(3, &[5]).is_err());
        assert_eq!(v.to_bools(), vec![false, true, false, true, false]);
        assert_eq!(ProgramVersion::from_fault_set(v.fault_set().clone()), v);
    }

    #[test]
    fn failure_evaluation() {
        let (map, _) = setup();
        let v = ProgramVersion::new(vec![true, false, false]);
        assert!(v.fails_on(&map, Demand::new(0, 0)).unwrap());
        assert!(v.fails_on(&map, Demand::new(1, 1)).unwrap());
        assert!(!v.fails_on(&map, Demand::new(2, 2)).unwrap());
        let wrong_len = ProgramVersion::new(vec![true]);
        assert!(wrong_len.fails_on(&map, Demand::new(0, 0)).is_err());
    }

    #[test]
    fn true_pfd_vs_modelled_pfd() {
        let (map, profile) = setup();
        // Faults 0 and 1 overlap at (1,1): union 7 cells, sum 8 cells.
        let v = ProgramVersion::new(vec![true, true, false]);
        let true_pfd = v.true_pfd(&map, &profile).unwrap();
        let modelled = v.modelled_pfd(&map, &profile).unwrap();
        assert!((true_pfd - 0.07).abs() < 1e-12);
        assert!((modelled - 0.08).abs() < 1e-12);
        assert!(true_pfd <= modelled);
    }

    #[test]
    fn fault_free_version_never_fails() {
        let (map, profile) = setup();
        let v = ProgramVersion::fault_free(3);
        for d in [Demand::new(0, 0), Demand::new(9, 9), Demand::new(5, 5)] {
            assert!(!v.fails_on(&map, d).unwrap());
        }
        assert_eq!(v.true_pfd(&map, &profile).unwrap(), 0.0);
    }

    #[test]
    fn common_faults_and_pairing() {
        let a = ProgramVersion::new(vec![true, true, false]);
        let b = ProgramVersion::new(vec![false, true, true]);
        assert_eq!(a.common_faults(&b), vec![1]);
        let pair = a.pair_with(&b);
        assert_eq!(pair.fault_indices(), vec![1]);
        // The pair's PFD is the common-fault region measure.
        let (map, profile) = setup();
        assert!((pair.true_pfd(&map, &profile).unwrap() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn pair_with_disjoint_versions_is_fault_free() {
        let a = ProgramVersion::new(vec![true, false]);
        let b = ProgramVersion::new(vec![false, true]);
        assert!(a.pair_with(&b).is_fault_free());
    }

    #[test]
    fn pair_with_mismatched_lengths_uses_larger_universe() {
        let a = ProgramVersion::new(vec![true, true]);
        let b = ProgramVersion::new(vec![true, true, true]);
        let pair = a.pair_with(&b);
        assert_eq!(pair.len(), 3);
        assert_eq!(pair.fault_indices(), vec![0, 1]);
    }

    #[test]
    fn out_of_space_demand_is_not_a_failure() {
        let (map, _) = setup();
        let v = ProgramVersion::new(vec![true, true, true]);
        assert!(!v.fails_on(&map, Demand::new(50, 50)).unwrap());
    }

    #[test]
    fn display_summarises() {
        let v = ProgramVersion::new(vec![true, false, true]);
        assert!(v.to_string().contains("2 of 3"));
    }
}
