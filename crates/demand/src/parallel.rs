//! Scoped-thread partial sums over demand-space cells.
//!
//! Both parallel PFD paths ([`crate::mapping::FaultRegionMap::union_pfd_set_parallel`]
//! and `divrel_protection`'s `ProtectionSystem::true_pfd_parallel`) are
//! the same shape: split the cells into contiguous ranges, sum a
//! per-cell quantity on `std::thread::scope` threads, and combine the
//! partial sums **in range order** so the result is deterministic for a
//! fixed thread count. This module keeps that skeleton — and the
//! profitability threshold — in one place.

/// Smallest cell count worth spawning threads for: below this, the
/// per-thread spawn/join overhead exceeds the scan itself.
pub const MIN_PARALLEL_CELLS: usize = 1 << 14;

/// Whether a `cells`-sized scan should be parallelised at all.
pub fn worth_parallelising(cells: usize, threads: usize) -> bool {
    threads > 1 && cells >= MIN_PARALLEL_CELLS
}

/// Sums `per_range` over `cells` split into at most `threads` contiguous
/// ranges, each evaluated on its own scoped thread; partial sums combine
/// in range order (deterministic per thread count, equal to the serial
/// sum up to floating-point re-association).
///
/// Callers are expected to gate on [`worth_parallelising`] and fall back
/// to their serial implementation otherwise.
pub fn chunked_sum<F>(cells: usize, threads: usize, per_range: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    let chunk = cells.div_ceil(threads.max(1));
    let mut partials = vec![0.0f64; cells.div_ceil(chunk.max(1))];
    std::thread::scope(|scope| {
        for (t, out) in partials.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(cells);
            let per_range = &per_range;
            scope.spawn(move || *out = per_range(lo..hi));
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_sum_partitions_exactly() {
        // Sum of cell indices: must equal the closed form for every
        // thread count (no cell dropped or double-counted).
        let cells = 100_000usize;
        let want = (cells * (cells - 1) / 2) as f64;
        for threads in [1, 2, 3, 7, 16] {
            let got = chunked_sum(cells, threads, |range| range.map(|c| c as f64).sum());
            assert!((got - want).abs() < 1e-3, "{threads} threads: {got}");
        }
    }

    #[test]
    fn worth_parallelising_thresholds() {
        assert!(!worth_parallelising(1 << 20, 1));
        assert!(!worth_parallelising(100, 8));
        assert!(worth_parallelising(MIN_PARALLEL_CELLS, 2));
    }
}
