//! Operational profiles: probability distributions over the demand space.
//!
//! "Each demand in the demand space has a certain (possibly unknown)
//! probability of happening during the operation of the controlled system"
//! (paper §2.1). A [`Profile`] assigns that probability to every cell of a
//! [`GridSpace2D`] and supports O(1) sampling via the Walker–Vose alias
//! method, so Monte-Carlo operation (the `divrel-protection` plant) can
//! draw millions of demands cheaply.

use crate::error::DemandError;
use crate::space::{Demand, GridSpace2D};
use rand::Rng;

/// A probability distribution over the demands of a [`GridSpace2D`].
///
/// ```
/// use divrel_demand::{profile::Profile, space::{Demand, GridSpace2D}};
///
/// let space = GridSpace2D::new(4, 4)?;
/// let p = Profile::uniform(&space);
/// assert!((p.prob(Demand::new(0, 0)) - 1.0 / 16.0).abs() < 1e-15);
/// # Ok::<(), divrel_demand::DemandError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Profile {
    space: GridSpace2D,
    probs: Vec<f64>,
    // Walker-Vose alias tables, built lazily at construction.
    alias: Vec<u32>,
    accept: Vec<f64>,
}

impl Profile {
    /// The uniform profile: every demand equally likely.
    pub fn uniform(space: &GridSpace2D) -> Self {
        let n = space.cell_count();
        let probs = vec![1.0 / n as f64; n];
        Self::from_normalised(*space, probs)
    }

    /// Builds a profile from arbitrary non-negative weights (normalised
    /// internally).
    ///
    /// # Errors
    ///
    /// [`DemandError::Mismatch`] if `weights.len() != space.cell_count()`;
    /// [`DemandError::InvalidWeights`] for negative/non-finite weights or
    /// an all-zero vector.
    pub fn from_weights(space: &GridSpace2D, weights: Vec<f64>) -> Result<Self, DemandError> {
        if weights.len() != space.cell_count() {
            return Err(DemandError::Mismatch(format!(
                "{} weights for a space of {} cells",
                weights.len(),
                space.cell_count()
            )));
        }
        let mut total = 0.0;
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(DemandError::InvalidWeights(format!(
                    "weight {w} is negative or non-finite"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(DemandError::InvalidWeights("all weights are zero".into()));
        }
        let probs = weights.into_iter().map(|w| w / total).collect();
        Ok(Self::from_normalised(*space, probs))
    }

    /// A "hotspot" profile: a uniform background carrying
    /// `1 − hotspot_mass` of the probability, plus `hotspot_mass` spread
    /// equally over the given centre cells. Models plants whose demands
    /// cluster around particular operating points.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] if a centre lies outside the space;
    /// [`DemandError::InvalidWeights`] unless `0 ≤ hotspot_mass ≤ 1` (or
    /// centres are empty while `hotspot_mass > 0`).
    pub fn hotspot(
        space: &GridSpace2D,
        centres: &[Demand],
        hotspot_mass: f64,
    ) -> Result<Self, DemandError> {
        if !(0.0..=1.0).contains(&hotspot_mass) || !hotspot_mass.is_finite() {
            return Err(DemandError::InvalidWeights(format!(
                "hotspot mass {hotspot_mass} not in [0, 1]"
            )));
        }
        if centres.is_empty() && hotspot_mass > 0.0 {
            return Err(DemandError::InvalidWeights(
                "hotspot mass with no centres".into(),
            ));
        }
        let n = space.cell_count();
        let mut probs = vec![(1.0 - hotspot_mass) / n as f64; n];
        for c in centres {
            let idx = space.index_of(*c)?;
            probs[idx] += hotspot_mass / centres.len() as f64;
        }
        Ok(Self::from_normalised(*space, probs))
    }

    fn from_normalised(space: GridSpace2D, probs: Vec<f64>) -> Self {
        let (alias, accept) = build_alias_tables(&probs);
        Profile {
            space,
            probs,
            alias,
            accept,
        }
    }

    /// The demand space this profile is defined on.
    pub fn space(&self) -> &GridSpace2D {
        &self.space
    }

    /// Probability of one demand (0 for demands outside the space).
    pub fn prob(&self, d: Demand) -> f64 {
        match self.space.index_of(d) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }

    /// The full probability vector in row-major order.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Draws one demand via the alias method (O(1) per draw).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Demand {
        let n = self.probs.len();
        let i = rng.gen_range(0..n);
        let coin: f64 = rng.gen();
        let idx = if coin < self.accept[i] {
            i
        } else {
            self.alias[i] as usize
        };
        self.space
            .demand_at(idx)
            .expect("alias index in range by construction")
    }

    /// Total probability of an arbitrary set of demand indices (used by
    /// region measures).
    pub(crate) fn mass_of_indices<I: IntoIterator<Item = usize>>(&self, idx: I) -> f64 {
        idx.into_iter().map(|i| self.probs[i]).sum()
    }
}

/// Builds Walker–Vose alias tables for a normalised probability vector.
fn build_alias_tables(probs: &[f64]) -> (Vec<u32>, Vec<f64>) {
    let n = probs.len();
    let mut accept = vec![0.0_f64; n];
    let mut alias = vec![0_u32; n];
    let mut small = Vec::with_capacity(n);
    let mut large = Vec::with_capacity(n);
    let mut scaled: Vec<f64> = probs.iter().map(|p| p * n as f64).collect();
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i);
        } else {
            large.push(i);
        }
    }
    while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
        small.pop();
        accept[s] = scaled[s];
        alias[s] = l as u32;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if scaled[l] < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    for i in large {
        accept[i] = 1.0;
    }
    for i in small {
        accept[i] = 1.0;
    }
    (alias, accept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_profile_probabilities() {
        let s = GridSpace2D::new(5, 4).unwrap();
        let p = Profile::uniform(&s);
        for d in s.demands() {
            assert!((p.prob(d) - 0.05).abs() < 1e-15);
        }
        assert_eq!(p.prob(Demand::new(99, 99)), 0.0);
        let total: f64 = p.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_normalises() {
        let s = GridSpace2D::new(2, 2).unwrap();
        let p = Profile::from_weights(&s, vec![1.0, 1.0, 2.0, 0.0]).unwrap();
        assert!((p.prob(Demand::new(0, 0)) - 0.25).abs() < 1e-15);
        assert!((p.prob(Demand::new(0, 1)) - 0.5).abs() < 1e-15);
        assert_eq!(p.prob(Demand::new(1, 1)), 0.0);
    }

    #[test]
    fn from_weights_validates() {
        let s = GridSpace2D::new(2, 2).unwrap();
        assert!(Profile::from_weights(&s, vec![1.0; 3]).is_err());
        assert!(Profile::from_weights(&s, vec![1.0, -1.0, 1.0, 1.0]).is_err());
        assert!(Profile::from_weights(&s, vec![0.0; 4]).is_err());
        assert!(Profile::from_weights(&s, vec![f64::NAN, 1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn hotspot_profile_masses() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let centres = [Demand::new(5, 5), Demand::new(2, 7)];
        let p = Profile::hotspot(&s, &centres, 0.5).unwrap();
        // Each centre gets 0.25 plus background 0.005.
        assert!((p.prob(Demand::new(5, 5)) - 0.255).abs() < 1e-12);
        assert!((p.prob(Demand::new(0, 0)) - 0.005).abs() < 1e-12);
        let total: f64 = p.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_validation() {
        let s = GridSpace2D::new(4, 4).unwrap();
        assert!(Profile::hotspot(&s, &[Demand::new(9, 0)], 0.5).is_err());
        assert!(Profile::hotspot(&s, &[], 0.5).is_err());
        assert!(Profile::hotspot(&s, &[Demand::new(0, 0)], 1.5).is_err());
        // Zero mass with no centres is fine (it's just uniform).
        assert!(Profile::hotspot(&s, &[], 0.0).is_ok());
    }

    #[test]
    fn alias_sampling_matches_probabilities() {
        let s = GridSpace2D::new(3, 1).unwrap();
        let p = Profile::from_weights(&s, vec![0.6, 0.3, 0.1]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            let d = p.sample(&mut rng);
            counts[d.var1 as usize] += 1;
        }
        // Binomial std dev at p=0.6, n=2e5 is ~0.0011; allow 5 sigma.
        assert!((counts[0] as f64 / n as f64 - 0.6).abs() < 0.006);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.006);
        assert!((counts[2] as f64 / n as f64 - 0.1).abs() < 0.006);
    }

    #[test]
    fn alias_handles_degenerate_point_mass() {
        let s = GridSpace2D::new(4, 1).unwrap();
        let p = Profile::from_weights(&s, vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(p.sample(&mut rng), Demand::new(2, 0));
        }
    }

    #[test]
    fn mass_of_indices_sums() {
        let s = GridSpace2D::new(2, 2).unwrap();
        let p = Profile::from_weights(&s, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        assert!((p.mass_of_indices([0, 3]) - 0.5).abs() < 1e-15);
        assert_eq!(p.mass_of_indices(std::iter::empty()), 0.0);
    }
}
