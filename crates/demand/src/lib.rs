//! # divrel-demand
//!
//! Demand spaces, failure regions and operational profiles — the substrate
//! behind §2.1 and Fig 2 of Popov & Strigini (DSN 2001).
//!
//! The paper's model abstracts programs into *failure regions* of a *demand
//! space*: a fault, if introduced, makes a whole set of demands fail, and
//! the fault's contribution `qᵢ` to unreliability is the operational-
//! profile probability of that set. This crate makes those objects
//! concrete and measurable:
//!
//! * [`space::GridSpace2D`] — a finite two-dimensional demand space (each
//!   demand is a reading of two input variables, exactly as in Fig 2);
//! * [`region::Region`] — failure-region shapes reported in the literature
//!   the paper cites \[9, 10, 11\]: rectangles, scattered points, regular
//!   point/line arrays, and unions thereof;
//! * [`profile::Profile`] — probability distributions over demands, with
//!   alias-method sampling;
//! * [`mapping::FaultRegionMap`] — the fault → region mapping, including
//!   the *overlapping regions* (§6.2) and *many-to-one* (§6.3) violations
//!   of the core model's assumptions, quantified rather than assumed away;
//! * [`version::ProgramVersion`] — a version as a set of introduced
//!   faults, with both its **true** PFD (measure of the union of its
//!   regions) and its **modelled** PFD (sum of `qᵢ`), whose gap is the
//!   paper's §6.2 pessimism;
//! * [`fault_set::FaultSet`] — the word-packed bitset behind
//!   `ProgramVersion` and the Monte-Carlo fast path: set algebra as
//!   AND/OR + popcount, evaluated against `FaultRegionMap`'s
//!   precomputed per-cell failure masks.
//!
//! ```
//! use divrel_demand::{
//!     mapping::FaultRegionMap, profile::Profile, region::Region, space::GridSpace2D,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = GridSpace2D::new(100, 100)?;
//! let profile = Profile::uniform(&space);
//! let map = FaultRegionMap::new(
//!     space,
//!     vec![
//!         Region::rect(10, 10, 19, 19),       // a blob
//!         Region::lattice(50, 50, 7, 0, 5),   // an array of isolated points
//!     ],
//! )?;
//! let q = map.q_values(&profile);
//! assert!((q[0] - 0.01).abs() < 1e-12);  // 100 cells / 10_000
//! assert!((q[1] - 0.0005).abs() < 1e-12); // 5 cells / 10_000
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod difficulty;
pub mod error;
pub mod fault_set;
pub mod mapping;
pub mod parallel;
pub mod profile;
pub mod region;
pub mod render;
pub mod space;
pub mod version;

pub use difficulty::DifficultyFunction;

pub use error::DemandError;
pub use fault_set::FaultSet;
pub use mapping::FaultRegionMap;
pub use profile::Profile;
pub use region::Region;
pub use space::{Demand, GridSpace2D};
pub use version::ProgramVersion;
