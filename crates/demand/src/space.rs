//! The demand space — paper §2.1.
//!
//! A *demand* "occurs when the controlled system enters a state that
//! requires the intervention of the protection system"; demands differ in
//! the details of that state. The paper's Fig 2 pictures the simplest
//! concrete case — each demand a single reading of two input variables —
//! and that is what [`GridSpace2D`] realises: a finite grid of
//! `nx × ny` cells, one per distinguishable demand.

use crate::error::DemandError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One demand: a reading of two input variables, quantised to grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Demand {
    /// First sensed variable (grid column).
    pub var1: u32,
    /// Second sensed variable (grid row).
    pub var2: u32,
}

impl Demand {
    /// Creates a demand from raw variable readings.
    pub fn new(var1: u32, var2: u32) -> Self {
        Demand { var1, var2 }
    }
}

impl fmt::Display for Demand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.var1, self.var2)
    }
}

/// A finite two-dimensional demand space of `nx × ny` cells.
///
/// ```
/// use divrel_demand::space::{Demand, GridSpace2D};
/// let s = GridSpace2D::new(10, 20)?;
/// assert_eq!(s.cell_count(), 200);
/// assert!(s.contains(Demand::new(9, 19)));
/// assert!(!s.contains(Demand::new(10, 0)));
/// # Ok::<(), divrel_demand::DemandError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridSpace2D {
    nx: u32,
    ny: u32,
}

impl GridSpace2D {
    /// Creates a space with `nx` columns and `ny` rows.
    ///
    /// # Errors
    ///
    /// [`DemandError::EmptySpace`] if either dimension is zero.
    pub fn new(nx: u32, ny: u32) -> Result<Self, DemandError> {
        if nx == 0 || ny == 0 {
            return Err(DemandError::EmptySpace);
        }
        Ok(GridSpace2D { nx, ny })
    }

    /// Number of columns (range of `var1`).
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows (range of `var2`).
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of distinguishable demands.
    pub fn cell_count(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Whether the demand lies within this space.
    pub fn contains(&self, d: Demand) -> bool {
        d.var1 < self.nx && d.var2 < self.ny
    }

    /// Row-major linear index of a demand.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] if the demand is outside the space.
    pub fn index_of(&self, d: Demand) -> Result<usize, DemandError> {
        if !self.contains(d) {
            return Err(DemandError::OutOfBounds {
                what: format!("demand {d} in {self}"),
            });
        }
        Ok(d.var2 as usize * self.nx as usize + d.var1 as usize)
    }

    /// The demand at a row-major linear index.
    ///
    /// # Errors
    ///
    /// [`DemandError::OutOfBounds`] if `index >= cell_count()`.
    pub fn demand_at(&self, index: usize) -> Result<Demand, DemandError> {
        if index >= self.cell_count() {
            return Err(DemandError::OutOfBounds {
                what: format!("index {index} in {self}"),
            });
        }
        Ok(Demand {
            var1: (index % self.nx as usize) as u32,
            var2: (index / self.nx as usize) as u32,
        })
    }

    /// Iterator over all demands in row-major order.
    pub fn demands(&self) -> impl Iterator<Item = Demand> + '_ {
        let nx = self.nx;
        (0..self.cell_count()).map(move |i| Demand {
            var1: (i % nx as usize) as u32,
            var2: (i / nx as usize) as u32,
        })
    }
}

impl fmt::Display for GridSpace2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GridSpace2D({}×{})", self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_rejects_empty() {
        assert!(GridSpace2D::new(0, 5).is_err());
        assert!(GridSpace2D::new(5, 0).is_err());
        assert!(GridSpace2D::new(1, 1).is_ok());
    }

    #[test]
    fn containment_and_counts() {
        let s = GridSpace2D::new(3, 4).unwrap();
        assert_eq!(s.cell_count(), 12);
        assert_eq!(s.nx(), 3);
        assert_eq!(s.ny(), 4);
        assert!(s.contains(Demand::new(0, 0)));
        assert!(s.contains(Demand::new(2, 3)));
        assert!(!s.contains(Demand::new(3, 0)));
        assert!(!s.contains(Demand::new(0, 4)));
    }

    #[test]
    fn index_round_trip() {
        let s = GridSpace2D::new(5, 7).unwrap();
        for i in 0..s.cell_count() {
            let d = s.demand_at(i).unwrap();
            assert_eq!(s.index_of(d).unwrap(), i);
        }
        assert!(s.demand_at(35).is_err());
        assert!(s.index_of(Demand::new(5, 0)).is_err());
    }

    #[test]
    fn demands_iterator_covers_space_once() {
        let s = GridSpace2D::new(4, 3).unwrap();
        let all: Vec<Demand> = s.demands().collect();
        assert_eq!(all.len(), 12);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 12);
        assert_eq!(all[0], Demand::new(0, 0));
        assert_eq!(all[11], Demand::new(3, 2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Demand::new(1, 2).to_string(), "(1, 2)");
        assert!(GridSpace2D::new(2, 2).unwrap().to_string().contains("2×2"));
    }

    #[test]
    fn serde_round_trip() {
        let s = GridSpace2D::new(10, 10).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: GridSpace2D = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    proptest! {
        #[test]
        fn index_bijection(nx in 1u32..50, ny in 1u32..50, x in 0u32..50, y in 0u32..50) {
            let s = GridSpace2D::new(nx, ny).unwrap();
            let d = Demand::new(x % nx, y % ny);
            let i = s.index_of(d).unwrap();
            prop_assert_eq!(s.demand_at(i).unwrap(), d);
            prop_assert!(i < s.cell_count());
        }
    }
}
