//! Priors over the probability of failure on demand.
//!
//! Two families, deliberately side by side:
//!
//! * [`PfdPrior::Discrete`] — the **physically grounded** prior: the exact
//!   distribution of `Θ₁` or `Θ₂` induced by the fault-creation model
//!   (what the paper's conclusions advocate);
//! * [`PfdPrior::Beta`] — the **convenience** prior: a Beta distribution
//!   moment-matched to the same mean and variance (what practice often
//!   uses; §6.2 warns that "pessimistic priors might accidentally produce
//!   optimistic posteriors", so the comparison matters).

use crate::error::BayesError;
use divrel_model::distribution::PfdDistribution;
use divrel_model::FaultModel;
use divrel_numerics::beta_dist::Beta;
use divrel_numerics::weighted_sum::Atom;

/// A prior distribution over a system's PFD.
#[derive(Debug, Clone, PartialEq)]
pub enum PfdPrior {
    /// Exact discrete prior: atoms of the model-induced PFD distribution.
    Discrete(Vec<Atom>),
    /// Moment-matched Beta prior.
    Beta(Beta),
}

impl PfdPrior {
    /// Exact prior for a single version's PFD.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction errors.
    pub fn exact_single(model: &FaultModel) -> Result<Self, BayesError> {
        Ok(PfdPrior::Discrete(
            PfdDistribution::single(model)?.exact().atoms().to_vec(),
        ))
    }

    /// Exact prior for a 1-out-of-2 pair's PFD.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction errors.
    pub fn exact_pair(model: &FaultModel) -> Result<Self, BayesError> {
        Ok(PfdPrior::Discrete(
            PfdDistribution::pair(model)?.exact().atoms().to_vec(),
        ))
    }

    /// Exact prior for a `k`-version system's PFD.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction errors.
    pub fn exact_k(model: &FaultModel, k: u32) -> Result<Self, BayesError> {
        Ok(PfdPrior::Discrete(
            PfdDistribution::new(model, k)?.exact().atoms().to_vec(),
        ))
    }

    /// Convenience Beta prior moment-matched to the model's `k`-version
    /// PFD moments.
    ///
    /// # Errors
    ///
    /// [`BayesError::Numerics`] if the moments are not Beta-feasible
    /// (e.g. zero variance).
    pub fn beta_matched(model: &FaultModel, k: u32) -> Result<Self, BayesError> {
        let mean = model.mean_pfd(k);
        let var = model.var_pfd(k);
        Ok(PfdPrior::Beta(Beta::from_mean_variance(mean, var)?))
    }

    /// Creates a discrete prior from explicit atoms.
    ///
    /// # Errors
    ///
    /// [`BayesError::InvalidConfig`] if atoms are empty, unnormalised,
    /// carry negative mass, or lie outside `[0, 1]`.
    pub fn from_atoms(atoms: Vec<Atom>) -> Result<Self, BayesError> {
        if atoms.is_empty() {
            return Err(BayesError::InvalidConfig("no atoms".into()));
        }
        let mut total = 0.0;
        for a in &atoms {
            if !(0.0..=1.0).contains(&a.value) || !a.value.is_finite() {
                return Err(BayesError::InvalidConfig(format!(
                    "atom value {} outside [0, 1]",
                    a.value
                )));
            }
            if a.mass < 0.0 || !a.mass.is_finite() {
                return Err(BayesError::InvalidConfig(format!(
                    "atom mass {} invalid",
                    a.mass
                )));
            }
            total += a.mass;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(BayesError::InvalidConfig(format!(
                "atom masses sum to {total}, expected 1"
            )));
        }
        Ok(PfdPrior::Discrete(atoms))
    }

    /// Prior mean PFD.
    pub fn mean(&self) -> f64 {
        match self {
            PfdPrior::Discrete(atoms) => atoms.iter().map(|a| a.value * a.mass).sum(),
            PfdPrior::Beta(b) => b.mean(),
        }
    }

    /// Prior `P(Θ ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            PfdPrior::Discrete(atoms) => atoms
                .iter()
                .take_while(|a| a.value <= x)
                .map(|a| a.mass)
                .sum::<f64>()
                .min(1.0),
            PfdPrior::Beta(b) => b.cdf(x),
        }
    }

    /// Prior probability that the system is perfect (`Θ = 0`).
    ///
    /// Always 0 for a Beta prior — one concrete way the convenience prior
    /// misrepresents the physical model, which assigns positive mass to
    /// fault-free systems (§4).
    pub fn prob_perfect(&self) -> f64 {
        match self {
            PfdPrior::Discrete(atoms) => atoms
                .iter()
                .find(|a| a.value == 0.0)
                .map(|a| a.mass)
                .unwrap_or(0.0),
            PfdPrior::Beta(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel::from_params(&[0.2, 0.1, 0.05], &[0.01, 0.02, 0.005]).unwrap()
    }

    #[test]
    fn exact_priors_match_model_moments() {
        let m = model();
        let p1 = PfdPrior::exact_single(&m).unwrap();
        assert!((p1.mean() - m.mean_pfd_single()).abs() < 1e-14);
        let p2 = PfdPrior::exact_pair(&m).unwrap();
        assert!((p2.mean() - m.mean_pfd_pair()).abs() < 1e-14);
        let pk = PfdPrior::exact_k(&m, 3).unwrap();
        assert!((pk.mean() - m.mean_pfd(3)).abs() < 1e-14);
    }

    #[test]
    fn beta_prior_matches_moments_but_denies_perfection() {
        let m = model();
        let b = PfdPrior::beta_matched(&m, 1).unwrap();
        assert!((b.mean() - m.mean_pfd_single()).abs() < 1e-10);
        assert_eq!(b.prob_perfect(), 0.0);
        // The exact prior gives the §4 fault-free probability.
        let d = PfdPrior::exact_single(&m).unwrap();
        assert!((d.prob_perfect() - m.prob_fault_free_single()).abs() < 1e-12);
        assert!(d.prob_perfect() > 0.5);
    }

    #[test]
    fn from_atoms_validation() {
        use divrel_numerics::weighted_sum::Atom;
        assert!(PfdPrior::from_atoms(vec![]).is_err());
        assert!(PfdPrior::from_atoms(vec![Atom {
            value: 1.5,
            mass: 1.0
        }])
        .is_err());
        assert!(PfdPrior::from_atoms(vec![Atom {
            value: 0.5,
            mass: -1.0
        }])
        .is_err());
        assert!(PfdPrior::from_atoms(vec![Atom {
            value: 0.5,
            mass: 0.7
        }])
        .is_err());
        let ok = PfdPrior::from_atoms(vec![
            Atom {
                value: 0.0,
                mass: 0.5,
            },
            Atom {
                value: 0.1,
                mass: 0.5,
            },
        ]);
        assert!(ok.is_ok());
    }

    #[test]
    fn cdf_of_both_families() {
        let m = model();
        let d = PfdPrior::exact_single(&m).unwrap();
        assert_eq!(d.cdf(-0.1), 0.0);
        assert!((d.cdf(1.0) - 1.0).abs() < 1e-12);
        assert!(d.cdf(0.0) > 0.5); // big atom at zero
        let b = PfdPrior::beta_matched(&m, 1).unwrap();
        assert_eq!(b.cdf(0.0), 0.0);
        assert_eq!(b.cdf(1.0), 1.0);
        let mid = b.cdf(m.mean_pfd_single());
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn beta_matching_fails_for_degenerate_models() {
        let m = FaultModel::from_params(&[1.0], &[0.5]).unwrap(); // zero variance
        assert!(PfdPrior::beta_matched(&m, 1).is_err());
    }
}
