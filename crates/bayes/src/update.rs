//! Posterior inference from operational evidence.
//!
//! Evidence is Bernoulli: `s` failures observed in `t` demands. For a
//! discrete prior `{(θₐ, wₐ)}` the exact posterior is
//!
//! ```text
//! wₐ' ∝ wₐ · θₐˢ · (1 − θₐ)^{t−s}
//! ```
//!
//! (with `0⁰ = 1`, so the perfect-system atom survives failure-free
//! evidence and is annihilated by any failure). For a Beta prior the
//! update is conjugate. [`factored_fault_posterior`] additionally updates
//! the *fault model itself* after failure-free operation, using the
//! factorised likelihood `Π(1−qᵢ)^t` per present fault — an approximation
//! to the exact `(1−Σqᵢ)^t` that is accurate when `Σqᵢ` is small (the
//! §5 "many small faults" regime) and conservative otherwise.

use crate::error::BayesError;
use crate::prior::PfdPrior;
use divrel_model::{FaultModel, PotentialFault};
use divrel_numerics::beta_dist::Beta;
use divrel_numerics::weighted_sum::Atom;

/// A posterior over the PFD, same representations as the prior.
#[derive(Debug, Clone, PartialEq)]
pub enum PfdPosterior {
    /// Exact discrete posterior.
    Discrete(Vec<Atom>),
    /// Conjugate Beta posterior.
    Beta(Beta),
}

/// Updates a prior with `failures` failures in `demands` demands.
///
/// # Errors
///
/// [`BayesError::BadEvidence`] if `failures > demands`;
/// [`BayesError::DegeneratePosterior`] if the evidence annihilates every
/// atom of a discrete prior (e.g. failures observed under a prior that is
/// certain the system is perfect).
///
/// ```
/// use divrel_bayes::{prior::PfdPrior, update::observe};
/// use divrel_model::FaultModel;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(4, 0.2, 0.01)?;
/// let prior = PfdPrior::exact_single(&model)?;
/// let post = observe(&prior, 0, 5_000)?;
/// // Failure-free operation raises the probability of perfection.
/// assert!(post.prob_perfect() > prior.prob_perfect());
/// # Ok(())
/// # }
/// ```
pub fn observe(prior: &PfdPrior, failures: u64, demands: u64) -> Result<PfdPosterior, BayesError> {
    if failures > demands {
        return Err(BayesError::BadEvidence { failures, demands });
    }
    match prior {
        PfdPrior::Discrete(atoms) => {
            let survivals = demands - failures;
            let mut out = Vec::with_capacity(atoms.len());
            let mut total = 0.0_f64;
            // Work with log-likelihood to survive large t.
            let mut best_log = f64::NEG_INFINITY;
            let logs: Vec<Option<f64>> = atoms
                .iter()
                .map(|a| {
                    let theta = a.value;
                    if a.mass == 0.0 {
                        return None;
                    }
                    // 0^0 = 1 conventions:
                    if theta == 0.0 && failures > 0 {
                        return None;
                    }
                    if theta == 1.0 && survivals > 0 {
                        return None;
                    }
                    let mut ll = a.mass.ln();
                    if failures > 0 {
                        ll += failures as f64 * theta.ln();
                    }
                    if survivals > 0 {
                        ll += survivals as f64 * (-theta).ln_1p();
                    }
                    best_log = best_log.max(ll);
                    Some(ll)
                })
                .collect();
            if best_log == f64::NEG_INFINITY {
                return Err(BayesError::DegeneratePosterior(
                    "evidence excludes every prior atom",
                ));
            }
            for (a, ll) in atoms.iter().zip(logs) {
                if let Some(ll) = ll {
                    let w = (ll - best_log).exp();
                    if w > 0.0 {
                        out.push(Atom {
                            value: a.value,
                            mass: w,
                        });
                        total += w;
                    }
                }
            }
            for a in &mut out {
                a.mass /= total;
            }
            Ok(PfdPosterior::Discrete(out))
        }
        PfdPrior::Beta(b) => Ok(PfdPosterior::Beta(b.update(failures, demands)?)),
    }
}

impl PfdPosterior {
    /// Posterior mean PFD.
    pub fn mean(&self) -> f64 {
        match self {
            PfdPosterior::Discrete(atoms) => atoms.iter().map(|a| a.value * a.mass).sum(),
            PfdPosterior::Beta(b) => b.mean(),
        }
    }

    /// Posterior `P(Θ ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            PfdPosterior::Discrete(atoms) => atoms
                .iter()
                .take_while(|a| a.value <= x)
                .map(|a| a.mass)
                .sum::<f64>()
                .min(1.0),
            PfdPosterior::Beta(b) => b.cdf(x),
        }
    }

    /// Posterior probability the system is perfect.
    pub fn prob_perfect(&self) -> f64 {
        match self {
            PfdPosterior::Discrete(atoms) => atoms
                .iter()
                .find(|a| a.value == 0.0)
                .map(|a| a.mass)
                .unwrap_or(0.0),
            PfdPosterior::Beta(_) => 0.0,
        }
    }

    /// Smallest `b` with `P(Θ ≤ b) ≥ confidence`.
    ///
    /// # Errors
    ///
    /// [`BayesError::InvalidConfig`] unless `0 < confidence < 1`;
    /// numerics errors from the Beta quantile.
    pub fn quantile(&self, confidence: f64) -> Result<f64, BayesError> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(BayesError::InvalidConfig(format!(
                "confidence {confidence} not in (0, 1)"
            )));
        }
        match self {
            PfdPosterior::Discrete(atoms) => {
                let mut acc = 0.0;
                for a in atoms {
                    acc += a.mass;
                    if acc + 1e-15 >= confidence {
                        return Ok(a.value);
                    }
                }
                Ok(atoms.last().map(|a| a.value).unwrap_or(0.0))
            }
            PfdPosterior::Beta(b) => Ok(b.quantile(confidence)?),
        }
    }
}

/// Factorised per-fault posterior after `t` **failure-free** demands:
/// every fault's presence probability shrinks to
///
/// ```text
/// pᵢ' = pᵢ(1−qᵢ)ᵗ / (1 − pᵢ + pᵢ(1−qᵢ)ᵗ)
/// ```
///
/// Faults with large failure regions are "tested out" quickly; faults with
/// tiny regions barely move — which is why failure-free operation alone
/// can never establish ultra-high reliability (the paper's motivating
/// problem).
///
/// The factorisation approximates the exact likelihood `(1−Σᵢ∈S qᵢ)ᵗ` by
/// `Πᵢ∈S (1−qᵢ)ᵗ`; exact when at most one fault is present, and accurate
/// to `O(t·qᵢqⱼ)` generally.
///
/// # Errors
///
/// Propagates model reconstruction errors (cannot occur for valid inputs).
pub fn factored_fault_posterior(model: &FaultModel, t: u64) -> Result<FaultModel, BayesError> {
    let faults = model
        .faults()
        .iter()
        .map(|f| {
            let p = f.p();
            let q = f.q();
            // (1-q)^t in log space.
            let surv = (t as f64 * (-q).ln_1p()).exp();
            let p_new = if p == 0.0 {
                0.0
            } else {
                p * surv / (1.0 - p + p * surv)
            };
            PotentialFault::new(p_new, q)
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(BayesError::from)?;
    FaultModel::new(faults).map_err(BayesError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> FaultModel {
        FaultModel::from_params(&[0.3, 0.1], &[0.01, 0.001]).unwrap()
    }

    #[test]
    fn failure_free_evidence_improves_beliefs() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 2_000).unwrap();
        assert!(post.mean() < prior.mean());
        assert!(post.prob_perfect() > prior.prob_perfect());
        // More evidence, stronger belief.
        let post2 = observe(&prior, 0, 20_000).unwrap();
        assert!(post2.mean() < post.mean());
        assert!(post2.prob_perfect() > post.prob_perfect());
    }

    #[test]
    fn failures_kill_the_perfect_atom() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 1, 100).unwrap();
        assert_eq!(post.prob_perfect(), 0.0);
        assert!(post.mean() > 0.0);
    }

    #[test]
    fn posterior_is_normalised() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        for (s, t) in [(0u64, 0u64), (0, 1000), (2, 500), (10, 10)] {
            let post = observe(&prior, s, t).unwrap();
            if let PfdPosterior::Discrete(atoms) = post {
                let total: f64 = atoms.iter().map(|a| a.mass).sum();
                assert!((total - 1.0).abs() < 1e-12, "s={s}, t={t}");
            } else {
                panic!("expected discrete posterior");
            }
        }
    }

    #[test]
    fn no_evidence_is_identity() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 0).unwrap();
        assert!((post.mean() - prior.mean()).abs() < 1e-14);
        assert!((post.prob_perfect() - prior.prob_perfect()).abs() < 1e-14);
    }

    #[test]
    fn bad_and_degenerate_evidence() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        assert!(matches!(
            observe(&prior, 5, 3),
            Err(BayesError::BadEvidence { .. })
        ));
        // A prior certain of perfection cannot explain a failure.
        let perfect = PfdPrior::from_atoms(vec![Atom {
            value: 0.0,
            mass: 1.0,
        }])
        .unwrap();
        assert!(matches!(
            observe(&perfect, 1, 10),
            Err(BayesError::DegeneratePosterior(_))
        ));
        // A prior certain of Θ=1 cannot explain a success.
        let broken = PfdPrior::from_atoms(vec![Atom {
            value: 1.0,
            mass: 1.0,
        }])
        .unwrap();
        assert!(observe(&broken, 0, 1).is_err());
        assert!(observe(&broken, 5, 5).is_ok());
    }

    #[test]
    fn beta_conjugate_update() {
        let prior = PfdPrior::Beta(Beta::new(1.0, 99.0).unwrap());
        let post = observe(&prior, 2, 100).unwrap();
        if let PfdPosterior::Beta(b) = post {
            assert!((b.alpha() - 3.0).abs() < 1e-12);
            assert!((b.beta() - 197.0).abs() < 1e-12);
        } else {
            panic!("expected beta posterior");
        }
    }

    #[test]
    fn large_t_is_numerically_stable() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 10_000_000).unwrap();
        // Essentially all mass on the perfect atom.
        assert!(post.prob_perfect() > 0.999);
        assert!(post.mean() < 1e-6);
        let b = post.quantile(0.99).unwrap();
        assert!(b.is_finite());
    }

    #[test]
    fn quantile_validation_and_values() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 100).unwrap();
        assert!(post.quantile(0.0).is_err());
        assert!(post.quantile(1.0).is_err());
        let q50 = post.quantile(0.5).unwrap();
        let q99 = post.quantile(0.99).unwrap();
        assert!(q50 <= q99);
    }

    #[test]
    fn factored_posterior_shrinks_big_faults_fastest() {
        let m = FaultModel::from_params(&[0.3, 0.3], &[0.01, 1e-6]).unwrap();
        let post = factored_fault_posterior(&m, 10_000).unwrap();
        let p_big = post.faults()[0].p();
        let p_small = post.faults()[1].p();
        // The big-region fault would have shown itself: (1-0.01)^10000 ≈ 0.
        assert!(p_big < 1e-20);
        // The tiny-region fault is barely updated: (1-1e-6)^1e4 ≈ 0.99.
        assert!((p_small - 0.2975).abs() < 0.002);
        // q values are untouched.
        assert_eq!(post.faults()[0].q(), 0.01);
    }

    #[test]
    fn factored_posterior_with_zero_t_is_identity() {
        let m = model();
        let post = factored_fault_posterior(&m, 0).unwrap();
        assert_eq!(post, m);
    }

    proptest! {
        #[test]
        fn posterior_mean_never_exceeds_prior_mean_on_perfect_evidence(
            ps in proptest::collection::vec(0.01..0.9f64, 1..6),
            t in 1u64..50_000
        ) {
            let qs = vec![0.01; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            let prior = PfdPrior::exact_single(&m).unwrap();
            let post = observe(&prior, 0, t).unwrap();
            prop_assert!(post.mean() <= prior.mean() + 1e-12);
        }

        #[test]
        fn factored_posterior_probabilities_shrink(
            ps in proptest::collection::vec(0.01..0.99f64, 1..6),
            t in 0u64..100_000
        ) {
            let qs = vec![0.001; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            let post = factored_fault_posterior(&m, t).unwrap();
            for (before, after) in m.faults().iter().zip(post.faults()) {
                prop_assert!(after.p() <= before.p() + 1e-12);
            }
        }
    }
}
