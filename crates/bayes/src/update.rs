//! Posterior inference from operational evidence.
//!
//! Evidence is Bernoulli: `s` failures observed in `t` demands. For a
//! discrete prior `{(θₐ, wₐ)}` the exact posterior is
//!
//! ```text
//! wₐ' ∝ wₐ · θₐˢ · (1 − θₐ)^{t−s}
//! ```
//!
//! (with `0⁰ = 1`, so the perfect-system atom survives failure-free
//! evidence and is annihilated by any failure). For a Beta prior the
//! update is conjugate. [`factored_fault_posterior`] additionally updates
//! the *fault model itself* after failure-free operation, using the
//! factorised likelihood `Π(1−qᵢ)^t` per present fault — an approximation
//! to the exact `(1−Σqᵢ)^t` that is accurate when `Σqᵢ` is small (the
//! §5 "many small faults" regime) and conservative otherwise.

use crate::error::BayesError;
use crate::prior::PfdPrior;
use divrel_model::{FaultModel, PotentialFault};
use divrel_numerics::beta_dist::Beta;
use divrel_numerics::weighted_sum::Atom;

/// A posterior over the PFD, same representations as the prior.
#[derive(Debug, Clone, PartialEq)]
pub enum PfdPosterior {
    /// Exact discrete posterior.
    Discrete(Vec<Atom>),
    /// Conjugate Beta posterior.
    Beta(Beta),
}

/// Updates a prior with `failures` failures in `demands` demands.
///
/// # Errors
///
/// [`BayesError::BadEvidence`] if `failures > demands`;
/// [`BayesError::DegeneratePosterior`] if the evidence annihilates every
/// atom of a discrete prior (e.g. failures observed under a prior that is
/// certain the system is perfect).
///
/// ```
/// use divrel_bayes::{prior::PfdPrior, update::observe};
/// use divrel_model::FaultModel;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(4, 0.2, 0.01)?;
/// let prior = PfdPrior::exact_single(&model)?;
/// let post = observe(&prior, 0, 5_000)?;
/// // Failure-free operation raises the probability of perfection.
/// assert!(post.prob_perfect() > prior.prob_perfect());
/// # Ok(())
/// # }
/// ```
pub fn observe(prior: &PfdPrior, failures: u64, demands: u64) -> Result<PfdPosterior, BayesError> {
    if failures > demands {
        return Err(BayesError::BadEvidence { failures, demands });
    }
    match prior {
        PfdPrior::Discrete(atoms) => Ok(PfdPosterior::Discrete(discrete_posterior(
            atoms,
            &AtomTerms::precompute(atoms),
            failures,
            demands - failures,
        )?)),
        PfdPrior::Beta(b) => Ok(PfdPosterior::Beta(b.update(failures, demands)?)),
    }
}

/// Updates one prior with many independent bodies of evidence in one
/// sweep: `evidence[i] = (failuresᵢ, demandsᵢ)` yields the posterior the
/// `i`-th cell would get from [`observe`] — bit-identical to calling it
/// per cell, but the per-atom log terms (`ln wₐ`, `ln θₐ`, `ln(1−θₐ)`)
/// are computed **once** for the whole batch instead of once per cell.
/// With the prior itself built once from the fault model (its
/// distribution construction amortised by the `WeightedBernoulliSum`
/// terms cache), folding a sweep's per-cell accumulators into posteriors
/// costs one multiply-add per atom per cell — this is the batched
/// evaluation pass the adaptive refinement driver runs between rounds.
///
/// # Errors
///
/// As [`observe`], per cell; the first failing cell aborts the batch.
pub fn observe_batch(
    prior: &PfdPrior,
    evidence: &[(u64, u64)],
) -> Result<Vec<PfdPosterior>, BayesError> {
    match prior {
        PfdPrior::Discrete(atoms) => {
            let terms = AtomTerms::precompute(atoms);
            evidence
                .iter()
                .map(|&(failures, demands)| {
                    if failures > demands {
                        return Err(BayesError::BadEvidence { failures, demands });
                    }
                    Ok(PfdPosterior::Discrete(discrete_posterior(
                        atoms,
                        &terms,
                        failures,
                        demands - failures,
                    )?))
                })
                .collect()
        }
        PfdPrior::Beta(b) => evidence
            .iter()
            .map(|&(failures, demands)| Ok(PfdPosterior::Beta(b.update(failures, demands)?)))
            .collect(),
    }
}

/// Per-atom log terms of a discrete prior, shared across a batch of
/// updates. Entries are `NAN` where the term is never used (`ln 0`
/// guards below make sure of that), mirroring [`observe`]'s conditional
/// evaluation exactly so batched and one-shot updates agree bit for bit.
struct AtomTerms {
    log_mass: Vec<f64>,
    log_theta: Vec<f64>,
    /// `ln(1 − θ)` via `ln_1p` — the exact-prior likelihood `(1−θ)ᵗ`
    /// stays in log domain throughout.
    log_surv: Vec<f64>,
}

impl AtomTerms {
    fn precompute(atoms: &[Atom]) -> Self {
        AtomTerms {
            log_mass: atoms.iter().map(|a| a.mass.ln()).collect(),
            log_theta: atoms.iter().map(|a| a.value.ln()).collect(),
            log_surv: atoms.iter().map(|a| (-a.value).ln_1p()).collect(),
        }
    }
}

/// The exact discrete posterior, computed in log domain.
///
/// Atoms the evidence *logically* excludes (`θ = 0` with failures seen,
/// `θ = 1` with survivals seen, prior mass 0) are annihilated. Atoms the
/// evidence merely makes improbable are **never dropped**: a weight
/// whose exact value underflows `f64` (below `e^{−745}` relative to the
/// dominant atom — routine once `t ≥ 10⁷` failure-free demands meet a
/// θ ≥ 10⁻⁴ atom) is flushed to the smallest positive `f64` instead of
/// to 0, so the posterior support always equals the admissible prior
/// support. The distortion is ≤ a few times `5·10⁻³²⁴` — far below any
/// downstream tolerance — and keeps worst-case-atom audits and
/// support-sensitive consumers honest: finite evidence never *deletes*
/// a hypothesis.
fn discrete_posterior(
    atoms: &[Atom],
    terms: &AtomTerms,
    failures: u64,
    survivals: u64,
) -> Result<Vec<Atom>, BayesError> {
    let mut out = Vec::with_capacity(atoms.len());
    let mut total = 0.0_f64;
    // Work with log-likelihood to survive large t.
    let mut best_log = f64::NEG_INFINITY;
    let logs: Vec<Option<f64>> = atoms
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let theta = a.value;
            if a.mass == 0.0 {
                return None;
            }
            // 0^0 = 1 conventions:
            if theta == 0.0 && failures > 0 {
                return None;
            }
            if theta == 1.0 && survivals > 0 {
                return None;
            }
            let mut ll = terms.log_mass[i];
            if failures > 0 {
                ll += failures as f64 * terms.log_theta[i];
            }
            if survivals > 0 {
                ll += survivals as f64 * terms.log_surv[i];
            }
            best_log = best_log.max(ll);
            Some(ll)
        })
        .collect();
    if best_log == f64::NEG_INFINITY {
        return Err(BayesError::DegeneratePosterior(
            "evidence excludes every prior atom",
        ));
    }
    for (a, ll) in atoms.iter().zip(logs) {
        if let Some(ll) = ll {
            let w = (ll - best_log).exp().max(f64::MIN_POSITIVE);
            out.push(Atom {
                value: a.value,
                mass: w,
            });
            total += w;
        }
    }
    for a in &mut out {
        a.mass /= total;
    }
    Ok(out)
}

impl PfdPosterior {
    /// Posterior mean PFD.
    pub fn mean(&self) -> f64 {
        match self {
            PfdPosterior::Discrete(atoms) => atoms.iter().map(|a| a.value * a.mass).sum(),
            PfdPosterior::Beta(b) => b.mean(),
        }
    }

    /// Posterior `P(Θ ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            PfdPosterior::Discrete(atoms) => atoms
                .iter()
                .take_while(|a| a.value <= x)
                .map(|a| a.mass)
                .sum::<f64>()
                .min(1.0),
            PfdPosterior::Beta(b) => b.cdf(x),
        }
    }

    /// Posterior probability the system is perfect.
    pub fn prob_perfect(&self) -> f64 {
        match self {
            PfdPosterior::Discrete(atoms) => atoms
                .iter()
                .find(|a| a.value == 0.0)
                .map(|a| a.mass)
                .unwrap_or(0.0),
            PfdPosterior::Beta(_) => 0.0,
        }
    }

    /// Smallest `b` with `P(Θ ≤ b) ≥ confidence`.
    ///
    /// # Errors
    ///
    /// [`BayesError::InvalidConfig`] unless `0 < confidence < 1`;
    /// numerics errors from the Beta quantile.
    pub fn quantile(&self, confidence: f64) -> Result<f64, BayesError> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(BayesError::InvalidConfig(format!(
                "confidence {confidence} not in (0, 1)"
            )));
        }
        match self {
            PfdPosterior::Discrete(atoms) => {
                let mut acc = 0.0;
                for a in atoms {
                    acc += a.mass;
                    if acc + 1e-15 >= confidence {
                        return Ok(a.value);
                    }
                }
                Ok(atoms.last().map(|a| a.value).unwrap_or(0.0))
            }
            PfdPosterior::Beta(b) => Ok(b.quantile(confidence)?),
        }
    }
}

/// Factorised per-fault posterior after `t` **failure-free** demands:
/// every fault's presence probability shrinks to
///
/// ```text
/// pᵢ' = pᵢ(1−qᵢ)ᵗ / (1 − pᵢ + pᵢ(1−qᵢ)ᵗ)
/// ```
///
/// Faults with large failure regions are "tested out" quickly; faults with
/// tiny regions barely move — which is why failure-free operation alone
/// can never establish ultra-high reliability (the paper's motivating
/// problem).
///
/// The factorisation approximates the exact likelihood `(1−Σᵢ∈S qᵢ)ᵗ` by
/// `Πᵢ∈S (1−qᵢ)ᵗ`; exact when at most one fault is present, and accurate
/// to `O(t·qᵢqⱼ)` generally.
///
/// # Errors
///
/// Propagates model reconstruction errors (cannot occur for valid inputs).
pub fn factored_fault_posterior(model: &FaultModel, t: u64) -> Result<FaultModel, BayesError> {
    let faults = model
        .faults()
        .iter()
        .map(|f| {
            let p = f.p();
            let q = f.q();
            // Stay in log domain end to end: the update is a logistic
            // shift of the log-odds,
            //   ln(p'/(1−p')) = ln(p/(1−p)) + t·ln(1−q),
            // so the survival factor (1−q)^t is never materialised.
            // Exponentiating p·(1−q)^t piecewise (the obvious form)
            // collapses p' to exactly 0 once (1−q)^t underflows — at
            // t ≥ 10⁷ that already happens for q ~ 10⁻⁴ — erasing the
            // fault from the model even where p' itself is still
            // representable.
            let log_surv = t as f64 * (-q).ln_1p();
            let p_new = if p == 0.0 || log_surv == 0.0 {
                p
            } else if p == 1.0 {
                1.0
            } else {
                let log_odds = (p / (1.0 - p)).ln() + log_surv;
                if log_odds <= 0.0 {
                    let e = log_odds.exp();
                    e / (1.0 + e)
                } else {
                    1.0 / (1.0 + (-log_odds).exp())
                }
            };
            PotentialFault::new(p_new, q)
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(BayesError::from)?;
    FaultModel::new(faults).map_err(BayesError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> FaultModel {
        FaultModel::from_params(&[0.3, 0.1], &[0.01, 0.001]).unwrap()
    }

    #[test]
    fn failure_free_evidence_improves_beliefs() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 2_000).unwrap();
        assert!(post.mean() < prior.mean());
        assert!(post.prob_perfect() > prior.prob_perfect());
        // More evidence, stronger belief.
        let post2 = observe(&prior, 0, 20_000).unwrap();
        assert!(post2.mean() < post.mean());
        assert!(post2.prob_perfect() > post.prob_perfect());
    }

    #[test]
    fn failures_kill_the_perfect_atom() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 1, 100).unwrap();
        assert_eq!(post.prob_perfect(), 0.0);
        assert!(post.mean() > 0.0);
    }

    #[test]
    fn posterior_is_normalised() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        for (s, t) in [(0u64, 0u64), (0, 1000), (2, 500), (10, 10)] {
            let post = observe(&prior, s, t).unwrap();
            if let PfdPosterior::Discrete(atoms) = post {
                let total: f64 = atoms.iter().map(|a| a.mass).sum();
                assert!((total - 1.0).abs() < 1e-12, "s={s}, t={t}");
            } else {
                panic!("expected discrete posterior");
            }
        }
    }

    #[test]
    fn no_evidence_is_identity() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 0).unwrap();
        assert!((post.mean() - prior.mean()).abs() < 1e-14);
        assert!((post.prob_perfect() - prior.prob_perfect()).abs() < 1e-14);
    }

    #[test]
    fn bad_and_degenerate_evidence() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        assert!(matches!(
            observe(&prior, 5, 3),
            Err(BayesError::BadEvidence { .. })
        ));
        // A prior certain of perfection cannot explain a failure.
        let perfect = PfdPrior::from_atoms(vec![Atom {
            value: 0.0,
            mass: 1.0,
        }])
        .unwrap();
        assert!(matches!(
            observe(&perfect, 1, 10),
            Err(BayesError::DegeneratePosterior(_))
        ));
        // A prior certain of Θ=1 cannot explain a success.
        let broken = PfdPrior::from_atoms(vec![Atom {
            value: 1.0,
            mass: 1.0,
        }])
        .unwrap();
        assert!(observe(&broken, 0, 1).is_err());
        assert!(observe(&broken, 5, 5).is_ok());
    }

    #[test]
    fn beta_conjugate_update() {
        let prior = PfdPrior::Beta(Beta::new(1.0, 99.0).unwrap());
        let post = observe(&prior, 2, 100).unwrap();
        if let PfdPosterior::Beta(b) = post {
            assert!((b.alpha() - 3.0).abs() < 1e-12);
            assert!((b.beta() - 197.0).abs() < 1e-12);
        } else {
            panic!("expected beta posterior");
        }
    }

    #[test]
    fn large_t_is_numerically_stable() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 10_000_000).unwrap();
        // Essentially all mass on the perfect atom.
        assert!(post.prob_perfect() > 0.999);
        assert!(post.mean() < 1e-6);
        let b = post.quantile(0.99).unwrap();
        assert!(b.is_finite());
    }

    #[test]
    fn extreme_t_keeps_admissible_atoms_in_support() {
        // t = 10^7 failure-free demands against a θ = 0.01 atom puts its
        // posterior weight at e^{-100503} — far below f64. The atom must
        // survive with a flushed-to-minimum mass, not vanish: finite
        // evidence never deletes a hypothesis outright.
        let prior = PfdPrior::from_atoms(vec![
            Atom {
                value: 0.0,
                mass: 0.5,
            },
            Atom {
                value: 0.01,
                mass: 0.5,
            },
        ])
        .unwrap();
        for t in [10_000_000u64, 1_000_000_000] {
            let post = observe(&prior, 0, t).unwrap();
            let PfdPosterior::Discrete(atoms) = &post else {
                panic!("expected discrete posterior");
            };
            assert_eq!(atoms.len(), 2, "t={t}: support collapsed");
            assert!(atoms[1].mass > 0.0, "t={t}: atom mass collapsed to 0");
            assert!(post.prob_perfect() > 0.999_999);
            // The flushed tail does not distort the headline numbers.
            assert!(post.mean() < 1e-300);
            assert_eq!(post.quantile(0.99).unwrap(), 0.0);
        }
    }

    #[test]
    fn observe_batch_matches_observe_bitwise() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let evidence = [
            (0u64, 0u64),
            (0, 1_000),
            (2, 500),
            (10, 10),
            (0, 10_000_000),
        ];
        let batch = observe_batch(&prior, &evidence).unwrap();
        assert_eq!(batch.len(), evidence.len());
        for (&(s, t), post) in evidence.iter().zip(&batch) {
            let single = observe(&prior, s, t).unwrap();
            let (PfdPosterior::Discrete(a), PfdPosterior::Discrete(b)) = (&single, post) else {
                panic!("expected discrete posteriors");
            };
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "s={s} t={t}");
                assert_eq!(x.mass.to_bits(), y.mass.to_bits(), "s={s} t={t}");
            }
        }
        // Error cells abort the batch, matching the one-shot contract.
        assert!(matches!(
            observe_batch(&prior, &[(0, 10), (5, 3)]),
            Err(BayesError::BadEvidence { .. })
        ));
        // Beta priors batch through the conjugate path.
        let beta = PfdPrior::Beta(Beta::new(1.0, 99.0).unwrap());
        let out = observe_batch(&beta, &[(2, 100)]).unwrap();
        assert!(matches!(out[0], PfdPosterior::Beta(_)));
    }

    #[test]
    fn factored_posterior_survives_extreme_t() {
        // At t = 10^7, q = 7.465e-5 the survival factor (1-q)^t is
        // ~e^{-746.5}: below f64's subnormal floor, so the pre-log-domain
        // formula p·surv/(1-p+p·surv) returns exactly 0 — yet with
        // p = 0.99 the posterior itself (~6e-323) is still representable.
        let (p, q, t) = (0.99f64, 7.465e-5f64, 10_000_000u64);
        let naive_surv = (t as f64 * (-q).ln_1p()).exp();
        assert_eq!(naive_surv, 0.0, "test premise: naive form underflows");
        let m = FaultModel::from_params(&[p], &[q]).unwrap();
        let post = factored_fault_posterior(&m, t).unwrap();
        let p_new = post.faults()[0].p();
        assert!(p_new > 0.0, "log-domain update collapsed to 0");
        assert!(p_new < 1e-300);
        // And the log-odds form agrees with the direct formula where the
        // direct formula is healthy.
        let m2 = FaultModel::from_params(&[0.3], &[1e-4]).unwrap();
        let post2 = factored_fault_posterior(&m2, 10_000).unwrap();
        let surv = (10_000.0 * (-1e-4f64).ln_1p()).exp();
        let direct = 0.3 * surv / (1.0 - 0.3 + 0.3 * surv);
        assert!((post2.faults()[0].p() - direct).abs() < 1e-15 * direct.max(1e-30));
        // p = 1 is a fixed point, not a NaN, even when surv underflows.
        let m3 = FaultModel::from_params(&[1.0], &[q]).unwrap();
        assert_eq!(
            factored_fault_posterior(&m3, t).unwrap().faults()[0].p(),
            1.0
        );
    }

    #[test]
    fn quantile_validation_and_values() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let post = observe(&prior, 0, 100).unwrap();
        assert!(post.quantile(0.0).is_err());
        assert!(post.quantile(1.0).is_err());
        let q50 = post.quantile(0.5).unwrap();
        let q99 = post.quantile(0.99).unwrap();
        assert!(q50 <= q99);
    }

    #[test]
    fn factored_posterior_shrinks_big_faults_fastest() {
        let m = FaultModel::from_params(&[0.3, 0.3], &[0.01, 1e-6]).unwrap();
        let post = factored_fault_posterior(&m, 10_000).unwrap();
        let p_big = post.faults()[0].p();
        let p_small = post.faults()[1].p();
        // The big-region fault would have shown itself: (1-0.01)^10000 ≈ 0.
        assert!(p_big < 1e-20);
        // The tiny-region fault is barely updated: (1-1e-6)^1e4 ≈ 0.99.
        assert!((p_small - 0.2975).abs() < 0.002);
        // q values are untouched.
        assert_eq!(post.faults()[0].q(), 0.01);
    }

    #[test]
    fn factored_posterior_with_zero_t_is_identity() {
        let m = model();
        let post = factored_fault_posterior(&m, 0).unwrap();
        assert_eq!(post, m);
    }

    proptest! {
        #[test]
        fn posterior_mean_never_exceeds_prior_mean_on_perfect_evidence(
            ps in proptest::collection::vec(0.01..0.9f64, 1..6),
            t in 1u64..50_000
        ) {
            let qs = vec![0.01; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            let prior = PfdPrior::exact_single(&m).unwrap();
            let post = observe(&prior, 0, t).unwrap();
            prop_assert!(post.mean() <= prior.mean() + 1e-12);
        }

        #[test]
        fn factored_posterior_probabilities_shrink(
            ps in proptest::collection::vec(0.01..0.99f64, 1..6),
            t in 0u64..100_000
        ) {
            let qs = vec![0.001; ps.len()];
            let m = FaultModel::from_params(&ps, &qs).unwrap();
            let post = factored_fault_posterior(&m, t).unwrap();
            for (before, after) in m.faults().iter().zip(post.faults()) {
                prop_assert!(after.p() <= before.p() + 1e-12);
            }
        }
    }
}
