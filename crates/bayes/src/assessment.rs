//! The assessor's questions, answered with posteriors.
//!
//! §5 frames assessment as confidence statements `P(Θ ≤ bound) = α`.
//! After operational evidence those statements should come from the
//! posterior; this module provides them plus the planning question every
//! licensing schedule needs: *how much failure-free operation buys a given
//! claim?*

use crate::error::BayesError;
use crate::prior::PfdPrior;
use crate::update::{observe, PfdPosterior};

/// Posterior one-sided confidence bound: smallest `b` with
/// `P(Θ ≤ b | evidence) ≥ confidence`.
///
/// # Errors
///
/// Propagates [`PfdPosterior::quantile`] validation.
pub fn posterior_bound(posterior: &PfdPosterior, confidence: f64) -> Result<f64, BayesError> {
    posterior.quantile(confidence)
}

/// Result of a demands-for-claim search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimPlan {
    /// Failure-free demands required.
    pub demands: u64,
    /// The posterior bound achieved at that point.
    pub achieved_bound: f64,
}

/// Finds the smallest number of **failure-free** demands `t` such that the
/// posterior bound at `confidence` drops to `target` or below.
///
/// Monotonicity of the posterior bound in `t` lets us search by doubling
/// then bisection, so the cost is `O(log t)` posterior evaluations.
///
/// # Errors
///
/// [`BayesError::InvalidConfig`] for a non-positive target;
/// [`BayesError::ClaimUnreachable`] if even `max_demands` failure-free
/// demands do not reach the target (e.g. the prior denies it);
/// propagated update errors otherwise.
///
/// ```
/// use divrel_bayes::{assessment::demands_for_claim, prior::PfdPrior};
/// use divrel_model::FaultModel;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(5, 0.1, 1e-3)?;
/// let prior = PfdPrior::exact_single(&model)?;
/// let plan = demands_for_claim(&prior, 1e-3, 0.99, 10_000_000)?;
/// assert!(plan.achieved_bound <= 1e-3);
/// // And one demand fewer would not have sufficed:
/// # Ok(())
/// # }
/// ```
pub fn demands_for_claim(
    prior: &PfdPrior,
    target: f64,
    confidence: f64,
    max_demands: u64,
) -> Result<ClaimPlan, BayesError> {
    if target <= 0.0 || !target.is_finite() {
        return Err(BayesError::InvalidConfig(format!(
            "target bound {target} must be positive"
        )));
    }
    let bound_at =
        |t: u64| -> Result<f64, BayesError> { posterior_bound(&observe(prior, 0, t)?, confidence) };
    if bound_at(0)? <= target {
        return Ok(ClaimPlan {
            demands: 0,
            achieved_bound: bound_at(0)?,
        });
    }
    // Exponential search for an upper bracket.
    let mut hi = 1u64;
    while bound_at(hi)? > target {
        if hi >= max_demands {
            return Err(BayesError::ClaimUnreachable {
                target,
                tried: max_demands,
            });
        }
        hi = hi.saturating_mul(2).min(max_demands);
    }
    let mut lo = hi / 2; // bound_at(lo) > target (or lo == 0 handled above)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if bound_at(mid)? <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(ClaimPlan {
        demands: hi,
        achieved_bound: bound_at(hi)?,
    })
}

/// Side-by-side posterior assessment of a single version and a 1-out-of-2
/// pair given the *same* per-system evidence — the Bayesian counterpart of
/// the paper's §5.1 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityComparison {
    /// Posterior bound for the single version.
    pub single_bound: f64,
    /// Posterior bound for the pair.
    pub pair_bound: f64,
    /// `single_bound / pair_bound` (∞ if the pair bound is 0).
    pub gain: f64,
}

/// Computes posterior bounds for a single version and a 1oo2 pair of the
/// same process after each has seen `t` failure-free demands.
///
/// # Errors
///
/// Propagates prior/update/quantile errors.
pub fn compare_diversity(
    model: &divrel_model::FaultModel,
    t: u64,
    confidence: f64,
) -> Result<DiversityComparison, BayesError> {
    let single = posterior_bound(&observe(&PfdPrior::exact_single(model)?, 0, t)?, confidence)?;
    let pair = posterior_bound(&observe(&PfdPrior::exact_pair(model)?, 0, t)?, confidence)?;
    let gain = if pair > 0.0 {
        single / pair
    } else if single > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(DiversityComparison {
        single_bound: single,
        pair_bound: pair,
        gain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use divrel_model::FaultModel;

    fn model() -> FaultModel {
        FaultModel::uniform(5, 0.1, 1e-3).unwrap()
    }

    #[test]
    fn bound_decreases_with_evidence() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let mut prev = f64::INFINITY;
        for t in [0u64, 100, 1_000, 10_000, 100_000] {
            let b = posterior_bound(&observe(&prior, 0, t).unwrap(), 0.99).unwrap();
            assert!(b <= prev + 1e-15, "t={t}: {b} > {prev}");
            prev = b;
        }
    }

    #[test]
    fn demands_for_claim_is_minimal() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let plan = demands_for_claim(&prior, 1e-3, 0.99, 100_000_000).unwrap();
        assert!(plan.achieved_bound <= 1e-3);
        assert!(plan.demands > 0);
        // One fewer demand must miss the target.
        let before = posterior_bound(&observe(&prior, 0, plan.demands - 1).unwrap(), 0.99).unwrap();
        assert!(before > 1e-3);
    }

    #[test]
    fn trivial_claims_need_no_evidence() {
        let prior = PfdPrior::exact_single(&model()).unwrap();
        let plan = demands_for_claim(&prior, 0.5, 0.99, 1000).unwrap();
        assert_eq!(plan.demands, 0);
    }

    #[test]
    fn unreachable_claims_are_reported() {
        // A Beta prior has no atom at zero: some targets need enormous t.
        let prior = PfdPrior::Beta(divrel_numerics::beta_dist::Beta::new(1.0, 10.0).unwrap());
        let e = demands_for_claim(&prior, 1e-9, 0.99, 1_000).unwrap_err();
        assert!(matches!(e, BayesError::ClaimUnreachable { .. }));
        assert!(demands_for_claim(&prior, -1.0, 0.99, 1000).is_err());
    }

    #[test]
    fn pair_reaches_claims_sooner_than_single() {
        // The Bayesian restatement of the paper's core message: for the
        // same target and evidence budget, diversity needs less operation.
        let m = model();
        let prior1 = PfdPrior::exact_single(&m).unwrap();
        let prior2 = PfdPrior::exact_pair(&m).unwrap();
        let plan1 = demands_for_claim(&prior1, 1e-3, 0.99, 100_000_000).unwrap();
        let plan2 = demands_for_claim(&prior2, 1e-3, 0.99, 100_000_000).unwrap();
        assert!(
            plan2.demands < plan1.demands,
            "pair {} vs single {}",
            plan2.demands,
            plan1.demands
        );
    }

    #[test]
    fn compare_diversity_reports_gain() {
        let c = compare_diversity(&model(), 1_000, 0.99).unwrap();
        assert!(c.pair_bound <= c.single_bound);
        assert!(c.gain >= 1.0);
    }

    #[test]
    fn compare_diversity_handles_zero_bounds() {
        // With overwhelming evidence both bounds collapse to 0 (all mass on
        // the perfect atom) and the gain degenerates to 1.
        let c = compare_diversity(&model(), 50_000_000, 0.99).unwrap();
        assert_eq!(c.single_bound, 0.0);
        assert_eq!(c.pair_bound, 0.0);
        assert_eq!(c.gain, 1.0);
    }
}
