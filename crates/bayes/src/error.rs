//! Error type for the Bayesian layer.

use std::fmt;

/// Errors produced by priors, updates and assessments.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// Evidence was inconsistent (e.g. more failures than demands).
    BadEvidence {
        /// Failures claimed.
        failures: u64,
        /// Demands claimed.
        demands: u64,
    },
    /// The posterior is degenerate (e.g. all prior mass excluded by the
    /// evidence).
    DegeneratePosterior(&'static str),
    /// The requested claim cannot be reached within the search budget.
    ClaimUnreachable {
        /// The bound that was requested.
        target: f64,
        /// The largest number of demands tried.
        tried: u64,
    },
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// Propagated model error.
    Model(divrel_model::ModelError),
    /// Propagated numerics error.
    Numerics(divrel_numerics::NumericsError),
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::BadEvidence { failures, demands } => {
                write!(f, "{failures} failures cannot occur in {demands} demands")
            }
            BayesError::DegeneratePosterior(msg) => write!(f, "degenerate posterior: {msg}"),
            BayesError::ClaimUnreachable { target, tried } => write!(
                f,
                "claim bound {target} unreachable within {tried} failure-free demands"
            ),
            BayesError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BayesError::Model(e) => write!(f, "model error: {e}"),
            BayesError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for BayesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BayesError::Model(e) => Some(e),
            BayesError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<divrel_model::ModelError> for BayesError {
    fn from(e: divrel_model::ModelError) -> Self {
        BayesError::Model(e)
    }
}

impl From<divrel_numerics::NumericsError> for BayesError {
    fn from(e: divrel_numerics::NumericsError) -> Self {
        BayesError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        use std::error::Error;
        assert!(BayesError::BadEvidence {
            failures: 5,
            demands: 3
        }
        .to_string()
        .contains("5 failures"));
        assert!(BayesError::DegeneratePosterior("x")
            .to_string()
            .contains("x"));
        assert!(BayesError::ClaimUnreachable {
            target: 1e-9,
            tried: 100
        }
        .to_string()
        .contains("unreachable within 100"));
        assert!(BayesError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(BayesError::from(divrel_model::ModelError::EmptyModel)
            .source()
            .is_some());
        assert!(
            BayesError::from(divrel_numerics::NumericsError::EmptyData("d"))
                .source()
                .is_some()
        );
    }
}
