//! # divrel-bayes
//!
//! Bayesian assessment on top of the fault-creation model.
//!
//! The paper closes with: "it would seem a good idea to apply a family of
//! prior distributions for a product's reliability parameters that are
//! based on this plausible physical model rather than chosen, as is
//! frequently the case, for computational convenience only" (§7, citing
//! \[14\]). This crate implements exactly that:
//!
//! * [`prior::PfdPrior`] — priors over the PFD of a version or a
//!   1-out-of-2 pair: the **exact discrete prior** induced by the fault
//!   model, and the **moment-matched Beta** convenience prior for
//!   comparison (§6.2 warns the two can disagree);
//! * [`update`] — posterior inference from operational evidence
//!   (`s` failures in `t` demands): exact discrete posteriors, conjugate
//!   Beta posteriors, and an approximate factorised **per-fault** update
//!   that returns a new [`divrel_model::FaultModel`];
//! * [`assessment`] — the assessor's questions: posterior confidence
//!   bounds, and "how many failure-free demands until I can claim X?".
//!
//! ```
//! use divrel_bayes::{assessment::posterior_bound, prior::PfdPrior, update::observe};
//! use divrel_model::FaultModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = FaultModel::uniform(6, 0.1, 1e-3)?;
//! let prior = PfdPrior::exact_pair(&model)?;
//! // 10 000 failure-free demands on the 1oo2 system:
//! let post = observe(&prior, 0, 10_000)?;
//! let b99 = posterior_bound(&post, 0.99)?;
//! assert!(b99 < 1e-2);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod assessment;
pub mod decision;
pub mod error;
pub mod prior;
pub mod update;

pub use error::BayesError;
pub use prior::PfdPrior;
pub use update::PfdPosterior;
