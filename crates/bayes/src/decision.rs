//! Decision-theoretic acceptance: should the system be fielded?
//!
//! The paper's introduction frames the assessor's task as deciding
//! "whether a specific diverse system is dependable enough for
//! operation". A confidence bound answers *what we believe*; a decision
//! needs *what it costs to be wrong*. This module closes that gap with a
//! standard expected-loss treatment over the PFD posterior:
//!
//! * fielding the system incurs `cost_per_failure × E[Θ] × demands` of
//!   expected accident loss over the licensing period,
//! * rejecting it incurs the fixed `rejection_cost` (backfit, delay, or
//!   the risk of the alternative).
//!
//! Because the loss is linear in Θ, only the posterior *mean* matters
//! for the optimal decision — an attractive robustness property the
//! module exploits and the tests verify. A risk-averse variant weights
//! the tail via a posterior quantile instead.

use crate::error::BayesError;
use crate::update::PfdPosterior;

/// The economic frame for an acceptance decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionStakes {
    /// Loss per failure on demand (accident cost), in arbitrary units.
    pub cost_per_failure: f64,
    /// Demands expected over the licensing period.
    pub demands: u64,
    /// Loss of rejecting the system (same units).
    pub rejection_cost: f64,
}

impl DecisionStakes {
    /// Validates the stakes.
    ///
    /// # Errors
    ///
    /// [`BayesError::InvalidConfig`] for negative or non-finite costs.
    pub fn validate(&self) -> Result<(), BayesError> {
        if !self.cost_per_failure.is_finite() || self.cost_per_failure < 0.0 {
            return Err(BayesError::InvalidConfig(format!(
                "cost_per_failure {} must be finite and >= 0",
                self.cost_per_failure
            )));
        }
        if !self.rejection_cost.is_finite() || self.rejection_cost < 0.0 {
            return Err(BayesError::InvalidConfig(format!(
                "rejection_cost {} must be finite and >= 0",
                self.rejection_cost
            )));
        }
        Ok(())
    }
}

/// The assessor's verdict with its expected losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Expected loss of fielding the system.
    pub accept_loss: f64,
    /// Loss of rejecting it.
    pub reject_loss: f64,
    /// `true` if fielding minimises expected loss.
    pub accept: bool,
    /// The PFD at which the two options break even for these stakes.
    pub break_even_pfd: f64,
}

/// Expected-loss decision using the posterior **mean** PFD (the Bayes
/// rule for linear loss).
///
/// # Errors
///
/// Propagates [`DecisionStakes::validate`].
///
/// ```
/// use divrel_bayes::decision::{decide, DecisionStakes};
/// use divrel_bayes::prior::PfdPrior;
/// use divrel_bayes::update::observe;
/// use divrel_model::FaultModel;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = FaultModel::uniform(10, 0.1, 1e-3)?;
/// let post = observe(&PfdPrior::exact_pair(&model)?, 0, 50_000)?;
/// let stakes = DecisionStakes {
///     cost_per_failure: 1e6,
///     demands: 10_000,
///     rejection_cost: 5e4,
/// };
/// let d = decide(&post, stakes)?;
/// assert!(d.accept); // strong evidence + diverse pair → field it
/// # Ok(())
/// # }
/// ```
pub fn decide(posterior: &PfdPosterior, stakes: DecisionStakes) -> Result<Decision, BayesError> {
    stakes.validate()?;
    let exposure = stakes.cost_per_failure * stakes.demands as f64;
    let accept_loss = posterior.mean() * exposure;
    let break_even_pfd = if exposure > 0.0 {
        stakes.rejection_cost / exposure
    } else {
        f64::INFINITY
    };
    Ok(Decision {
        accept_loss,
        reject_loss: stakes.rejection_cost,
        accept: accept_loss <= stakes.rejection_cost,
        break_even_pfd,
    })
}

/// Risk-averse variant: judges the system by a posterior *quantile*
/// (e.g. the 99th percentile PFD) instead of the mean — the
/// "confidence-bound" culture of §5 expressed as a decision rule.
///
/// # Errors
///
/// Propagates validation and quantile errors.
pub fn decide_risk_averse(
    posterior: &PfdPosterior,
    stakes: DecisionStakes,
    confidence: f64,
) -> Result<Decision, BayesError> {
    stakes.validate()?;
    let pfd = posterior.quantile(confidence)?;
    let exposure = stakes.cost_per_failure * stakes.demands as f64;
    let accept_loss = pfd * exposure;
    let break_even_pfd = if exposure > 0.0 {
        stakes.rejection_cost / exposure
    } else {
        f64::INFINITY
    };
    Ok(Decision {
        accept_loss,
        reject_loss: stakes.rejection_cost,
        accept: accept_loss <= stakes.rejection_cost,
        break_even_pfd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::PfdPrior;
    use crate::update::observe;
    use divrel_model::FaultModel;

    fn posterior(t: u64) -> PfdPosterior {
        let m = FaultModel::uniform(8, 0.15, 2e-3).expect("valid");
        observe(&PfdPrior::exact_single(&m).expect("ok"), 0, t).expect("ok")
    }

    fn stakes(rejection: f64) -> DecisionStakes {
        DecisionStakes {
            cost_per_failure: 1e6,
            demands: 10_000,
            rejection_cost: rejection,
        }
    }

    #[test]
    fn evidence_flips_the_decision() {
        // Cheap rejection + weak evidence → reject; strong evidence →
        // accept the same system at the same stakes.
        let s = stakes(1e5);
        let weak = decide(&posterior(0), s).unwrap();
        assert!(!weak.accept, "prior mean loss {}", weak.accept_loss);
        let strong = decide(&posterior(2_000_000), s).unwrap();
        assert!(strong.accept, "posterior mean loss {}", strong.accept_loss);
    }

    #[test]
    fn break_even_is_consistent() {
        let s = stakes(1e5);
        let d = decide(&posterior(1_000), s).unwrap();
        assert!((d.break_even_pfd - 1e5 / 1e10).abs() < 1e-18);
        // The decision is exactly "posterior mean vs break-even".
        let post = posterior(1_000);
        assert_eq!(d.accept, post.mean() <= d.break_even_pfd);
    }

    #[test]
    fn risk_averse_is_more_conservative_for_continuous_posteriors() {
        // For a Beta posterior the 99% quantile exceeds the mean, so the
        // tail rule charges a higher accept-loss. (For discrete posteriors
        // with a large mass at Θ = 0 the quantile can sit BELOW the mean —
        // the tail rule is a different risk attitude, not a uniformly
        // stricter one; that behaviour is exercised below.)
        let s = stakes(2e4);
        let beta_post = observe(
            &PfdPrior::Beta(divrel_numerics::beta_dist::Beta::new(2.0, 200.0).expect("ok")),
            0,
            1_000,
        )
        .expect("ok");
        let mean_rule = decide(&beta_post, s).unwrap();
        let tail_rule = decide_risk_averse(&beta_post, s, 0.99).unwrap();
        assert!(tail_rule.accept_loss > mean_rule.accept_loss);

        // Discrete posterior dominated by the perfect atom: the 99%
        // quantile is exactly 0 while the mean is positive.
        let discrete = posterior(300_000);
        let tail = decide_risk_averse(&discrete, s, 0.99).unwrap();
        assert_eq!(tail.accept_loss, 0.0);
        assert!(decide(&discrete, s).unwrap().accept_loss >= 0.0);
    }

    #[test]
    fn diversity_changes_the_verdict() {
        // The paper's practical payoff in one assertion: at stakes where a
        // single version is rejected, the 1oo2 pair from the SAME process
        // and the SAME evidence is accepted.
        let m = FaultModel::uniform(8, 0.15, 2e-3).expect("valid");
        let t = 500;
        let s = stakes(3e6); // break-even PFD 3e-4
        let single = decide(
            &observe(&PfdPrior::exact_single(&m).expect("ok"), 0, t).expect("ok"),
            s,
        )
        .unwrap();
        let pair = decide(
            &observe(&PfdPrior::exact_pair(&m).expect("ok"), 0, t).expect("ok"),
            s,
        )
        .unwrap();
        assert!(!single.accept, "single accept-loss {}", single.accept_loss);
        assert!(pair.accept, "pair accept-loss {}", pair.accept_loss);
    }

    #[test]
    fn zero_exposure_always_accepts() {
        let d = decide(
            &posterior(0),
            DecisionStakes {
                cost_per_failure: 0.0,
                demands: 0,
                rejection_cost: 1.0,
            },
        )
        .unwrap();
        assert!(d.accept);
        assert!(d.break_even_pfd.is_infinite());
    }

    #[test]
    fn validation() {
        let bad = DecisionStakes {
            cost_per_failure: -1.0,
            demands: 1,
            rejection_cost: 0.0,
        };
        assert!(decide(&posterior(0), bad).is_err());
        let bad2 = DecisionStakes {
            cost_per_failure: 1.0,
            demands: 1,
            rejection_cost: f64::NAN,
        };
        assert!(decide(&posterior(0), bad2).is_err());
        assert!(decide_risk_averse(&posterior(0), stakes(1.0), 0.0).is_err());
    }
}
