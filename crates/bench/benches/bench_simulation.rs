//! Criterion benchmarks for the simulation substrates: version sampling,
//! Monte-Carlo experiments, demand-space queries, plant stepping and
//! Bayesian updates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use divrel_bayes::{prior::PfdPrior, update::observe};
use divrel_demand::mapping::FaultRegionMap;
use divrel_demand::profile::Profile;
use divrel_demand::region::Region;
use divrel_demand::space::GridSpace2D;
use divrel_demand::version::ProgramVersion;
use divrel_devsim::{
    experiment::MonteCarloExperiment, factory::VersionFactory, process::FaultIntroduction,
};
use divrel_model::FaultModel;
use divrel_protection::{
    adjudicator::Adjudicator, channel::Channel, plant::Plant, simulation, system::ProtectionSystem,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_of_size(n: usize) -> FaultModel {
    let ps: Vec<f64> = (0..n)
        .map(|i| 0.01 + 0.3 * ((i % 17) as f64 / 16.0))
        .collect();
    let qs: Vec<f64> = (0..n).map(|_| 0.9 / n as f64).collect();
    FaultModel::from_params(&ps, &qs).expect("valid parameters")
}

fn bench_factory(c: &mut Criterion) {
    let mut g = c.benchmark_group("devsim_factory");
    for n in [16usize, 256] {
        let f = VersionFactory::new(model_of_size(n), FaultIntroduction::Independent)
            .expect("valid factory");
        g.bench_with_input(BenchmarkId::new("sample_pair", n), &f, |b, f| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(f.sample_pair(&mut rng)))
        });
    }
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("devsim_experiment");
    g.sample_size(10);
    let m = model_of_size(32);
    g.bench_function("mc_10k_pairs_single_thread", |b| {
        b.iter(|| {
            black_box(
                MonteCarloExperiment::new(m.clone(), FaultIntroduction::Independent)
                    .samples(10_000)
                    .threads(1)
                    .seed(1)
                    .run()
                    .expect("runs"),
            )
        })
    });
    g.finish();
}

fn bench_demand_space(c: &mut Criterion) {
    let space = GridSpace2D::new(200, 200).expect("valid space");
    let profile = Profile::uniform(&space);
    let regions: Vec<Region> = (0..32)
        .map(|i| {
            let x = (i * 6) as u32 % 180;
            let y = (i * 11) as u32 % 180;
            Region::rect(x, y, x + 12, y + 12)
        })
        .collect();
    let map = FaultRegionMap::new(space, regions).expect("valid map");
    c.bench_function("demand/q_values_32_regions", |b| {
        b.iter(|| black_box(map.q_values(&profile)))
    });
    let set: Vec<usize> = (0..32).collect();
    c.bench_function("demand/union_pfd_32_regions", |b| {
        b.iter(|| black_box(map.union_pfd(&set, &profile).expect("in range")))
    });
    c.bench_function("demand/profile_sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(profile.sample(&mut rng)))
    });
}

fn bench_protection(c: &mut Criterion) {
    let space = GridSpace2D::new(100, 100).expect("valid space");
    let profile = Profile::uniform(&space);
    let map = FaultRegionMap::new(
        space,
        vec![Region::rect(0, 0, 9, 9), Region::rect(5, 5, 14, 14)],
    )
    .expect("valid map");
    let sys = ProtectionSystem::new(
        vec![
            Channel::new("A", ProgramVersion::new(vec![true, false])),
            Channel::new("B", ProgramVersion::new(vec![false, true])),
        ],
        Adjudicator::OneOutOfN,
        map,
    )
    .expect("valid system");
    let plant = Plant::with_demand_rate(profile, 0.2).expect("valid plant");
    let mut g = c.benchmark_group("protection");
    g.sample_size(20);
    g.bench_function("run_100k_steps", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(simulation::run(&plant, &sys, 100_000, &mut rng).expect("runs")))
    });
    g.finish();
}

fn bench_bayes(c: &mut Criterion) {
    let m = model_of_size(18);
    let prior = PfdPrior::exact_single(&m).expect("constructible");
    c.bench_function("bayes/observe_exact_prior_n18", |b| {
        b.iter(|| black_box(observe(&prior, 0, 10_000).expect("valid evidence")))
    });
}

criterion_group!(
    benches,
    bench_factory,
    bench_monte_carlo,
    bench_demand_space,
    bench_protection,
    bench_bayes
);
criterion_main!(benches);
