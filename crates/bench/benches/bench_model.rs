//! Criterion benchmarks for the analytic model layer: moments, bounds,
//! fault-free probabilities, improvement gradients.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use divrel_model::improvement::{risk_ratio_gradient, ProportionalFamily};
use divrel_model::FaultModel;

fn model_of_size(n: usize) -> FaultModel {
    let ps: Vec<f64> = (0..n)
        .map(|i| 0.01 + 0.3 * ((i % 17) as f64 / 16.0))
        .collect();
    let qs: Vec<f64> = (0..n)
        .map(|i| (0.9 / n as f64) * (0.2 + (i % 5) as f64 * 0.2))
        .collect();
    FaultModel::from_params(&ps, &qs).expect("valid parameters")
}

fn bench_moments(c: &mut Criterion) {
    let mut g = c.benchmark_group("moments");
    for n in [16usize, 256, 4096] {
        let m = model_of_size(n);
        g.bench_with_input(BenchmarkId::new("mean_and_var_pair", n), &m, |b, m| {
            b.iter(|| {
                black_box(m.mean_pfd_pair());
                black_box(m.var_pfd_pair());
            })
        });
    }
    g.finish();
}

fn bench_fault_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_free");
    for n in [16usize, 256, 4096] {
        let m = model_of_size(n);
        g.bench_with_input(BenchmarkId::new("risk_ratio", n), &m, |b, m| {
            b.iter(|| black_box(m.risk_ratio().expect("non-degenerate")))
        });
    }
    g.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut g = c.benchmark_group("improvement");
    for n in [16usize, 256, 4096] {
        let m = model_of_size(n);
        g.bench_with_input(BenchmarkId::new("risk_ratio_gradient", n), &m, |b, m| {
            b.iter(|| black_box(risk_ratio_gradient(m).expect("non-degenerate")))
        });
    }
    let fam = ProportionalFamily::new(
        (0..256).map(|i| 0.01 + 0.002 * (i % 50) as f64).collect(),
        vec![1e-3; 256],
    )
    .expect("valid family");
    g.bench_function("d_risk_ratio_dk_n256", |b| {
        b.iter(|| black_box(fam.d_risk_ratio_dk(0.7).expect("in range")))
    });
    g.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let m = model_of_size(1024);
    c.bench_function("bounds/eq11_eq12_n1024", |b| {
        b.iter(|| {
            black_box(m.pair_bound_from_moments(2.33));
            black_box(m.pair_bound_from_bound(2.33));
        })
    });
}

criterion_group!(
    benches,
    bench_moments,
    bench_fault_free,
    bench_gradient,
    bench_bounds
);
criterion_main!(benches);
