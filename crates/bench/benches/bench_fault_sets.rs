//! Before/after Criterion coverage for the bitset fault-set fast path:
//! reference (seed-semantics) implementations vs the word-packed
//! `FaultSet` + precomputed-mask paths, across all four crates the fast
//! path threads through.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use divrel_demand::mapping::FaultRegionMap;
use divrel_demand::profile::Profile;
use divrel_demand::region::Region;
use divrel_demand::space::{Demand, GridSpace2D};
use divrel_demand::version::ProgramVersion;
use divrel_devsim::factory::{SampledPair, VersionFactory};
use divrel_devsim::process::FaultIntroduction;
use divrel_model::FaultModel;
use divrel_protection::adjudicator::Adjudicator;
use divrel_protection::channel::Channel;
use divrel_protection::plant::Plant;
use divrel_protection::simulation;
use divrel_protection::system::ProtectionSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_of_size(n: usize) -> FaultModel {
    let ps: Vec<f64> = (0..n)
        .map(|i| 0.01 + 0.3 * ((i % 17) as f64 / 16.0))
        .collect();
    let qs: Vec<f64> = (0..n).map(|_| 0.9 / n as f64).collect();
    FaultModel::from_params(&ps, &qs).expect("valid parameters")
}

fn bench_sample_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_sets/sample_pair");
    for n in [16usize, 64, 256] {
        let f = VersionFactory::new(model_of_size(n), FaultIntroduction::Independent)
            .expect("valid factory");
        g.bench_with_input(BenchmarkId::new("reference", n), &f, |b, f| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(f.sample_pair_reference(&mut rng)))
        });
        g.bench_with_input(BenchmarkId::new("bitset", n), &f, |b, f| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut buf = SampledPair::empty(n);
            b.iter(|| {
                f.sample_pair_into(&mut rng, &mut buf);
                black_box(buf.pfd)
            })
        });
    }
    g.finish();
}

fn bench_fails_on(c: &mut Criterion) {
    let space = GridSpace2D::new(200, 200).expect("valid space");
    let regions: Vec<Region> = (0..32)
        .map(|i| {
            let x = (i * 6) as u32 % 180;
            let y = (i * 11) as u32 % 180;
            Region::rect(x, y, x + 12, y + 12)
        })
        .collect();
    let map = FaultRegionMap::new(space, regions.clone()).expect("valid map");
    let bools: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
    let version = ProgramVersion::new(bools.clone());
    let demands: Vec<Demand> = (0..64u32)
        .map(|i| Demand::new(i * 3 % 200, i * 7 % 200))
        .collect();
    let mut g = c.benchmark_group("fault_sets/fails_on");
    g.bench_function("reference_region_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &d in &demands {
                if bools.iter().zip(&regions).any(|(&p, r)| p && r.contains(d)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("bitset_mask", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &d in &demands {
                if version.fails_on(&map, d).expect("in range") {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();

    let profile = Profile::uniform(map.space());
    let indices = version.fault_indices();
    let mut g = c.benchmark_group("fault_sets/true_pfd");
    g.bench_function("reference_region_union", |b| {
        b.iter(|| {
            let parts: Vec<Region> = indices.iter().map(|&i| regions[i].clone()).collect();
            black_box(Region::union(parts).measure(&profile))
        })
    });
    g.bench_function("bitset_mask", |b| {
        b.iter(|| black_box(version.true_pfd(&map, &profile).expect("in range")))
    });
    g.finish();
}

fn bench_protection_run(c: &mut Criterion) {
    let space = GridSpace2D::new(100, 100).expect("valid space");
    let profile = Profile::uniform(&space);
    let map = FaultRegionMap::new(
        space,
        vec![Region::rect(0, 0, 9, 9), Region::rect(5, 5, 14, 14)],
    )
    .expect("valid map");
    let sys = ProtectionSystem::new(
        vec![
            Channel::new("A", ProgramVersion::new(vec![true, false])),
            Channel::new("B", ProgramVersion::new(vec![false, true])),
        ],
        Adjudicator::OneOutOfN,
        map,
    )
    .expect("valid system");
    let mut g = c.benchmark_group("fault_sets/protection_run_400k_rate_1e3");
    g.sample_size(10);
    let plant = Plant::with_demand_rate(profile, 0.001).expect("valid plant");
    g.bench_function("stepwise", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            black_box(simulation::run_stepwise(&plant, &sys, 400_000, &mut rng).expect("runs"))
        })
    });
    g.bench_function("demand_gaps", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(simulation::run(&plant, &sys, 400_000, &mut rng).expect("runs")))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sample_pair,
    bench_fails_on,
    bench_protection_run
);
criterion_main!(benches);
