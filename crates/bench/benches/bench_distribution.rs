//! Criterion benchmarks for the exact PFD distribution machinery:
//! enumeration vs lattice, Poisson–binomial DP, normal quantiles and the
//! quality certificates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use divrel_model::distribution::PfdDistribution;
use divrel_model::FaultModel;
use divrel_numerics::berry_esseen::bernoulli_sum_bound;
use divrel_numerics::normal::standard_quantile;
use divrel_numerics::poisson_binomial::PoissonBinomial;
use divrel_numerics::weighted_sum::WeightedBernoulliSum;

fn terms_of_size(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            (
                0.05 + 0.2 * ((i % 7) as f64 / 6.0),
                (0.8 / n as f64) * (0.5 + (i % 3) as f64 * 0.25),
            )
        })
        .collect()
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("weighted_sum_enumerate");
    for n in [8usize, 14, 20] {
        let terms = terms_of_size(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &terms, |b, t| {
            b.iter(|| black_box(WeightedBernoulliSum::enumerate(t).expect("valid terms")))
        });
    }
    g.finish();
}

fn bench_lattice(c: &mut Criterion) {
    let mut g = c.benchmark_group("weighted_sum_lattice");
    g.sample_size(20);
    for n in [64usize, 512, 4096] {
        let terms = terms_of_size(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &terms, |b, t| {
            b.iter(|| black_box(WeightedBernoulliSum::lattice(t, 1 << 14).expect("valid terms")))
        });
    }
    g.finish();
}

fn bench_poisson_binomial(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_binomial");
    for n in [64usize, 512, 2048] {
        let ps: Vec<f64> = (0..n)
            .map(|i| 0.01 + 0.4 * ((i % 9) as f64 / 8.0))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &ps, |b, p| {
            b.iter(|| black_box(PoissonBinomial::new(p).expect("valid probabilities")))
        });
    }
    g.finish();
}

fn bench_certificates(c: &mut Criterion) {
    let m = FaultModel::from_params(
        &(0..16).map(|i| 0.1 + 0.02 * i as f64).collect::<Vec<_>>(),
        &[0.01; 16],
    )
    .expect("valid parameters");
    c.bench_function("pfd_distribution/build_single_n16", |b| {
        b.iter(|| black_box(PfdDistribution::single(&m).expect("constructible")))
    });
    let d = PfdDistribution::single(&m).expect("constructible");
    c.bench_function("pfd_distribution/ks_distance_n16", |b| {
        b.iter(|| black_box(d.ks_distance_to_normal()))
    });
    let terms = terms_of_size(1024);
    c.bench_function("berry_esseen/n1024", |b| {
        b.iter(|| black_box(bernoulli_sum_bound(&terms).expect("valid terms")))
    });
    c.bench_function("normal/standard_quantile", |b| {
        b.iter(|| black_box(standard_quantile(black_box(0.99)).expect("in range")))
    });
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_lattice,
    bench_poisson_binomial,
    bench_certificates
);
criterion_main!(benches);
