//! Experiment sweeps on the deterministic sharding engine.
//!
//! The paper's artifacts are demonstrated through grids of Monte-Carlo
//! cells; this module expresses those grids on
//! [`divrel_devsim::sweep`] so that every experiment statistic is
//! **bit-identical across thread counts** and the regression suite can
//! pin them. Each sweep here is shared by three consumers: the
//! experiment module that reports it, the `bench` binary that measures
//! its thread scaling (`sweep/*` rows of `BENCH_pr3.json`), and the
//! `sweep_smoke` binary CI runs at two threads.

use divrel_devsim::kl::KnightLevesonExperiment;
use divrel_devsim::process::FaultIntroduction;
use divrel_devsim::sweep::SweepCell;
use divrel_devsim::sweep::{try_run_sweep, GridSpec, SweepGrid};
use divrel_devsim::{DevSimError, VersionFactory};
use divrel_model::forced::ForcedDiversityModel;
use divrel_model::{FaultModel, ModelError};
use divrel_numerics::sweep::SweepReduce;
use divrel_numerics::wire::{Wire, WireError, WireForm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Reduced statistics of a Knight–Leveson replication sweep (E16): one
/// synthetic 27-version experiment per cell.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct KlSweepStats {
    /// Replications executed.
    pub replications: u64,
    /// Replications in which diversity reduced both mean and σ.
    pub reduced_both: u64,
    /// Replications whose version PFDs rejected a normal fit at 5%.
    pub normal_rejected: u64,
    /// Replications with a non-degenerate normality test.
    pub normal_tested: u64,
    /// Mean-reduction factors, in canonical cell order.
    pub mean_factors: Vec<f64>,
    /// σ-reduction factors, in canonical cell order.
    pub std_factors: Vec<f64>,
}

impl SweepReduce for KlSweepStats {
    fn absorb(&mut self, mut other: Self) {
        self.replications += other.replications;
        self.reduced_both += other.reduced_both;
        self.normal_rejected += other.normal_rejected;
        self.normal_tested += other.normal_tested;
        self.mean_factors.append(&mut other.mean_factors);
        self.std_factors.append(&mut other.std_factors);
    }
}

/// Counters plus canonical-order factor vectors cross the wire raw, so
/// a distributed E16 grid reduces to the in-process bits.
impl WireForm for KlSweepStats {
    fn to_wire(&self) -> Wire {
        Wire::record([
            ("replications", Wire::U64(self.replications)),
            ("reduced_both", Wire::U64(self.reduced_both)),
            ("normal_rejected", Wire::U64(self.normal_rejected)),
            ("normal_tested", Wire::U64(self.normal_tested)),
            ("mean_factors", self.mean_factors.to_wire()),
            ("std_factors", self.std_factors.to_wire()),
        ])
    }

    fn from_wire(wire: &Wire) -> Result<Self, WireError> {
        Ok(KlSweepStats {
            replications: wire.field("replications")?.as_u64()?,
            reduced_both: wire.field("reduced_both")?.as_u64()?,
            normal_rejected: wire.field("normal_rejected")?.as_u64()?,
            normal_tested: wire.field("normal_tested")?.as_u64()?,
            mean_factors: Vec::from_wire(wire.field("mean_factors")?)?,
            std_factors: Vec::from_wire(wire.field("std_factors")?)?,
        })
    }
}

impl KlSweepStats {
    /// Median of a factor list (NaN when empty).
    fn median(mut v: Vec<f64>) -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }

    /// Median mean-reduction factor.
    pub fn median_mean_factor(&self) -> f64 {
        Self::median(self.mean_factors.clone())
    }

    /// Median σ-reduction factor.
    pub fn median_std_factor(&self) -> f64 {
        Self::median(self.std_factors.clone())
    }
}

/// Runs the E16 replication grid: `replications` cells, each one
/// synthetic Knight–Leveson experiment seeded from its split stream.
///
/// # Errors
///
/// Propagates model/simulation errors from the first failing cell in
/// canonical order.
pub fn kl_sweep(
    model: &FaultModel,
    replications: usize,
    sweep_seed: u64,
    threads: usize,
) -> Result<KlSweepStats, DevSimError> {
    // One shared model for the whole grid: each worker closure takes an
    // `Arc` bump per cell instead of deep-copying the fault vector twice
    // (once for the experiment, once inside its factory) — the ROADMAP
    // allocation hot spot at 100k-cell scales.
    let model = Arc::new(model.clone());
    let grid = kl_grid(replications, sweep_seed);
    let stats = try_run_sweep(grid.cells(), threads, |cell| kl_cell(&model, cell))?;
    Ok(stats.unwrap_or_default())
}

/// The E16 grid layout: one `()`-configured cell per replication, each
/// stream split from `sweep_seed`. A pure function of its arguments, so
/// remote workers rebuild the exact grid a local sweep runs.
pub fn kl_grid(replications: usize, sweep_seed: u64) -> SweepGrid<()> {
    SweepGrid::new(sweep_seed, vec![(); replications])
}

/// Evaluates one E16 grid cell — one synthetic Knight–Leveson
/// experiment seeded from the cell's split stream. The per-cell worker
/// [`kl_sweep`] folds; distributed executors call it directly.
///
/// # Errors
///
/// Model/simulation errors from the replication.
pub fn kl_cell(model: &Arc<FaultModel>, cell: &SweepCell<()>) -> Result<KlSweepStats, DevSimError> {
    let r = KnightLevesonExperiment::shared(Arc::clone(model))
        .seed(cell.seed)
        .run()?;
    let mut s = KlSweepStats {
        replications: 1,
        ..KlSweepStats::default()
    };
    if r.diversity_reduced_mean_and_std() {
        s.reduced_both = 1;
    }
    if let Some(f) = r.mean_reduction() {
        s.mean_factors.push(f);
    }
    if let Some(f) = r.std_reduction() {
        s.std_factors.push(f);
    }
    if let Some(ks) = r.normality {
        s.normal_tested = 1;
        if ks.p_value < 0.05 {
            s.normal_rejected = 1;
        }
    }
    Ok(s)
}

/// Reduced statistics of the E17 forced-diversity sweep over random
/// process pairs.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ForcedSweepStats {
    /// Random process pairs evaluated.
    pub trials: u64,
    /// Pairs in which the forced pair was *worse* than the averaged
    /// unforced pair (AM–GM forbids any).
    pub worse_than_unforced: u64,
    /// Sum of forced/unforced mean-PFD ratios (canonical-order f64 fold,
    /// so bit-stable across thread counts).
    pub advantage_sum: f64,
}

impl SweepReduce for ForcedSweepStats {
    fn absorb(&mut self, other: Self) {
        self.trials += other.trials;
        self.worse_than_unforced += other.worse_than_unforced;
        self.advantage_sum += other.advantage_sum;
    }
}

impl ForcedSweepStats {
    /// Mean forced/unforced PFD ratio across trials.
    pub fn mean_ratio(&self) -> f64 {
        self.advantage_sum / self.trials as f64
    }
}

/// The ratio sum travels as its exact bit pattern, so the distributed
/// fold reproduces the in-process canonical-order f64 fold bitwise.
impl WireForm for ForcedSweepStats {
    fn to_wire(&self) -> Wire {
        Wire::record([
            ("trials", Wire::U64(self.trials)),
            ("worse_than_unforced", Wire::U64(self.worse_than_unforced)),
            ("advantage_sum", Wire::F64(self.advantage_sum)),
        ])
    }

    fn from_wire(wire: &Wire) -> Result<Self, WireError> {
        Ok(ForcedSweepStats {
            trials: wire.field("trials")?.as_u64()?,
            worse_than_unforced: wire.field("worse_than_unforced")?.as_u64()?,
            advantage_sum: wire.field("advantage_sum")?.as_f64()?,
        })
    }
}

/// Trials per cell of [`forced_sweep`].
pub const FORCED_TRIALS_PER_CELL: usize = 250;

/// Runs the E17 grid: random forced-diversity process pairs in cells of
/// [`FORCED_TRIALS_PER_CELL`], each cell drawing from its split stream.
///
/// # Errors
///
/// Propagates model-construction errors from the first failing cell in
/// canonical order.
pub fn forced_sweep(
    trials: usize,
    sweep_seed: u64,
    threads: usize,
) -> Result<ForcedSweepStats, ModelError> {
    let grid = forced_grid(trials, sweep_seed);
    let stats = try_run_sweep(grid.cells(), threads, forced_cell)?;
    Ok(stats.unwrap_or_default())
}

/// The E17 grid layout: `trials` split into cells of
/// [`FORCED_TRIALS_PER_CELL`]. A pure function of its arguments.
pub fn forced_grid(trials: usize, sweep_seed: u64) -> SweepGrid<usize> {
    GridSpec::new(trials, FORCED_TRIALS_PER_CELL).grid(sweep_seed)
}

/// Evaluates one E17 grid cell — `cell.config` random process pairs
/// drawn from the cell's split stream.
///
/// # Errors
///
/// Model-construction errors.
pub fn forced_cell(cell: &SweepCell<usize>) -> Result<ForcedSweepStats, ModelError> {
    let mut rng = StdRng::seed_from_u64(cell.seed);
    let mut s = ForcedSweepStats::default();
    for _ in 0..cell.config {
        let n = rng.gen_range(1..=12);
        let pa: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let pb: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let qs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 0.5 / n as f64).collect();
        let forced = ForcedDiversityModel::from_params(&pa, &pb, &qs)?;
        let unforced = forced.averaged_process()?;
        s.trials += 1;
        if forced.mean_pfd_pair() > unforced.mean_pfd_pair() + 1e-12 {
            s.worse_than_unforced += 1;
        }
        if unforced.mean_pfd_pair() > 0.0 {
            s.advantage_sum += forced.mean_pfd_pair() / unforced.mean_pfd_pair();
        }
    }
    Ok(s)
}

/// Raw PFD samples from a sharded development-process grid: the sample
/// vectors are assembled in canonical cell order, so they are
/// bit-identical across thread counts and usable as regression artifacts.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PfdSampleSweep {
    /// Single-version PFDs.
    pub singles: Vec<f64>,
    /// 1-out-of-2 pair PFDs.
    pub pairs: Vec<f64>,
}

impl SweepReduce for PfdSampleSweep {
    fn absorb(&mut self, mut other: Self) {
        self.singles.append(&mut other.singles);
        self.pairs.append(&mut other.pairs);
    }
}

/// Samples per cell of [`pfd_sample_sweep`].
pub const PFD_SAMPLES_PER_CELL: usize = 512;

/// Draws `samples` development-process PFD observations over a sharded
/// grid (the `mc_10k_pairs` workload as a sweep): cells of
/// [`PFD_SAMPLES_PER_CELL`] pairs, each sampled from its split stream.
///
/// # Errors
///
/// Factory validation errors.
pub fn pfd_sample_sweep(
    model: &FaultModel,
    introduction: FaultIntroduction,
    samples: usize,
    sweep_seed: u64,
    threads: usize,
) -> Result<PfdSampleSweep, DevSimError> {
    let factory = VersionFactory::new(model.clone(), introduction)?;
    let grid = GridSpec::new(samples, PFD_SAMPLES_PER_CELL).grid(sweep_seed);
    let samples = try_run_sweep(grid.cells(), threads, |cell| {
        let mut rng = StdRng::seed_from_u64(cell.seed);
        let mut out = PfdSampleSweep {
            singles: Vec::with_capacity(cell.config),
            pairs: Vec::with_capacity(cell.config),
        };
        let mut buf = divrel_devsim::factory::SampledPair::empty(factory.model().len());
        for _ in 0..cell.config {
            factory.sample_pair_into(&mut rng, &mut buf);
            out.singles.push(buf.a.pfd);
            out.pairs.push(buf.pfd);
        }
        Ok::<_, DevSimError>(out)
    })?;
    Ok(samples.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::workloads;

    #[test]
    fn kl_sweep_is_bit_identical_across_thread_counts() {
        let model = workloads::safety_model();
        let base = kl_sweep(&model, 24, 2001, 1).unwrap();
        assert_eq!(base.replications, 24);
        for threads in [2, 7] {
            let r = kl_sweep(&model, 24, 2001, threads).unwrap();
            assert_eq!(base, r, "threads = {threads}");
        }
        // A different sweep seed is a genuinely different experiment.
        assert_ne!(base, kl_sweep(&model, 24, 2002, 1).unwrap());
    }

    #[test]
    fn forced_sweep_confirms_am_gm_and_is_thread_invariant() {
        let base = forced_sweep(600, 7, 1).unwrap();
        assert_eq!(base.trials, 600);
        assert_eq!(base.worse_than_unforced, 0);
        assert!(base.mean_ratio() > 0.0 && base.mean_ratio() <= 1.0 + 1e-12);
        let sharded = forced_sweep(600, 7, 3).unwrap();
        assert_eq!(base, sharded);
        assert_eq!(
            base.advantage_sum.to_bits(),
            sharded.advantage_sum.to_bits()
        );
    }

    #[test]
    fn pfd_sample_sweep_matches_model_statistics() {
        let model = workloads::safety_model();
        let s = pfd_sample_sweep(&model, FaultIntroduction::Independent, 4_000, 11, 2).unwrap();
        assert_eq!(s.singles.len(), 4_000);
        assert_eq!(s.pairs.len(), 4_000);
        let mean1: f64 = s.singles.iter().sum::<f64>() / 4_000.0;
        let tol = 6.0 * model.std_pfd_single() / (4_000f64).sqrt();
        assert!((mean1 - model.mean_pfd_single()).abs() < tol);
        // Thread invariance of the assembled sample vectors.
        let again = pfd_sample_sweep(&model, FaultIntroduction::Independent, 4_000, 11, 7).unwrap();
        assert_eq!(s, again);
    }
}
