//! Declarative scenarios: experiments as serialisable data.
//!
//! Every experiment in this repository used to exist only as a
//! hand-coded module behind a registry entry — opening a new variant
//! meant writing Rust. A [`Scenario`] is the alternative: a **value**
//! (serde-serialisable, JSON or TOML) composed from the workspace's spec
//! types —
//!
//! * [`FaultModelSpec`] (`divrel_model::spec`) — the fault-creation
//!   model;
//! * [`FaultIntroduction`] (`divrel_devsim::process`) — how faults are
//!   introduced;
//! * [`CampaignSpec`]/[`PlantSpec`]/`ProfileSpec`/`SystemSpec`
//!   (`divrel_protection::spec`) — protection campaigns;
//! * [`SeedSpec`] (`divrel_numerics::sweep`) — the random-stream layout;
//! * `GridSpec` (`divrel_devsim::sweep`) — sample-budget grids —
//!
//! that [`Scenario::run`] compiles onto the deterministic sweep engine
//! (`SweepGrid`/`SweepCell`, reduced via `SweepReduce`; protection
//! campaigns reduce through `OperationLog`'s merge). Because a spec pins
//! the grid layout and the seed, **a scenario's reduced output is
//! bit-reproducible** — and the built-in presets ([`Scenario::preset`]:
//! `"E16"`, `"E17"`, `"F1"`, `"MC"`) are bit-identical to the hand-coded
//! runners they re-express, which `tests/scenario_equivalence.rs`
//! enforces.
//!
//! ```
//! use divrel_bench::scenario::{ExperimentSpec, Scenario};
//! use divrel_model::spec::FaultModelSpec;
//! use divrel_numerics::sweep::SeedSpec;
//!
//! let scenario = Scenario {
//!     name: "tiny-grid".into(),
//!     seed: SeedSpec::new(7),
//!     experiment: ExperimentSpec::MonteCarlo {
//!         model: FaultModelSpec::Uniform { n: 4, p: 0.2, q: 0.01 },
//!         introduction: divrel_devsim::FaultIntroduction::Independent,
//!         samples: 2_000,
//!     },
//! };
//! let outcome = scenario.run(2)?;
//! let mc = outcome.as_monte_carlo().expect("MC outcome");
//! assert_eq!(mc.samples, 2_000);
//! // The spec ↔ text round trip is the identity (JSON or TOML).
//! let text = scenario.to_toml()?;
//! assert_eq!(Scenario::from_spec_text(&text)?, scenario);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::adaptive::{
    drive, AdaptiveOutcome, AdaptiveRoundOutcome, AllocationStrategy, RefinementSpec, RoundPlan,
};
use crate::context::Context;
use crate::sweep::{forced_sweep, kl_sweep, ForcedSweepStats, KlSweepStats};
use divrel_demand::region::Region;
use divrel_demand::space::GridSpace2D;
use divrel_demand::version::ProgramVersion;
use divrel_devsim::adaptive::{AdaptivePfdRuntime, CellEvidence};
use divrel_devsim::experiment::{ExperimentResult, MonteCarloExperiment};
use divrel_devsim::factory::VersionFactory;
use divrel_devsim::process::FaultIntroduction;
use divrel_devsim::rare::{RareEstimator, RareEventExperiment, RareOutcome};
use divrel_devsim::sweep::{run_cells, SweepCell};
use divrel_model::spec::FaultModelSpec;
use divrel_model::FaultModel;
use divrel_numerics::sweep::SeedSpec;
use divrel_protection::spec::{CampaignSpec, PlantSpec, ProfileSpec, SystemSpec};
use divrel_protection::{simulation, Adjudicator, Channel, OperationLog, ProtectionSystem};
use divrel_report::fmt::sig;
use divrel_report::{ScenarioCard, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::sync::Arc;

/// The scenario layer's error/result alias: executors compose every
/// sub-crate's error type.
pub type ScenarioResult<T> = Result<T, Box<dyn Error>>;

/// A whole experiment as one serialisable value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name (also names the artifact directory).
    pub name: String,
    /// The random-stream layout: one master seed, everything derives.
    pub seed: SeedSpec,
    /// What to run.
    pub experiment: ExperimentSpec,
}

/// The experiment families a scenario can declare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentSpec {
    /// A Knight–Leveson replication grid (the E16 protocol): one
    /// synthetic 27-version experiment per sweep cell.
    KnightLeveson {
        /// The fault model versions are developed from.
        model: FaultModelSpec,
        /// Number of replications (grid cells).
        replications: usize,
    },
    /// The E17 forced-diversity grid: random process pairs, checking the
    /// AM–GM worst-case claim.
    ForcedDiversity {
        /// Number of random process pairs.
        trials: usize,
    },
    /// The Monte-Carlo driver: single/pair PFD statistics of a model
    /// under an introduction model.
    MonteCarlo {
        /// The fault model.
        model: FaultModelSpec,
        /// How faults are introduced.
        introduction: FaultIntroduction,
        /// Number of sampled pairs.
        samples: usize,
    },
    /// An operational protection campaign (the F1 protocol and its
    /// variants: any plant, channel layout, voting logic, and any number
    /// of development processes for forced diversity).
    Protection(CampaignSpec),
    /// The rare-event engine: PFD estimation of a `k`-out-of-`channels`
    /// protection system under a (possibly shared-cause) fault model,
    /// with a declarative choice of estimator — naive Monte Carlo,
    /// exact importance tilting, or fault-count stratification.
    RareEvent {
        /// The fault model ([`FaultModelSpec::SharedCause`] is welcome
        /// here — the engine samples its two layers exactly).
        model: FaultModelSpec,
        /// Number of redundant channels.
        channels: u32,
        /// Voting threshold: the system works while at least `k`
        /// channels work (`k = 1` is 1-out-of-N).
        k: u32,
        /// Total sample budget.
        samples: usize,
        /// Which estimator to run.
        estimator: EstimatorSpec,
    },
    /// The posterior-driven adaptive sweep: a grid of sampled versions
    /// assessed by rounds of demand trials, each round's budget leased
    /// to the cells with the widest posterior credible intervals, until
    /// every cell's bound closes (see [`crate::adaptive`]).
    AdaptivePfd {
        /// The fault model versions are sampled from.
        model: FaultModelSpec,
        /// Number of grid cells (sampled versions).
        cells: usize,
        /// The stopping rule and round budgets.
        refinement: RefinementSpec,
        /// When present, pins the spec to **one** round of that plan:
        /// the execution form the distributed runtime leases out
        /// (committed spec files leave it absent — the round loop
        /// derives each plan from the accumulated evidence).
        round: Option<RoundPlan>,
    },
}

/// The declarative estimator choices of a [`ExperimentSpec::RareEvent`]
/// scenario — the serialisable face of
/// [`divrel_devsim::rare::RareEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorSpec {
    /// Plain Monte Carlo (the unbiased baseline).
    Naive,
    /// Exponential importance tilt with exact per-sample
    /// likelihood-ratio reweighting.
    ImportanceTilt {
        /// Tilt strength `θ ≥ 0` (`0` reduces exactly to `Naive`).
        theta: f64,
    },
    /// Stratification by exact fault count with Neyman reallocation.
    StratifyByCount {
        /// Allocation rounds per sweep cell (≥ 1).
        rounds: u32,
    },
}

impl EstimatorSpec {
    /// The runtime estimator this spec declares.
    pub fn to_estimator(self) -> RareEstimator {
        match self {
            EstimatorSpec::Naive => RareEstimator::Naive,
            EstimatorSpec::ImportanceTilt { theta } => RareEstimator::ImportanceTilt { theta },
            EstimatorSpec::StratifyByCount { rounds } => RareEstimator::StratifyByCount { rounds },
        }
    }

    /// A short human-readable label for cards and bench rows.
    pub fn label(self) -> String {
        match self {
            EstimatorSpec::Naive => "naive".into(),
            EstimatorSpec::ImportanceTilt { theta } => format!("tilt(θ={theta})"),
            EstimatorSpec::StratifyByCount { rounds } => format!("stratified({rounds} rounds)"),
        }
    }
}

impl Scenario {
    /// The built-in preset ids, in registry order.
    pub const PRESETS: [&'static str; 4] = ["E16", "E17", "F1", "MC"];

    /// A full-scale built-in scenario: `"E16"` (Knight–Leveson
    /// replication), `"E17"` (forced diversity), `"F1"` (Fig 1
    /// protection campaign), `"MC"` (the Monte-Carlo driver on the
    /// safety workload). Results are bit-identical to the corresponding
    /// hand-coded runners.
    pub fn preset(id: &str) -> Option<Scenario> {
        Self::preset_with(id, &Context::new())
    }

    /// A preset scaled by a [`Context`] (smoke contexts scale the sample
    /// budgets down exactly as the experiment registry does).
    pub fn preset_with(id: &str, ctx: &Context) -> Option<Scenario> {
        match id {
            "E16" => Some(presets::e16(ctx)),
            "E17" => Some(presets::e17(ctx)),
            "F1" => Some(presets::f1(ctx)),
            "MC" => Some(presets::mc(ctx)),
            _ => None,
        }
    }

    /// Checks the spec for inconsistencies a serialised file can carry.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> ScenarioResult<()> {
        // Seeds span the full u64 range: the vendored serde carries
        // integers losslessly (`Value::Int`), so any seed survives a
        // spec-file round trip bit-exactly — there is no 2^53 cliff.
        match &self.experiment {
            ExperimentSpec::KnightLeveson {
                replications,
                model,
            } => {
                if *replications == 0 {
                    return Err("KnightLeveson needs >= 1 replication".into());
                }
                reject_shared_cause(model, "KnightLeveson")?;
            }
            ExperimentSpec::ForcedDiversity { trials } => {
                if *trials == 0 {
                    return Err("ForcedDiversity needs >= 1 trial".into());
                }
            }
            ExperimentSpec::MonteCarlo { samples, model, .. } => {
                if *samples < 2 {
                    return Err("MonteCarlo needs >= 2 samples".into());
                }
                reject_shared_cause(model, "MonteCarlo")?;
            }
            ExperimentSpec::Protection(campaign) => campaign.validate()?,
            ExperimentSpec::RareEvent {
                model,
                channels,
                k,
                samples,
                estimator,
            } => {
                if *samples < 2 {
                    return Err("RareEvent needs >= 2 samples".into());
                }
                // The engine's constructor is the authoritative check
                // (k vs channels, tilt finiteness, the 64-bit
                // stratified-universe bound) — run it on the built
                // model so a bad spec file fails here, not mid-run.
                let shared = model.build_shared()?;
                RareEventExperiment::from_shared(&shared, *channels, *k, estimator.to_estimator())?;
            }
            ExperimentSpec::AdaptivePfd {
                model,
                cells,
                refinement,
                round,
            } => {
                if *cells == 0 {
                    return Err("AdaptivePfd needs >= 1 cell".into());
                }
                refinement.validate()?;
                reject_shared_cause(model, "AdaptivePfd")?;
                if let Some(plan) = round {
                    if plan.allocations.len() != *cells {
                        return Err(format!(
                            "AdaptivePfd round plan has {} allocations, want one per cell ({cells})",
                            plan.allocations.len()
                        )
                        .into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Compiles the spec onto the sweep engine and runs it with up to
    /// `threads` workers. `threads` is an execution hint only: every
    /// outcome is bit-identical at any thread count (campaign shard
    /// counts are part of the spec, not of this parameter).
    ///
    /// # Errors
    ///
    /// Validation errors plus whatever the underlying constructors and
    /// simulators report.
    pub fn run(&self, threads: usize) -> ScenarioResult<ScenarioOutcome> {
        self.validate()?;
        match &self.experiment {
            ExperimentSpec::KnightLeveson {
                model,
                replications,
            } => {
                let model = model.build()?;
                let stats = kl_sweep(&model, *replications, self.seed.seed, threads)?;
                Ok(ScenarioOutcome::KnightLeveson(stats))
            }
            ExperimentSpec::ForcedDiversity { trials } => Ok(ScenarioOutcome::ForcedDiversity(
                forced_sweep(*trials, self.seed.seed, threads)?,
            )),
            ExperimentSpec::MonteCarlo {
                model,
                introduction,
                samples,
            } => {
                let model = model.build()?;
                let result = MonteCarloExperiment::new(model, *introduction)
                    .samples(*samples)
                    .seed(self.seed.seed)
                    .threads(threads)
                    .run()?;
                Ok(ScenarioOutcome::MonteCarlo(result))
            }
            ExperimentSpec::Protection(campaign) => Ok(ScenarioOutcome::Protection(run_campaign(
                campaign,
                self.seed.seed,
                threads,
            )?)),
            ExperimentSpec::RareEvent {
                model,
                channels,
                k,
                samples,
                estimator,
            } => {
                let shared = model.build_shared()?;
                let outcome = RareEventExperiment::from_shared(
                    &shared,
                    *channels,
                    *k,
                    estimator.to_estimator(),
                )?
                .samples(*samples)
                .seed(self.seed.seed)
                .threads(threads)
                .run()?;
                Ok(ScenarioOutcome::RareEvent(outcome))
            }
            ExperimentSpec::AdaptivePfd {
                model,
                cells,
                refinement,
                round,
            } => {
                let built = Arc::new(model.build()?);
                match round {
                    Some(plan) => {
                        let runtime = AdaptivePfdRuntime::new(built, self.seed.seed, *cells)?;
                        let evidence =
                            run_adaptive_round(&runtime, plan.round, &plan.allocations, threads)?;
                        Ok(ScenarioOutcome::AdaptiveRound(AdaptiveRoundOutcome {
                            round: plan.round,
                            evidence,
                        }))
                    }
                    None => {
                        let outcome = drive(
                            built,
                            self.seed.seed,
                            *cells,
                            refinement,
                            AllocationStrategy::PosteriorDriven,
                            |runtime, round, allocations| {
                                run_adaptive_round(runtime, round, allocations, threads)
                            },
                        )?;
                        Ok(ScenarioOutcome::Adaptive(outcome))
                    }
                }
            }
        }
    }

    /// Parses a scenario from spec text, auto-detecting the format: JSON
    /// if the first non-whitespace byte is `{`, TOML otherwise.
    ///
    /// # Errors
    ///
    /// The format's parse errors or a shape mismatch.
    pub fn from_spec_text(text: &str) -> ScenarioResult<Scenario> {
        let first = text.chars().find(|c| !c.is_whitespace());
        if first == Some('{') {
            Ok(serde_json::from_str(text)?)
        } else {
            Ok(crate::toml::from_str(text)?)
        }
    }

    /// Renders the scenario as a TOML document.
    ///
    /// # Errors
    ///
    /// [`crate::toml::to_string`] errors (not reachable from a valid
    /// scenario).
    pub fn to_toml(&self) -> ScenarioResult<String> {
        Ok(crate::toml::to_string(self)?)
    }

    /// Renders the scenario as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// [`serde_json::to_string_pretty`] errors (not reachable from a
    /// valid scenario).
    pub fn to_json(&self) -> ScenarioResult<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }
}

/// The sampling executors draw one version at a time from a marginal
/// model — a `SharedCause` spec would silently lose its correlation
/// there, so the families that cannot honour it refuse it up front.
/// Correlated creation is expressed campaign-side instead, through
/// [`divrel_protection::spec::CommonCauseSpec`] layers.
fn reject_shared_cause(model: &FaultModelSpec, family: &str) -> ScenarioResult<()> {
    if matches!(model, FaultModelSpec::SharedCause { .. }) {
        return Err(format!(
            "{family} samples versions independently and cannot honour a \
             SharedCause model; declare common_causes on a Protection \
             campaign instead"
        )
        .into());
    }
    Ok(())
}

/// The reduced accumulators a scenario run produces.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// Reduced Knight–Leveson replication statistics.
    KnightLeveson(KlSweepStats),
    /// Reduced forced-diversity statistics.
    ForcedDiversity(ForcedSweepStats),
    /// Monte-Carlo driver result.
    MonteCarlo(ExperimentResult),
    /// Protection-campaign outcome.
    Protection(CampaignOutcome),
    /// Rare-event estimation outcome.
    RareEvent(RareOutcome),
    /// Adaptive-sweep outcome (the full round loop).
    Adaptive(AdaptiveOutcome),
    /// One pinned round of an adaptive sweep (evidence only — the
    /// execution form the distributed runtime reduces per round).
    AdaptiveRound(AdaptiveRoundOutcome),
}

impl ScenarioOutcome {
    /// The KL statistics, if this is a Knight–Leveson outcome.
    pub fn as_knight_leveson(&self) -> Option<&KlSweepStats> {
        match self {
            ScenarioOutcome::KnightLeveson(s) => Some(s),
            _ => None,
        }
    }

    /// The forced-diversity statistics, if applicable.
    pub fn as_forced(&self) -> Option<&ForcedSweepStats> {
        match self {
            ScenarioOutcome::ForcedDiversity(s) => Some(s),
            _ => None,
        }
    }

    /// The Monte-Carlo result, if applicable.
    pub fn as_monte_carlo(&self) -> Option<&ExperimentResult> {
        match self {
            ScenarioOutcome::MonteCarlo(r) => Some(r),
            _ => None,
        }
    }

    /// The campaign outcome, if applicable.
    pub fn as_protection(&self) -> Option<&CampaignOutcome> {
        match self {
            ScenarioOutcome::Protection(c) => Some(c),
            _ => None,
        }
    }

    /// The rare-event outcome, if applicable.
    pub fn as_rare_event(&self) -> Option<&RareOutcome> {
        match self {
            ScenarioOutcome::RareEvent(r) => Some(r),
            _ => None,
        }
    }

    /// The adaptive-sweep outcome, if applicable.
    pub fn as_adaptive(&self) -> Option<&AdaptiveOutcome> {
        match self {
            ScenarioOutcome::Adaptive(a) => Some(a),
            _ => None,
        }
    }

    /// The pinned-round outcome, if applicable.
    pub fn as_adaptive_round(&self) -> Option<&AdaptiveRoundOutcome> {
        match self {
            ScenarioOutcome::AdaptiveRound(r) => Some(r),
            _ => None,
        }
    }

    /// Renders the reduced accumulators as a [`ScenarioCard`] titled
    /// `name`.
    pub fn card(&self, name: &str) -> ScenarioCard {
        let mut card = ScenarioCard::new(name);
        match self {
            ScenarioOutcome::KnightLeveson(s) => {
                card.field("replications", s.replications.to_string())
                    .field(
                        "reduced mean AND σ",
                        format!("{}/{}", s.reduced_both, s.replications),
                    )
                    .field(
                        "normality rejected at 5%",
                        format!("{}/{}", s.normal_rejected, s.normal_tested),
                    )
                    .field("median mean-reduction", sig(s.median_mean_factor(), 4))
                    .field("median σ-reduction", sig(s.median_std_factor(), 4));
            }
            ScenarioOutcome::ForcedDiversity(s) => {
                card.field("process pairs", s.trials.to_string())
                    .field(
                        "forced worse than unforced",
                        format!("{}/{} (AM–GM forbids any)", s.worse_than_unforced, s.trials),
                    )
                    .field("mean forced/unforced PFD ratio", sig(s.mean_ratio(), 4));
            }
            ScenarioOutcome::MonteCarlo(r) => {
                card.field("sampled pairs", r.samples.to_string());
                let mut t = Table::new([
                    "level",
                    "mean PFD",
                    "std PFD",
                    "fault-free rate",
                    "mean fault count",
                ]);
                t.row([
                    "single version".to_string(),
                    sig(r.single.mean_pfd, 4),
                    sig(r.single.std_pfd, 4),
                    sig(r.single.fault_free_rate, 4),
                    sig(r.single.mean_fault_count, 4),
                ]);
                t.row([
                    "1oo2 pair".to_string(),
                    sig(r.pair.mean_pfd, 4),
                    sig(r.pair.std_pfd, 4),
                    sig(r.pair.fault_free_rate, 4),
                    sig(r.pair.mean_fault_count, 4),
                ]);
                card.table("levels", t);
                if let Some(rr) = r.risk_ratio {
                    card.field("risk ratio (eq 10)", sig(rr, 4));
                }
            }
            ScenarioOutcome::Protection(c) => {
                let mut vt = Table::new(["version", "process", "faults", "true PFD"]);
                for (i, v) in c.versions.iter().enumerate() {
                    vt.row([
                        format!("V{i}"),
                        v.process.to_string(),
                        format!("{:?}", v.fault_indices),
                        sig(v.true_pfd, 3),
                    ]);
                }
                card.table("sampled versions", vt);
                let mut st = Table::new([
                    "system",
                    "demands seen",
                    "observed PFD",
                    "true PFD (geometry)",
                ]);
                for s in &c.systems {
                    st.row([
                        s.label.clone(),
                        s.log.demands().to_string(),
                        sig(s.log.pfd_estimate().unwrap_or(f64::NAN), 3),
                        sig(s.true_pfd, 3),
                    ]);
                }
                card.table("operational campaigns", st);
                let mut pt = Table::new(["process", "E[PFD] single", "E[PFD] pair"]);
                for (i, p) in c.processes.iter().enumerate() {
                    pt.row([
                        i.to_string(),
                        sig(p.mean_pfd_single, 4),
                        sig(p.mean_pfd_pair, 4),
                    ]);
                }
                card.table("development processes", pt);
            }
            ScenarioOutcome::RareEvent(r) => {
                card.field("samples", r.samples.to_string())
                    .field("PFD estimate", sig(r.estimate, 4))
                    .field("true PFD (closed form)", sig(r.true_pfd, 4))
                    .field("std error", sig(r.std_error, 4))
                    .field("relative error", sig(r.relative_error, 4))
                    .field("effective sample size", sig(r.ess, 4));
            }
            ScenarioOutcome::Adaptive(a) => {
                card.field("cells", a.cells.len().to_string())
                    .field("confidence", sig(a.confidence, 4))
                    .field("target width", sig(a.target_width, 4))
                    .field("rounds", a.rounds.len().to_string())
                    .field("total demands", a.total_demands.to_string())
                    .field("converged", a.converged.to_string());
                let mut t = Table::new([
                    "cell",
                    "true PFD",
                    "demands",
                    "failures",
                    "posterior mean",
                    "credible interval",
                    "width",
                ]);
                for (c, cell) in a.cells.iter().enumerate() {
                    t.row([
                        c.to_string(),
                        sig(cell.true_pfd, 4),
                        cell.demands.to_string(),
                        cell.failures.to_string(),
                        sig(cell.posterior_mean, 4),
                        format!("[{}, {}]", sig(cell.lower, 4), sig(cell.upper, 4)),
                        sig(cell.width, 4),
                    ]);
                }
                card.table("cells", t);
                // Every round's allocation is provenance: how the
                // posterior steered the budget, replayable from the
                // spec alone.
                for r in &a.rounds {
                    card.provenance(
                        format!("round {}", r.round),
                        format!(
                            "{}; max width {}",
                            r.allocation_summary(),
                            sig(r.max_width, 4)
                        ),
                    );
                }
            }
            ScenarioOutcome::AdaptiveRound(r) => {
                let demands: u64 = r.evidence.iter().map(|e| e.demands).sum();
                let failures: u64 = r.evidence.iter().map(|e| e.failures).sum();
                card.field("round", r.round.to_string())
                    .field("cells", r.evidence.len().to_string())
                    .field("demands", demands.to_string())
                    .field("failures", failures.to_string());
            }
        }
        card
    }
}

/// One sampled version of a protection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionOutcome {
    /// Index of the development process that produced the version.
    pub process: usize,
    /// The faults the version carries.
    pub fault_indices: Vec<usize>,
    /// The version's exact PFD (geometric measure of its failure set).
    pub true_pfd: f64,
}

/// One protection system's campaign results.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemOutcome {
    /// The system's label from the spec.
    pub label: String,
    /// The merged operation log of the sharded campaign.
    pub log: OperationLog,
    /// The system's exact PFD (intersection measure through the voting
    /// logic).
    pub true_pfd: f64,
}

/// Population-level expectations of one development process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessOutcome {
    /// Eq (1) single-version mean PFD.
    pub mean_pfd_single: f64,
    /// Eq (1) 1oo2 pair mean PFD.
    pub mean_pfd_pair: f64,
}

/// Everything a protection-campaign scenario reduces to.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Per sampled version, in sampling order.
    pub versions: Vec<VersionOutcome>,
    /// Per system, in spec order.
    pub systems: Vec<SystemOutcome>,
    /// Per development process, in spec order.
    pub processes: Vec<ProcessOutcome>,
}

/// A protection campaign compiled to independently-evaluable shard
/// cells: the execution form both the in-process path and the
/// distributed runtime share.
///
/// The campaign's work is a grid of `systems × shards` cells; cell
/// `k` simulates shard `k % shards` of system `k / shards`, with the
/// exact per-shard seed and compile decision
/// [`simulation::run_sharded`] would use, so merging the per-cell logs
/// in cell order reproduces the sharded run **bit for bit** wherever
/// the cells actually executed. The sampling order (all versions first,
/// from one RNG stream seeded with the scenario seed) and the
/// per-system campaign seeds (`seed ^ seed_xor`) follow the F1
/// experiment's conventions exactly, which is what makes the `F1`
/// preset bit-identical to the hand-coded runner.
pub struct CampaignRuntime {
    spec: CampaignSpec,
    seed: u64,
    map: divrel_demand::mapping::FaultRegionMap,
    profile: divrel_demand::profile::Profile,
    plant: divrel_protection::Plant,
    compiled: Option<divrel_protection::compiler::CompiledPlant>,
    models: Vec<Arc<FaultModel>>,
    sampled: Vec<ProgramVersion>,
    systems: Vec<ProtectionSystem>,
    shard_counts: Vec<u64>,
}

impl CampaignRuntime {
    /// Compiles a campaign spec: builds the map, profile, plant (with
    /// the campaign-level compile decision), fault models, the sampled
    /// versions and every protection system.
    ///
    /// # Errors
    ///
    /// Spec validation and constructor errors.
    pub fn new(spec: &CampaignSpec, seed: u64) -> ScenarioResult<Self> {
        spec.validate()?;
        let map = spec.build_map()?;
        let profile = spec.build_profile()?;
        let models: Vec<Arc<FaultModel>> = spec
            .processes
            .iter()
            .map(|ps| Ok(Arc::new(map.to_fault_model(ps, &profile)?)))
            .collect::<Result<_, Box<dyn Error>>>()?;
        let factories: Vec<VersionFactory> = models
            .iter()
            .map(|m| VersionFactory::shared(Arc::clone(m), FaultIntroduction::Independent))
            .collect::<Result<_, _>>()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampled: Vec<ProgramVersion> = spec
            .versions
            .iter()
            .map(|&pi| {
                ProgramVersion::from_fault_set(factories[pi].sample_version(&mut rng).faults)
            })
            .collect();
        // Common-cause layers: one Bernoulli draw per declared cause,
        // *after* the independent sampling, on the same RNG stream — a
        // striking cause ORs its fault set into every covered version
        // at once. Specs without causes consume no extra draws, so
        // pre-existing scenarios reproduce bit for bit.
        if let Some(causes) = &spec.common_causes {
            use rand::Rng;
            for cause in causes {
                let strikes = rng.gen::<f64>() < cause.p;
                if !strikes {
                    continue;
                }
                let covered: Vec<usize> = match &cause.versions {
                    Some(vs) => vs.clone(),
                    None => (0..sampled.len()).collect(),
                };
                for vi in covered {
                    let mut indices = sampled[vi].fault_indices();
                    indices.extend_from_slice(&cause.regions);
                    indices.sort_unstable();
                    indices.dedup();
                    sampled[vi] = ProgramVersion::from_fault_indices(map.len(), &indices)?;
                }
            }
        }
        let plant = spec.build_plant(&profile)?;
        let compiled = simulation::campaign_compile(&plant, spec.steps)?;
        let systems = spec
            .systems
            .iter()
            .map(|sys| {
                let channels: Vec<Channel> = sys
                    .channels
                    .iter()
                    .map(|&vi| Channel::new(format!("V{vi}"), sampled[vi].clone()))
                    .collect();
                Ok(sys.build(channels, map.clone())?)
            })
            .collect::<Result<_, Box<dyn Error>>>()?;
        let shard_counts = simulation::shard_layout(spec.steps, spec.shards);
        Ok(CampaignRuntime {
            spec: spec.clone(),
            seed,
            map,
            profile,
            plant,
            compiled,
            models,
            sampled,
            systems,
            shard_counts,
        })
    }

    /// Shards per system in the deterministic layout (may be fewer than
    /// the spec's `shards` for very short campaigns).
    pub fn shards_per_system(&self) -> u64 {
        self.shard_counts.len() as u64
    }

    /// Total shard cells (`systems × shards`).
    pub fn cell_count(&self) -> u64 {
        self.systems.len() as u64 * self.shards_per_system()
    }

    /// Simulates shard cell `k`, bit-identically to the same shard of
    /// the in-process sharded run.
    ///
    /// # Errors
    ///
    /// Propagated simulation errors; an out-of-range index.
    pub fn run_cell(&self, k: u64) -> ScenarioResult<OperationLog> {
        let shards = self.shards_per_system();
        let sys = (k / shards) as usize;
        let shard = (k % shards) as usize;
        let system = self
            .systems
            .get(sys)
            .ok_or_else(|| format!("campaign cell {k} out of range"))?;
        let campaign_seed = self.seed ^ self.spec.systems[sys].seed_xor;
        Ok(simulation::run_campaign_shard(
            &self.plant,
            self.compiled.as_ref(),
            system,
            self.spec.steps,
            self.shard_counts[shard],
            simulation::shard_seed(campaign_seed, shard),
        )?)
    }

    /// Assembles the campaign outcome from the per-cell logs (cell
    /// order, as returned by [`Self::run_cell`] over `0..cell_count()`):
    /// merges each system's shard logs in shard order, then derives the
    /// deterministic side products (version outcomes, exact PFDs,
    /// process expectations).
    ///
    /// # Errors
    ///
    /// Geometry/model errors from the exact-PFD computations; a log
    /// list of the wrong length.
    pub fn finish(&self, logs: Vec<OperationLog>) -> ScenarioResult<CampaignOutcome> {
        if logs.len() as u64 != self.cell_count() {
            return Err(format!(
                "campaign reduction needs {} shard logs, got {}",
                self.cell_count(),
                logs.len()
            )
            .into());
        }
        let versions = self
            .spec
            .versions
            .iter()
            .zip(&self.sampled)
            .map(|(&pi, pv)| {
                Ok(VersionOutcome {
                    process: pi,
                    fault_indices: pv.fault_indices(),
                    true_pfd: pv.true_pfd(&self.map, &self.profile)?,
                })
            })
            .collect::<Result<_, Box<dyn Error>>>()?;
        let shards = self.shards_per_system() as usize;
        let mut systems = Vec::with_capacity(self.systems.len());
        for (si, (sys, system)) in self.spec.systems.iter().zip(&self.systems).enumerate() {
            let mut log = OperationLog::new(system.channels().len());
            for shard_log in &logs[si * shards..(si + 1) * shards] {
                log.merge(shard_log);
            }
            let true_pfd = system.true_pfd_parallel(&self.profile, self.spec.shards)?;
            systems.push(SystemOutcome {
                label: sys.label.clone(),
                log,
                true_pfd,
            });
        }
        let processes = self
            .models
            .iter()
            .map(|m| ProcessOutcome {
                mean_pfd_single: m.mean_pfd_single(),
                mean_pfd_pair: m.mean_pfd_pair(),
            })
            .collect();
        Ok(CampaignOutcome {
            versions,
            systems,
            processes,
        })
    }
}

/// Executes a protection campaign spec in process: every shard cell
/// through [`CampaignRuntime::run_cell`] with up to `threads`
/// work-stealing workers, then the cell-order reduction. Bit-identical
/// to the pre-distribution `run_sharded`-per-system executor (the shard
/// seeds, counts and compile decision are the same), and to any
/// coordinator/worker execution of the same spec.
fn run_campaign(spec: &CampaignSpec, seed: u64, threads: usize) -> ScenarioResult<CampaignOutcome> {
    let runtime = CampaignRuntime::new(spec, seed)?;
    let cells: Vec<SweepCell<u64>> = (0..runtime.cell_count())
        .map(|k| SweepCell {
            index: k,
            // Campaign shards derive their streams from the campaign
            // seed convention, not from split_seed — the cell carries
            // its index only so the engine can order results.
            seed: 0,
            config: k,
        })
        .collect();
    let results = run_cells(&cells, threads, |cell| {
        runtime.run_cell(cell.config).map_err(|e| e.to_string())
    });
    let mut logs = Vec::with_capacity(results.len());
    for r in results {
        logs.push(r?);
    }
    runtime.finish(logs)
}

/// Evaluates one adaptive round in process: every cell through
/// [`AdaptivePfdRuntime::run_cell`] with up to `threads` work-stealing
/// workers, reduced in cell order. Cells with a zero allocation still
/// occupy their slot (empty evidence), so the result is always one
/// entry per cell. Bit-identical at any thread count, and to any
/// coordinator/worker execution of the same pinned round.
fn run_adaptive_round(
    runtime: &AdaptivePfdRuntime,
    round: u32,
    allocations: &[u64],
    threads: usize,
) -> ScenarioResult<Vec<CellEvidence>> {
    if allocations.len() != runtime.cells() {
        return Err(format!(
            "adaptive round {round} has {} allocations, want one per cell ({})",
            allocations.len(),
            runtime.cells()
        )
        .into());
    }
    let cells: Vec<SweepCell<u64>> = (0..runtime.cells() as u64)
        .map(|c| SweepCell {
            index: c,
            // Adaptive cells derive their streams from the round-salted
            // split layout, not from the engine's seed field — the cell
            // carries its index only so the engine can order results.
            seed: 0,
            config: c,
        })
        .collect();
    let results = run_cells(&cells, threads, |cell| {
        let c = cell.config as usize;
        Ok::<_, String>(runtime.run_cell(c, allocations[c], round))
    });
    let mut evidence = Vec::with_capacity(results.len());
    for r in results {
        evidence.push(r?);
    }
    Ok(evidence)
}

/// The built-in presets: each function re-expresses one hand-coded
/// runner as a spec, scaled by the [`Context`] exactly as the registry
/// entry scales itself.
pub mod presets {
    use super::*;
    use crate::experiments::knight_leveson::student_experiment_model;
    use crate::experiments::workloads;

    /// E16 — the Knight–Leveson replication grid over the
    /// student-experiment model.
    pub fn e16(ctx: &Context) -> Scenario {
        let model = student_experiment_model().expect("static parameters are valid");
        Scenario {
            name: "E16-knight-leveson".into(),
            seed: SeedSpec::new(ctx.seed),
            experiment: ExperimentSpec::KnightLeveson {
                model: FaultModelSpec::from_model(&model),
                replications: (ctx.samples(2_000) / 10).max(50),
            },
        }
    }

    /// E17 — the forced-diversity grid over random process pairs.
    pub fn e17(ctx: &Context) -> Scenario {
        Scenario {
            name: "E17-forced-diversity".into(),
            seed: SeedSpec::new(ctx.seed),
            experiment: ExperimentSpec::ForcedDiversity {
                trials: ctx.samples(5_000),
            },
        }
    }

    /// F1 — the Fig 1 protection campaign: 8 failure regions, three
    /// versions from one process, a 1oo2 OR system and a 2oo3 majority
    /// system against a rate-0.2 memoryless plant.
    pub fn f1(ctx: &Context) -> Scenario {
        let spec = CampaignSpec {
            space: GridSpace2D::new(100, 100).expect("static dimensions are valid"),
            regions: vec![
                Region::rect(0, 0, 19, 9),        // 200 cells, q = 0.02
                Region::rect(30, 0, 39, 9),       // 100 cells, q = 0.01
                Region::rect(50, 0, 54, 9),       // 50 cells,  q = 0.005
                Region::rect(60, 0, 63, 4),       // 20 cells,  q = 0.002
                Region::rect(70, 0, 72, 2),       // 9 cells,   q = 0.0009
                Region::lattice(0, 20, 5, 0, 10), // 10 cells, q = 0.001
                Region::lattice(0, 30, 3, 3, 8),  // 8 cells,  q = 0.0008
                Region::rect(90, 90, 99, 99),     // 100 cells, q = 0.01
            ],
            profile: ProfileSpec::Uniform,
            processes: vec![vec![0.25, 0.20, 0.15, 0.30, 0.10, 0.12, 0.08, 0.18]],
            versions: vec![0, 0, 0],
            systems: vec![
                SystemSpec::flat("1oo2 (Fig 1, OR)", vec![0, 1], Adjudicator::OneOutOfN, 0xF1),
                SystemSpec::flat(
                    "2oo3 (majority)",
                    vec![0, 1, 2],
                    Adjudicator::Majority,
                    0xF2,
                ),
            ],
            plant: PlantSpec::Rate { demand_rate: 0.2 },
            steps: ctx.samples(5_000_000) as u64,
            // Part of the RNG layout: pinned in the spec, never taken
            // from the host's core count.
            shards: 4,
            common_causes: None,
        };
        Scenario {
            name: "F1-protection".into(),
            seed: SeedSpec::new(ctx.seed),
            experiment: ExperimentSpec::Protection(spec),
        }
    }

    /// MC — the Monte-Carlo driver on the standard safety workload.
    pub fn mc(ctx: &Context) -> Scenario {
        Scenario {
            name: "MC-driver".into(),
            seed: SeedSpec::new(ctx.seed),
            experiment: ExperimentSpec::MonteCarlo {
                model: FaultModelSpec::from_model(&workloads::safety_model()),
                introduction: FaultIntroduction::Independent,
                samples: ctx.samples(100_000),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mc() -> Scenario {
        Scenario {
            name: "tiny".into(),
            seed: SeedSpec::new(11),
            experiment: ExperimentSpec::MonteCarlo {
                model: FaultModelSpec::Uniform {
                    n: 4,
                    p: 0.2,
                    q: 0.01,
                },
                introduction: FaultIntroduction::Independent,
                samples: 3_000,
            },
        }
    }

    #[test]
    fn monte_carlo_scenario_is_thread_invariant() {
        let s = tiny_mc();
        let base = s.run(1).unwrap();
        let sharded = s.run(3).unwrap();
        assert_eq!(base, sharded);
        let r = base.as_monte_carlo().unwrap();
        assert_eq!(r.samples, 3_000);
    }

    #[test]
    fn presets_exist_and_validate() {
        let ctx = Context::smoke();
        for id in Scenario::PRESETS {
            let s = Scenario::preset_with(id, &ctx).unwrap();
            s.validate().unwrap();
            // Full-scale presets parse the same way.
            assert!(Scenario::preset(id).is_some());
        }
        assert!(Scenario::preset("E99").is_none());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut s = tiny_mc();
        s.experiment = ExperimentSpec::MonteCarlo {
            model: FaultModelSpec::Uniform {
                n: 4,
                p: 0.2,
                q: 0.01,
            },
            introduction: FaultIntroduction::Independent,
            samples: 1,
        };
        assert!(s.validate().is_err());
        s.experiment = ExperimentSpec::ForcedDiversity { trials: 0 };
        assert!(s.validate().is_err());
        s.experiment = ExperimentSpec::KnightLeveson {
            model: FaultModelSpec::Uniform {
                n: 2,
                p: 0.1,
                q: 0.01,
            },
            replications: 0,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn seeds_above_2_pow_53_round_trip_exactly() {
        // Integer-carrying spec numbers (`Value::Int`) have no f64
        // cliff: a seed anywhere in the u64 range survives both spec
        // formats bit-exactly.
        for seed in [(1u64 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let mut s = tiny_mc();
            s.seed = SeedSpec::new(seed);
            s.validate().expect("full-range seeds are valid");
            let toml = s.to_toml().unwrap();
            assert_eq!(Scenario::from_spec_text(&toml).unwrap().seed.seed, seed);
            let json = s.to_json().unwrap();
            assert_eq!(Scenario::from_spec_text(&json).unwrap().seed.seed, seed);
        }
        let ctx = Context::smoke();
        let mut f1 = Scenario::preset_with("F1", &ctx).unwrap();
        if let ExperimentSpec::Protection(campaign) = &mut f1.experiment {
            campaign.systems[0].seed_xor = (1 << 60) + 1;
        }
        f1.validate().expect("full-range seed_xor is valid");
        let toml = f1.to_toml().unwrap();
        let back = Scenario::from_spec_text(&toml).unwrap();
        assert_eq!(back, f1, "seed_xor above 2^53 drifted through TOML");
    }

    #[test]
    fn spec_text_round_trips_in_both_formats() {
        let ctx = Context::smoke();
        for id in Scenario::PRESETS {
            let s = Scenario::preset_with(id, &ctx).unwrap();
            let json = s.to_json().unwrap();
            assert_eq!(Scenario::from_spec_text(&json).unwrap(), s, "{id} JSON");
            let toml = s.to_toml().unwrap();
            assert_eq!(Scenario::from_spec_text(&toml).unwrap(), s, "{id} TOML");
        }
    }

    #[test]
    fn invalid_model_fails_at_run_time_with_context() {
        let mut s = tiny_mc();
        s.experiment = ExperimentSpec::MonteCarlo {
            model: FaultModelSpec::Uniform {
                n: 3,
                p: 1.5,
                q: 0.1,
            },
            introduction: FaultIntroduction::Independent,
            samples: 100,
        };
        assert!(s.run(1).is_err());
    }

    fn tiny_rare(estimator: EstimatorSpec) -> Scenario {
        Scenario {
            name: "tiny-rare".into(),
            seed: SeedSpec::new(13),
            experiment: ExperimentSpec::RareEvent {
                model: FaultModelSpec::SharedCause {
                    beta: 0.05,
                    base: Box::new(FaultModelSpec::Uniform {
                        n: 5,
                        p: 0.02,
                        q: 0.01,
                    }),
                },
                channels: 3,
                k: 2,
                samples: 20_000,
                estimator,
            },
        }
    }

    #[test]
    fn rare_event_scenarios_run_and_round_trip() {
        for est in [
            EstimatorSpec::Naive,
            EstimatorSpec::ImportanceTilt { theta: 3.0 },
            EstimatorSpec::StratifyByCount { rounds: 2 },
        ] {
            let s = tiny_rare(est);
            s.validate().unwrap();
            let toml = s.to_toml().unwrap();
            assert_eq!(Scenario::from_spec_text(&toml).unwrap(), s, "{est:?} TOML");
            let json = s.to_json().unwrap();
            assert_eq!(Scenario::from_spec_text(&json).unwrap(), s, "{est:?} JSON");
            let base = s.run(1).unwrap();
            assert_eq!(base, s.run(3).unwrap(), "{est:?} thread variance");
            let r = base.as_rare_event().unwrap();
            assert_eq!(r.samples, 20_000);
            assert!(
                (r.estimate - r.true_pfd).abs() < 6.0 * r.std_error,
                "{est:?}: estimate {} vs true {}",
                r.estimate,
                r.true_pfd
            );
            let md = base.card(&s.name).to_markdown();
            assert!(md.contains("true PFD"));
            assert!(md.contains("relative error"));
        }
    }

    #[test]
    fn rare_event_validation_rejects_bad_specs() {
        let mut s = tiny_rare(EstimatorSpec::Naive);
        if let ExperimentSpec::RareEvent { k, .. } = &mut s.experiment {
            *k = 5; // > channels
        }
        assert!(s.validate().is_err());
        let mut s = tiny_rare(EstimatorSpec::ImportanceTilt { theta: -2.0 });
        assert!(s.validate().is_err());
        if let ExperimentSpec::RareEvent {
            estimator,
            channels,
            k,
            ..
        } = &mut s.experiment
        {
            // 5 faults x (1 + 15 channels) = 80 bits > 64.
            *estimator = EstimatorSpec::StratifyByCount { rounds: 2 };
            *channels = 15;
            *k = 1;
        }
        assert!(s.validate().is_err());
    }

    fn tiny_adaptive() -> Scenario {
        Scenario {
            name: "tiny-adaptive".into(),
            seed: SeedSpec::new(29),
            experiment: ExperimentSpec::AdaptivePfd {
                model: FaultModelSpec::Uniform {
                    n: 2,
                    p: 0.25,
                    q: 0.004,
                },
                cells: 12,
                refinement: RefinementSpec {
                    confidence: 0.99,
                    target_width: 0.002,
                    initial_demands: 1_800,
                    round_demands: 6_000,
                    max_rounds: 40,
                },
                round: None,
            },
        }
    }

    #[test]
    fn adaptive_scenario_is_thread_invariant_and_round_trips() {
        let s = tiny_adaptive();
        s.validate().unwrap();
        let toml = s.to_toml().unwrap();
        assert_eq!(Scenario::from_spec_text(&toml).unwrap(), s, "TOML");
        // The hidden round slot leaves the committed spec text clean.
        assert!(
            !toml.contains("round ="),
            "round slot leaked into TOML:\n{toml}"
        );
        let json = s.to_json().unwrap();
        assert_eq!(Scenario::from_spec_text(&json).unwrap(), s, "JSON");
        let base = s.run(1).unwrap();
        for threads in [2, 7] {
            assert_eq!(
                base,
                s.run(threads).unwrap(),
                "thread variance at {threads}"
            );
        }
        let a = base.as_adaptive().unwrap();
        assert!(a.converged);
        assert!(
            a.rounds.len() >= 2,
            "refinement should take multiple rounds"
        );
        let md = base.card(&s.name).to_markdown();
        assert!(md.contains("total demands"));
        assert!(md.contains("credible interval"));
        // Every round's allocation is in the provenance trail.
        for r in 0..a.rounds.len() {
            assert!(
                md.contains(&format!("round {r}")),
                "round {r} missing:\n{md}"
            );
        }
    }

    #[test]
    fn pinned_rounds_run_and_round_trip() {
        let mut s = tiny_adaptive();
        if let ExperimentSpec::AdaptivePfd { round, .. } = &mut s.experiment {
            *round = Some(RoundPlan {
                round: 3,
                allocations: (0..12).map(|c| (c % 4) * 100).collect(),
            });
        }
        s.validate().unwrap();
        let toml = s.to_toml().unwrap();
        assert_eq!(Scenario::from_spec_text(&toml).unwrap(), s, "pinned TOML");
        let base = s.run(1).unwrap();
        assert_eq!(base, s.run(3).unwrap(), "pinned-round thread variance");
        let r = base.as_adaptive_round().unwrap();
        assert_eq!(r.round, 3);
        assert_eq!(r.evidence.len(), 12);
        for (c, ev) in r.evidence.iter().enumerate() {
            assert_eq!(ev.demands, ((c as u64) % 4) * 100);
        }
    }

    #[test]
    fn adaptive_validation_rejects_bad_specs() {
        let mut s = tiny_adaptive();
        if let ExperimentSpec::AdaptivePfd { cells, .. } = &mut s.experiment {
            *cells = 0;
        }
        assert!(s.validate().is_err());
        let mut s = tiny_adaptive();
        if let ExperimentSpec::AdaptivePfd { refinement, .. } = &mut s.experiment {
            refinement.confidence = 0.3;
        }
        assert!(s.validate().is_err());
        let mut s = tiny_adaptive();
        if let ExperimentSpec::AdaptivePfd { round, .. } = &mut s.experiment {
            *round = Some(RoundPlan {
                round: 0,
                allocations: vec![5; 3], // wrong length
            });
        }
        assert!(s.validate().is_err());
        let mut s = tiny_adaptive();
        if let ExperimentSpec::AdaptivePfd { model, .. } = &mut s.experiment {
            *model = FaultModelSpec::SharedCause {
                beta: 0.1,
                base: Box::new(FaultModelSpec::Uniform {
                    n: 2,
                    p: 0.2,
                    q: 0.01,
                }),
            };
        }
        assert!(s.validate().is_err());
    }

    #[test]
    fn campaign_card_lists_every_section() {
        let ctx = Context::smoke();
        let s = Scenario::preset_with("F1", &ctx).unwrap();
        let outcome = s.run(2).unwrap();
        let card = outcome.card(&s.name);
        let md = card.to_markdown();
        assert!(md.contains("sampled versions"));
        assert!(md.contains("operational campaigns"));
        assert!(md.contains("development processes"));
        assert!(md.contains("1oo2 (Fig 1, OR)"));
    }
}
