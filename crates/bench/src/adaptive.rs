//! The **posterior-driven refinement driver**: rounds of demand trials
//! whose budgets chase the widest posterior credible intervals.
//!
//! A fixed sweep decides its per-cell budget before seeing a single
//! demand. The adaptive driver instead runs a *round loop*: an initial
//! uniform round seeds every cell's posterior (exact discrete Bayes,
//! via [`divrel_bayes::update::observe_batch`] on the fault model's
//! [`PfdPrior::exact_single`]), then each refinement round leases its
//! whole budget to the cells whose credible intervals are still wider
//! than the target, proportionally to their widths
//! ([`divrel_devsim::adaptive::refine_allocation`]). The loop stops when
//! every cell's `confidence`-level credible width is at or below
//! `target_width`, or after `max_rounds` rounds.
//!
//! Two properties make the loop distributable:
//!
//! * each round's allocation is a **pure function of the accumulated
//!   evidence** — coordinators, workers and resumed runs recompute it
//!   instead of shipping it;
//! * each round's evidence is a pure function of `(spec, round)` — the
//!   cell layer draws from round-salted split streams
//!   ([`divrel_devsim::adaptive::round_stream`]), so any thread count,
//!   fleet shape or crash/resume history reproduces the run bit for
//!   bit.
//!
//! The driver here is executor-generic: [`drive`] takes a closure that
//! evaluates one round's allocation to per-cell evidence. The
//! in-process executor threads it over [`divrel_devsim::sweep`]; the
//! distributed executor (`dist::AdaptiveCoordinator`) leases each round
//! to a worker fleet.

use crate::scenario::ScenarioResult;
use divrel_bayes::update::observe_batch;
use divrel_bayes::{PfdPosterior, PfdPrior};
use divrel_devsim::adaptive::{
    refine_allocation, uniform_allocation, AdaptivePfdRuntime, CellEvidence,
};
use divrel_model::FaultModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The refinement vocabulary of an `AdaptivePfd` experiment: the
/// stopping rule and the per-round budgets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefinementSpec {
    /// Credible level of the convergence bound (`0.5 < confidence <
    /// 1`): each cell's interval runs from the `1 − confidence` to the
    /// `confidence` posterior quantile.
    pub confidence: f64,
    /// The sweep converges when every cell's credible width is at or
    /// below this (`> 0`).
    pub target_width: f64,
    /// Round 0's budget, spread uniformly over all cells (no posterior
    /// exists yet).
    pub initial_demands: u64,
    /// Every refinement round's budget, leased to unconverged cells in
    /// proportion to their posterior widths.
    pub round_demands: u64,
    /// Hard round cap (≥ 1, counting round 0): the sweep reports
    /// `converged = false` if the bound is still open when it hits.
    pub max_rounds: u32,
}

impl RefinementSpec {
    /// Validates the stopping rule and budgets.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> ScenarioResult<()> {
        if !(self.confidence > 0.5 && self.confidence < 1.0) {
            return Err("refinement.confidence must lie in (0.5, 1)".into());
        }
        if self.target_width.is_nan() || self.target_width <= 0.0 {
            return Err("refinement.target_width must be > 0".into());
        }
        if self.initial_demands == 0 {
            return Err("refinement.initial_demands must be >= 1".into());
        }
        if self.round_demands == 0 {
            return Err("refinement.round_demands must be >= 1".into());
        }
        if self.max_rounds == 0 {
            return Err("refinement.max_rounds must be >= 1".into());
        }
        Ok(())
    }
}

/// One pinned round of an adaptive sweep: the execution form the
/// distributed runtime leases out. A spec carrying a `RoundPlan` runs
/// exactly that round (evidence only, no posterior loop) — the
/// coordinator pins each round it derived so workers never need the
/// evidence history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundPlan {
    /// Which round (salts the demand streams).
    pub round: u32,
    /// Per-cell demand budgets, cell order (length = `cells`).
    pub allocations: Vec<u64>,
}

/// The reduced outcome of one pinned round: per-cell evidence in cell
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRoundOutcome {
    /// The round that ran.
    pub round: u32,
    /// Per-cell evidence, cell order.
    pub evidence: Vec<CellEvidence>,
}

/// One cell's final state after the round loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The exact PFD of the cell's sampled version (simulation ground
    /// truth — the posterior never sees it).
    pub true_pfd: f64,
    /// Total failures observed across all rounds.
    pub failures: u64,
    /// Total demands spent across all rounds.
    pub demands: u64,
    /// Posterior mean PFD.
    pub posterior_mean: f64,
    /// Lower credible bound (the `1 − confidence` quantile).
    pub lower: f64,
    /// Upper credible bound (the `confidence` quantile).
    pub upper: f64,
    /// Credible width `upper − lower`.
    pub width: f64,
}

/// One round's record in the provenance trail.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index.
    pub round: u32,
    /// The allocation the round ran (cell order).
    pub allocations: Vec<u64>,
    /// Budget actually spent (`Σ allocations`).
    pub demands: u64,
    /// Widest posterior credible interval *after* folding the round's
    /// evidence in.
    pub max_width: f64,
}

impl RoundRecord {
    /// A compact human-readable allocation summary for provenance
    /// lines: how many cells got demands, and the min/max non-zero
    /// share.
    pub fn allocation_summary(&self) -> String {
        let active: Vec<u64> = self
            .allocations
            .iter()
            .copied()
            .filter(|&a| a > 0)
            .collect();
        if active.is_empty() {
            return "0 cells".into();
        }
        let min = active.iter().min().copied().unwrap_or(0);
        let max = active.iter().max().copied().unwrap_or(0);
        format!(
            "{} demands over {}/{} cells ({min}..{max} each)",
            self.demands,
            active.len(),
            self.allocations.len()
        )
    }
}

/// Everything an adaptive sweep reduces to.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Per-cell final state, cell order.
    pub cells: Vec<CellReport>,
    /// Per-round provenance, round order.
    pub rounds: Vec<RoundRecord>,
    /// Total demands spent across all rounds and cells.
    pub total_demands: u64,
    /// Whether the credible bound closed before `max_rounds`.
    pub converged: bool,
    /// The credible level the bound was assessed at.
    pub confidence: f64,
    /// The target width of the stopping rule.
    pub target_width: f64,
}

/// How a round's budget is spread — the adaptive driver vs the
/// fixed-budget baseline it is benchmarked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Width-proportional leasing to unconverged cells
    /// ([`refine_allocation`]).
    PosteriorDriven,
    /// Uniform spread over all cells regardless of posterior state
    /// ([`uniform_allocation`]) — the fixed-sweep baseline, run under
    /// the same stopping rule so samples-to-bound is comparable.
    Uniform,
}

/// Runs the round loop with a caller-supplied round executor:
/// `exec(runtime, round, allocations)` must return per-cell evidence
/// for exactly that round (cell order, one entry per cell). The
/// posterior side — exact Bayes updates, widths, the stopping rule,
/// the next allocation — lives here, identically for every executor.
///
/// # Errors
///
/// Model/prior construction errors, executor errors, evidence of the
/// wrong length, posterior quantile errors.
pub fn drive<F>(
    model: Arc<FaultModel>,
    sweep_seed: u64,
    cells: usize,
    refinement: &RefinementSpec,
    strategy: AllocationStrategy,
    mut exec: F,
) -> ScenarioResult<AdaptiveOutcome>
where
    F: FnMut(&AdaptivePfdRuntime, u32, &[u64]) -> ScenarioResult<Vec<CellEvidence>>,
{
    refinement.validate()?;
    let prior = PfdPrior::exact_single(&model)?;
    let runtime = AdaptivePfdRuntime::new(model, sweep_seed, cells)?;
    let mut cumulative = vec![CellEvidence::default(); cells];
    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut allocations = uniform_allocation(refinement.initial_demands, cells);
    let mut converged = false;
    let mut final_posteriors: Vec<PfdPosterior> = Vec::new();
    let mut widths = vec![f64::INFINITY; cells];
    for round in 0..refinement.max_rounds {
        let evidence = exec(&runtime, round, &allocations)?;
        if evidence.len() != cells {
            return Err(format!(
                "adaptive round {round} returned {} evidence entries, want {cells}",
                evidence.len()
            )
            .into());
        }
        for (acc, ev) in cumulative.iter_mut().zip(&evidence) {
            use divrel_numerics::sweep::SweepReduce;
            acc.absorb(*ev);
        }
        let flat: Vec<(u64, u64)> = cumulative.iter().map(|e| (e.failures, e.demands)).collect();
        let posteriors = observe_batch(&prior, &flat)?;
        for (w, p) in widths.iter_mut().zip(&posteriors) {
            let upper = p.quantile(refinement.confidence)?;
            let lower = p.quantile(1.0 - refinement.confidence)?;
            *w = upper - lower;
        }
        let max_width = widths.iter().fold(0.0f64, |m, &w| m.max(w));
        rounds.push(RoundRecord {
            round,
            allocations: allocations.clone(),
            demands: allocations.iter().sum(),
            max_width,
        });
        final_posteriors = posteriors;
        if max_width <= refinement.target_width {
            converged = true;
            break;
        }
        allocations = match strategy {
            AllocationStrategy::PosteriorDriven => {
                refine_allocation(&widths, refinement.target_width, refinement.round_demands)
            }
            AllocationStrategy::Uniform => uniform_allocation(refinement.round_demands, cells),
        };
    }
    let cell_reports = cumulative
        .iter()
        .zip(&final_posteriors)
        .enumerate()
        .map(|(c, (ev, p))| {
            let upper = p.quantile(refinement.confidence)?;
            let lower = p.quantile(1.0 - refinement.confidence)?;
            Ok(CellReport {
                true_pfd: runtime.true_pfd(c),
                failures: ev.failures,
                demands: ev.demands,
                posterior_mean: p.mean(),
                lower,
                upper,
                width: upper - lower,
            })
        })
        .collect::<ScenarioResult<Vec<_>>>()?;
    Ok(AdaptiveOutcome {
        total_demands: rounds.iter().map(|r| r.demands).sum(),
        cells: cell_reports,
        rounds,
        converged,
        confidence: refinement.confidence,
        target_width: refinement.target_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RefinementSpec {
        RefinementSpec {
            confidence: 0.99,
            target_width: 0.002,
            initial_demands: 2_000,
            round_demands: 8_000,
            max_rounds: 30,
        }
    }

    fn in_process_exec(
        runtime: &AdaptivePfdRuntime,
        round: u32,
        allocations: &[u64],
    ) -> ScenarioResult<Vec<CellEvidence>> {
        Ok((0..runtime.cells())
            .map(|c| runtime.run_cell(c, allocations[c], round))
            .collect())
    }

    #[test]
    fn validation_rejects_bad_stopping_rules() {
        for (mangle, msg) in [
            (
                Box::new(|s: &mut RefinementSpec| s.confidence = 0.5) as Box<dyn Fn(&mut _)>,
                "confidence",
            ),
            (
                Box::new(|s: &mut RefinementSpec| s.confidence = 1.0),
                "confidence",
            ),
            (
                Box::new(|s: &mut RefinementSpec| s.target_width = 0.0),
                "target_width",
            ),
            (
                Box::new(|s: &mut RefinementSpec| s.initial_demands = 0),
                "initial_demands",
            ),
            (
                Box::new(|s: &mut RefinementSpec| s.round_demands = 0),
                "round_demands",
            ),
            (
                Box::new(|s: &mut RefinementSpec| s.max_rounds = 0),
                "max_rounds",
            ),
        ] {
            let mut s = spec();
            mangle(&mut s);
            let err = s.validate().expect_err("must reject").to_string();
            assert!(err.contains(msg), "{err} should mention {msg}");
        }
        spec().validate().expect("the base spec is valid");
    }

    #[test]
    fn the_round_loop_converges_and_records_its_rounds() {
        let model = FaultModel::uniform(2, 0.25, 0.004).expect("valid model");
        let out = drive(
            Arc::new(model),
            41,
            16,
            &spec(),
            AllocationStrategy::PosteriorDriven,
            in_process_exec,
        )
        .expect("the drive succeeds");
        assert!(out.converged, "rounds: {:?}", out.rounds.len());
        assert_eq!(out.cells.len(), 16);
        assert!(!out.rounds.is_empty());
        // Round indices are consecutive from 0 and the budget ledger
        // adds up.
        for (i, r) in out.rounds.iter().enumerate() {
            assert_eq!(r.round as usize, i);
            assert_eq!(r.demands, r.allocations.iter().sum::<u64>());
        }
        let ledger: u64 = out.rounds.iter().map(|r| r.demands).sum();
        assert_eq!(out.total_demands, ledger);
        let spent: u64 = out.cells.iter().map(|c| c.demands).sum();
        assert_eq!(out.total_demands, spent);
        // Every cell's bound closed, and the interval brackets sanely.
        for c in &out.cells {
            assert!(c.width <= spec().target_width);
            assert!(c.lower <= c.upper);
            assert!(c.failures <= c.demands);
        }
        // max_width is monotone enough to have ended below target.
        assert!(out.rounds.last().expect("nonempty").max_width <= spec().target_width);
    }

    #[test]
    fn adaptive_spends_no_demands_on_converged_cells() {
        let model = FaultModel::uniform(2, 0.25, 0.004).expect("valid model");
        let out = drive(
            Arc::new(model),
            41,
            16,
            &spec(),
            AllocationStrategy::PosteriorDriven,
            in_process_exec,
        )
        .expect("the drive succeeds");
        // Refinement rounds (1+) must leave some cells unfunded once
        // posteriors diverge — that is the point of the strategy.
        assert!(
            out.rounds
                .iter()
                .filter(|r| r.round > 0)
                .any(|r| r.allocations.contains(&0)),
            "some refinement round should skip converged cells: {:?}",
            out.rounds
                .iter()
                .map(|r| r.allocation_summary())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_baseline_spends_more_to_reach_the_same_bound() {
        let model = FaultModel::uniform(2, 0.25, 0.004).expect("valid model");
        let adaptive = drive(
            Arc::new(model.clone()),
            41,
            16,
            &spec(),
            AllocationStrategy::PosteriorDriven,
            in_process_exec,
        )
        .expect("adaptive drive succeeds");
        let uniform = drive(
            Arc::new(model),
            41,
            16,
            &spec(),
            AllocationStrategy::Uniform,
            in_process_exec,
        )
        .expect("uniform drive succeeds");
        assert!(adaptive.converged && uniform.converged);
        assert!(
            adaptive.total_demands < uniform.total_demands,
            "adaptive {} vs uniform {}",
            adaptive.total_demands,
            uniform.total_demands
        );
    }

    #[test]
    fn the_drive_is_deterministic() {
        let model = FaultModel::uniform(2, 0.25, 0.004).expect("valid model");
        let a = drive(
            Arc::new(model.clone()),
            41,
            16,
            &spec(),
            AllocationStrategy::PosteriorDriven,
            in_process_exec,
        )
        .expect("first drive");
        let b = drive(
            Arc::new(model),
            41,
            16,
            &spec(),
            AllocationStrategy::PosteriorDriven,
            in_process_exec,
        )
        .expect("second drive");
        assert_eq!(a, b);
    }

    #[test]
    fn allocation_summaries_read_sanely() {
        let r = RoundRecord {
            round: 2,
            allocations: vec![0, 500, 300, 0],
            demands: 800,
            max_width: 0.01,
        };
        assert_eq!(
            r.allocation_summary(),
            "800 demands over 2/4 cells (300..500 each)"
        );
        let idle = RoundRecord {
            round: 3,
            allocations: vec![0, 0],
            demands: 0,
            max_width: 0.0,
        };
        assert_eq!(idle.allocation_summary(), "0 cells");
    }
}
